//! Multi-Agent PPO (Yu et al. 2021) with parameter sharing.
//!
//! MAPPO extends PPO to cooperative multi-agent settings: all agents
//! share one parametrised policy (so experience from every agent trains
//! the same network), while each agent acts on its own observation.
//! With the MPE `simple_spread` global-observation variant, each agent's
//! observation already carries the joint information the central critic
//! needs (§7.4 of the paper) — so the critic here *is* central in the
//! CTDE sense while remaining a per-agent module.

use msrl_core::api::{Actor, Learner, SampleBatch};
use msrl_core::Result;
use msrl_env::{Action, MultiAgentEnvironment};
use msrl_tensor::{ops, Tensor};

use crate::buffer::{step_batch, TrajectoryBuffer};
use crate::ppo::{PpoActor, PpoConfig, PpoLearner, PpoPolicy};

/// A MAPPO trainer: `n` agents sharing one policy, trained by one
/// PPO learner over the union of all agents' experience.
pub struct Mappo {
    /// Shared-policy actor (used for every agent's inference).
    pub actor: PpoActor,
    /// The learner optimising the shared policy.
    pub learner: PpoLearner,
    n_agents: usize,
}

impl Mappo {
    /// Creates a MAPPO trainer for an environment's spec.
    pub fn new(
        env: &dyn MultiAgentEnvironment,
        hidden: &[usize],
        cfg: PpoConfig,
        seed: u64,
    ) -> Self {
        let n_actions = env.action_spec().policy_width();
        let policy = PpoPolicy::discrete(env.obs_dim(), n_actions, hidden, seed);
        Mappo {
            actor: PpoActor::new(policy.clone(), seed + 1),
            learner: PpoLearner::new(policy, cfg),
            n_agents: env.n_agents(),
        }
    }

    /// Number of agents this trainer drives.
    pub fn n_agents(&self) -> usize {
        self.n_agents
    }

    /// Collects one full episode from the multi-agent environment,
    /// stacking all agents' observations into one inference batch per
    /// step (MSRL's fragment fusion applied at the algorithm level).
    ///
    /// Returns the env-major batch and the episode's mean per-agent
    /// return.
    ///
    /// # Errors
    ///
    /// Propagates tensor/actor failures.
    pub fn collect_episode(
        &mut self,
        env: &mut dyn MultiAgentEnvironment,
    ) -> Result<(SampleBatch, f32)> {
        let mut buf = TrajectoryBuffer::new();
        let mut obs = env.reset();
        let mut total_reward = 0.0;
        let mut steps = 0;
        loop {
            let obs_refs: Vec<&Tensor> = obs.iter().collect();
            let stacked = ops::stack(&obs_refs).map_err(msrl_core::FdgError::Tensor)?;
            let out = self.actor.act(&stacked)?;
            let actions: Vec<Action> =
                out.actions.data().iter().map(|&a| Action::Discrete(a as usize)).collect();
            let step = env.step(&actions);
            total_reward += step.rewards.iter().sum::<f32>();
            let next_refs: Vec<&Tensor> = step.obs.iter().collect();
            let next_stacked = ops::stack(&next_refs).map_err(msrl_core::FdgError::Tensor)?;
            let rewards = Tensor::from_vec(step.rewards.clone(), &[self.n_agents])
                .map_err(msrl_core::FdgError::Tensor)?;
            let values = out.values.clone().expect("PPO policy has a critic");
            buf.insert(step_batch(
                stacked,
                out.actions,
                rewards,
                next_stacked.clone(),
                vec![step.done; self.n_agents],
                out.log_probs,
                values,
            ));
            obs = step.obs;
            steps += 1;
            if step.done {
                break;
            }
        }
        let batch = buf.drain_env_major()?;
        Ok((batch, total_reward / (self.n_agents * steps.max(1)) as f32))
    }

    /// One training iteration: collect `episodes` episodes, update the
    /// shared policy on their union, and refresh the actor replica.
    /// Returns the mean per-agent step reward across the collected
    /// episodes.
    ///
    /// # Errors
    ///
    /// Propagates failures from collection or learning.
    pub fn train_iteration(
        &mut self,
        env: &mut dyn MultiAgentEnvironment,
        episodes: usize,
    ) -> Result<f32> {
        let mut batches = Vec::with_capacity(episodes);
        let mut reward = 0.0;
        for _ in 0..episodes.max(1) {
            let (b, r) = self.collect_episode(env)?;
            batches.push(b);
            reward += r;
        }
        let batch = SampleBatch::concat(&batches)?;
        self.learner.learn(&batch)?;
        self.actor.set_policy_params(&self.learner.policy_params())?;
        Ok(reward / episodes.max(1) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::mpe::SimpleSpread;

    #[test]
    fn collect_episode_shapes() {
        let mut env = SimpleSpread::new(3, 0).with_horizon(6);
        let mut mappo = Mappo::new(&env, &[16], PpoConfig::default(), 1);
        let (batch, _) = mappo.collect_episode(&mut env).unwrap();
        // 3 agents × 6 steps, env-major with 6-step segments.
        assert_eq!(batch.len(), 18);
        assert_eq!(batch.segment_len, 6);
        assert_eq!(batch.obs.shape(), &[18, env.obs_dim()]);
    }

    #[test]
    fn shared_policy_is_truly_shared() {
        let env = SimpleSpread::new(2, 0);
        let mut mappo = Mappo::new(&env, &[8], PpoConfig::default(), 2);
        // After a sync, actor and learner weights coincide exactly.
        mappo.actor.set_policy_params(&mappo.learner.policy_params()).unwrap();
        assert_eq!(mappo.actor.policy_params(), mappo.learner.policy_params());
    }

    /// MAPPO improves cooperative coverage on simple_spread: the mean
    /// per-agent step reward (negative coverage distance) rises.
    #[test]
    fn mappo_improves_spread() {
        let mut env = SimpleSpread::new(2, 7).with_horizon(20);
        let cfg = PpoConfig { lr: 7e-4, epochs: 4, entropy_coef: 0.005, ..PpoConfig::default() };
        let mut mappo = Mappo::new(&env, &[32], cfg, 1);
        let mut first = 0.0;
        let mut last = 0.0;
        let rounds = 40;
        for i in 0..rounds {
            let r = mappo.train_iteration(&mut env, 8).unwrap();
            if i < 8 {
                first += r;
            }
            if i >= rounds - 8 {
                last += r;
            }
        }
        assert!(
            last > first,
            "mean step reward should improve: first8 {first:.3} vs last8 {last:.3}"
        );
    }
}
