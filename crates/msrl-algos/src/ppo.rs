//! Proximal Policy Optimization (Schulman et al. 2017) on the MSRL
//! component API.
//!
//! The implementation mirrors the paper's algorithm structure: a
//! [`PpoActor`] performs policy inference and carries the behaviour
//! statistics PPO's clipped ratio needs; a [`PpoLearner`] recomputes GAE
//! over the sampled trajectories (as in Alg. 1 lines 18–19) and runs
//! several clipped-surrogate epochs. Both halves share one
//! [`PpoPolicy`], whose flat-weight serialisation is the payload of the
//! runtime's weight-sync collectives.

use msrl_core::api::{ActOutput, Actor, Learner, SampleBatch};
use msrl_core::{FdgError, Result};
use msrl_tensor::autograd::Tape;
use msrl_tensor::dist::{categorical_stats, gaussian_stats, Categorical, DiagGaussian};
use msrl_tensor::nn::{Activation, Mlp, PackedMlp};
use msrl_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use msrl_tensor::{init, ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gae;

/// PPO hyper-parameters (defaults follow the common MuJoCo settings the
/// paper's evaluation uses).
#[derive(Debug, Clone)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub gae_lambda: f32,
    /// Clipping radius ε of the surrogate ratio.
    pub clip: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Optimisation epochs per batch.
    pub epochs: usize,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip: 0.2,
            lr: 3e-4,
            epochs: 4,
            entropy_coef: 0.01,
            value_coef: 0.5,
            max_grad_norm: 0.5,
        }
    }
}

/// The PPO policy: an actor network, a critic network, and (for
/// continuous control) a state-independent log-std vector.
#[derive(Debug, Clone)]
pub struct PpoPolicy {
    /// Maps observations to action logits (discrete) or means
    /// (continuous).
    pub actor: Mlp,
    /// Maps observations to a scalar value estimate.
    pub critic: Mlp,
    /// Per-dimension log standard deviation (continuous only).
    pub log_std: Tensor,
    /// Whether actions are discrete indices.
    pub discrete: bool,
}

impl PpoPolicy {
    /// A discrete-action policy with the given hidden widths.
    pub fn discrete(obs_dim: usize, n_actions: usize, hidden: &[usize], seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let mut actor_sizes = vec![obs_dim];
        actor_sizes.extend_from_slice(hidden);
        actor_sizes.push(n_actions);
        let mut critic_sizes = vec![obs_dim];
        critic_sizes.extend_from_slice(hidden);
        critic_sizes.push(1);
        PpoPolicy {
            actor: Mlp::new(&actor_sizes, Activation::Tanh, Activation::Linear, &mut rng),
            critic: Mlp::new(&critic_sizes, Activation::Tanh, Activation::Linear, &mut rng),
            log_std: Tensor::zeros(&[0]),
            discrete: true,
        }
    }

    /// A continuous (diagonal-Gaussian) policy with the given hidden
    /// widths.
    pub fn continuous(obs_dim: usize, act_dim: usize, hidden: &[usize], seed: u64) -> Self {
        let mut p = Self::discrete(obs_dim, act_dim, hidden, seed);
        p.log_std = Tensor::full(&[act_dim], -0.5);
        p.discrete = false;
        p
    }

    /// The seven-layer configuration of the paper's evaluation (§7.1).
    pub fn seven_layer_continuous(obs_dim: usize, act_dim: usize, seed: u64) -> Self {
        Self::continuous(obs_dim, act_dim, &[64, 64, 64, 64, 64], seed)
    }

    /// Total scalar parameters (actor + critic + log-std).
    pub fn num_params(&self) -> usize {
        self.actor.num_params() + self.critic.num_params() + self.log_std.len()
    }

    /// Serialises all weights to a flat vector (weight-sync payload).
    pub fn flatten(&self) -> Vec<f32> {
        let mut v = self.actor.flatten_params();
        v.extend(self.critic.flatten_params());
        v.extend_from_slice(self.log_std.data());
        v
    }

    /// Loads weights from [`PpoPolicy::flatten`] output.
    ///
    /// # Errors
    ///
    /// Returns an error on a length mismatch.
    pub fn unflatten(&mut self, flat: &[f32]) -> Result<()> {
        if flat.len() != self.num_params() {
            return Err(FdgError::Tensor(msrl_tensor::TensorError::LengthMismatch {
                expected: self.num_params(),
                actual: flat.len(),
            }));
        }
        let a = self.actor.num_params();
        let c = self.critic.num_params();
        self.actor.unflatten_params(&flat[..a])?;
        self.critic.unflatten_params(&flat[a..a + c])?;
        if !self.log_std.is_empty() {
            self.log_std.data_mut().copy_from_slice(&flat[a + c..]);
        }
        Ok(())
    }

    /// Policy inference + sampling for a batch of observations.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed observations.
    pub fn act(&self, obs: &Tensor, rng: &mut StdRng) -> Result<ActOutput> {
        self.act_with(obs, rng, None)
    }

    /// [`PpoPolicy::act`], optionally over a pre-packed weight snapshot
    /// (the batched-rollout fast path). The packed forward replays the
    /// same fused per-layer arithmetic, so both paths are bit-identical.
    fn act_with(
        &self,
        obs: &Tensor,
        rng: &mut StdRng,
        packed: Option<&PackedPpo>,
    ) -> Result<ActOutput> {
        let (out, values) = self.forward_with(obs, packed)?;
        self.sample_from(&out, values, rng)
    }

    /// The deterministic forward half of [`PpoPolicy::act`]: actor head
    /// outputs (`[batch, act]` logits or means) and critic values
    /// (`[batch]`). Split out so a micro-batching act server can run
    /// one forward over rows concatenated from many actors and hand
    /// each actor its row slice — matmul rows are independent, so the
    /// batched forward is bit-identical to per-actor forwards.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed observations.
    pub fn forward_with(
        &self,
        obs: &Tensor,
        packed: Option<&PackedPpo>,
    ) -> Result<(Tensor, Tensor)> {
        let (out, values) = match packed {
            Some(p) => (p.actor.infer(obs)?, p.critic.infer(obs)?),
            None => (self.actor.infer(obs)?, self.critic.infer(obs)?),
        };
        let batch = obs.shape()[0];
        Ok((out, values.reshape(&[batch])?))
    }

    /// The sampling half of [`PpoPolicy::act`]: builds the action
    /// distribution from forward outputs and draws with `rng`. Operates
    /// on whatever row block it is given, so an act server can apply it
    /// per-client slice with each client's own generator — the same
    /// draws the unbatched path would make.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed head outputs.
    pub fn sample_from(&self, out: &Tensor, values: Tensor, rng: &mut StdRng) -> Result<ActOutput> {
        let batch = out.shape()[0];
        if self.discrete {
            let dist = Categorical::from_logits(out)?;
            let actions = dist.sample(rng);
            let log_probs = dist.log_prob(&actions)?;
            let actions_t =
                Tensor::from_vec(actions.iter().map(|&a| a as f32).collect(), &[batch])?;
            Ok(ActOutput { actions: actions_t, log_probs, values: Some(values) })
        } else {
            let dist = DiagGaussian::new(out.clone(), self.log_std.clone())?;
            let actions = dist.sample(rng);
            let log_probs = dist.log_prob(&actions)?;
            Ok(ActOutput { actions, log_probs, values: Some(values) })
        }
    }

    /// Critic value estimates, `[batch]`.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed observations.
    pub fn values(&self, obs: &Tensor) -> Result<Tensor> {
        let v = self.critic.infer(obs)?;
        Ok(v.reshape(&[obs.shape()[0]])?)
    }
}

/// A policy's weights packed into the kernel tier's panel layout —
/// one `pack_b` per layer per weight version, amortized over every
/// rollout forward until the next weight sync.
pub struct PackedPpo {
    actor: PackedMlp,
    critic: PackedMlp,
}

impl PackedPpo {
    /// Packs both heads of a policy snapshot.
    pub fn pack(p: &PpoPolicy) -> Self {
        PackedPpo { actor: p.actor.pack(), critic: p.critic.pack() }
    }
}

/// The data-collection half of PPO (`Actor.act()` in the paper's API).
///
/// When the kernel tier and fusion are enabled, the actor lazily packs
/// its policy weights once per weight version and runs every rollout
/// forward of the iteration as a single panel sweep over the shared
/// packed panels — the per-step observation batch (`[envs, obs]` rows
/// collected by the rollout) stops paying per-forward dispatch and
/// packing. [`Actor::set_policy_params`] invalidates the snapshot, so a
/// weight sync triggers exactly one repack. Outputs are bit-identical
/// to the unpacked path (`MSRL_TIER=0`).
pub struct PpoActor {
    /// The (replicated) policy.
    pub policy: PpoPolicy,
    rng: StdRng,
    packed: Option<PackedPpo>,
}

impl PpoActor {
    /// Creates an actor over a policy replica.
    pub fn new(policy: PpoPolicy, seed: u64) -> Self {
        PpoActor { policy, rng: StdRng::seed_from_u64(seed), packed: None }
    }

    /// Whether the batched-rollout packed snapshot is currently built
    /// (test hook for the tier accounting).
    pub fn has_packed_weights(&self) -> bool {
        self.packed.is_some()
    }
}

impl Actor for PpoActor {
    fn act(&mut self, obs: &Tensor) -> Result<ActOutput> {
        if msrl_tensor::par::tier_enabled() && msrl_tensor::par::fusion_enabled() {
            if self.packed.is_none() {
                self.packed = Some(PackedPpo::pack(&self.policy));
            }
        } else {
            // Gates can flip between scoped test sections; never serve
            // a packed forward the current mode wouldn't have built.
            self.packed = None;
        }
        if msrl_telemetry::take_audit_request() {
            // Tier-2 shadow audit (DESIGN §3.15): run this forward once
            // on the normal path and once pinned at tier 1, record the
            // relative drift, and — crucially — sample the action from
            // the NORMAL-path output so an audited iteration stays
            // bit-identical to an unaudited one.
            let (out, values) = self.policy.forward_with(obs, self.packed.as_ref())?;
            let (ref_out, ref_values) =
                msrl_tensor::par::with_tier_level(1, || self.policy.forward_with(obs, None))?;
            let drift = msrl_telemetry::max_rel_err(out.data(), ref_out.data())
                .max(msrl_telemetry::max_rel_err(values.data(), ref_values.data()));
            msrl_telemetry::record_audit(drift);
            return self.policy.sample_from(&out, values, &mut self.rng);
        }
        self.policy.act_with(obs, &mut self.rng, self.packed.as_ref())
    }

    fn policy_params(&self) -> Vec<f32> {
        self.policy.flatten()
    }

    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()> {
        // A sync carrying the weights the actor already holds (a
        // re-broadcast of the same epoch) must not invalidate the
        // packed snapshot — repacking is the expensive half of the
        // batched fast path, and the partial-update path can deliver
        // the same version more than once.
        if self.packed.is_some()
            && flat.len() == self.policy.num_params()
            && self.policy.flatten() == flat
        {
            return Ok(());
        }
        self.packed = None;
        self.policy.unflatten(flat)
    }
}

/// The training half of PPO (`Learner.learn()` in the paper's API).
pub struct PpoLearner {
    /// The policy being optimised.
    pub policy: PpoPolicy,
    /// Hyper-parameters.
    pub cfg: PpoConfig,
    opt: Adam,
    /// `(loss, mean entropy)` of the most recent optimisation pass —
    /// the per-iteration training signal the metrics stream reports.
    /// A `Cell` because gradient-only callers reach it through `&self`
    /// paths ([`Learner::grads`]).
    last_metrics: std::cell::Cell<Option<(f32, f32)>>,
    /// Pre-clip global gradient norm of the most recent backward pass
    /// (the health sentinel's `health.grad_norm` source).
    last_grad_norm: std::cell::Cell<Option<f32>>,
}

impl PpoLearner {
    /// Creates a learner owning a policy.
    pub fn new(policy: PpoPolicy, cfg: PpoConfig) -> Self {
        let opt = Adam::new(cfg.lr);
        PpoLearner {
            policy,
            cfg,
            opt,
            last_metrics: std::cell::Cell::new(None),
            last_grad_norm: std::cell::Cell::new(None),
        }
    }

    /// Loss of the most recent optimisation pass (set by
    /// [`Learner::learn`] and [`Learner::grads`] alike).
    pub fn last_loss(&self) -> Option<f32> {
        self.last_metrics.get().map(|(l, _)| l)
    }

    /// Mean policy entropy of the most recent optimisation pass.
    pub fn last_entropy(&self) -> Option<f32> {
        self.last_metrics.get().map(|(_, e)| e)
    }

    /// Computes GAE advantages and value targets over the batch's
    /// env-major segments.
    fn advantages(&self, batch: &SampleBatch) -> Result<(Vec<f32>, Vec<f32>)> {
        let n = batch.len();
        let seg = if batch.segment_len > 0 { batch.segment_len } else { n };
        if !n.is_multiple_of(seg) {
            return Err(FdgError::Tensor(msrl_tensor::TensorError::LengthMismatch {
                expected: seg,
                actual: n,
            }));
        }
        let mut adv = Vec::with_capacity(n);
        let mut ret = Vec::with_capacity(n);
        for s in 0..n / seg {
            let lo = s * seg;
            let hi = lo + seg;
            let rewards = &batch.rewards.data()[lo..hi];
            let values = &batch.values.data()[lo..hi];
            let dones = &batch.dones[lo..hi];
            // Bootstrap from the critic at the segment's last next-state
            // unless the episode ended there.
            let last_value = if dones[seg - 1] {
                0.0
            } else {
                let last = batch.next_obs.shape()[1];
                let row = Tensor::from_vec(
                    batch.next_obs.data()[(hi - 1) * last..hi * last].to_vec(),
                    &[1, last],
                )
                .map_err(FdgError::Tensor)?;
                self.policy.values(&row)?.item().map_err(FdgError::Tensor)?
            };
            let (a, r) =
                gae::gae(rewards, values, dones, last_value, self.cfg.gamma, self.cfg.gae_lambda);
            adv.extend(a);
            ret.extend(r);
        }
        gae::normalize(&mut adv);
        Ok((adv, ret))
    }

    /// One clipped-surrogate optimisation pass; returns `(loss, grads)`
    /// without mutating the policy.
    fn loss_and_grads(
        &self,
        batch: &SampleBatch,
        adv: &[f32],
        ret: &[f32],
    ) -> Result<(f32, Vec<Tensor>)> {
        let n = batch.len();
        let tape = Tape::new();
        let actor = self.policy.actor.bind(&tape);
        let critic = self.policy.critic.bind(&tape);
        let obs = tape.var(batch.obs.clone());
        let out = actor.forward(&obs)?;

        let mut log_std_var = None;
        let (log_prob, entropy) = if self.policy.discrete {
            let idx: Vec<usize> = batch.actions.data().iter().map(|&a| a as usize).collect();
            categorical_stats(&out, &idx)?
        } else {
            let log_std = tape.var(self.policy.log_std.clone());
            let stats = gaussian_stats(&out, &log_std, &batch.actions)?;
            log_std_var = Some(log_std);
            stats
        };

        let adv_t = tape.var(Tensor::from_vec(adv.to_vec(), &[n]).map_err(FdgError::Tensor)?);
        let old_lp = tape.var(batch.log_probs.clone());
        let ratio = log_prob.sub(&old_lp)?.exp();
        let unclipped = ratio.mul(&adv_t)?;
        let clipped = ratio.clamp(1.0 - self.cfg.clip, 1.0 + self.cfg.clip).mul(&adv_t)?;
        let policy_loss = unclipped.min(&clipped)?.mean().neg();

        let ret_t = tape.var(Tensor::from_vec(ret.to_vec(), &[n]).map_err(FdgError::Tensor)?);
        let values = critic.forward(&obs)?.reshape(&[n])?;
        let value_loss = values.sub(&ret_t)?.square().mean();

        let entropy_mean = entropy.mean();
        let loss = policy_loss
            .add(&value_loss.mul_scalar(self.cfg.value_coef))?
            .add(&entropy_mean.mul_scalar(-self.cfg.entropy_coef))?;

        let mut grads = tape.backward(&loss)?;
        let mut gs = actor.take_grads(&mut grads);
        gs.extend(critic.take_grads(&mut grads));
        if let Some(ls) = &log_std_var {
            gs.push(grads.take_or_zeros(ls));
        }
        let grad_norm = clip_grad_norm(&mut gs, self.cfg.max_grad_norm);
        self.last_grad_norm.set(Some(grad_norm));
        let loss_v = loss.value().item().map_err(FdgError::Tensor)?;
        let entropy_v = entropy_mean.value().item().map_err(FdgError::Tensor)?;
        self.last_metrics.set(Some((loss_v, entropy_v)));
        Ok((loss_v, gs))
    }

    fn apply(&mut self, grads: &[Tensor]) -> Result<()> {
        let discrete = self.policy.discrete;
        let mut params = self.policy.actor.params_mut();
        params.extend(self.policy.critic.params_mut());
        if !discrete {
            params.push(&mut self.policy.log_std);
        }
        self.opt.step(&mut params, grads).map_err(FdgError::Tensor)
    }
}

impl Learner for PpoLearner {
    fn learn(&mut self, batch: &SampleBatch) -> Result<f32> {
        if batch.is_empty() {
            return Err(FdgError::MissingKernel { op: "Learn(empty batch)".into() });
        }
        let (adv, ret) = self.advantages(batch)?;
        let sentinel = msrl_telemetry::health_enabled();
        let before = if sentinel { self.policy.flatten() } else { Vec::new() };
        let mut last_loss = 0.0;
        for _ in 0..self.cfg.epochs {
            let (loss, grads) = self.loss_and_grads(batch, &adv, &ret)?;
            self.apply(&grads)?;
            last_loss = loss;
        }
        if sentinel {
            crate::sentinel::publish_update(
                self.last_grad_norm.get().unwrap_or(f32::NAN),
                &before,
                &self.policy.flatten(),
            );
        }
        Ok(last_loss)
    }

    fn policy_params(&self) -> Vec<f32> {
        self.policy.flatten()
    }

    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()> {
        self.policy.unflatten(flat)
    }

    fn grads(&mut self, batch: &SampleBatch) -> Result<Vec<f32>> {
        let (adv, ret) = self.advantages(batch)?;
        let (_, grads) = self.loss_and_grads(batch, &adv, &ret)?;
        Ok(grads.iter().flat_map(|g| g.data().iter().copied()).collect())
    }

    fn apply_grads(&mut self, flat: &[f32]) -> Result<()> {
        let mut grads = Vec::new();
        let mut offset = 0;
        {
            let mut shapes: Vec<Vec<usize>> = self
                .policy
                .actor
                .params()
                .iter()
                .chain(self.policy.critic.params().iter())
                .map(|p| p.shape().to_vec())
                .collect();
            if !self.policy.discrete {
                shapes.push(self.policy.log_std.shape().to_vec());
            }
            for shape in shapes {
                let len: usize = shape.iter().product();
                if offset + len > flat.len() {
                    return Err(FdgError::Tensor(msrl_tensor::TensorError::LengthMismatch {
                        expected: offset + len,
                        actual: flat.len(),
                    }));
                }
                grads.push(
                    Tensor::from_vec(flat[offset..offset + len].to_vec(), &shape)
                        .map_err(FdgError::Tensor)?,
                );
                offset += len;
            }
        }
        let sentinel = msrl_telemetry::health_enabled();
        let before = if sentinel { self.policy.flatten() } else { Vec::new() };
        self.apply(&grads)?;
        if sentinel {
            // External-gradient path (DP-C/DP-F): the pre-clip norm was
            // computed worker-side, so report the norm of the flat
            // gradient actually applied.
            crate::sentinel::publish_update(
                crate::sentinel::l2_norm(flat) as f32,
                &before,
                &self.policy.flatten(),
            );
        }
        Ok(())
    }
}

/// Evaluates a policy greedily for one episode; returns the total reward.
/// Shared by tests and examples.
pub fn evaluate<E: msrl_env::Environment>(
    policy: &PpoPolicy,
    env: &mut E,
    max_steps: usize,
) -> Result<f32> {
    let mut obs = env.reset();
    let mut total = 0.0;
    for _ in 0..max_steps {
        let row = obs.reshape(&[1, env.obs_dim()]).map_err(FdgError::Tensor)?;
        let out = policy.actor.infer(&row)?;
        let action = if policy.discrete {
            let am = ops::argmax_rows(&out).map_err(FdgError::Tensor)?;
            msrl_env::Action::Discrete(am.data()[0] as usize)
        } else {
            msrl_env::Action::Continuous(
                out.reshape(&[policy.actor.output_dim()]).map_err(FdgError::Tensor)?,
            )
        };
        let step = env.step(&action);
        total += step.reward;
        obs = step.obs;
        if step.done {
            break;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::collect;
    use msrl_env::cartpole::CartPole;
    use msrl_env::VecEnv;

    #[test]
    fn policy_flatten_roundtrip() {
        let p = PpoPolicy::continuous(4, 2, &[8], 0);
        let flat = p.flatten();
        assert_eq!(flat.len(), p.num_params());
        let mut q = PpoPolicy::continuous(4, 2, &[8], 1);
        assert_ne!(q.flatten(), flat);
        q.unflatten(&flat).unwrap();
        assert_eq!(q.flatten(), flat);
        assert!(q.unflatten(&[1.0]).is_err());
    }

    #[test]
    fn act_shapes_discrete_and_continuous() {
        let mut rng = init::rng(0);
        let obs = Tensor::zeros(&[5, 4]);
        let d = PpoPolicy::discrete(4, 3, &[8], 0);
        let out = d.act(&obs, &mut rng).unwrap();
        assert_eq!(out.actions.shape(), &[5]);
        assert_eq!(out.log_probs.shape(), &[5]);
        assert!(out.actions.data().iter().all(|&a| (0.0..3.0).contains(&a)));
        let c = PpoPolicy::continuous(4, 2, &[8], 0);
        let out = c.act(&obs, &mut rng).unwrap();
        assert_eq!(out.actions.shape(), &[5, 2]);
        assert_eq!(out.values.unwrap().shape(), &[5]);
    }

    #[test]
    fn batched_rollout_forward_is_bit_identical_and_repacks_on_sync() {
        let policy = PpoPolicy::discrete(4, 3, &[32, 32], 5);
        let obs =
            Tensor::from_vec((0..24).map(|i| (i as f32 * 0.21).sin()).collect(), &[6, 4]).unwrap();
        // Same seed → same sampling stream; tiered vs untiered actions,
        // log-probs and values must agree bitwise.
        let run = |tier: bool| {
            msrl_tensor::par::with_tier(tier, || {
                let mut actor = PpoActor::new(policy.clone(), 9);
                let out = actor.act(&obs).unwrap();
                assert_eq!(actor.has_packed_weights(), tier, "pack cache gate");
                out
            })
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.actions.data(), off.actions.data());
        assert_eq!(on.log_probs.data(), off.log_probs.data());
        assert_eq!(on.values.unwrap().data(), off.values.unwrap().data());
        // A weight sync carrying *new* weights invalidates the
        // snapshot; the next act repacks.
        msrl_tensor::par::with_tier(true, || {
            let mut actor = PpoActor::new(policy.clone(), 9);
            actor.act(&obs).unwrap();
            assert!(actor.has_packed_weights());
            let mut flat = actor.policy_params();
            flat[0] += 0.125;
            actor.set_policy_params(&flat).unwrap();
            assert!(!actor.has_packed_weights(), "sync must drop the snapshot");
            actor.act(&obs).unwrap();
            assert!(actor.has_packed_weights(), "next act must repack");
        });
    }

    /// The partial-update gap: a sync that delivers the *identical*
    /// epoch (a re-broadcast) must keep the packed snapshot — no
    /// invalidation, and no `pack_b` panel repacks on the next act.
    #[test]
    fn identical_weight_sync_does_not_repack() {
        msrl_tensor::par::with_tier(true, || {
            let policy = PpoPolicy::discrete(4, 3, &[16, 16], 7);
            let obs = Tensor::from_vec((0..16).map(|i| (i as f32 * 0.3).cos()).collect(), &[4, 4])
                .unwrap();
            let mut actor = PpoActor::new(policy, 11);
            actor.act(&obs).unwrap();
            assert!(actor.has_packed_weights());
            let flat = actor.policy_params();
            let packs_before = msrl_telemetry::counter_total("tensor.pack_b");
            actor.set_policy_params(&flat).unwrap();
            assert!(actor.has_packed_weights(), "identical sync keeps the snapshot");
            actor.act(&obs).unwrap();
            let packs_after = msrl_telemetry::counter_total("tensor.pack_b");
            assert_eq!(packs_before, packs_after, "identical sync must not repack");
            // A genuinely new epoch still invalidates.
            let mut changed = flat.clone();
            changed[1] -= 0.25;
            actor.set_policy_params(&changed).unwrap();
            assert!(!actor.has_packed_weights());
            actor.act(&obs).unwrap();
            assert!(
                msrl_telemetry::counter_total("tensor.pack_b") > packs_after,
                "changed sync must repack"
            );
        });
    }

    #[test]
    fn learn_reduces_loss_on_fixed_batch() {
        let policy = PpoPolicy::discrete(4, 2, &[16], 3);
        let mut learner = PpoLearner::new(policy.clone(), PpoConfig::default());
        let mut actor = PpoActor::new(policy, 4);
        let mut envs = VecEnv::from_fn(4, |i| CartPole::new(i as u64));
        let batch = collect(&mut actor, &mut envs, 32).unwrap();
        let (adv, ret) = learner.advantages(&batch).unwrap();
        let (loss0, _) = learner.loss_and_grads(&batch, &adv, &ret).unwrap();
        for _ in 0..20 {
            let (_, grads) = learner.loss_and_grads(&batch, &adv, &ret).unwrap();
            learner.apply(&grads).unwrap();
        }
        let (loss1, _) = learner.loss_and_grads(&batch, &adv, &ret).unwrap();
        assert!(loss1 < loss0, "loss {loss0} → {loss1}");
    }

    #[test]
    fn grads_match_learn_direction() {
        // DP-C path: grads() then apply_grads() must change the policy.
        let policy = PpoPolicy::discrete(4, 2, &[8], 5);
        let mut learner = PpoLearner::new(policy.clone(), PpoConfig::default());
        let mut actor = PpoActor::new(policy, 6);
        let mut envs = VecEnv::from_fn(2, |i| CartPole::new(10 + i as u64));
        let batch = collect(&mut actor, &mut envs, 16).unwrap();
        let before = learner.policy_params();
        let g = learner.grads(&batch).unwrap();
        assert_eq!(g.len(), learner.policy.actor.num_params() + learner.policy.critic.num_params());
        learner.apply_grads(&g).unwrap();
        assert_ne!(learner.policy_params(), before);
        assert!(learner.apply_grads(&[0.0]).is_err());
    }

    #[test]
    fn learn_rejects_empty_batch() {
        let policy = PpoPolicy::discrete(4, 2, &[8], 0);
        let mut learner = PpoLearner::new(policy, PpoConfig::default());
        assert!(learner.learn(&SampleBatch::default()).is_err());
    }

    /// End-to-end: PPO must actually solve CartPole. This is the
    /// ground-truth test that the whole algorithm stack (tensor ops,
    /// autograd, distributions, GAE, optimizer) is correct.
    #[test]
    fn ppo_solves_cartpole() {
        let policy = PpoPolicy::discrete(4, 2, &[32, 32], 0);
        let cfg = PpoConfig { lr: 3e-3, epochs: 6, ..PpoConfig::default() };
        let mut learner = PpoLearner::new(policy.clone(), cfg);
        let mut actor = PpoActor::new(policy, 8);
        let mut envs = VecEnv::from_fn(8, |i| CartPole::new(100 + i as u64));

        let mut eval_env = CartPole::new(999);
        let before = evaluate(&learner.policy, &mut eval_env, 500).unwrap();

        for _ in 0..40 {
            let batch = collect(&mut actor, &mut envs, 64).unwrap();
            learner.learn(&batch).unwrap();
            actor.set_policy_params(&learner.policy_params()).unwrap();
        }
        let mut total = 0.0;
        for seed in 0..5 {
            let mut env = CartPole::new(2000 + seed);
            total += evaluate(&learner.policy, &mut env, 500).unwrap();
        }
        let after = total / 5.0;
        assert!(
            after > before + 50.0 && after > 150.0,
            "PPO must improve markedly: {before} → {after}"
        );
    }
}
