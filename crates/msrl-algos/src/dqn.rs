//! Deep Q-Networks (Mnih et al. 2015) — the *value-based* class of the
//! paper's §2.1 taxonomy.
//!
//! DQN rounds out the algorithm suite: where PPO/MAPPO/A3C are on-policy
//! and exchange trajectories, DQN is off-policy and exercises the replay
//! buffer's uniform-sampling path (`MSRL.replay_buffer_sample` with a
//! bounded ring buffer). It implements the same component API, so every
//! distribution driver that moves `SampleBatch`es can host it.

use msrl_core::api::{ActOutput, Actor, Learner, SampleBatch};
use msrl_core::{FdgError, Result};
use msrl_tensor::autograd::Tape;
use msrl_tensor::nn::{Activation, Mlp};
use msrl_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use msrl_tensor::{init, ops, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DQN hyper-parameters.
#[derive(Debug, Clone)]
pub struct DqnConfig {
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Initial exploration rate.
    pub epsilon_start: f32,
    /// Final exploration rate.
    pub epsilon_end: f32,
    /// Steps over which ε decays linearly.
    pub epsilon_decay_steps: usize,
    /// Learner updates between target-network refreshes.
    pub target_update_every: usize,
    /// Gradient clip.
    pub max_grad_norm: f32,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            gamma: 0.99,
            lr: 1e-3,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 2_000,
            target_update_every: 100,
            max_grad_norm: 5.0,
        }
    }
}

/// A DQN agent: an online Q-network, a frozen target network, and an
/// ε-greedy behaviour policy. Implements both halves of the component
/// API (it is its own actor and learner, the common DQN structure).
pub struct Dqn {
    /// The online Q-network (`obs → Q(s, ·)`).
    pub q: Mlp,
    target: Mlp,
    cfg: DqnConfig,
    opt: Adam,
    rng: StdRng,
    act_steps: usize,
    updates: usize,
}

impl Dqn {
    /// Creates a DQN over the given observation/action widths.
    pub fn new(
        obs_dim: usize,
        n_actions: usize,
        hidden: &[usize],
        cfg: DqnConfig,
        seed: u64,
    ) -> Self {
        let mut rng = init::rng(seed);
        let mut sizes = vec![obs_dim];
        sizes.extend_from_slice(hidden);
        sizes.push(n_actions);
        let q = Mlp::new(&sizes, Activation::Relu, Activation::Linear, &mut rng);
        let target = q.clone();
        let opt = Adam::new(cfg.lr);
        Dqn { q, target, cfg, opt, rng: StdRng::seed_from_u64(seed + 1), act_steps: 0, updates: 0 }
    }

    /// The current exploration rate (linear decay).
    pub fn epsilon(&self) -> f32 {
        let t = (self.act_steps as f32 / self.cfg.epsilon_decay_steps as f32).min(1.0);
        self.cfg.epsilon_start + t * (self.cfg.epsilon_end - self.cfg.epsilon_start)
    }

    /// Learner updates applied so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Greedy Q-argmax actions (no exploration) — for evaluation.
    ///
    /// # Errors
    ///
    /// Propagates tensor failures.
    pub fn greedy(&self, obs: &Tensor) -> Result<Vec<usize>> {
        let qv = self.q.infer(obs)?;
        let am = ops::argmax_rows(&qv).map_err(FdgError::Tensor)?;
        Ok(am.data().iter().map(|&a| a as usize).collect())
    }
}

impl Actor for Dqn {
    fn act(&mut self, obs: &Tensor) -> Result<ActOutput> {
        let n = obs.shape()[0];
        let n_actions = self.q.output_dim();
        let greedy = self.greedy(obs)?;
        let eps = self.epsilon();
        self.act_steps += n;
        let actions: Vec<f32> = greedy
            .iter()
            .map(|&g| {
                if self.rng.gen_range(0.0..1.0f32) < eps {
                    self.rng.gen_range(0..n_actions) as f32
                } else {
                    g as f32
                }
            })
            .collect();
        Ok(ActOutput {
            actions: Tensor::from_vec(actions, &[n]).map_err(FdgError::Tensor)?,
            // DQN has no behaviour log-prob; zeros keep the batch shape.
            log_probs: Tensor::zeros(&[n]),
            values: None,
        })
    }

    fn policy_params(&self) -> Vec<f32> {
        self.q.flatten_params()
    }

    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()> {
        Ok(self.q.unflatten_params(flat)?)
    }
}

impl Learner for Dqn {
    /// One TD(0) update on a replay sample:
    /// `Q(s,a) ← r + γ·(1−done)·max_a' Q_target(s', a')`.
    fn learn(&mut self, batch: &SampleBatch) -> Result<f32> {
        if batch.is_empty() {
            return Err(FdgError::MissingKernel { op: "DQN learn on empty batch".into() });
        }
        let n = batch.len();
        // Bootstrapped targets from the frozen network (no gradient).
        let next_q = self.target.infer(&batch.next_obs)?;
        let next_max = ops::max_axis(&next_q, 1).map_err(FdgError::Tensor)?;
        let targets: Vec<f32> = (0..n)
            .map(|i| {
                let done = if batch.dones[i] { 0.0 } else { 1.0 };
                batch.rewards.data()[i] + self.cfg.gamma * done * next_max.data()[i]
            })
            .collect();

        let tape = Tape::new();
        let qnet = self.q.bind(&tape);
        let obs = tape.var(batch.obs.clone());
        let qv = qnet.forward(&obs)?;
        let idx: Vec<usize> = batch.actions.data().iter().map(|&a| a as usize).collect();
        let taken = qv.select_per_row(&idx)?;
        let target_t = tape.var(Tensor::from_vec(targets, &[n]).map_err(FdgError::Tensor)?);
        let loss = taken.sub(&target_t)?.square().mean();
        let mut grads = tape.backward(&loss)?;
        let mut gs = qnet.take_grads(&mut grads);
        let grad_norm = clip_grad_norm(&mut gs, self.cfg.max_grad_norm);
        let sentinel = msrl_telemetry::health_enabled();
        let before = if sentinel { self.q.flatten_params() } else { Vec::new() };
        {
            let mut params = self.q.params_mut();
            self.opt.step(&mut params, &gs).map_err(FdgError::Tensor)?;
        }
        if sentinel {
            crate::sentinel::publish_update(grad_norm, &before, &self.q.flatten_params());
        }
        self.updates += 1;
        if self.updates.is_multiple_of(self.cfg.target_update_every) {
            self.target.load_from(&self.q)?;
        }
        loss.value().item().map_err(FdgError::Tensor)
    }

    fn policy_params(&self) -> Vec<f32> {
        self.q.flatten_params()
    }

    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()> {
        Ok(self.q.unflatten_params(flat)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{step_batch, ReplayBuffer};
    use msrl_env::gridworld::GridWorld;
    use msrl_env::{Action, Environment};

    #[test]
    fn epsilon_decays_linearly() {
        let mut dqn = Dqn::new(4, 2, &[8], DqnConfig::default(), 0);
        assert!((dqn.epsilon() - 1.0).abs() < 1e-6);
        let obs = Tensor::zeros(&[1000, 4]);
        dqn.act(&obs).unwrap();
        let mid = dqn.epsilon();
        assert!(mid < 1.0 && mid > 0.05, "mid-decay ε = {mid}");
        dqn.act(&obs).unwrap();
        dqn.act(&obs).unwrap();
        assert!((dqn.epsilon() - 0.05).abs() < 1e-6, "fully decayed");
    }

    #[test]
    fn target_network_refreshes_on_schedule() {
        let cfg = DqnConfig { target_update_every: 2, ..DqnConfig::default() };
        let mut dqn = Dqn::new(2, 2, &[4], cfg, 1);
        let batch = step_batch(
            Tensor::zeros(&[4, 2]),
            Tensor::zeros(&[4]),
            Tensor::ones(&[4]),
            Tensor::zeros(&[4, 2]),
            vec![false; 4],
            Tensor::zeros(&[4]),
            Tensor::zeros(&[4]),
        );
        let before_target = dqn.target.flatten_params();
        dqn.learn(&batch).unwrap();
        assert_eq!(dqn.target.flatten_params(), before_target, "not yet refreshed");
        dqn.learn(&batch).unwrap();
        assert_eq!(
            dqn.target.flatten_params(),
            dqn.q.flatten_params(),
            "refreshed after 2 updates"
        );
    }

    #[test]
    fn learn_reduces_td_error_on_fixed_batch() {
        let mut dqn = Dqn::new(2, 2, &[16], DqnConfig::default(), 2);
        let batch = step_batch(
            Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]).unwrap(),
            Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap(),
            Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap(),
            Tensor::zeros(&[2, 2]),
            vec![true, true],
            Tensor::zeros(&[2]),
            Tensor::zeros(&[2]),
        );
        let first = dqn.learn(&batch).unwrap();
        for _ in 0..50 {
            dqn.learn(&batch).unwrap();
        }
        let last = dqn.learn(&batch).unwrap();
        assert!(last < first * 0.5, "TD loss must shrink: {first} → {last}");
    }

    /// DQN with a replay buffer solves the 3×3 GridWorld (optimal return
    /// is 7: four moves, −1 × 3 + 10).
    #[test]
    fn dqn_solves_gridworld() {
        let mut env = GridWorld::new(3);
        let cfg = DqnConfig {
            epsilon_decay_steps: 1_500,
            target_update_every: 50,
            ..DqnConfig::default()
        };
        let mut dqn = Dqn::new(env.obs_dim(), 4, &[32], cfg, 3);
        let mut replay = ReplayBuffer::new(2_000);
        let mut rng = init::rng(9);
        let mut obs = env.reset();
        for step in 0..3_000 {
            let row = obs.reshape(&[1, env.obs_dim()]).unwrap();
            let out = dqn.act(&row).unwrap();
            let a = out.actions.data()[0] as usize;
            let s = env.step(&Action::Discrete(a));
            replay.insert(&step_batch(
                row,
                out.actions,
                Tensor::from_vec(vec![s.reward], &[1]).unwrap(),
                s.obs.reshape(&[1, env.obs_dim()]).unwrap(),
                vec![s.done],
                Tensor::zeros(&[1]),
                Tensor::zeros(&[1]),
            ));
            obs = if s.done { env.reset() } else { s.obs };
            if step > 64 {
                let batch = replay.sample(32, &mut rng).unwrap();
                dqn.learn(&batch).unwrap();
            }
        }
        // Greedy rollout must reach the goal near-optimally.
        let mut env = GridWorld::new(3);
        let mut obs = env.reset();
        let mut total = 0.0;
        for _ in 0..12 {
            let row = obs.reshape(&[1, env.obs_dim()]).unwrap();
            let a = dqn.greedy(&row).unwrap()[0];
            let s = env.step(&Action::Discrete(a));
            total += s.reward;
            obs = s.obs;
            if s.done {
                break;
            }
        }
        assert!(total >= 5.0, "greedy policy should be near-optimal, got {total}");
    }
}
