//! Experience buffers — the storage behind MSRL's
//! `replay_buffer_insert` / `replay_buffer_sample` interaction API.

use msrl_core::api::SampleBatch;
use msrl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// An on-policy trajectory buffer: actors append step batches, the
/// learner drains the whole trajectory once per episode (the
/// coarse-grained exchange of DP-A) or per step (DP-B).
#[derive(Default)]
pub struct TrajectoryBuffer {
    steps: Vec<SampleBatch>,
}

impl TrajectoryBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        TrajectoryBuffer::default()
    }

    /// Number of buffered step batches.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps are buffered.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total transitions across all buffered steps.
    pub fn transitions(&self) -> usize {
        self.steps.iter().map(SampleBatch::len).sum()
    }

    /// Appends one step's batch (`MSRL.replay_buffer_insert`).
    pub fn insert(&mut self, step: SampleBatch) {
        self.steps.push(step);
    }

    /// Removes and concatenates everything buffered
    /// (`MSRL.replay_buffer_sample` for on-policy algorithms). Rows come
    /// out time-major (step 0's envs, step 1's envs, …) and unsegmented.
    ///
    /// # Errors
    ///
    /// Returns an error if buffered widths disagree.
    pub fn drain(&mut self) -> msrl_core::Result<SampleBatch> {
        let steps = std::mem::take(&mut self.steps);
        SampleBatch::concat(&steps)
    }

    /// Drains into *env-major* layout: all of env 0's steps, then env 1's,
    /// … with `segment_len` set to the step count, which is the layout
    /// PPO's learner-side GAE requires. All buffered steps must hold the
    /// same number of environments.
    ///
    /// # Errors
    ///
    /// Returns an error if buffered widths disagree.
    pub fn drain_env_major(&mut self) -> msrl_core::Result<SampleBatch> {
        let steps = std::mem::take(&mut self.steps);
        let t_len = steps.len();
        if t_len == 0 {
            return Ok(SampleBatch::default());
        }
        let n_envs = steps[0].len();
        let mut per_env: Vec<SampleBatch> = Vec::with_capacity(n_envs * t_len);
        for e in 0..n_envs {
            for step in &steps {
                per_env.push(step.slice(e, e + 1));
            }
        }
        let mut out = SampleBatch::concat(&per_env)?;
        out.segment_len = t_len;
        Ok(out)
    }
}

/// A bounded uniform replay buffer (for off-policy algorithms and the
/// DP-F parameter-server configurations).
pub struct ReplayBuffer {
    capacity: usize,
    rows: Vec<SampleBatch>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer { capacity: capacity.max(1), rows: Vec::new(), next: 0 }
    }

    /// Transitions currently stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts every transition of `batch` individually, evicting the
    /// oldest entries once at capacity (ring semantics).
    pub fn insert(&mut self, batch: &SampleBatch) {
        for i in 0..batch.len() {
            let row = batch.slice(i, i + 1);
            if self.rows.len() < self.capacity {
                self.rows.push(row);
            } else {
                self.rows[self.next] = row;
                self.next = (self.next + 1) % self.capacity;
            }
        }
    }

    /// Samples `n` transitions uniformly with replacement.
    ///
    /// # Errors
    ///
    /// Returns an error when the buffer is empty.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> msrl_core::Result<SampleBatch> {
        if self.rows.is_empty() {
            return Err(msrl_core::FdgError::MissingKernel { op: "ReplaySample(empty)".into() });
        }
        let picks: Vec<SampleBatch> =
            (0..n).map(|_| self.rows[rng.gen_range(0..self.rows.len())].clone()).collect();
        SampleBatch::concat(&picks)
    }
}

/// Builds a single-step [`SampleBatch`] from raw step tensors — the
/// payload actors push through `replay_buffer_insert`.
#[allow(clippy::too_many_arguments)]
pub fn step_batch(
    obs: Tensor,
    actions: Tensor,
    rewards: Tensor,
    next_obs: Tensor,
    dones: Vec<bool>,
    log_probs: Tensor,
    values: Tensor,
) -> SampleBatch {
    SampleBatch { obs, actions, rewards, next_obs, dones, log_probs, values, segment_len: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn batch(n: usize, base: f32) -> SampleBatch {
        SampleBatch {
            obs: Tensor::full(&[n, 2], base),
            actions: Tensor::full(&[n], base),
            rewards: Tensor::full(&[n], base),
            next_obs: Tensor::full(&[n, 2], base),
            dones: vec![false; n],
            log_probs: Tensor::full(&[n], base),
            values: Tensor::full(&[n], base),
            segment_len: 0,
        }
    }

    #[test]
    fn trajectory_insert_drain() {
        let mut buf = TrajectoryBuffer::new();
        buf.insert(batch(4, 1.0));
        buf.insert(batch(4, 2.0));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.transitions(), 8);
        let all = buf.drain().unwrap();
        assert_eq!(all.len(), 8);
        assert!(buf.is_empty());
        assert_eq!(all.rewards.data()[0], 1.0);
        assert_eq!(all.rewards.data()[7], 2.0);
    }

    #[test]
    fn replay_evicts_oldest_at_capacity() {
        let mut buf = ReplayBuffer::new(3);
        buf.insert(&batch(2, 1.0));
        buf.insert(&batch(2, 2.0)); // 4th insert evicts the first 1.0 row
        assert_eq!(buf.len(), 3);
        let mut rng = StdRng::seed_from_u64(0);
        let s = buf.sample(100, &mut rng).unwrap();
        let ones = s.rewards.data().iter().filter(|&&r| r == 1.0).count();
        let twos = s.rewards.data().iter().filter(|&&r| r == 2.0).count();
        assert_eq!(ones + twos, 100);
        assert!(twos > ones, "two 2.0 rows vs one 1.0 row should dominate");
    }

    #[test]
    fn replay_sample_empty_fails() {
        let buf = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(buf.sample(1, &mut rng).is_err());
    }

    #[test]
    fn replay_sampling_is_uniformish() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.insert(&batch(1, i as f32));
        }
        let mut rng = StdRng::seed_from_u64(7);
        let s = buf.sample(5000, &mut rng).unwrap();
        let mut counts = [0usize; 10];
        for &r in s.rewards.data() {
            counts[r as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((300..700).contains(&c), "value {i} drawn {c} times");
        }
    }
}
