//! Discounted returns and generalised advantage estimation (GAE).
//!
//! These are the `discounted_reward` and `gae` functions of the paper's
//! MAPPO listing (Alg. 1 lines 18–19), operating on per-environment
//! trajectories laid out time-major.

/// Discounted returns `G_t = r_t + γ·G_{t+1}`, restarting at terminal
/// steps and bootstrapping the final step from `bootstrap` when the
/// trajectory was truncated mid-episode.
pub fn discounted_returns(rewards: &[f32], dones: &[bool], gamma: f32, bootstrap: f32) -> Vec<f32> {
    let mut out = vec![0.0; rewards.len()];
    let mut acc = bootstrap;
    for t in (0..rewards.len()).rev() {
        if dones[t] {
            acc = 0.0;
        }
        acc = rewards[t] + gamma * acc;
        out[t] = acc;
    }
    out
}

/// Generalised advantage estimation (Schulman et al. 2016).
///
/// `values[t]` is the critic's estimate at state `t`; `last_value`
/// bootstraps the step after the trajectory (0 if the episode ended).
/// Returns `(advantages, returns)` with `returns = advantages + values`
/// (the value-function regression target).
pub fn gae(
    rewards: &[f32],
    values: &[f32],
    dones: &[bool],
    last_value: f32,
    gamma: f32,
    lambda: f32,
) -> (Vec<f32>, Vec<f32>) {
    let n = rewards.len();
    debug_assert_eq!(values.len(), n);
    debug_assert_eq!(dones.len(), n);
    let mut adv = vec![0.0f32; n];
    let mut acc = 0.0f32;
    for t in (0..n).rev() {
        let (next_value, next_nonterminal) = if dones[t] {
            (0.0, 0.0)
        } else if t + 1 < n {
            (values[t + 1], 1.0)
        } else {
            (last_value, 1.0)
        };
        let delta = rewards[t] + gamma * next_value * next_nonterminal - values[t];
        acc = delta + gamma * lambda * next_nonterminal * acc;
        adv[t] = acc;
    }
    let returns = adv.iter().zip(values).map(|(a, v)| a + v).collect();
    (adv, returns)
}

/// Normalises advantages to zero mean and unit standard deviation (the
/// standard PPO stabilisation); no-op for batches smaller than 2.
pub fn normalize(adv: &mut [f32]) {
    if adv.len() < 2 {
        return;
    }
    let n = adv.len() as f32;
    let mean: f32 = adv.iter().sum::<f32>() / n;
    let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
    let std = var.sqrt().max(1e-6);
    for a in adv {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_hand_computed() {
        // r = [1, 1, 1], γ = 0.5, episode ends at t=2.
        let g = discounted_returns(&[1.0, 1.0, 1.0], &[false, false, true], 0.5, 99.0);
        assert_eq!(g, vec![1.75, 1.5, 1.0]);
    }

    #[test]
    fn returns_bootstrap_when_truncated() {
        let g = discounted_returns(&[1.0], &[false], 0.5, 10.0);
        assert_eq!(g, vec![6.0]); // 1 + 0.5·10
    }

    #[test]
    fn returns_reset_at_episode_boundary() {
        // Two one-step episodes back to back.
        let g = discounted_returns(&[2.0, 3.0], &[true, true], 0.9, 0.0);
        assert_eq!(g, vec![2.0, 3.0]);
    }

    #[test]
    fn gae_with_lambda_one_matches_monte_carlo_advantage() {
        // λ = 1 ⇒ advantage = discounted return − value.
        let rewards = [1.0, 2.0, 3.0];
        let values = [0.5, 0.5, 0.5];
        let dones = [false, false, true];
        let (adv, ret) = gae(&rewards, &values, &dones, 0.0, 0.9, 1.0);
        let g = discounted_returns(&rewards, &dones, 0.9, 0.0);
        for i in 0..3 {
            assert!((adv[i] - (g[i] - values[i])).abs() < 1e-5, "t={i}");
            assert!((ret[i] - g[i]).abs() < 1e-5, "t={i}");
        }
    }

    #[test]
    fn gae_with_lambda_zero_is_td_error() {
        let rewards = [1.0, 1.0];
        let values = [0.3, 0.7];
        let dones = [false, false];
        let (adv, _) = gae(&rewards, &values, &dones, 0.5, 0.9, 0.0);
        // δ_0 = 1 + 0.9·0.7 − 0.3; δ_1 = 1 + 0.9·0.5 − 0.7
        assert!((adv[0] - (1.0 + 0.9 * 0.7 - 0.3)).abs() < 1e-6);
        assert!((adv[1] - (1.0 + 0.9 * 0.5 - 0.7)).abs() < 1e-6);
    }

    #[test]
    fn gae_does_not_leak_across_done() {
        // Terminal at t=0: advantage at t=0 ignores t=1 entirely.
        let (adv, _) = gae(&[1.0, 5.0], &[0.0, 0.0], &[true, false], 9.0, 0.9, 0.95);
        assert!((adv[0] - 1.0).abs() < 1e-6, "adv[0]={}", adv[0]);
    }

    #[test]
    fn normalize_zero_mean_unit_std() {
        let mut a = vec![1.0, 2.0, 3.0, 4.0];
        normalize(&mut a);
        let mean: f32 = a.iter().sum::<f32>() / 4.0;
        let var: f32 = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
        // Tiny batches untouched.
        let mut single = vec![5.0];
        normalize(&mut single);
        assert_eq!(single, vec![5.0]);
    }
}
