//! Vectorised experience collection.
//!
//! This is the body of an *actor fragment*: step a set of environments
//! with the current policy for a fixed number of steps, buffering the
//! transitions. The runtime replicates this function across actor
//! fragments under every distribution policy.

use msrl_core::api::{Actor, SampleBatch};
use msrl_core::{FdgError, Result};
use msrl_env::{Action, ActionSpec, VecEnv};
use msrl_tensor::Tensor;

use crate::buffer::{step_batch, TrajectoryBuffer};

/// Decodes an actor's batched action tensor into per-env [`Action`]s.
pub fn decode_actions(actions: &Tensor, spec: ActionSpec) -> Vec<Action> {
    match spec {
        ActionSpec::Discrete { .. } => {
            actions.data().iter().map(|&a| Action::Discrete(a as usize)).collect()
        }
        ActionSpec::Continuous { dim, low, high } => {
            let n = actions.shape()[0];
            (0..n)
                .map(|i| {
                    let row: Vec<f32> = actions.data()[i * dim..(i + 1) * dim]
                        .iter()
                        .map(|v| v.clamp(low, high))
                        .collect();
                    Action::Continuous(Tensor::from_vec(row, &[dim]).expect("fixed width"))
                })
                .collect()
        }
    }
}

/// Collects `steps` vectorised steps from `envs` with `actor`; returns an
/// env-major [`SampleBatch`] (`segment_len == steps`) ready for PPO's
/// learner-side GAE.
///
/// # Errors
///
/// Propagates actor/tensor failures.
pub fn collect(actor: &mut dyn Actor, envs: &mut VecEnv, steps: usize) -> Result<SampleBatch> {
    let mut buf = TrajectoryBuffer::new();
    let mut obs = envs.reset();
    for _ in 0..steps {
        let out = actor.act(&obs)?;
        let actions = decode_actions(&out.actions, envs.action_spec());
        let step = envs.step(&actions);
        let values = out.values.clone().ok_or(FdgError::MissingKernel {
            op: "Actor without value head in PPO rollout".into(),
        })?;
        buf.insert(step_batch(
            obs.clone(),
            out.actions,
            step.rewards.clone(),
            step.obs.clone(),
            step.dones.clone(),
            out.log_probs,
            values,
        ));
        obs = step.obs;
    }
    buf.drain_env_major()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppo::{PpoActor, PpoPolicy};
    use msrl_env::cartpole::CartPole;

    #[test]
    fn collect_shapes_and_segments() {
        let mut actor = PpoActor::new(PpoPolicy::discrete(4, 2, &[8], 0), 1);
        let mut envs = VecEnv::from_fn(3, |i| CartPole::new(i as u64));
        let batch = collect(&mut actor, &mut envs, 10).unwrap();
        assert_eq!(batch.len(), 30);
        assert_eq!(batch.segment_len, 10);
        assert_eq!(batch.obs.shape(), &[30, 4]);
        assert_eq!(batch.actions.shape(), &[30]);
        assert_eq!(batch.values.shape(), &[30]);
    }

    #[test]
    fn env_major_layout_keeps_time_contiguous() {
        // With a deterministic env, env 0's rows must be its own
        // consecutive steps: obs[t+1] of env 0 equals next_obs[t].
        let mut actor = PpoActor::new(PpoPolicy::discrete(4, 2, &[8], 0), 2);
        let mut envs = VecEnv::from_fn(2, |i| CartPole::new(i as u64));
        let batch = collect(&mut actor, &mut envs, 5).unwrap();
        for t in 0..4 {
            if batch.dones[t] {
                continue;
            }
            let next_row = &batch.next_obs.data()[t * 4..(t + 1) * 4];
            let obs_row = &batch.obs.data()[(t + 1) * 4..(t + 2) * 4];
            assert_eq!(next_row, obs_row, "t={t}");
        }
    }

    #[test]
    fn decode_continuous_clamps() {
        let t = Tensor::from_vec(vec![5.0, -5.0], &[1, 2]).unwrap();
        let acts = decode_actions(&t, ActionSpec::Continuous { dim: 2, low: -1.0, high: 1.0 });
        let a = acts[0].as_continuous().unwrap();
        assert_eq!(a.data(), &[1.0, -1.0]);
    }
}
