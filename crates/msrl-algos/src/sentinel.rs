//! Per-update numeric sentinels shared by every learner (DESIGN §3.15).
//!
//! Each optimisation step publishes three gauges the exec drivers fold
//! into the per-iteration health block:
//!
//! * `health.grad_norm` — the pre-clip global gradient L2 norm (the
//!   value [`msrl_tensor::optim::clip_grad_norm`] returns);
//! * `health.weight_norm` — the post-update parameter L2 norm;
//! * `health.update_ratio` — `‖Δweights‖ / ‖weights‖`, the
//!   effective-step-size signal that catches both frozen (≈0) and
//!   diverging (≫1e-2) training.
//!
//! The `health.updates` counter ticks once per publication; the drivers
//! read the gauges only when the counter moved during the iteration, so
//! a policy without a learner (DP-E's env-worker split) simply omits
//! the fields. Algorithm code stays distribution-agnostic: it reports
//! into the process-wide registry exactly like every other layer, and
//! the watchdog gate (`MSRL_HEALTH=0`) skips even that.

/// L2 norm of a flat slice, accumulated in `f64` so the square-sum of a
/// large parameter vector cannot itself overflow `f32`.
#[must_use]
pub fn l2_norm(flat: &[f32]) -> f64 {
    flat.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>().sqrt()
}

/// Publishes the per-update health gauges from one optimisation step:
/// `grad_norm` as returned by the clip, plus weight norm and update
/// ratio computed from the flat parameter vector before and after the
/// step. No-op when the health watchdog is disabled.
pub fn publish_update(grad_norm: f32, before: &[f32], after: &[f32]) {
    if !msrl_telemetry::health_enabled() {
        return;
    }
    let weight_norm = l2_norm(after);
    let delta = before
        .iter()
        .zip(after)
        .map(|(&b, &a)| (f64::from(a) - f64::from(b)).powi(2))
        .sum::<f64>()
        .sqrt();
    // A non-finite gradient norm must reach the gauge as-is — the
    // watchdog's nonfinite detector keys on it — but the gauge store
    // holds raw f64 bits, so NaN round-trips fine.
    msrl_telemetry::gauge_set("health.grad_norm", f64::from(grad_norm));
    msrl_telemetry::gauge_set("health.weight_norm", weight_norm);
    msrl_telemetry::gauge_set("health.update_ratio", delta / weight_norm.max(1e-12));
    msrl_telemetry::static_counter!("health.updates").add(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_norm_matches_reference() {
        assert_eq!(l2_norm(&[]), 0.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert!((l2_norm(&[1.0; 100]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn publish_update_feeds_gauges_and_counter() {
        msrl_telemetry::set_health_enabled(true);
        let before = vec![1.0f32; 4];
        let after = vec![1.1f32; 4];
        let n0 = msrl_telemetry::counter_total("health.updates");
        publish_update(2.5, &before, &after);
        assert!(msrl_telemetry::counter_total("health.updates") > n0);
        let g = |name: &str| {
            msrl_telemetry::gauges_snapshot().into_iter().find(|(k, _)| k == name).unwrap().1
        };
        assert!((g("health.grad_norm") - 2.5).abs() < 1e-9);
        assert!((g("health.weight_norm") - l2_norm(&after)).abs() < 1e-12);
        let ratio = g("health.update_ratio");
        // ‖Δ‖ = 0.1·2 (4 entries of ~0.1), ‖w‖ = 1.1·2.
        assert!((ratio - (0.1f64 * 2.0) / (1.1 * 2.0)).abs() < 1e-3, "ratio {ratio}");
    }
}
