//! Asynchronous Advantage Actor-Critic (Mnih et al. 2016).
//!
//! In the paper's A3C experiments (Fig. 7b, 9b), each actor owns exactly
//! one environment, computes policy gradients *locally* after an n-step
//! rollout, and ships the gradients asynchronously to a single learner,
//! which applies them and returns fresh weights. Per-actor work is
//! therefore independent of the actor count — the flat curves of
//! Figs. 7b/9b.

use msrl_core::api::{Actor, Learner, SampleBatch};
use msrl_core::{FdgError, Result};
use msrl_tensor::autograd::Tape;
use msrl_tensor::dist::categorical_stats;
use msrl_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use msrl_tensor::Tensor;

use crate::gae::discounted_returns;
use crate::ppo::{PpoActor, PpoPolicy};

/// A3C hyper-parameters.
#[derive(Debug, Clone)]
pub struct A3cConfig {
    /// Discount factor.
    pub gamma: f32,
    /// Learning rate of the central Adam optimiser.
    pub lr: f32,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Gradient clip.
    pub max_grad_norm: f32,
}

impl Default for A3cConfig {
    fn default() -> Self {
        A3cConfig { gamma: 0.99, lr: 1e-3, entropy_coef: 0.01, value_coef: 0.5, max_grad_norm: 1.0 }
    }
}

/// An A3C worker: a policy replica that acts *and* computes local
/// gradients over its own rollouts (discrete actions).
pub struct A3cWorker {
    /// The local policy replica.
    pub policy: PpoPolicy,
    cfg: A3cConfig,
    inner: PpoActor,
}

impl A3cWorker {
    /// Creates a worker over a policy replica.
    pub fn new(policy: PpoPolicy, cfg: A3cConfig, seed: u64) -> Self {
        let inner = PpoActor::new(policy.clone(), seed);
        A3cWorker { policy, cfg, inner }
    }

    /// Computes the flattened actor-critic gradient for an n-step rollout
    /// batch (single environment; time-ordered rows).
    ///
    /// # Errors
    ///
    /// Propagates tensor failures.
    pub fn local_grads(&self, batch: &SampleBatch) -> Result<Vec<f32>> {
        let n = batch.len();
        if n == 0 {
            return Err(FdgError::MissingKernel { op: "A3C grads on empty rollout".into() });
        }
        // n-step returns bootstrapped from the critic at the final state.
        let last_value = if batch.dones[n - 1] {
            0.0
        } else {
            let w = batch.next_obs.shape()[1];
            let row = Tensor::from_vec(batch.next_obs.data()[(n - 1) * w..n * w].to_vec(), &[1, w])
                .map_err(FdgError::Tensor)?;
            self.policy.values(&row)?.item().map_err(FdgError::Tensor)?
        };
        let returns =
            discounted_returns(batch.rewards.data(), &batch.dones, self.cfg.gamma, last_value);
        let adv: Vec<f32> = returns.iter().zip(batch.values.data()).map(|(r, v)| r - v).collect();

        let tape = Tape::new();
        let actor = self.policy.actor.bind(&tape);
        let critic = self.policy.critic.bind(&tape);
        let obs = tape.var(batch.obs.clone());
        let logits = actor.forward(&obs)?;
        let idx: Vec<usize> = batch.actions.data().iter().map(|&a| a as usize).collect();
        let (log_prob, entropy) = categorical_stats(&logits, &idx)?;
        let adv_t = tape.var(Tensor::from_vec(adv, &[n]).map_err(FdgError::Tensor)?);
        let pg = log_prob.mul(&adv_t)?.mean().neg();
        let ret_t = tape.var(Tensor::from_vec(returns, &[n]).map_err(FdgError::Tensor)?);
        let v = critic.forward(&obs)?.reshape(&[n])?;
        let value_loss = v.sub(&ret_t)?.square().mean();
        let loss = pg
            .add(&value_loss.mul_scalar(self.cfg.value_coef))?
            .add(&entropy.mean().mul_scalar(-self.cfg.entropy_coef))?;
        let mut grads = tape.backward(&loss)?;
        let mut gs = actor.take_grads(&mut grads);
        gs.extend(critic.take_grads(&mut grads));
        clip_grad_norm(&mut gs, self.cfg.max_grad_norm);
        Ok(gs.iter().flat_map(|g| g.data().iter().copied()).collect())
    }
}

impl Actor for A3cWorker {
    fn act(&mut self, obs: &Tensor) -> Result<msrl_core::api::ActOutput> {
        self.inner.act(obs)
    }

    fn policy_params(&self) -> Vec<f32> {
        self.policy.flatten()
    }

    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()> {
        self.policy.unflatten(flat)?;
        self.inner.set_policy_params(flat)
    }
}

/// The central A3C learner: applies worker gradients with a shared Adam
/// optimiser (the Hogwild-style asynchronous update, serialised here by
/// the runtime's message ordering).
pub struct A3cLearner {
    /// The authoritative policy.
    pub policy: PpoPolicy,
    opt: Adam,
    updates: usize,
}

impl A3cLearner {
    /// Creates the learner.
    pub fn new(policy: PpoPolicy, cfg: &A3cConfig) -> Self {
        A3cLearner { policy, opt: Adam::new(cfg.lr), updates: 0 }
    }

    /// Number of gradient applications so far.
    pub fn updates(&self) -> usize {
        self.updates
    }
}

impl Learner for A3cLearner {
    fn learn(&mut self, batch: &SampleBatch) -> Result<f32> {
        // A3C learners consume gradients, not batches; route through a
        // local worker for single-process configurations.
        let worker = A3cWorker::new(self.policy.clone(), A3cConfig::default(), 0);
        let g = worker.local_grads(batch)?;
        self.apply_grads(&g)?;
        Ok(0.0)
    }

    fn policy_params(&self) -> Vec<f32> {
        self.policy.flatten()
    }

    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()> {
        self.policy.unflatten(flat)
    }

    fn apply_grads(&mut self, flat: &[f32]) -> Result<()> {
        let mut grads = Vec::new();
        let mut offset = 0;
        let shapes: Vec<Vec<usize>> = self
            .policy
            .actor
            .params()
            .iter()
            .chain(self.policy.critic.params().iter())
            .map(|p| p.shape().to_vec())
            .collect();
        for shape in shapes {
            let len: usize = shape.iter().product();
            if offset + len > flat.len() {
                return Err(FdgError::Tensor(msrl_tensor::TensorError::LengthMismatch {
                    expected: offset + len,
                    actual: flat.len(),
                }));
            }
            grads.push(
                Tensor::from_vec(flat[offset..offset + len].to_vec(), &shape)
                    .map_err(FdgError::Tensor)?,
            );
            offset += len;
        }
        let sentinel = msrl_telemetry::health_enabled();
        let before = if sentinel { self.policy.flatten() } else { Vec::new() };
        {
            let mut params = self.policy.actor.params_mut();
            params.extend(self.policy.critic.params_mut());
            self.opt.step(&mut params, &grads).map_err(FdgError::Tensor)?;
        }
        self.updates += 1;
        if sentinel {
            crate::sentinel::publish_update(
                crate::sentinel::l2_norm(flat) as f32,
                &before,
                &self.policy.flatten(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::collect;
    use msrl_env::cartpole::CartPole;
    use msrl_env::VecEnv;

    #[test]
    fn local_grads_have_full_length() {
        let policy = PpoPolicy::discrete(4, 2, &[8], 0);
        let worker = A3cWorker::new(policy.clone(), A3cConfig::default(), 1);
        let mut actor = PpoActor::new(policy.clone(), 2);
        let mut envs = VecEnv::from_fn(1, |_| CartPole::new(0));
        let batch = collect(&mut actor, &mut envs, 20).unwrap();
        let g = worker.local_grads(&batch).unwrap();
        assert_eq!(g.len(), policy.actor.num_params() + policy.critic.num_params());
        assert!(g.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn learner_applies_gradients() {
        let policy = PpoPolicy::discrete(4, 2, &[8], 3);
        let cfg = A3cConfig::default();
        let worker = A3cWorker::new(policy.clone(), cfg.clone(), 4);
        let mut learner = A3cLearner::new(policy.clone(), &cfg);
        let mut actor = PpoActor::new(policy, 5);
        let mut envs = VecEnv::from_fn(1, |_| CartPole::new(1));
        let batch = collect(&mut actor, &mut envs, 10).unwrap();
        let g = worker.local_grads(&batch).unwrap();
        let before = learner.policy_params();
        learner.apply_grads(&g).unwrap();
        assert_ne!(learner.policy_params(), before);
        assert_eq!(learner.updates(), 1);
        assert!(learner.apply_grads(&[1.0]).is_err());
    }

    /// A3C improves CartPole with a few async-style workers applying
    /// gradients to a central learner.
    #[test]
    fn a3c_improves_cartpole() {
        let cfg = A3cConfig { lr: 2e-3, ..A3cConfig::default() };
        let policy = PpoPolicy::discrete(4, 2, &[32], 11);
        let mut learner = A3cLearner::new(policy.clone(), &cfg);
        let mut workers: Vec<(A3cWorker, VecEnv)> = (0..3)
            .map(|i| {
                (
                    A3cWorker::new(policy.clone(), cfg.clone(), 20 + i),
                    VecEnv::from_fn(1, move |_| CartPole::new(40 + i)),
                )
            })
            .collect();
        let mut eval = CartPole::new(777);
        let before = crate::ppo::evaluate(&learner.policy, &mut eval, 500).unwrap();
        for _round in 0..60 {
            for (worker, envs) in &mut workers {
                let batch = collect(worker, envs, 32).unwrap();
                let g = worker.local_grads(&batch).unwrap();
                learner.apply_grads(&g).unwrap();
                worker.set_policy_params(&learner.policy_params()).unwrap();
            }
        }
        let mut total = 0.0;
        for seed in 0..5 {
            let mut env = CartPole::new(3000 + seed);
            total += crate::ppo::evaluate(&learner.policy, &mut env, 500).unwrap();
        }
        let after = total / 5.0;
        assert!(after > before + 30.0, "A3C must improve: {before} → {after}");
    }
}
