//! # msrl-algos
//!
//! The RL algorithms of the paper's evaluation (§7.1) — PPO, MAPPO and
//! A3C — implemented against the MSRL component API (`msrl_core::api`).
//!
//! Algorithm code here knows nothing about devices, workers or
//! distribution policies: actors consume observation tensors and emit
//! actions; learners consume [`msrl_core::api::SampleBatch`]es and update
//! weights. The runtime (`msrl-runtime`) replicates, places and
//! synchronises these components according to the deployment
//! configuration — which is the paper's core claim: the same algorithm
//! implementation runs under every distribution policy.
//!
//! * [`gae`] — generalised advantage estimation and discounted returns;
//! * [`buffer`] — on-policy trajectory buffers and a uniform replay
//!   buffer (the interaction API's `replay_buffer_insert`/`_sample`);
//! * [`ppo`] — Proximal Policy Optimization (clipped surrogate, GAE,
//!   entropy bonus) with discrete and continuous policies;
//! * [`mappo`] — multi-agent PPO with parameter sharing across agents;
//! * [`a3c`] — asynchronous advantage actor-critic: actors compute
//!   gradients locally and ship them to a central learner;
//! * [`dqn`] — Deep Q-Networks: the value-based class of §2.1,
//!   exercising the replay buffer's off-policy sampling path;
//! * [`rollout`] — vectorised experience collection shared by the
//!   runtime's actor fragments.

#![warn(missing_docs)]

pub mod a3c;
pub mod buffer;
pub mod dqn;
pub mod gae;
pub mod mappo;
pub mod ppo;
pub mod rollout;
pub mod sentinel;

pub use buffer::{ReplayBuffer, TrajectoryBuffer};
pub use ppo::{PpoConfig, PpoLearner, PpoPolicy};
