//! Integration tests for the continuous-control path: PPO with a
//! diagonal-Gaussian policy must genuinely learn on the locomotion
//! environments — this exercises the Gaussian log-prob/entropy autograd
//! path end to end, which CartPole (discrete) cannot.

use msrl_algos::ppo::{PpoActor, PpoConfig, PpoLearner, PpoPolicy};
use msrl_algos::rollout::collect;
use msrl_core::api::{Actor, Learner};
use msrl_env::halfcheetah::HalfCheetah;
use msrl_env::pendulum::Pendulum;
use msrl_env::{Environment, VecEnv};

fn train_continuous<E, F>(make: F, obs: usize, act: usize, iters: usize, seed: u64) -> (f32, f32)
where
    E: Environment + 'static,
    F: Fn(usize) -> E,
{
    let policy = PpoPolicy::continuous(obs, act, &[64, 64], seed);
    let cfg = PpoConfig { lr: 1e-3, epochs: 6, entropy_coef: 0.003, ..PpoConfig::default() };
    let mut learner = PpoLearner::new(policy.clone(), cfg);
    let mut actor = PpoActor::new(policy, seed + 1);
    let mut envs = VecEnv::new((0..8).map(|i| Box::new(make(i)) as Box<dyn Environment>).collect());
    let mut early = 0.0;
    let mut late = 0.0;
    for it in 0..iters {
        let batch = collect(&mut actor, &mut envs, 96).unwrap();
        let mean_step_reward: f32 = batch.rewards.data().iter().sum::<f32>() / batch.len() as f32;
        learner.learn(&batch).unwrap();
        actor.set_policy_params(&learner.policy_params()).unwrap();
        if it < 5 {
            early += mean_step_reward / 5.0;
        }
        if it >= iters - 5 {
            late += mean_step_reward / 5.0;
        }
    }
    (early, late)
}

/// On HalfCheetah, the forward-velocity reward must rise: the policy
/// learns to oscillate the joints for thrust.
#[test]
#[cfg_attr(debug_assertions, ignore = "compute-heavy; run with --release")]
fn ppo_gaussian_improves_halfcheetah() {
    let (early, late) =
        train_continuous(|i| HalfCheetah::new(100 + i as u64).with_horizon(96), 17, 6, 30, 3);
    assert!(late > early + 0.05, "locomotion reward must rise: {early:.3} → {late:.3}");
}

/// On Pendulum, the (negative) cost must shrink towards zero: the policy
/// learns to swing up and stabilise.
#[test]
#[cfg_attr(debug_assertions, ignore = "compute-heavy; run with --release")]
fn ppo_gaussian_improves_pendulum() {
    let (early, late) = train_continuous(|i| Pendulum::new(200 + i as u64), 3, 1, 40, 5);
    assert!(late > early + 0.3, "pendulum cost must shrink: {early:.3} → {late:.3}");
}

/// The learned HalfCheetah policy must achieve positive forward velocity
/// when run greedily — a behavioural check, not just a reward trend.
#[test]
#[cfg_attr(debug_assertions, ignore = "compute-heavy; run with --release")]
fn learned_gait_moves_forward() {
    let policy = PpoPolicy::continuous(17, 6, &[64, 64], 11);
    let cfg = PpoConfig { lr: 1e-3, epochs: 6, entropy_coef: 0.003, ..PpoConfig::default() };
    let mut learner = PpoLearner::new(policy.clone(), cfg);
    let mut actor = PpoActor::new(policy, 12);
    let mut envs = VecEnv::new(
        (0..8)
            .map(|i| {
                Box::new(HalfCheetah::new(300 + i as u64).with_horizon(96)) as Box<dyn Environment>
            })
            .collect(),
    );
    for _ in 0..35 {
        let batch = collect(&mut actor, &mut envs, 96).unwrap();
        learner.learn(&batch).unwrap();
        actor.set_policy_params(&learner.policy_params()).unwrap();
    }
    // Greedy rollout: use the Gaussian mean.
    let mut env = HalfCheetah::new(999).with_horizon(200);
    let mut obs = env.reset();
    for _ in 0..200 {
        let row = obs.reshape(&[1, 17]).unwrap();
        let mean = learner.policy.actor.infer(&row).unwrap();
        let a = msrl_env::Action::Continuous(mean.reshape(&[6]).unwrap());
        let s = env.step(&a);
        obs = s.obs;
    }
    assert!(
        env.forward_velocity() > 0.02,
        "greedy gait should move forward, vx = {}",
        env.forward_velocity()
    );
}
