//! Tiered vs. naive PPO training must be **bit-identical**: the packed
//! register-tiled matmul microkernels, SIMD row kernels, and gather-based
//! transpose-free products all preserve the per-output-element
//! k-ascending accumulation order of the naive loops, so whole learn
//! steps — loss, gradients, Adam updates — produce the same weights bit
//! for bit.
//!
//! This is the end-to-end guarantee behind defaulting `MSRL_TIER` on:
//! flipping it can never change training results, only speed.

use msrl_algos::ppo::{PpoActor, PpoConfig, PpoLearner, PpoPolicy};
use msrl_algos::rollout::collect;
use msrl_core::api::{Learner, SampleBatch};
use msrl_env::cartpole::CartPole;
use msrl_env::VecEnv;
use msrl_tensor::{par, Backend};

/// Trains a fresh learner on `batch` for a few epochs and returns the
/// final weights as raw bits.
fn train_bits(policy: &PpoPolicy, batch: &SampleBatch, tier: bool) -> Vec<u32> {
    par::with_tier(tier, || {
        let mut learner = PpoLearner::new(policy.clone(), PpoConfig::default());
        for _ in 0..3 {
            learner.learn(batch).unwrap();
        }
        learner.policy_params().iter().map(|v| v.to_bits()).collect()
    })
}

#[test]
fn ppo_weights_bit_identical_with_and_without_tier() {
    let policy = PpoPolicy::discrete(4, 2, &[16, 16], 3);
    let mut actor = PpoActor::new(policy.clone(), 4);
    let mut envs = VecEnv::from_fn(4, |i| CartPole::new(i as u64));
    let batch = collect(&mut actor, &mut envs, 32).unwrap();

    for backend in [Backend::Scalar, Backend::Threaded] {
        par::with_backend(backend, || {
            let tiered = train_bits(&policy, &batch, true);
            let plain = train_bits(&policy, &batch, false);
            assert_eq!(tiered.len(), plain.len());
            assert_eq!(tiered, plain, "kernel tier changed PPO weights under {backend:?}");
        });
    }
}
