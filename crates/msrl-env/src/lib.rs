//! # msrl-env
//!
//! Reinforcement-learning environments for the msrl-rs reproduction of the
//! MSRL paper (USENIX ATC 2023).
//!
//! The paper's evaluation (§7.1) uses MuJoCo continuous-control games and
//! the Multi-Agent Particle Environment (MPE). Neither is available as a
//! Rust library, so this crate implements from-scratch substitutes with the
//! same observation/action interfaces and tunable per-step CPU cost:
//!
//! * [`cartpole::CartPole`] / [`pendulum::Pendulum`] — classic control
//!   tasks for fast end-to-end training tests;
//! * [`halfcheetah::HalfCheetah`] — a planar six-joint locomotion
//!   simulator standing in for MuJoCo HalfCheetah (17-dim observations,
//!   6-dim continuous torques, forward-velocity reward);
//! * [`mpe`] — the Multi-Agent Particle Environment: 2-D point-mass
//!   physics with the `simple_spread` and `simple_tag` scenarios, including
//!   the global-observation variant of §7.4 whose observation volume grows
//!   as *O(n³)* in the number of agents;
//! * [`batched`] — pure-tensor, batched environment implementations: the
//!   "GPU implementation of the environment" required by distribution
//!   policy DP-D (GPU-only training, Fig. 10).
//!
//! Environment *cost hints* ([`Environment::step_cost`]) report how many
//! virtual CPU-seconds one step costs; the discrete-event simulator in
//! `msrl-sim` charges this when replaying the paper's cluster experiments.

#![warn(missing_docs)]

pub mod batched;
pub mod cartpole;
pub mod gridworld;
pub mod halfcheetah;
pub mod mpe;
pub mod pendulum;
pub mod spec;
pub mod vec_env;

pub use spec::{Action, ActionSpec, MultiStep, Step};
pub use vec_env::VecEnv;

use msrl_tensor::Tensor;

/// A single-agent environment.
///
/// Mirrors the Gym-style interface the paper's algorithm code assumes:
/// `reset` yields an observation, `step` consumes an action and yields the
/// next observation, a reward, and a terminal flag.
pub trait Environment: Send {
    /// Dimensionality of the flat observation vector.
    fn obs_dim(&self) -> usize;

    /// The action specification (discrete arity or continuous bounds).
    fn action_spec(&self) -> ActionSpec;

    /// Resets to an initial state and returns the first observation
    /// (`[obs_dim]`).
    fn reset(&mut self) -> Tensor;

    /// Advances one step.
    fn step(&mut self, action: &Action) -> Step;

    /// Virtual CPU-seconds a single step costs on one core — the cost
    /// model used by the discrete-event simulator. Defaults to a cheap
    /// classic-control step.
    fn step_cost(&self) -> f64 {
        2e-6
    }

    /// Maximum episode length before truncation.
    fn horizon(&self) -> usize {
        1000
    }
}

/// A cooperative/competitive multi-agent environment (for MARL).
pub trait MultiAgentEnvironment: Send {
    /// Number of agents.
    fn n_agents(&self) -> usize;

    /// Per-agent observation dimensionality.
    fn obs_dim(&self) -> usize;

    /// Per-agent action specification (homogeneous agents).
    fn action_spec(&self) -> ActionSpec;

    /// Resets and returns one observation per agent.
    fn reset(&mut self) -> Vec<Tensor>;

    /// Advances one step given one action per agent.
    fn step(&mut self, actions: &[Action]) -> MultiStep;

    /// Virtual CPU-seconds per multi-agent step (see
    /// [`Environment::step_cost`]).
    fn step_cost(&self) -> f64 {
        2e-6 * self.n_agents() as f64
    }

    /// Maximum episode length before truncation.
    fn horizon(&self) -> usize {
        25
    }
}
