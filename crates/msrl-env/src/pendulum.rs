//! The inverted-pendulum swing-up task with continuous torque actions
//! (Gym `Pendulum-v1` dynamics).
//!
//! The smallest continuous-control environment in the crate; used to test
//! the diagonal-Gaussian policy path end to end.

use msrl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Action, ActionSpec, Step};
use crate::Environment;

const MAX_SPEED: f32 = 8.0;
const MAX_TORQUE: f32 = 2.0;
const DT: f32 = 0.05;
const G: f32 = 10.0;
const M: f32 = 1.0;
const L: f32 = 1.0;

/// Swing a pendulum upright and keep it there. Observation is
/// `[cos θ, sin θ, θ̇]`; the action is a single torque in `[-2, 2]`;
/// reward penalises angle, speed and torque.
#[derive(Debug, Clone)]
pub struct Pendulum {
    theta: f32,
    theta_dot: f32,
    steps: usize,
    horizon: usize,
    rng: StdRng,
}

impl Pendulum {
    /// Creates a Pendulum with the given seed and a 200-step horizon.
    pub fn new(seed: u64) -> Self {
        Pendulum {
            theta: 0.0,
            theta_dot: 0.0,
            steps: 0,
            horizon: 200,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn obs(&self) -> Tensor {
        Tensor::from_vec(vec![self.theta.cos(), self.theta.sin(), self.theta_dot], &[3])
            .expect("fixed length")
    }
}

fn angle_normalize(x: f32) -> f32 {
    let two_pi = 2.0 * std::f32::consts::PI;
    ((x + std::f32::consts::PI).rem_euclid(two_pi)) - std::f32::consts::PI
}

impl Environment for Pendulum {
    fn obs_dim(&self) -> usize {
        3
    }

    fn action_spec(&self) -> ActionSpec {
        ActionSpec::Continuous { dim: 1, low: -MAX_TORQUE, high: MAX_TORQUE }
    }

    fn reset(&mut self) -> Tensor {
        self.theta = self.rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI);
        self.theta_dot = self.rng.gen_range(-1.0..1.0);
        self.steps = 0;
        self.obs()
    }

    fn step(&mut self, action: &Action) -> Step {
        let torque = action
            .as_continuous()
            .and_then(|t| t.data().first().copied())
            .unwrap_or(0.0)
            .clamp(-MAX_TORQUE, MAX_TORQUE);
        let th = angle_normalize(self.theta);
        let cost = th * th + 0.1 * self.theta_dot * self.theta_dot + 0.001 * torque * torque;
        self.theta_dot += (3.0 * G / (2.0 * L) * th.sin() + 3.0 / (M * L * L) * torque) * DT;
        self.theta_dot = self.theta_dot.clamp(-MAX_SPEED, MAX_SPEED);
        self.theta += self.theta_dot * DT;
        self.steps += 1;
        Step { obs: self.obs(), reward: -cost, done: self.steps >= self.horizon }
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_is_on_unit_circle() {
        let mut env = Pendulum::new(0);
        let obs = env.reset();
        let (c, s) = (obs.data()[0], obs.data()[1]);
        assert!((c * c + s * s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn reward_is_nonpositive() {
        let mut env = Pendulum::new(1);
        env.reset();
        for _ in 0..50 {
            let s = env.step(&Action::Continuous(Tensor::from_vec(vec![1.0], &[1]).unwrap()));
            assert!(s.reward <= 0.0);
        }
    }

    #[test]
    fn upright_at_rest_is_near_zero_cost() {
        let mut env = Pendulum::new(2);
        env.reset();
        env.theta = 0.0;
        env.theta_dot = 0.0;
        let s = env.step(&Action::Continuous(Tensor::zeros(&[1])));
        assert!(s.reward > -0.01, "upright cost should be ~0, got {}", s.reward);
    }

    #[test]
    fn torque_is_clamped() {
        let mut a = Pendulum::new(3);
        let mut b = Pendulum::new(3);
        a.reset();
        b.reset();
        let big = Action::Continuous(Tensor::from_vec(vec![100.0], &[1]).unwrap());
        let max = Action::Continuous(Tensor::from_vec(vec![MAX_TORQUE], &[1]).unwrap());
        let sa = a.step(&big);
        let sb = b.step(&max);
        assert_eq!(sa.obs.data(), sb.obs.data());
    }

    #[test]
    fn angle_normalize_wraps() {
        // 3π is the same angle as ±π.
        assert!(
            (angle_normalize(3.0 * std::f32::consts::PI).abs() - std::f32::consts::PI).abs() < 1e-5
        );
        assert!((angle_normalize(0.5) - 0.5).abs() < 1e-6);
        assert!((angle_normalize(0.5 + 2.0 * std::f32::consts::PI) - 0.5).abs() < 1e-5);
    }
}
