//! A planar six-joint locomotion simulator standing in for MuJoCo
//! HalfCheetah.
//!
//! MuJoCo is not available in Rust, so per the reproduction's substitution
//! rule this environment keeps HalfCheetah's *interface* — 17-dimensional
//! observations, 6 continuous torque actions in `[-1, 1]`, reward =
//! forward velocity minus a control cost — over simplified dynamics:
//!
//! * each joint is a damped, torque-driven oscillator;
//! * forward thrust arises from *gait coupling* with a ratchet: a joint
//!   contributes thrust only during its power stroke —
//!   `relu(vel · cos(pos + phase))` — like a paddle that pushes the ground
//!   on the downstroke and glides back. Constant torque saturates the
//!   joint (zero velocity ⇒ zero thrust), so the agent must learn
//!   sustained, coordinated oscillation;
//! * the body bobs (z) and pitches passively in response to thrust
//!   asymmetry.
//!
//! The per-step CPU cost is tunable ([`HalfCheetah::with_step_cost`]) so
//! the cluster simulator can model MuJoCo-class "expensive environments"
//! (the paper measures up to 98% of PPO time in environment execution).

use msrl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Action, ActionSpec, Step};
use crate::Environment;

/// Number of actuated joints.
pub const N_JOINTS: usize = 6;
/// Observation dimensionality (matches MuJoCo HalfCheetah-v3).
pub const OBS_DIM: usize = 17;

const DT: f32 = 0.05;
const JOINT_GAIN: f32 = 6.0;
const JOINT_DAMPING: f32 = 1.5;
const JOINT_STIFFNESS: f32 = 2.0;
const BODY_FRICTION: f32 = 0.8;
const THRUST_GAIN: f32 = 0.9;
const CTRL_COST: f32 = 0.05;

/// The planar locomotion environment. See the module docs for dynamics.
#[derive(Debug, Clone)]
pub struct HalfCheetah {
    joint_pos: [f32; N_JOINTS],
    joint_vel: [f32; N_JOINTS],
    /// Per-joint gait phase offsets (fixed per instance).
    phase: [f32; N_JOINTS],
    /// Per-joint thrust weights (alternating sign models front/back legs).
    thrust_w: [f32; N_JOINTS],
    vx: f32,
    z: f32,
    vz: f32,
    pitch: f32,
    pitch_vel: f32,
    steps: usize,
    horizon: usize,
    step_cost: f64,
    rng: StdRng,
}

impl HalfCheetah {
    /// Creates an instance with the given seed, a 1000-step horizon (the
    /// episode length used throughout the paper's PPO experiments) and a
    /// 100 µs virtual step cost.
    pub fn new(seed: u64) -> Self {
        let mut phase = [0.0; N_JOINTS];
        let mut thrust_w = [0.0; N_JOINTS];
        for i in 0..N_JOINTS {
            phase[i] = i as f32 * std::f32::consts::PI / 3.0;
            thrust_w[i] = if i % 2 == 0 { 1.0 } else { 0.6 };
        }
        HalfCheetah {
            joint_pos: [0.0; N_JOINTS],
            joint_vel: [0.0; N_JOINTS],
            phase,
            thrust_w,
            vx: 0.0,
            z: 0.0,
            vz: 0.0,
            pitch: 0.0,
            pitch_vel: 0.0,
            steps: 0,
            horizon: 1000,
            step_cost: 1e-4,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the per-step virtual CPU cost charged by the simulator.
    pub fn with_step_cost(mut self, seconds: f64) -> Self {
        self.step_cost = seconds;
        self
    }

    /// Overrides the episode horizon.
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self
    }

    /// Current forward velocity (exposed for tests and diagnostics).
    pub fn forward_velocity(&self) -> f32 {
        self.vx
    }

    fn obs(&self) -> Tensor {
        let mut v = Vec::with_capacity(OBS_DIM);
        v.push(self.z);
        v.push(self.pitch);
        v.extend_from_slice(&self.joint_pos);
        v.push(self.vx);
        v.push(self.vz);
        v.push(self.pitch_vel);
        v.extend_from_slice(&self.joint_vel);
        Tensor::from_vec(v, &[OBS_DIM]).expect("fixed length")
    }
}

impl Environment for HalfCheetah {
    fn obs_dim(&self) -> usize {
        OBS_DIM
    }

    fn action_spec(&self) -> ActionSpec {
        ActionSpec::Continuous { dim: N_JOINTS, low: -1.0, high: 1.0 }
    }

    fn reset(&mut self) -> Tensor {
        for i in 0..N_JOINTS {
            self.joint_pos[i] = self.rng.gen_range(-0.1..0.1);
            self.joint_vel[i] = self.rng.gen_range(-0.1..0.1);
        }
        self.vx = 0.0;
        self.z = 0.0;
        self.vz = 0.0;
        self.pitch = 0.0;
        self.pitch_vel = 0.0;
        self.steps = 0;
        self.obs()
    }

    fn step(&mut self, action: &Action) -> Step {
        let mut torque = [0.0f32; N_JOINTS];
        if let Some(t) = action.as_continuous() {
            for (i, slot) in torque.iter_mut().enumerate() {
                *slot = t.data().get(i).copied().unwrap_or(0.0).clamp(-1.0, 1.0);
            }
        }
        // Joint dynamics and gait-coupled thrust.
        let mut thrust = 0.0;
        let mut asym = 0.0;
        #[allow(clippy::needless_range_loop)] // indexes four arrays in lockstep
        for i in 0..N_JOINTS {
            let acc = JOINT_GAIN * torque[i]
                - JOINT_DAMPING * self.joint_vel[i]
                - JOINT_STIFFNESS * self.joint_pos[i];
            self.joint_vel[i] += acc * DT;
            self.joint_pos[i] += self.joint_vel[i] * DT;
            // Ratchet coupling: a joint only produces thrust during its
            // power stroke (vel aligned with the phase-shifted angle).
            let stroke = self.joint_vel[i] * (self.joint_pos[i] + self.phase[i]).cos();
            let contribution = self.thrust_w[i] * stroke.max(0.0);
            thrust += contribution;
            asym += if i < N_JOINTS / 2 { contribution } else { -contribution };
        }
        self.vx += (THRUST_GAIN * thrust - BODY_FRICTION * self.vx) * DT;
        // Passive bobbing and pitching.
        self.vz += (-4.0 * self.z - 1.0 * self.vz + 0.05 * thrust.abs()) * DT;
        self.z += self.vz * DT;
        self.pitch_vel += (-3.0 * self.pitch - 0.8 * self.pitch_vel + 0.1 * asym) * DT;
        self.pitch += self.pitch_vel * DT;
        self.steps += 1;
        let ctrl_cost: f32 = torque.iter().map(|t| t * t).sum::<f32>() * CTRL_COST;
        Step { obs: self.obs(), reward: self.vx - ctrl_cost, done: self.steps >= self.horizon }
    }

    fn step_cost(&self) -> f64 {
        self.step_cost
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torques(v: [f32; N_JOINTS]) -> Action {
        Action::Continuous(Tensor::from_vec(v.to_vec(), &[N_JOINTS]).unwrap())
    }

    #[test]
    fn obs_has_mujoco_shape() {
        let mut env = HalfCheetah::new(0);
        assert_eq!(env.reset().shape(), &[OBS_DIM]);
        assert_eq!(env.obs_dim(), 17);
        assert_eq!(env.action_spec().policy_width(), 6);
    }

    #[test]
    fn zero_torque_decays_to_rest() {
        let mut env = HalfCheetah::new(1);
        env.reset();
        for _ in 0..400 {
            env.step(&torques([0.0; N_JOINTS]));
        }
        assert!(env.forward_velocity().abs() < 0.05, "vx = {}", env.forward_velocity());
        assert!(env.joint_vel.iter().all(|v| v.abs() < 0.05));
    }

    #[test]
    fn coordinated_oscillation_beats_random() {
        // A crude gait: drive each joint sinusoidally near the joint's
        // natural frequency (ω = √stiffness ≈ 1.41 rad/s, DT = 0.05).
        let gait_reward = {
            let mut env = HalfCheetah::new(2);
            env.reset();
            let mut total = 0.0;
            for t in 0..500 {
                let mut a = [0.0f32; N_JOINTS];
                for (i, slot) in a.iter_mut().enumerate() {
                    *slot = (1.41 * DT * t as f32 - i as f32 * std::f32::consts::PI / 3.0).sin();
                }
                total += env.step(&torques(a)).reward;
            }
            total
        };
        let random_reward = {
            let mut env = HalfCheetah::new(2);
            env.reset();
            let mut rng = StdRng::seed_from_u64(99);
            let mut total = 0.0;
            for _ in 0..500 {
                let mut a = [0.0f32; N_JOINTS];
                for slot in &mut a {
                    *slot = rng.gen_range(-1.0..1.0);
                }
                total += env.step(&torques(a)).reward;
            }
            total
        };
        assert!(
            gait_reward > random_reward,
            "gait {gait_reward} should beat random {random_reward}"
        );
    }

    #[test]
    fn control_cost_penalises_torque() {
        let mut a = HalfCheetah::new(3);
        let mut b = HalfCheetah::new(3);
        a.reset();
        b.reset();
        let ra = a.step(&torques([0.0; N_JOINTS])).reward;
        let rb = b.step(&torques([1.0; N_JOINTS])).reward;
        // One step from rest: velocity gain is tiny, control cost dominates.
        assert!(ra > rb);
    }

    #[test]
    fn states_stay_finite_under_extreme_input() {
        let mut env = HalfCheetah::new(4);
        env.reset();
        for _ in 0..1000 {
            let s = env.step(&torques([1.0, -1.0, 1.0, -1.0, 1.0, -1.0]));
            assert!(s.obs.all_finite());
            assert!(s.reward.is_finite());
        }
    }

    #[test]
    fn horizon_and_cost_are_configurable() {
        let env = HalfCheetah::new(5).with_horizon(10).with_step_cost(2e-3);
        assert_eq!(env.horizon(), 10);
        assert_eq!(env.step_cost(), 2e-3);
    }
}
