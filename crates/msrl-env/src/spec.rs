//! Action/observation specifications and step results.

use msrl_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// What kind of actions an environment accepts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActionSpec {
    /// One of `n` discrete choices.
    Discrete {
        /// Number of choices.
        n: usize,
    },
    /// A `dim`-dimensional continuous vector, clamped per-dimension to
    /// `[low, high]`.
    Continuous {
        /// Action dimensionality.
        dim: usize,
        /// Lower bound applied to every dimension.
        low: f32,
        /// Upper bound applied to every dimension.
        high: f32,
    },
}

impl ActionSpec {
    /// The width of the policy head needed for this spec: `n` logits for
    /// discrete actions, `dim` means for continuous ones.
    pub fn policy_width(&self) -> usize {
        match self {
            ActionSpec::Discrete { n } => *n,
            ActionSpec::Continuous { dim, .. } => *dim,
        }
    }

    /// Whether the spec is discrete.
    pub fn is_discrete(&self) -> bool {
        matches!(self, ActionSpec::Discrete { .. })
    }
}

/// A concrete action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Index of a discrete choice.
    Discrete(usize),
    /// A continuous action vector (`[dim]`).
    Continuous(Tensor),
}

impl Action {
    /// The discrete index, if this is a discrete action.
    pub fn as_discrete(&self) -> Option<usize> {
        match self {
            Action::Discrete(i) => Some(*i),
            Action::Continuous(_) => None,
        }
    }

    /// The continuous vector, if this is a continuous action.
    pub fn as_continuous(&self) -> Option<&Tensor> {
        match self {
            Action::Discrete(_) => None,
            Action::Continuous(t) => Some(t),
        }
    }
}

/// Result of a single-agent step.
#[derive(Debug, Clone)]
pub struct Step {
    /// Next observation, `[obs_dim]`.
    pub obs: Tensor,
    /// Scalar reward.
    pub reward: f32,
    /// Whether the episode terminated with this step.
    pub done: bool,
}

/// Result of a multi-agent step.
#[derive(Debug, Clone)]
pub struct MultiStep {
    /// Next observation per agent.
    pub obs: Vec<Tensor>,
    /// Reward per agent.
    pub rewards: Vec<f32>,
    /// Whether the (shared) episode terminated.
    pub done: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_width() {
        assert_eq!(ActionSpec::Discrete { n: 5 }.policy_width(), 5);
        assert_eq!(ActionSpec::Continuous { dim: 6, low: -1.0, high: 1.0 }.policy_width(), 6);
    }

    #[test]
    fn action_accessors() {
        let d = Action::Discrete(3);
        assert_eq!(d.as_discrete(), Some(3));
        assert!(d.as_continuous().is_none());
        let c = Action::Continuous(Tensor::zeros(&[2]));
        assert!(c.as_discrete().is_none());
        assert_eq!(c.as_continuous().unwrap().shape(), &[2]);
    }
}
