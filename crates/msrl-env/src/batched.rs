//! Device-executable *batched* environments.
//!
//! Distribution policy DP-D ("GPU only", Tab. 2 of the paper) fuses the
//! entire training loop — inference, environment, training — into one GPU
//! fragment. That is only possible when the environment itself has a
//! device implementation operating on whole batches of worlds at once
//! (WarpDrive does this with CUDA thread blocks; the paper adapts MPE
//! `simple_tag` to the GPU for Fig. 10).
//!
//! A [`BatchedEnv`] is that device implementation here: state lives in
//! flat arrays, one step advances *every* world with data-parallel loops
//! (the moral equivalent of one fused kernel), and the reported
//! [`BatchedEnv::step_flops`] lets the cluster simulator charge the step
//! to a GPU's throughput instead of a CPU core.

use msrl_tensor::{par, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vec_env::chunk_lens;

/// A batch of environment worlds advanced by one data-parallel step.
pub trait BatchedEnv: Send {
    /// Number of independent worlds in the batch.
    fn n_worlds(&self) -> usize;

    /// Agents per world (1 for single-agent environments).
    fn agents_per_world(&self) -> usize;

    /// Total parallel agents (`n_worlds × agents_per_world`).
    fn total_agents(&self) -> usize {
        self.n_worlds() * self.agents_per_world()
    }

    /// Per-agent observation width.
    fn obs_dim(&self) -> usize;

    /// Number of discrete actions per agent.
    fn n_actions(&self) -> usize;

    /// Resets all worlds; returns `[total_agents, obs_dim]`.
    fn reset(&mut self) -> Tensor;

    /// Steps all worlds with one action index per agent
    /// (`actions.len() == total_agents`). Episodes are synchronised: all
    /// worlds share the same step counter and reset together.
    fn step(&mut self, actions: &[usize]) -> BatchedStep;

    /// Floating-point operations per batched step — the GPU cost model
    /// input used by `msrl-sim`.
    fn step_flops(&self) -> u64;
}

/// Result of one batched step.
#[derive(Debug, Clone)]
pub struct BatchedStep {
    /// Observations, `[total_agents, obs_dim]`.
    pub obs: Tensor,
    /// Rewards, `[total_agents]`.
    pub rewards: Tensor,
    /// Whether the synchronised episode ended this step.
    pub done: bool,
}

// ---------------------------------------------------------------------------
// Batched simple_tag
// ---------------------------------------------------------------------------

const DT: f32 = 0.1;
const DAMPING: f32 = 0.25;
const CHASER_ACCEL: f32 = 3.0;
const RUNNER_ACCEL: f32 = 4.0;
const CHASER_MAX_SPEED: f32 = 1.0;
const RUNNER_MAX_SPEED: f32 = 1.3;
const CHASER_SIZE: f32 = 0.075;
const RUNNER_SIZE: f32 = 0.05;
const CATCH_REWARD: f32 = 10.0;

/// A data-parallel implementation of MPE `simple_tag`: `n_worlds`
/// independent pursuit games advanced in lockstep over flat state arrays.
///
/// Each world has `n_chasers` chasers followed by `n_runners` runners
/// (same layout as [`crate::mpe::SimpleTag`]). Observations are the
/// compact per-agent view `[self_vel, self_pos, nearest-opponent rel]`
/// (6 values), which keeps the fused tensor small enough to scale to the
/// paper's 10⁵-agent batches.
pub struct BatchedTag {
    n_worlds: usize,
    n_chasers: usize,
    n_runners: usize,
    pos: Vec<[f32; 2]>,
    vel: Vec<[f32; 2]>,
    steps: usize,
    horizon: usize,
    rng: StdRng,
}

impl BatchedTag {
    /// Per-agent observation width.
    pub const OBS: usize = 6;

    /// Creates `n_worlds` independent tag games.
    pub fn new(n_worlds: usize, n_chasers: usize, n_runners: usize, seed: u64) -> Self {
        let n = n_worlds * (n_chasers + n_runners);
        BatchedTag {
            n_worlds,
            n_chasers,
            n_runners,
            pos: vec![[0.0; 2]; n],
            vel: vec![[0.0; 2]; n],
            steps: 0,
            horizon: 25,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn per_world(&self) -> usize {
        self.n_chasers + self.n_runners
    }

    fn obs_tensor(&self) -> Tensor {
        let pw = self.per_world();
        let n_chasers = self.n_chasers;
        let (pos, vel) = (&self.pos, &self.vel);
        let mut data = msrl_tensor::alloc::take_zeroed(self.total_agents() * Self::OBS);
        // Worlds are independent; the threaded backend writes one block
        // of whole worlds per worker.
        let fill = |offset: usize, chunk: &mut [f32]| {
            let w0 = offset / (pw * Self::OBS);
            tag_obs_worlds(pos, vel, w0, chunk, pw, n_chasers);
        };
        if par::should_parallelize(data.len(), par::PAR_MIN_ELEMS) && self.n_worlds > 1 {
            par::fill_chunks_aligned(&mut data, pw * Self::OBS, fill);
        } else {
            fill(0, &mut data);
        }
        Tensor::from_vec(data, &[self.total_agents(), Self::OBS]).expect("length matches")
    }
}

/// Writes the observations of worlds `w0..` into `out` (whole worlds).
fn tag_obs_worlds(
    pos: &[[f32; 2]],
    vel: &[[f32; 2]],
    w0: usize,
    out: &mut [f32],
    pw: usize,
    n_chasers: usize,
) {
    const OBS: usize = BatchedTag::OBS;
    for (w_local, world) in out.chunks_mut(pw * OBS).enumerate() {
        let base = (w0 + w_local) * pw;
        for (a, slot) in world.chunks_mut(OBS).enumerate() {
            let i = base + a;
            // Nearest opponent in this world.
            let mut best = [0.0f32; 2];
            let mut best_d = f32::INFINITY;
            for b in 0..pw {
                if (a < n_chasers) == (b < n_chasers) {
                    continue;
                }
                let j = base + b;
                let dx = pos[j][0] - pos[i][0];
                let dy = pos[j][1] - pos[i][1];
                let d = dx * dx + dy * dy;
                if d < best_d {
                    best_d = d;
                    best = [dx, dy];
                }
            }
            slot[0] = vel[i][0];
            slot[1] = vel[i][1];
            slot[2] = pos[i][0];
            slot[3] = pos[i][1];
            slot[4] = best[0];
            slot[5] = best[1];
        }
    }
}

/// Advances the physics of one contiguous block of agents starting at
/// global agent index `offset`. Per-agent updates are independent, so any
/// partition of the agents yields identical state.
fn tag_physics(
    pos: &mut [[f32; 2]],
    vel: &mut [[f32; 2]],
    actions: &[usize],
    offset: usize,
    pw: usize,
    n_chasers: usize,
) {
    for (k, &a) in actions.iter().enumerate() {
        let local = (offset + k) % pw;
        let (accel, cap) = if local < n_chasers {
            (CHASER_ACCEL, CHASER_MAX_SPEED)
        } else {
            (RUNNER_ACCEL, RUNNER_MAX_SPEED)
        };
        let f = crate::mpe::decode_action(a);
        vel[k][0] = vel[k][0] * (1.0 - DAMPING) + f[0] * accel * DT;
        vel[k][1] = vel[k][1] * (1.0 - DAMPING) + f[1] * accel * DT;
        let speed = (vel[k][0].powi(2) + vel[k][1].powi(2)).sqrt();
        if speed > cap {
            vel[k][0] *= cap / speed;
            vel[k][1] *= cap / speed;
        }
        pos[k][0] = (pos[k][0] + vel[k][0] * DT).clamp(-1.5, 1.5);
        pos[k][1] = (pos[k][1] + vel[k][1] * DT).clamp(-1.5, 1.5);
    }
}

/// Accumulates the rewards of worlds `w0..` into `out` (whole worlds).
fn tag_rewards(pos: &[[f32; 2]], w0: usize, out: &mut [f32], pw: usize, n_chasers: usize) {
    for (w_local, world) in out.chunks_mut(pw).enumerate() {
        let base = (w0 + w_local) * pw;
        for r_local in n_chasers..pw {
            for c_local in 0..n_chasers {
                let (c_idx, r_idx) = (base + c_local, base + r_local);
                let dx = pos[c_idx][0] - pos[r_idx][0];
                let dy = pos[c_idx][1] - pos[r_idx][1];
                let d = (dx * dx + dy * dy).sqrt();
                if d < CHASER_SIZE + RUNNER_SIZE {
                    world[c_local] += CATCH_REWARD;
                    world[r_local] -= CATCH_REWARD;
                }
                world[c_local] -= 0.1 * d;
                world[r_local] += 0.1 * d;
            }
        }
    }
}

impl BatchedEnv for BatchedTag {
    fn n_worlds(&self) -> usize {
        self.n_worlds
    }

    fn agents_per_world(&self) -> usize {
        self.per_world()
    }

    fn obs_dim(&self) -> usize {
        Self::OBS
    }

    fn n_actions(&self) -> usize {
        5
    }

    fn reset(&mut self) -> Tensor {
        for i in 0..self.pos.len() {
            self.pos[i] = [self.rng.gen_range(-1.0..1.0), self.rng.gen_range(-1.0..1.0)];
            self.vel[i] = [0.0; 2];
        }
        self.steps = 0;
        self.obs_tensor()
    }

    fn step(&mut self, actions: &[usize]) -> BatchedStep {
        let _span = msrl_telemetry::span!("env.batched_step");
        let _hist = msrl_telemetry::static_histogram!("env.batched_step").time();
        debug_assert_eq!(actions.len(), self.total_agents());
        msrl_telemetry::static_counter!("env.steps").add(self.n_worlds as u64);
        let pw = self.per_world();
        let n_agents = self.total_agents();
        let n_chasers = self.n_chasers;
        let threaded = par::should_parallelize(n_agents, par::PAR_MIN_ELEMS);
        // Data-parallel physics update: agents are independent, so the
        // threaded backend splits them into contiguous blocks.
        if threaded {
            std::thread::scope(|scope| {
                let mut pos: &mut [[f32; 2]] = &mut self.pos;
                let mut vel: &mut [[f32; 2]] = &mut self.vel;
                let mut acts: &[usize] = actions;
                let mut offset = 0;
                for len in chunk_lens(n_agents) {
                    let (p, p_rest) = std::mem::take(&mut pos).split_at_mut(len);
                    let (v, v_rest) = std::mem::take(&mut vel).split_at_mut(len);
                    let (a, a_rest) = acts.split_at(len);
                    pos = p_rest;
                    vel = v_rest;
                    acts = a_rest;
                    scope.spawn(move || tag_physics(p, v, a, offset, pw, n_chasers));
                    offset += len;
                }
            });
        } else {
            tag_physics(&mut self.pos, &mut self.vel, actions, 0, pw, n_chasers);
        }
        // Data-parallel rewards: worlds are independent.
        let mut rewards = msrl_tensor::alloc::take_zeroed(n_agents);
        let pos = &self.pos;
        let fill = |offset: usize, chunk: &mut [f32]| {
            tag_rewards(pos, offset / pw, chunk, pw, n_chasers);
        };
        if threaded && self.n_worlds > 1 {
            par::fill_chunks_aligned(&mut rewards, pw, fill);
        } else {
            fill(0, &mut rewards);
        }
        self.steps += 1;
        BatchedStep {
            obs: self.obs_tensor(),
            rewards: Tensor::from_vec(rewards, &[self.total_agents()]).expect("length matches"),
            done: self.steps >= self.horizon,
        }
    }

    fn step_flops(&self) -> u64 {
        // ~30 flops physics per agent + pairwise chaser-runner rewards.
        let pairs = self.n_worlds * self.n_chasers * self.n_runners;
        (self.total_agents() * 30 + pairs * 12) as u64
    }
}

// ---------------------------------------------------------------------------
// Batched CartPole
// ---------------------------------------------------------------------------

/// A data-parallel CartPole batch (single agent per world); the smallest
/// DP-D-capable environment, used in tests and the quickstart example.
pub struct BatchedCartPole {
    n: usize,
    state: Vec<[f32; 4]>,
    steps: usize,
    horizon: usize,
    rng: StdRng,
}

impl BatchedCartPole {
    /// Creates `n` lockstep CartPole worlds.
    pub fn new(n: usize, seed: u64) -> Self {
        BatchedCartPole {
            n,
            state: vec![[0.0; 4]; n],
            steps: 0,
            horizon: 200,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn obs_tensor(&self) -> Tensor {
        let data: Vec<f32> = self.state.iter().flatten().copied().collect();
        Tensor::from_vec(data, &[self.n, 4]).expect("length matches")
    }
}

impl BatchedEnv for BatchedCartPole {
    fn n_worlds(&self) -> usize {
        self.n
    }

    fn agents_per_world(&self) -> usize {
        1
    }

    fn obs_dim(&self) -> usize {
        4
    }

    fn n_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Tensor {
        for s in &mut self.state {
            for v in s.iter_mut() {
                *v = self.rng.gen_range(-0.05..0.05);
            }
        }
        self.steps = 0;
        self.obs_tensor()
    }

    fn step(&mut self, actions: &[usize]) -> BatchedStep {
        let _span = msrl_telemetry::span!("env.batched_step");
        let _hist = msrl_telemetry::static_histogram!("env.batched_step").time();
        debug_assert_eq!(actions.len(), self.n);
        msrl_telemetry::static_counter!("env.steps").add(self.n as u64);
        let mut rewards = msrl_tensor::alloc::take_zeroed(self.n);
        // Worlds are independent; the threaded backend advances one
        // contiguous block of worlds per worker.
        if par::should_parallelize(self.n, par::PAR_MIN_ELEMS) {
            std::thread::scope(|scope| {
                let mut st: &mut [[f32; 4]] = &mut self.state;
                let mut rw: &mut [f32] = &mut rewards;
                let mut acts: &[usize] = actions;
                for len in chunk_lens(self.n) {
                    let (s, s_rest) = std::mem::take(&mut st).split_at_mut(len);
                    let (r, r_rest) = std::mem::take(&mut rw).split_at_mut(len);
                    let (a, a_rest) = acts.split_at(len);
                    st = s_rest;
                    rw = r_rest;
                    acts = a_rest;
                    scope.spawn(move || cartpole_physics(s, r, a));
                }
            });
        } else {
            cartpole_physics(&mut self.state, &mut rewards, actions);
        }
        self.steps += 1;
        BatchedStep {
            obs: self.obs_tensor(),
            rewards: Tensor::from_vec(rewards, &[self.n]).expect("length matches"),
            done: self.steps >= self.horizon,
        }
    }

    fn step_flops(&self) -> u64 {
        (self.n * 40) as u64
    }
}

/// Advances one contiguous block of CartPole worlds — the unit of work
/// shared by the serial and threaded schedules.
fn cartpole_physics(state: &mut [[f32; 4]], rewards: &mut [f32], actions: &[usize]) {
    for ((s, r), &a) in state.iter_mut().zip(rewards).zip(actions) {
        let [x, x_dot, theta, theta_dot] = *s;
        let force = if a == 1 { 10.0 } else { -10.0 };
        let cos = theta.cos();
        let sin = theta.sin();
        let temp = (force + 0.05 * theta_dot * theta_dot * sin) / 1.1;
        let theta_acc = (9.8 * sin - cos * temp) / (0.5 * (4.0 / 3.0 - 0.1 * cos * cos / 1.1));
        let x_acc = temp - 0.05 * theta_acc * cos / 1.1;
        let failed = x.abs() > 2.4 || theta.abs() > 0.2095;
        *s = [
            x + 0.02 * x_dot,
            x_dot + 0.02 * x_acc,
            theta + 0.02 * theta_dot,
            theta_dot + 0.02 * theta_acc,
        ];
        *r = if failed { 0.0 } else { 1.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_shapes_scale_with_worlds() {
        let mut e = BatchedTag::new(10, 3, 1, 0);
        assert_eq!(e.total_agents(), 40);
        let obs = e.reset();
        assert_eq!(obs.shape(), &[40, BatchedTag::OBS]);
        let s = e.step(&vec![0; 40]);
        assert_eq!(s.obs.shape(), &[40, 6]);
        assert_eq!(s.rewards.shape(), &[40]);
    }

    #[test]
    fn tag_worlds_are_independent() {
        let mut e = BatchedTag::new(2, 1, 1, 1);
        e.reset();
        // Freeze world 1, move world 0's chaser right.
        let mut actions = vec![0usize; 4];
        actions[0] = 2;
        let before_w1 = (e.pos[2], e.pos[3]);
        e.step(&actions);
        assert_eq!((e.pos[2], e.pos[3]), before_w1, "world 1 untouched by no-ops");
        assert!(e.pos[0][0] > -2.0); // world 0's chaser moved
    }

    #[test]
    fn tag_catch_transfers_reward() {
        let mut e = BatchedTag::new(1, 1, 1, 2);
        e.reset();
        e.pos[0] = [0.0, 0.0];
        e.pos[1] = [0.05, 0.0];
        let s = e.step(&[0, 0]);
        let r = s.rewards;
        assert!(r.data()[0] > 5.0, "chaser {}", r.data()[0]);
        assert!(r.data()[1] < -5.0, "runner {}", r.data()[1]);
    }

    #[test]
    fn tag_flops_grow_linearly_in_agents() {
        let small = BatchedTag::new(10, 3, 1, 0).step_flops();
        let large = BatchedTag::new(100, 3, 1, 0).step_flops();
        assert_eq!(large, small * 10);
    }

    #[test]
    fn cartpole_batch_survival_rewards() {
        let mut e = BatchedCartPole::new(4, 0);
        e.reset();
        let s = e.step(&[0, 1, 0, 1]);
        assert_eq!(s.rewards.data(), &[1.0; 4]);
        assert!(!s.done);
    }

    #[test]
    fn cartpole_batch_done_at_horizon() {
        let mut e = BatchedCartPole::new(2, 0);
        e.horizon = 3;
        e.reset();
        assert!(!e.step(&[0, 0]).done);
        assert!(!e.step(&[0, 0]).done);
        assert!(e.step(&[0, 0]).done);
    }

    /// The agent/world-chunked threaded schedules must reproduce the
    /// serial physics, observations, and rewards bit-for-bit (RNG runs
    /// only inside `reset`, which stays serial).
    #[test]
    fn threaded_batched_step_matches_serial() {
        use msrl_tensor::{par, Backend};
        let run_tag = || {
            let mut e = BatchedTag::new(6, 2, 2, 7);
            let mut obs = e.reset();
            let mut rewards = Vec::new();
            for s in 0..8 {
                let acts: Vec<usize> = (0..e.total_agents()).map(|i| (s + i) % 5).collect();
                let st = e.step(&acts);
                obs = st.obs;
                rewards.push(st.rewards);
            }
            (obs, rewards)
        };
        let run_pole = || {
            let mut e = BatchedCartPole::new(12, 7);
            let mut obs = e.reset();
            let mut rewards = Vec::new();
            for s in 0..8 {
                let acts: Vec<usize> = (0..12).map(|i| (s + i) % 2).collect();
                let st = e.step(&acts);
                obs = st.obs;
                rewards.push(st.rewards);
            }
            (obs, rewards)
        };
        let (tag_serial, tag_threaded, pole_serial, pole_threaded) = par::with_threads(4, || {
            par::with_par_min(1, || {
                (
                    par::with_backend(Backend::Scalar, run_tag),
                    par::with_backend(Backend::Threaded, run_tag),
                    par::with_backend(Backend::Scalar, run_pole),
                    par::with_backend(Backend::Threaded, run_pole),
                )
            })
        });
        assert_eq!(tag_serial, tag_threaded, "BatchedTag obs/rewards");
        assert_eq!(pole_serial, pole_threaded, "BatchedCartPole obs/rewards");
    }
}
