//! The MPE `simple_tag` scenario: a predator–prey pursuit game.
//!
//! Chaser agents ("adversaries") are rewarded for colliding with runner
//! agents; runners are penalised for being caught and for leaving the
//! arena. This is the workload of the paper's GPU-only experiment
//! (§7.3, Fig. 10), where the environment itself must have a
//! device-executable implementation (see `crate::batched::BatchedTag`).

use msrl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::mpe::{collided, decode_action, Body, World};
use crate::spec::{Action, ActionSpec, MultiStep};
use crate::MultiAgentEnvironment;

const CHASER_SIZE: f32 = 0.075;
const RUNNER_SIZE: f32 = 0.05;
const CHASER_ACCEL: f32 = 3.0;
const RUNNER_ACCEL: f32 = 4.0;
const CHASER_MAX_SPEED: f32 = 1.0;
const RUNNER_MAX_SPEED: f32 = 1.3;
const LANDMARK_SIZE: f32 = 0.2;
const CATCH_REWARD: f32 = 10.0;

/// The predator–prey ("simple tag") environment with `n_chasers`
/// adversaries, `n_runners` good agents, and two obstacle landmarks.
///
/// Agent indexing: chasers first (`0..n_chasers`), then runners.
#[derive(Debug, Clone)]
pub struct SimpleTag {
    world: World,
    n_chasers: usize,
    n_runners: usize,
    steps: usize,
    horizon: usize,
    rng: StdRng,
}

impl SimpleTag {
    /// Creates a tag scenario (MPE defaults: 3 chasers, 1 runner, 2
    /// obstacles would be `SimpleTag::new(3, 1, seed)`).
    pub fn new(n_chasers: usize, n_runners: usize, seed: u64) -> Self {
        let mut agents: Vec<Body> = (0..n_chasers)
            .map(|_| Body::agent(CHASER_SIZE, CHASER_ACCEL, CHASER_MAX_SPEED))
            .collect();
        agents.extend(
            (0..n_runners).map(|_| Body::agent(RUNNER_SIZE, RUNNER_ACCEL, RUNNER_MAX_SPEED)),
        );
        let landmarks = (0..2).map(|_| Body::landmark(LANDMARK_SIZE)).collect();
        SimpleTag {
            world: World::new(agents, landmarks),
            n_chasers,
            n_runners,
            steps: 0,
            horizon: 25,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of chaser agents.
    pub fn n_chasers(&self) -> usize {
        self.n_chasers
    }

    /// Number of runner agents.
    pub fn n_runners(&self) -> usize {
        self.n_runners
    }

    /// Whether agent `i` is a chaser.
    pub fn is_chaser(&self, i: usize) -> bool {
        i < self.n_chasers
    }

    /// MPE's out-of-bounds penalty shaping for runners.
    fn bound_penalty(x: f32) -> f32 {
        let x = x.abs();
        if x < 0.9 {
            0.0
        } else if x < 1.0 {
            (x - 0.9) * 10.0
        } else {
            ((2.0 * (x - 1.0)).exp()).min(10.0)
        }
    }

    fn reward(&self, i: usize) -> f32 {
        let me = &self.world.agents[i];
        if self.is_chaser(i) {
            // Chasers: +10 for every runner any chaser touches (shared
            // adversary reward in MPE), shaped by distance to runners.
            let mut r = 0.0;
            for run_idx in self.n_chasers..self.n_chasers + self.n_runners {
                let runner = &self.world.agents[run_idx];
                for ch_idx in 0..self.n_chasers {
                    if collided(&self.world.agents[ch_idx], runner) {
                        r += CATCH_REWARD;
                    }
                }
                // Shaping: approach the nearest runner.
                let dx = runner.pos[0] - me.pos[0];
                let dy = runner.pos[1] - me.pos[1];
                r -= 0.1 * (dx * dx + dy * dy).sqrt();
            }
            r
        } else {
            // Runners: −10 per catching contact, shaped to flee, bounded.
            let mut r = 0.0;
            for ch_idx in 0..self.n_chasers {
                let chaser = &self.world.agents[ch_idx];
                if collided(chaser, me) {
                    r -= CATCH_REWARD;
                }
                let dx = chaser.pos[0] - me.pos[0];
                let dy = chaser.pos[1] - me.pos[1];
                r += 0.1 * (dx * dx + dy * dy).sqrt();
            }
            r -= Self::bound_penalty(me.pos[0]);
            r -= Self::bound_penalty(me.pos[1]);
            r
        }
    }

    fn agent_obs(&self, i: usize) -> Tensor {
        let me = &self.world.agents[i];
        let mut v = Vec::with_capacity(self.obs_dim());
        v.extend_from_slice(&me.vel);
        v.extend_from_slice(&me.pos);
        for lm in &self.world.landmarks {
            v.push(lm.pos[0] - me.pos[0]);
            v.push(lm.pos[1] - me.pos[1]);
        }
        for (j, other) in self.world.agents.iter().enumerate() {
            if j != i {
                v.push(other.pos[0] - me.pos[0]);
                v.push(other.pos[1] - me.pos[1]);
            }
        }
        // All chasers observe runner velocities (MPE convention).
        for run_idx in self.n_chasers..self.n_chasers + self.n_runners {
            if run_idx != i {
                v.extend_from_slice(&self.world.agents[run_idx].vel);
            }
        }
        let dim = self.obs_dim();
        // Runners see one fewer "other runner velocity": pad to a
        // homogeneous width so policies can be shared.
        while v.len() < dim {
            v.push(0.0);
        }
        Tensor::from_vec(v, &[dim]).expect("padded to obs_dim")
    }

    /// Total number of catches in the current configuration (diagnostic).
    pub fn current_catches(&self) -> usize {
        let mut c = 0;
        for run_idx in self.n_chasers..self.n_chasers + self.n_runners {
            for ch_idx in 0..self.n_chasers {
                if collided(&self.world.agents[ch_idx], &self.world.agents[run_idx]) {
                    c += 1;
                }
            }
        }
        c
    }
}

impl MultiAgentEnvironment for SimpleTag {
    fn n_agents(&self) -> usize {
        self.n_chasers + self.n_runners
    }

    fn obs_dim(&self) -> usize {
        let n = self.n_agents();
        // vel(2) + pos(2) + 2 landmarks rel(4) + others rel(2(n-1)) +
        // runner velocities (2·n_runners, padded).
        4 + 4 + 2 * (n - 1) + 2 * self.n_runners
    }

    fn action_spec(&self) -> ActionSpec {
        ActionSpec::Discrete { n: 5 }
    }

    fn reset(&mut self) -> Vec<Tensor> {
        self.world.scatter(1.0, &mut self.rng);
        self.steps = 0;
        (0..self.n_agents()).map(|i| self.agent_obs(i)).collect()
    }

    fn step(&mut self, actions: &[Action]) -> MultiStep {
        let forces: Vec<[f32; 2]> =
            actions.iter().map(|a| decode_action(a.as_discrete().unwrap_or(0))).collect();
        self.world.step(&forces);
        self.steps += 1;
        MultiStep {
            obs: (0..self.n_agents()).map(|i| self.agent_obs(i)).collect(),
            rewards: (0..self.n_agents()).map(|i| self.reward(i)).collect(),
            done: self.steps >= self.horizon,
        }
    }

    fn step_cost(&self) -> f64 {
        let n = self.n_agents();
        1e-6 * (n * n) as f64
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_and_dims() {
        let e = SimpleTag::new(3, 1, 0);
        assert_eq!(e.n_agents(), 4);
        assert!(e.is_chaser(2));
        assert!(!e.is_chaser(3));
        // 4 + 4 + 2·3 + 2·1 = 16
        assert_eq!(e.obs_dim(), 16);
    }

    #[test]
    fn catch_rewards_chaser_penalises_runner() {
        let mut e = SimpleTag::new(1, 1, 1);
        e.reset();
        e.world.agents[0].pos = [0.0, 0.0];
        e.world.agents[1].pos = [0.05, 0.0]; // overlapping
        assert_eq!(e.current_catches(), 1);
        assert!(e.reward(0) > 5.0, "chaser reward {}", e.reward(0));
        assert!(e.reward(1) < -5.0, "runner reward {}", e.reward(1));
    }

    #[test]
    fn no_catch_when_apart() {
        let mut e = SimpleTag::new(1, 1, 2);
        e.reset();
        e.world.agents[0].pos = [-0.5, 0.0];
        e.world.agents[1].pos = [0.5, 0.0];
        assert_eq!(e.current_catches(), 0);
        assert!(e.reward(0).abs() < 5.0);
    }

    #[test]
    fn runner_bound_penalty_grows_off_arena() {
        let inside = SimpleTag::bound_penalty(0.5);
        let edge = SimpleTag::bound_penalty(0.95);
        let outside = SimpleTag::bound_penalty(1.5);
        assert_eq!(inside, 0.0);
        assert!(edge > 0.0);
        assert!(outside > edge);
    }

    #[test]
    fn obs_are_homogeneous_across_roles() {
        let mut e = SimpleTag::new(2, 2, 3);
        let obs = e.reset();
        for o in &obs {
            assert_eq!(o.shape(), &[e.obs_dim()]);
        }
    }

    #[test]
    fn chaser_shaping_rewards_approach() {
        let mut e = SimpleTag::new(1, 1, 4);
        e.reset();
        e.world.agents[0].pos = [0.0, 0.0];
        e.world.agents[1].pos = [0.3, 0.0];
        let near = e.reward(0);
        e.world.agents[1].pos = [3.0, 0.0];
        let far = e.reward(0);
        assert!(near > far);
    }
}
