//! The Multi-Agent Particle Environment (MPE), re-implemented from the
//! published dynamics of Lowe et al. (NeurIPS 2017).
//!
//! MPE worlds are 2-D planes populated by *agents* (movable point masses
//! driven by discrete force actions) and *landmarks* (static discs).
//! Agents experience velocity damping and soft contact forces on overlap.
//!
//! Two scenarios from the paper's evaluation are provided:
//!
//! * [`spread::SimpleSpread`] — §7.4/Fig. 11: `n` cooperating agents learn
//!   to cover `n` landmarks while avoiding collisions; its
//!   global-observation variant grows observation volume as *O(n³)*;
//! * [`tag::SimpleTag`] — §7.3/Fig. 10: a predator–prey game where chasers
//!   are rewarded for catching runners.

pub mod spread;
pub mod tag;

pub use spread::SimpleSpread;
pub use tag::SimpleTag;

use rand::rngs::StdRng;
use rand::Rng;

/// Integration timestep (MPE default).
pub const DT: f32 = 0.1;
/// Velocity damping per step (MPE default).
pub const DAMPING: f32 = 0.25;
/// Soft contact force constant (MPE default).
pub const CONTACT_FORCE: f32 = 100.0;
/// Soft contact margin (MPE default).
pub const CONTACT_MARGIN: f32 = 0.001;

/// A 2-D point-mass body.
#[derive(Debug, Clone)]
pub struct Body {
    /// Position.
    pub pos: [f32; 2],
    /// Velocity.
    pub vel: [f32; 2],
    /// Disc radius for contact.
    pub size: f32,
    /// Acceleration multiplier applied to the unit action force.
    pub accel: f32,
    /// Optional speed cap.
    pub max_speed: Option<f32>,
    /// Whether physics moves this body (landmarks are static).
    pub movable: bool,
}

impl Body {
    /// A movable agent body.
    pub fn agent(size: f32, accel: f32, max_speed: f32) -> Self {
        Body {
            pos: [0.0; 2],
            vel: [0.0; 2],
            size,
            accel,
            max_speed: Some(max_speed),
            movable: true,
        }
    }

    /// A static landmark body.
    pub fn landmark(size: f32) -> Self {
        Body { pos: [0.0; 2], vel: [0.0; 2], size, accel: 0.0, max_speed: None, movable: false }
    }
}

/// Euclidean distance between two bodies' centres.
pub fn dist(a: &Body, b: &Body) -> f32 {
    let dx = a.pos[0] - b.pos[0];
    let dy = a.pos[1] - b.pos[1];
    (dx * dx + dy * dy).sqrt()
}

/// Whether two bodies' discs overlap.
pub fn collided(a: &Body, b: &Body) -> bool {
    dist(a, b) < a.size + b.size
}

/// The 2-D world: a set of agent bodies and landmark bodies.
#[derive(Debug, Clone)]
pub struct World {
    /// Movable agents, indexed by agent id.
    pub agents: Vec<Body>,
    /// Static landmarks.
    pub landmarks: Vec<Body>,
}

impl World {
    /// Creates a world with the given bodies.
    pub fn new(agents: Vec<Body>, landmarks: Vec<Body>) -> Self {
        World { agents, landmarks }
    }

    /// Scatters all bodies uniformly in `[-extent, extent]²` with zero
    /// velocity.
    pub fn scatter(&mut self, extent: f32, rng: &mut StdRng) {
        for b in self.agents.iter_mut().chain(self.landmarks.iter_mut()) {
            b.pos = [rng.gen_range(-extent..extent), rng.gen_range(-extent..extent)];
            b.vel = [0.0; 2];
        }
    }

    /// The MPE soft contact force between two discs, along the axis from
    /// `b` to `a` (i.e. the force applied to `a`).
    fn contact_force(a: &Body, b: &Body) -> [f32; 2] {
        let delta = [a.pos[0] - b.pos[0], a.pos[1] - b.pos[1]];
        let d = (delta[0] * delta[0] + delta[1] * delta[1]).sqrt().max(1e-6);
        let d_min = a.size + b.size;
        // Softened penetration: log(1 + e^{-(d - d_min)/margin}) · margin
        let penetration = (1.0 + (-(d - d_min) / CONTACT_MARGIN).exp()).ln() * CONTACT_MARGIN;
        let f = CONTACT_FORCE * penetration;
        [f * delta[0] / d, f * delta[1] / d]
    }

    /// Advances physics one step given a `[fx, fy]` control force per
    /// agent (unit magnitude; each agent's `accel` scales it).
    ///
    /// Extra forces come from soft contacts between every agent pair and
    /// between agents and landmarks.
    pub fn step(&mut self, forces: &[[f32; 2]]) {
        debug_assert_eq!(forces.len(), self.agents.len());
        let n = self.agents.len();
        let mut total: Vec<[f32; 2]> = forces
            .iter()
            .zip(&self.agents)
            .map(|(f, a)| [f[0] * a.accel, f[1] * a.accel])
            .collect();
        // Agent-agent contacts (symmetric).
        for i in 0..n {
            for j in (i + 1)..n {
                let f = Self::contact_force(&self.agents[i], &self.agents[j]);
                total[i][0] += f[0];
                total[i][1] += f[1];
                total[j][0] -= f[0];
                total[j][1] -= f[1];
            }
        }
        // Agent-landmark contacts (landmarks are immovable).
        for (a, t) in self.agents.iter().zip(&mut total) {
            for l in &self.landmarks {
                let f = Self::contact_force(a, l);
                t[0] += f[0];
                t[1] += f[1];
            }
        }
        for (a, f) in self.agents.iter_mut().zip(&total) {
            if !a.movable {
                continue;
            }
            a.vel[0] = a.vel[0] * (1.0 - DAMPING) + f[0] * DT;
            a.vel[1] = a.vel[1] * (1.0 - DAMPING) + f[1] * DT;
            if let Some(cap) = a.max_speed {
                let speed = (a.vel[0] * a.vel[0] + a.vel[1] * a.vel[1]).sqrt();
                if speed > cap {
                    a.vel[0] *= cap / speed;
                    a.vel[1] *= cap / speed;
                }
            }
            a.pos[0] += a.vel[0] * DT;
            a.pos[1] += a.vel[1] * DT;
        }
    }
}

/// Decodes MPE's 5-way discrete action into a unit force:
/// 0 = no-op, 1 = −x, 2 = +x, 3 = −y, 4 = +y.
pub fn decode_action(a: usize) -> [f32; 2] {
    match a {
        1 => [-1.0, 0.0],
        2 => [1.0, 0.0],
        3 => [0.0, -1.0],
        4 => [0.0, 1.0],
        _ => [0.0, 0.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn world_two_agents() -> World {
        World::new(
            vec![Body::agent(0.05, 3.0, 1.0), Body::agent(0.05, 3.0, 1.0)],
            vec![Body::landmark(0.1)],
        )
    }

    #[test]
    fn force_accelerates_agent() {
        let mut w = world_two_agents();
        w.agents[0].pos = [0.0, 0.0];
        w.agents[1].pos = [5.0, 5.0]; // far away: no contact
        w.landmarks[0].pos = [-5.0, -5.0];
        w.step(&[[1.0, 0.0], [0.0, 0.0]]);
        assert!(w.agents[0].vel[0] > 0.0);
        assert!(w.agents[0].pos[0] > 0.0);
        assert_eq!(w.agents[1].vel, [0.0, 0.0]);
    }

    #[test]
    fn damping_slows_agent() {
        let mut w = world_two_agents();
        w.agents[0].vel = [1.0, 0.0];
        w.agents[0].pos = [0.0, 0.0];
        w.agents[1].pos = [5.0, 5.0];
        w.landmarks[0].pos = [-5.0, -5.0];
        w.step(&[[0.0, 0.0], [0.0, 0.0]]);
        assert!(w.agents[0].vel[0] < 1.0);
        assert!(w.agents[0].vel[0] > 0.0);
    }

    #[test]
    fn overlapping_agents_repel() {
        let mut w = world_two_agents();
        w.agents[0].pos = [0.0, 0.0];
        w.agents[1].pos = [0.05, 0.0]; // overlapping (sizes 0.05 each)
        w.landmarks[0].pos = [-5.0, -5.0];
        w.step(&[[0.0, 0.0], [0.0, 0.0]]);
        assert!(w.agents[0].vel[0] < 0.0, "agent 0 pushed left");
        assert!(w.agents[1].vel[0] > 0.0, "agent 1 pushed right");
    }

    #[test]
    fn max_speed_caps_velocity() {
        let mut w = world_two_agents();
        w.agents[0].pos = [0.0, 0.0];
        w.agents[1].pos = [5.0, 5.0];
        w.landmarks[0].pos = [-5.0, -5.0];
        for _ in 0..200 {
            w.step(&[[1.0, 0.0], [0.0, 0.0]]);
        }
        let speed = (w.agents[0].vel[0].powi(2) + w.agents[0].vel[1].powi(2)).sqrt();
        assert!(speed <= 1.0 + 1e-4, "speed {speed}");
    }

    #[test]
    fn landmarks_never_move() {
        let mut w = world_two_agents();
        let mut rng = StdRng::seed_from_u64(0);
        w.scatter(1.0, &mut rng);
        let before = w.landmarks[0].pos;
        for _ in 0..50 {
            w.step(&[[1.0, 1.0], [-1.0, -1.0]]);
        }
        assert_eq!(w.landmarks[0].pos, before);
    }

    #[test]
    fn decode_action_covers_all_directions() {
        assert_eq!(decode_action(0), [0.0, 0.0]);
        assert_eq!(decode_action(1), [-1.0, 0.0]);
        assert_eq!(decode_action(2), [1.0, 0.0]);
        assert_eq!(decode_action(3), [0.0, -1.0]);
        assert_eq!(decode_action(4), [0.0, 1.0]);
        assert_eq!(decode_action(99), [0.0, 0.0]);
    }

    #[test]
    fn collided_uses_radii() {
        let mut a = Body::agent(0.1, 1.0, 1.0);
        let mut b = Body::agent(0.1, 1.0, 1.0);
        a.pos = [0.0, 0.0];
        b.pos = [0.15, 0.0];
        assert!(collided(&a, &b));
        b.pos = [0.25, 0.0];
        assert!(!collided(&a, &b));
    }
}
