//! The MPE `simple_spread` scenario: `n` cooperating agents learn to
//! cover `n` landmarks while avoiding collisions.
//!
//! The paper's scalability experiment (§7.4, Fig. 11) uses this scenario
//! with *global observations*: in addition to local state, every agent
//! observes, for each landmark, the distances of **all** agents to that
//! landmark. One agent's observation is then `O(n²)`, and the joint
//! observation across `n` agents grows as `O(n³)` — the cubic blow-up the
//! paper exploits to stress GPU memory and training throughput.

use msrl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::mpe::{collided, decode_action, Body, World};
use crate::spec::{Action, ActionSpec, MultiStep};
use crate::MultiAgentEnvironment;

const AGENT_SIZE: f32 = 0.05; // MPE default agent radius (with collide=true)
const LANDMARK_SIZE: f32 = 0.05;
const AGENT_ACCEL: f32 = 3.0;
const AGENT_MAX_SPEED: f32 = 1.0;
const COLLISION_PENALTY: f32 = 1.0;

/// The cooperative navigation ("simple spread") environment.
#[derive(Debug, Clone)]
pub struct SimpleSpread {
    world: World,
    n: usize,
    global_obs: bool,
    steps: usize,
    horizon: usize,
    rng: StdRng,
}

impl SimpleSpread {
    /// Creates a spread scenario with `n` agents and `n` landmarks
    /// observing only local state.
    pub fn new(n: usize, seed: u64) -> Self {
        let agents =
            (0..n).map(|_| Body::agent(AGENT_SIZE, AGENT_ACCEL, AGENT_MAX_SPEED)).collect();
        let landmarks = (0..n).map(|_| Body::landmark(LANDMARK_SIZE)).collect();
        SimpleSpread {
            world: World::new(agents, landmarks),
            n,
            global_obs: false,
            steps: 0,
            horizon: 25,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Enables the §7.4 global-observation variant (adds, per agent, the
    /// distance of every agent to every landmark — `n²` extra values per
    /// agent, `O(n³)` in total).
    pub fn with_global_obs(mut self, enabled: bool) -> Self {
        self.global_obs = enabled;
        self
    }

    /// Overrides the episode horizon (MPE default is 25 steps).
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self
    }

    /// The shared cooperative reward: negative sum over landmarks of the
    /// closest agent's distance, minus collision penalties for `agent`.
    fn reward(&self, agent: usize) -> f32 {
        let mut r = 0.0;
        for lm in &self.world.landmarks {
            let min_d = self
                .world
                .agents
                .iter()
                .map(|a| {
                    let dx = a.pos[0] - lm.pos[0];
                    let dy = a.pos[1] - lm.pos[1];
                    (dx * dx + dy * dy).sqrt()
                })
                .fold(f32::INFINITY, f32::min);
            r -= min_d;
        }
        for (j, other) in self.world.agents.iter().enumerate() {
            if j != agent && collided(&self.world.agents[agent], other) {
                r -= COLLISION_PENALTY;
            }
        }
        r
    }

    fn agent_obs(&self, i: usize) -> Tensor {
        let me = &self.world.agents[i];
        let mut v = Vec::with_capacity(self.obs_dim());
        v.extend_from_slice(&me.vel);
        v.extend_from_slice(&me.pos);
        for lm in &self.world.landmarks {
            v.push(lm.pos[0] - me.pos[0]);
            v.push(lm.pos[1] - me.pos[1]);
        }
        for (j, other) in self.world.agents.iter().enumerate() {
            if j != i {
                v.push(other.pos[0] - me.pos[0]);
                v.push(other.pos[1] - me.pos[1]);
            }
        }
        if self.global_obs {
            // For each landmark, the distance of every agent to it.
            for lm in &self.world.landmarks {
                for a in &self.world.agents {
                    let dx = a.pos[0] - lm.pos[0];
                    let dy = a.pos[1] - lm.pos[1];
                    v.push((dx * dx + dy * dy).sqrt());
                }
            }
        }
        let dim = self.obs_dim();
        Tensor::from_vec(v, &[dim]).expect("length matches obs_dim")
    }

    /// Mean over landmarks of the closest agent's distance (diagnostic).
    pub fn mean_coverage_distance(&self) -> f32 {
        let total: f32 = self
            .world
            .landmarks
            .iter()
            .map(|lm| {
                self.world
                    .agents
                    .iter()
                    .map(|a| {
                        let dx = a.pos[0] - lm.pos[0];
                        let dy = a.pos[1] - lm.pos[1];
                        (dx * dx + dy * dy).sqrt()
                    })
                    .fold(f32::INFINITY, f32::min)
            })
            .sum();
        total / self.world.landmarks.len() as f32
    }
}

impl MultiAgentEnvironment for SimpleSpread {
    fn n_agents(&self) -> usize {
        self.n
    }

    fn obs_dim(&self) -> usize {
        // vel(2) + pos(2) + landmarks rel(2n) + others rel(2(n-1)) [+ n²]
        let local = 4 + 2 * self.n + 2 * (self.n - 1);
        if self.global_obs {
            local + self.n * self.n
        } else {
            local
        }
    }

    fn action_spec(&self) -> ActionSpec {
        ActionSpec::Discrete { n: 5 }
    }

    fn reset(&mut self) -> Vec<Tensor> {
        self.world.scatter(1.0, &mut self.rng);
        self.steps = 0;
        (0..self.n).map(|i| self.agent_obs(i)).collect()
    }

    fn step(&mut self, actions: &[Action]) -> MultiStep {
        let forces: Vec<[f32; 2]> =
            actions.iter().map(|a| decode_action(a.as_discrete().unwrap_or(0))).collect();
        self.world.step(&forces);
        self.steps += 1;
        MultiStep {
            obs: (0..self.n).map(|i| self.agent_obs(i)).collect(),
            rewards: (0..self.n).map(|i| self.reward(i)).collect(),
            done: self.steps >= self.horizon,
        }
    }

    fn step_cost(&self) -> f64 {
        // Pairwise contact physics: O(n²) work per step.
        1e-6 * (self.n * self.n) as f64
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_dims_scale_with_n() {
        let e3 = SimpleSpread::new(3, 0);
        assert_eq!(e3.obs_dim(), 4 + 6 + 4);
        let g3 = SimpleSpread::new(3, 0).with_global_obs(true);
        assert_eq!(g3.obs_dim(), 4 + 6 + 4 + 9);
    }

    #[test]
    fn global_obs_joint_volume_is_cubic() {
        // The joint observation volume must grow ~n³ for the Fig. 11
        // experiment to stress memory the way the paper describes.
        let vol = |n: usize| {
            let e = SimpleSpread::new(n, 0).with_global_obs(true);
            n * e.obs_dim()
        };
        let v8 = vol(8);
        let v16 = vol(16);
        // Doubling n should multiply the joint volume by ≈8 as n grows.
        let ratio = v16 as f32 / v8 as f32;
        assert!(ratio > 6.0, "ratio {ratio} not cubic-ish");
    }

    #[test]
    fn reset_returns_one_obs_per_agent() {
        let mut e = SimpleSpread::new(4, 1);
        let obs = e.reset();
        assert_eq!(obs.len(), 4);
        for o in obs {
            assert_eq!(o.shape(), &[e.obs_dim()]);
        }
    }

    #[test]
    fn reward_improves_as_agents_approach_landmarks() {
        let mut e = SimpleSpread::new(2, 2);
        e.reset();
        // Place agents exactly on the landmarks: coverage distance 0.
        let lm0 = e.world.landmarks[0].pos;
        let lm1 = e.world.landmarks[1].pos;
        e.world.agents[0].pos = lm0;
        e.world.agents[1].pos = lm1;
        let near = e.reward(0);
        // Move agents far away.
        e.world.agents[0].pos = [10.0, 10.0];
        e.world.agents[1].pos = [-10.0, -10.0];
        let far = e.reward(0);
        assert!(near > far);
    }

    #[test]
    fn collision_penalty_applies() {
        let mut e = SimpleSpread::new(2, 3);
        e.reset();
        e.world.agents[0].pos = [0.0, 0.0];
        e.world.agents[1].pos = [0.01, 0.0];
        let colliding = e.reward(0);
        e.world.agents[1].pos = [0.5, 0.0];
        let apart = e.reward(0);
        // Both positions have similar coverage terms; collision costs 1.
        assert!(apart - colliding > 0.5, "apart {apart} colliding {colliding}");
    }

    #[test]
    fn episode_ends_at_horizon() {
        let mut e = SimpleSpread::new(2, 4).with_horizon(3);
        e.reset();
        let acts = vec![Action::Discrete(0), Action::Discrete(0)];
        assert!(!e.step(&acts).done);
        assert!(!e.step(&acts).done);
        assert!(e.step(&acts).done);
    }
}
