//! Vectorised execution of many environment instances.
//!
//! The paper's actors each interact with a *set* of environments ("each
//! actor interacts with 32 environments", §3). [`VecEnv`] is that set: it
//! steps every instance with a batch of actions, auto-resets finished
//! episodes, and returns batched tensors ready for fused policy inference.
//!
//! Under [`msrl_tensor::Backend::Threaded`], large-enough sets step and
//! reset their instances on scoped worker threads, one contiguous block
//! of instances per worker. Each instance owns its RNG and state, so the
//! partitioned schedule produces results identical to the serial one —
//! per-instance trajectories, auto-reset behaviour, and the order of
//! [`VecEnv::take_finished_returns`] are all preserved.

use msrl_tensor::{ops, par, Tensor};

use crate::spec::{Action, ActionSpec};
use crate::Environment;

/// Instance count below which a threaded step is not worth the scoped
/// spawn/join (environment steps are far heavier than one element-wise
/// flop, so this is much lower than [`par::PAR_MIN_ELEMS`]). Tests
/// override via `MSRL_PAR_MIN`.
const PAR_MIN_ENVS: usize = 8;

/// A batch of environments stepped in lockstep.
pub struct VecEnv {
    envs: Vec<Box<dyn Environment>>,
    obs_dim: usize,
    spec: ActionSpec,
    /// Episode return accumulated per instance (diagnostics).
    returns: Vec<f32>,
    /// Returns of episodes completed since the last query.
    finished_returns: Vec<f32>,
}

/// Result of stepping a [`VecEnv`].
#[derive(Debug, Clone)]
pub struct VecStep {
    /// Batched next observations, `[n, obs_dim]` (auto-reset on done).
    pub obs: Tensor,
    /// Rewards, `[n]`.
    pub rewards: Tensor,
    /// Per-instance terminal flags for this step.
    pub dones: Vec<bool>,
}

impl VecEnv {
    /// Wraps a non-empty set of homogeneous environments.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or instances disagree on observation or
    /// action specs — a construction-time configuration error.
    pub fn new(envs: Vec<Box<dyn Environment>>) -> Self {
        assert!(!envs.is_empty(), "VecEnv needs at least one environment");
        let obs_dim = envs[0].obs_dim();
        let spec = envs[0].action_spec();
        for e in &envs {
            assert_eq!(e.obs_dim(), obs_dim, "heterogeneous obs dims");
            assert_eq!(e.action_spec(), spec, "heterogeneous action specs");
        }
        let n = envs.len();
        VecEnv { envs, obs_dim, spec, returns: vec![0.0; n], finished_returns: Vec::new() }
    }

    /// Builds `n` instances from a constructor taking the instance index
    /// (typically used to derive per-instance seeds).
    pub fn from_fn<E, F>(n: usize, f: F) -> Self
    where
        E: Environment + 'static,
        F: Fn(usize) -> E,
    {
        VecEnv::new((0..n).map(|i| Box::new(f(i)) as Box<dyn Environment>).collect())
    }

    /// Number of environment instances.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// Whether the batch is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// Per-instance observation width.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// The shared action spec.
    pub fn action_spec(&self) -> ActionSpec {
        self.spec
    }

    /// Total virtual CPU cost of one batched step (sum over instances).
    pub fn step_cost(&self) -> f64 {
        self.envs.iter().map(|e| e.step_cost()).sum()
    }

    /// Resets every instance; returns `[n, obs_dim]`.
    ///
    /// Large sets reset on worker threads under the threaded backend;
    /// each instance's RNG is its own, so results match the serial order.
    pub fn reset(&mut self) -> Tensor {
        let _span = msrl_telemetry::span!("env.vec_reset");
        for r in &mut self.returns {
            *r = 0.0;
        }
        let obs: Vec<Tensor> = if par::should_parallelize(self.envs.len(), PAR_MIN_ENVS) {
            let chunks = chunked_mut(&mut self.envs);
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move || chunk.iter_mut().map(|e| e.reset()).collect::<Vec<_>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("env worker must not panic"))
                    .collect()
            })
        } else {
            self.envs.iter_mut().map(|e| e.reset()).collect()
        };
        let refs: Vec<&Tensor> = obs.iter().collect();
        ops::stack(&refs).expect("homogeneous obs dims")
    }

    /// Steps every instance with its action; finished instances are
    /// reset, and their observation in the result is the fresh reset.
    ///
    /// Large sets step on worker threads under the threaded backend: the
    /// instances split into contiguous blocks, one per worker, and the
    /// per-block results merge back in instance order — trajectories,
    /// rewards, and finished-episode bookkeeping are identical to the
    /// serial schedule.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len() != self.len()` — a caller bug, since the
    /// batch size is fixed at construction.
    pub fn step(&mut self, actions: &[Action]) -> VecStep {
        let _span = msrl_telemetry::span!("env.vec_step");
        let _hist = msrl_telemetry::static_histogram!("env.vec_step").time();
        let n = self.envs.len();
        assert_eq!(actions.len(), n, "one action per instance");
        msrl_telemetry::static_counter!("env.steps").add(n as u64);
        let parts: Vec<ChunkStep> = if par::should_parallelize(n, PAR_MIN_ENVS) {
            let lens: Vec<usize> = chunk_lens(n);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(lens.len());
                let mut envs: &mut [Box<dyn Environment>] = &mut self.envs;
                let mut rets: &mut [f32] = &mut self.returns;
                let mut acts: &[Action] = actions;
                for len in lens {
                    let (e, e_rest) = std::mem::take(&mut envs).split_at_mut(len);
                    let (r, r_rest) = std::mem::take(&mut rets).split_at_mut(len);
                    let (a, a_rest) = acts.split_at(len);
                    envs = e_rest;
                    rets = r_rest;
                    acts = a_rest;
                    handles.push(scope.spawn(move || step_chunk(e, r, a)));
                }
                handles.into_iter().map(|h| h.join().expect("env worker must not panic")).collect()
            })
        } else {
            vec![step_chunk(&mut self.envs, &mut self.returns, actions)]
        };

        let mut obs = Vec::with_capacity(n);
        let mut rewards = Vec::with_capacity(n);
        let mut dones = Vec::with_capacity(n);
        for part in parts {
            obs.extend(part.obs);
            rewards.extend(part.rewards);
            dones.extend(part.dones);
            self.finished_returns.extend(part.finished);
        }
        let refs: Vec<&Tensor> = obs.iter().collect();
        VecStep {
            obs: ops::stack(&refs).expect("homogeneous obs dims"),
            rewards: Tensor::from_vec(rewards, &[n]).expect("length matches"),
            dones,
        }
    }

    /// Drains the returns of episodes that finished since the last call.
    pub fn take_finished_returns(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.finished_returns)
    }
}

/// Per-worker results of stepping a contiguous block of instances.
struct ChunkStep {
    obs: Vec<Tensor>,
    rewards: Vec<f32>,
    dones: Vec<bool>,
    /// Completed-episode returns, in instance order within the block.
    finished: Vec<f32>,
}

/// Steps one contiguous block of instances — the unit of work shared by
/// the serial and threaded schedules, so both produce identical results.
fn step_chunk(
    envs: &mut [Box<dyn Environment>],
    returns: &mut [f32],
    actions: &[Action],
) -> ChunkStep {
    let mut out = ChunkStep {
        obs: Vec::with_capacity(envs.len()),
        rewards: Vec::with_capacity(envs.len()),
        dones: Vec::with_capacity(envs.len()),
        finished: Vec::new(),
    };
    for ((env, ret), action) in envs.iter_mut().zip(returns).zip(actions) {
        let step = env.step(action);
        *ret += step.reward;
        out.rewards.push(step.reward);
        out.dones.push(step.done);
        if step.done {
            out.finished.push(*ret);
            *ret = 0.0;
            out.obs.push(env.reset());
        } else {
            out.obs.push(step.obs);
        }
    }
    out
}

/// Contiguous per-worker block lengths covering `n` instances.
pub(crate) fn chunk_lens(n: usize) -> Vec<usize> {
    let workers = par::thread_count().min(n.max(1));
    let chunk = n.div_ceil(workers);
    let mut lens = Vec::with_capacity(workers);
    let mut left = n;
    while left > 0 {
        let take = chunk.min(left);
        lens.push(take);
        left -= take;
    }
    lens
}

/// Splits a slice into per-worker mutable blocks.
fn chunked_mut<T>(items: &mut [T]) -> Vec<&mut [T]> {
    let lens = chunk_lens(items.len());
    let mut rest = items;
    let mut out = Vec::with_capacity(lens.len());
    for len in lens {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
        out.push(head);
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartpole::CartPole;

    #[test]
    fn reset_shapes() {
        let mut v = VecEnv::from_fn(3, |i| CartPole::new(i as u64));
        let obs = v.reset();
        assert_eq!(obs.shape(), &[3, 4]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.obs_dim(), 4);
    }

    #[test]
    fn step_returns_batched_results() {
        let mut v = VecEnv::from_fn(2, |i| CartPole::new(i as u64));
        v.reset();
        let s = v.step(&[Action::Discrete(0), Action::Discrete(1)]);
        assert_eq!(s.obs.shape(), &[2, 4]);
        assert_eq!(s.rewards.shape(), &[2]);
        assert_eq!(s.dones.len(), 2);
    }

    #[test]
    fn auto_reset_and_finished_returns() {
        let mut v = VecEnv::from_fn(1, |_| CartPole::new(0).with_horizon(3));
        v.reset();
        // Survive via alternation until the 3-step horizon truncates.
        for i in 0..3 {
            v.step(&[Action::Discrete(i % 2)]);
        }
        let finished = v.take_finished_returns();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0], 3.0, "3 survival rewards");
        assert!(v.take_finished_returns().is_empty(), "drained");
    }

    #[test]
    #[should_panic(expected = "one action per instance")]
    fn wrong_action_count_panics() {
        let mut v = VecEnv::from_fn(2, |i| CartPole::new(i as u64));
        v.reset();
        v.step(&[Action::Discrete(0)]);
    }

    /// The threaded schedule partitions instances across workers but must
    /// reproduce the serial schedule exactly: same trajectories, same
    /// auto-resets, same finished-return order.
    #[test]
    fn threaded_step_matches_serial() {
        use msrl_tensor::{par, Backend};
        let run = || {
            let mut v = VecEnv::from_fn(12, |i| CartPole::new(i as u64).with_horizon(5));
            let mut last = v.reset();
            let mut rewards = Vec::new();
            for s in 0..12 {
                let acts: Vec<Action> = (0..12).map(|i| Action::Discrete((s + i) % 2)).collect();
                let st = v.step(&acts);
                last = st.obs;
                rewards.push(st.rewards);
            }
            (last, rewards, v.take_finished_returns())
        };
        let (serial, threaded) = par::with_threads(4, || {
            par::with_par_min(1, || {
                (par::with_backend(Backend::Scalar, run), par::with_backend(Backend::Threaded, run))
            })
        });
        assert_eq!(serial.0, threaded.0, "final observations");
        assert_eq!(serial.1, threaded.1, "per-step rewards");
        assert_eq!(serial.2, threaded.2, "finished-return order");
    }
}
