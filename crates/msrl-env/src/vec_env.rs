//! Vectorised execution of many environment instances.
//!
//! The paper's actors each interact with a *set* of environments ("each
//! actor interacts with 32 environments", §3). [`VecEnv`] is that set: it
//! steps every instance with a batch of actions, auto-resets finished
//! episodes, and returns batched tensors ready for fused policy inference.

use msrl_tensor::{ops, Tensor};

use crate::spec::{Action, ActionSpec};
use crate::Environment;

/// A batch of environments stepped in lockstep.
pub struct VecEnv {
    envs: Vec<Box<dyn Environment>>,
    obs_dim: usize,
    spec: ActionSpec,
    /// Episode return accumulated per instance (diagnostics).
    returns: Vec<f32>,
    /// Returns of episodes completed since the last query.
    finished_returns: Vec<f32>,
}

/// Result of stepping a [`VecEnv`].
#[derive(Debug, Clone)]
pub struct VecStep {
    /// Batched next observations, `[n, obs_dim]` (auto-reset on done).
    pub obs: Tensor,
    /// Rewards, `[n]`.
    pub rewards: Tensor,
    /// Per-instance terminal flags for this step.
    pub dones: Vec<bool>,
}

impl VecEnv {
    /// Wraps a non-empty set of homogeneous environments.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or instances disagree on observation or
    /// action specs — a construction-time configuration error.
    pub fn new(envs: Vec<Box<dyn Environment>>) -> Self {
        assert!(!envs.is_empty(), "VecEnv needs at least one environment");
        let obs_dim = envs[0].obs_dim();
        let spec = envs[0].action_spec();
        for e in &envs {
            assert_eq!(e.obs_dim(), obs_dim, "heterogeneous obs dims");
            assert_eq!(e.action_spec(), spec, "heterogeneous action specs");
        }
        let n = envs.len();
        VecEnv { envs, obs_dim, spec, returns: vec![0.0; n], finished_returns: Vec::new() }
    }

    /// Builds `n` instances from a constructor taking the instance index
    /// (typically used to derive per-instance seeds).
    pub fn from_fn<E, F>(n: usize, f: F) -> Self
    where
        E: Environment + 'static,
        F: Fn(usize) -> E,
    {
        VecEnv::new((0..n).map(|i| Box::new(f(i)) as Box<dyn Environment>).collect())
    }

    /// Number of environment instances.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// Whether the batch is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// Per-instance observation width.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// The shared action spec.
    pub fn action_spec(&self) -> ActionSpec {
        self.spec
    }

    /// Total virtual CPU cost of one batched step (sum over instances).
    pub fn step_cost(&self) -> f64 {
        self.envs.iter().map(|e| e.step_cost()).sum()
    }

    /// Resets every instance; returns `[n, obs_dim]`.
    pub fn reset(&mut self) -> Tensor {
        let obs: Vec<Tensor> = self.envs.iter_mut().map(|e| e.reset()).collect();
        for r in &mut self.returns {
            *r = 0.0;
        }
        let refs: Vec<&Tensor> = obs.iter().collect();
        ops::stack(&refs).expect("homogeneous obs dims")
    }

    /// Steps every instance with its action; finished instances are
    /// reset, and their observation in the result is the fresh reset.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len() != self.len()` — a caller bug, since the
    /// batch size is fixed at construction.
    pub fn step(&mut self, actions: &[Action]) -> VecStep {
        assert_eq!(actions.len(), self.envs.len(), "one action per instance");
        let mut obs = Vec::with_capacity(self.envs.len());
        let mut rewards = Vec::with_capacity(self.envs.len());
        let mut dones = Vec::with_capacity(self.envs.len());
        for (i, (env, action)) in self.envs.iter_mut().zip(actions).enumerate() {
            let step = env.step(action);
            self.returns[i] += step.reward;
            rewards.push(step.reward);
            dones.push(step.done);
            if step.done {
                self.finished_returns.push(self.returns[i]);
                self.returns[i] = 0.0;
                obs.push(env.reset());
            } else {
                obs.push(step.obs);
            }
        }
        let refs: Vec<&Tensor> = obs.iter().collect();
        VecStep {
            obs: ops::stack(&refs).expect("homogeneous obs dims"),
            rewards: Tensor::from_vec(rewards, &[self.envs.len()]).expect("length matches"),
            dones,
        }
    }

    /// Drains the returns of episodes that finished since the last call.
    pub fn take_finished_returns(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.finished_returns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartpole::CartPole;

    #[test]
    fn reset_shapes() {
        let mut v = VecEnv::from_fn(3, |i| CartPole::new(i as u64));
        let obs = v.reset();
        assert_eq!(obs.shape(), &[3, 4]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.obs_dim(), 4);
    }

    #[test]
    fn step_returns_batched_results() {
        let mut v = VecEnv::from_fn(2, |i| CartPole::new(i as u64));
        v.reset();
        let s = v.step(&[Action::Discrete(0), Action::Discrete(1)]);
        assert_eq!(s.obs.shape(), &[2, 4]);
        assert_eq!(s.rewards.shape(), &[2]);
        assert_eq!(s.dones.len(), 2);
    }

    #[test]
    fn auto_reset_and_finished_returns() {
        let mut v = VecEnv::from_fn(1, |_| CartPole::new(0).with_horizon(3));
        v.reset();
        // Survive via alternation until the 3-step horizon truncates.
        for i in 0..3 {
            v.step(&[Action::Discrete(i % 2)]);
        }
        let finished = v.take_finished_returns();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0], 3.0, "3 survival rewards");
        assert!(v.take_finished_returns().is_empty(), "drained");
    }

    #[test]
    #[should_panic(expected = "one action per instance")]
    fn wrong_action_count_panics() {
        let mut v = VecEnv::from_fn(2, |i| CartPole::new(i as u64));
        v.reset();
        v.step(&[Action::Discrete(0)]);
    }
}
