//! A tiny deterministic grid world.
//!
//! Exact, hand-computable dynamics make this the reference environment
//! for testing return/advantage computations (GAE, discounted rewards)
//! and replay-buffer plumbing, where floating-point physics would blur
//! expected values.

use msrl_tensor::Tensor;

use crate::spec::{Action, ActionSpec, Step};
use crate::Environment;

/// An `n × n` grid. The agent starts at the top-left corner `(0, 0)` and
/// must reach the bottom-right goal. Actions: 0 = up, 1 = down, 2 = left,
/// 3 = right (moves off the grid are no-ops). Reward is −1 per step and
/// +10 on reaching the goal; the observation is the one-hot cell index.
#[derive(Debug, Clone)]
pub struct GridWorld {
    n: usize,
    row: usize,
    col: usize,
    steps: usize,
    horizon: usize,
}

impl GridWorld {
    /// Creates an `n × n` grid with a `4·n²` step horizon.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "grid must be at least 2×2");
        GridWorld { n, row: 0, col: 0, steps: 0, horizon: 4 * n * n }
    }

    /// Current cell as `(row, col)`.
    pub fn position(&self) -> (usize, usize) {
        (self.row, self.col)
    }

    fn at_goal(&self) -> bool {
        self.row == self.n - 1 && self.col == self.n - 1
    }

    fn obs(&self) -> Tensor {
        let mut v = vec![0.0; self.n * self.n];
        v[self.row * self.n + self.col] = 1.0;
        let len = v.len();
        Tensor::from_vec(v, &[len]).expect("length matches")
    }
}

impl Environment for GridWorld {
    fn obs_dim(&self) -> usize {
        self.n * self.n
    }

    fn action_spec(&self) -> ActionSpec {
        ActionSpec::Discrete { n: 4 }
    }

    fn reset(&mut self) -> Tensor {
        self.row = 0;
        self.col = 0;
        self.steps = 0;
        self.obs()
    }

    fn step(&mut self, action: &Action) -> Step {
        match action.as_discrete() {
            Some(0) => self.row = self.row.saturating_sub(1),
            Some(1) => self.row = (self.row + 1).min(self.n - 1),
            Some(2) => self.col = self.col.saturating_sub(1),
            Some(3) => self.col = (self.col + 1).min(self.n - 1),
            _ => {}
        }
        self.steps += 1;
        let done = self.at_goal() || self.steps >= self.horizon;
        let reward = if self.at_goal() { 10.0 } else { -1.0 };
        Step { obs: self.obs(), reward, done }
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_path_return_is_exact() {
        // On a 3×3 grid the shortest path is 4 moves: 3 at −1 plus the
        // goal step at +10 ⇒ return 7.
        let mut g = GridWorld::new(3);
        g.reset();
        let mut total = 0.0;
        for a in [1, 1, 3, 3] {
            let s = g.step(&Action::Discrete(a));
            total += s.reward;
            if s.done {
                break;
            }
        }
        assert_eq!(total, 7.0);
        assert_eq!(g.position(), (2, 2));
    }

    #[test]
    fn walls_block_movement() {
        let mut g = GridWorld::new(2);
        g.reset();
        g.step(&Action::Discrete(0)); // up from (0,0): no-op
        assert_eq!(g.position(), (0, 0));
        g.step(&Action::Discrete(2)); // left: no-op
        assert_eq!(g.position(), (0, 0));
    }

    #[test]
    fn one_hot_observation() {
        let mut g = GridWorld::new(2);
        let obs = g.reset();
        assert_eq!(obs.data(), &[1.0, 0.0, 0.0, 0.0]);
        let s = g.step(&Action::Discrete(3));
        assert_eq!(s.obs.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn horizon_truncates_wandering() {
        let mut g = GridWorld::new(2);
        g.reset();
        let mut done = false;
        let mut n = 0;
        while !done {
            done = g.step(&Action::Discrete(0)).done;
            n += 1;
        }
        assert_eq!(n, g.horizon());
    }
}
