//! The classic CartPole balancing task (Barto, Sutton & Anderson 1983,
//! with the OpenAI Gym constants).
//!
//! Used throughout the test suite as a fast single-agent environment that
//! PPO demonstrably solves, validating real end-to-end execution of
//! fragmented dataflow graphs.

use msrl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{Action, ActionSpec, Step};
use crate::Environment;

const GRAVITY: f32 = 9.8;
const CART_MASS: f32 = 1.0;
const POLE_MASS: f32 = 0.1;
const TOTAL_MASS: f32 = CART_MASS + POLE_MASS;
const POLE_HALF_LEN: f32 = 0.5;
const POLE_MASS_LEN: f32 = POLE_MASS * POLE_HALF_LEN;
const FORCE_MAG: f32 = 10.0;
const DT: f32 = 0.02;
const THETA_LIMIT: f32 = 12.0 * std::f32::consts::PI / 180.0;
const X_LIMIT: f32 = 2.4;

/// The CartPole environment: balance a pole on a cart by pushing the cart
/// left (action 0) or right (action 1). Reward is +1 per surviving step.
#[derive(Debug, Clone)]
pub struct CartPole {
    x: f32,
    x_dot: f32,
    theta: f32,
    theta_dot: f32,
    steps: usize,
    horizon: usize,
    rng: StdRng,
}

impl CartPole {
    /// Creates a CartPole with the given seed and a 500-step horizon.
    pub fn new(seed: u64) -> Self {
        CartPole {
            x: 0.0,
            x_dot: 0.0,
            theta: 0.0,
            theta_dot: 0.0,
            steps: 0,
            horizon: 500,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the episode horizon.
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self
    }

    fn obs(&self) -> Tensor {
        Tensor::from_vec(vec![self.x, self.x_dot, self.theta, self.theta_dot], &[4])
            .expect("fixed length")
    }

    fn failed(&self) -> bool {
        self.x.abs() > X_LIMIT || self.theta.abs() > THETA_LIMIT
    }
}

impl Environment for CartPole {
    fn obs_dim(&self) -> usize {
        4
    }

    fn action_spec(&self) -> ActionSpec {
        ActionSpec::Discrete { n: 2 }
    }

    fn reset(&mut self) -> Tensor {
        self.x = self.rng.gen_range(-0.05..0.05);
        self.x_dot = self.rng.gen_range(-0.05..0.05);
        self.theta = self.rng.gen_range(-0.05..0.05);
        self.theta_dot = self.rng.gen_range(-0.05..0.05);
        self.steps = 0;
        self.obs()
    }

    fn step(&mut self, action: &Action) -> Step {
        let force = match action.as_discrete() {
            Some(1) => FORCE_MAG,
            _ => -FORCE_MAG,
        };
        let cos = self.theta.cos();
        let sin = self.theta.sin();
        let temp = (force + POLE_MASS_LEN * self.theta_dot * self.theta_dot * sin) / TOTAL_MASS;
        let theta_acc = (GRAVITY * sin - cos * temp)
            / (POLE_HALF_LEN * (4.0 / 3.0 - POLE_MASS * cos * cos / TOTAL_MASS));
        let x_acc = temp - POLE_MASS_LEN * theta_acc * cos / TOTAL_MASS;
        self.x += DT * self.x_dot;
        self.x_dot += DT * x_acc;
        self.theta += DT * self.theta_dot;
        self.theta_dot += DT * theta_acc;
        self.steps += 1;
        let done = self.failed() || self.steps >= self.horizon;
        Step { obs: self.obs(), reward: 1.0, done }
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_starts_near_upright() {
        let mut env = CartPole::new(0);
        let obs = env.reset();
        assert_eq!(obs.shape(), &[4]);
        assert!(obs.data().iter().all(|v| v.abs() < 0.05));
    }

    #[test]
    fn pole_falls_under_constant_push() {
        let mut env = CartPole::new(1);
        env.reset();
        let mut done = false;
        let mut steps = 0;
        while !done && steps < 500 {
            let s = env.step(&Action::Discrete(1));
            done = s.done;
            steps += 1;
        }
        assert!(done, "constant pushing must eventually fail");
        assert!(steps < 200, "failure should be quick, took {steps}");
    }

    #[test]
    fn alternating_policy_survives_longer_than_constant() {
        let run = |alternate: bool| {
            let mut env = CartPole::new(2);
            env.reset();
            for i in 0..500 {
                let a = if alternate { i % 2 } else { 1 };
                if env.step(&Action::Discrete(a)).done {
                    return i;
                }
            }
            500
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn horizon_truncates() {
        let mut env = CartPole::new(3).with_horizon(5);
        env.reset();
        let mut n = 0;
        loop {
            n += 1;
            // Alternate to stay alive.
            if env.step(&Action::Discrete(n % 2)).done {
                break;
            }
        }
        assert!(n <= 5);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = CartPole::new(7);
        let mut b = CartPole::new(7);
        assert_eq!(a.reset().data(), b.reset().data());
        let sa = a.step(&Action::Discrete(0));
        let sb = b.step(&Action::Discrete(0));
        assert_eq!(sa.obs.data(), sb.obs.data());
    }
}
