//! Property-based tests for the environment physics.
//!
//! Environments feed every experiment in the reproduction; these
//! properties catch physics bugs (NaNs, unbounded states, broken
//! determinism) that fixed-seed unit tests can miss.

use msrl_env::batched::{BatchedEnv, BatchedTag};
use msrl_env::cartpole::CartPole;
use msrl_env::halfcheetah::HalfCheetah;
use msrl_env::mpe::{decode_action, Body, SimpleSpread, World};
use msrl_env::spec::Action;
use msrl_env::{Environment, MultiAgentEnvironment};
use msrl_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    /// Any action sequence keeps CartPole's state finite and inside the
    /// failure envelope at termination time (the env terminates *before*
    /// the state can blow up).
    #[test]
    fn cartpole_states_stay_finite(seed in 0u64..500, acts in proptest::collection::vec(0usize..2, 1..200)) {
        let mut env = CartPole::new(seed);
        let mut obs = env.reset();
        for &a in &acts {
            let s = env.step(&Action::Discrete(a));
            prop_assert!(s.obs.all_finite());
            obs = s.obs;
            if s.done {
                break;
            }
        }
        prop_assert!(obs.all_finite());
    }

    /// HalfCheetah never produces NaN rewards or observations under
    /// arbitrary (clamped) torques.
    #[test]
    fn halfcheetah_robust_to_any_torque(
        seed in 0u64..100,
        torques in proptest::collection::vec(-2.0f32..2.0, 6 * 30),
    ) {
        let mut env = HalfCheetah::new(seed);
        env.reset();
        for chunk in torques.chunks(6) {
            let a = Action::Continuous(Tensor::from_vec(chunk.to_vec(), &[6]).unwrap());
            let s = env.step(&a);
            prop_assert!(s.obs.all_finite());
            prop_assert!(s.reward.is_finite());
        }
    }

    /// Environments are deterministic under a fixed seed for any action
    /// sequence — required for the runtime's bit-replay guarantees.
    #[test]
    fn seeded_envs_replay_identically(seed in 0u64..200, acts in proptest::collection::vec(0usize..2, 1..50)) {
        let run = |seed: u64| {
            let mut env = CartPole::new(seed);
            env.reset();
            let mut trace = Vec::new();
            for &a in &acts {
                let s = env.step(&Action::Discrete(a));
                trace.extend_from_slice(s.obs.data());
                if s.done {
                    break;
                }
            }
            trace
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// MPE worlds conserve sanity: velocities respect the speed caps and
    /// positions stay finite under any force pattern.
    #[test]
    fn mpe_world_respects_speed_caps(
        forces in proptest::collection::vec(0usize..5, 2 * 40),
    ) {
        let mut w = World::new(
            vec![Body::agent(0.05, 3.0, 1.0), Body::agent(0.05, 4.0, 1.3)],
            vec![Body::landmark(0.1)],
        );
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        w.scatter(1.0, &mut rng);
        for pair in forces.chunks(2) {
            w.step(&[decode_action(pair[0]), decode_action(pair[1])]);
            for (i, a) in w.agents.iter().enumerate() {
                let speed = (a.vel[0].powi(2) + a.vel[1].powi(2)).sqrt();
                let cap = if i == 0 { 1.0 } else { 1.3 };
                prop_assert!(speed <= cap + 1e-4, "agent {} speed {}", i, speed);
                prop_assert!(a.pos[0].is_finite() && a.pos[1].is_finite());
            }
        }
    }

    /// Spread rewards are shared-coverage dominated: all agents receive
    /// the same coverage term, so rewards differ only by collision
    /// penalties (bounded multiples of 1).
    #[test]
    fn spread_rewards_are_nearly_shared(seed in 0u64..100) {
        let mut env = SimpleSpread::new(3, seed);
        env.reset();
        let step = env.step(&[Action::Discrete(1), Action::Discrete(2), Action::Discrete(3)]);
        let max = step.rewards.iter().cloned().fold(f32::MIN, f32::max);
        let min = step.rewards.iter().cloned().fold(f32::MAX, f32::min);
        prop_assert!(max - min <= 2.0 + 1e-5, "spread {} vs {}", min, max);
    }

    /// The batched tag environment agrees with itself across batch
    /// sizes: world 0 of a 1-world batch evolves identically to world 0
    /// of a 4-world batch under the same seed and actions.
    #[test]
    fn batched_tag_worlds_do_not_interfere(acts in proptest::collection::vec(0usize..5, 8)) {
        let run = |n_worlds: usize| {
            let mut env = BatchedTag::new(n_worlds, 1, 1, 9);
            env.reset();
            let per = env.agents_per_world();
            let mut out = Vec::new();
            for &a in &acts {
                let mut actions = vec![0usize; env.total_agents()];
                actions[0] = a;
                actions[1] = (a + 2) % 5;
                let s = env.step(&actions);
                out.extend_from_slice(&s.obs.data()[..per * env.obs_dim()]);
            }
            out
        };
        // Note: reset() draws per-world positions from one RNG stream, so
        // world 0's *initial* state matches only when it is drawn first —
        // it is, in both cases.
        prop_assert_eq!(run(1), run(4));
    }
}
