//! # msrl-comm
//!
//! The communication substrate of the msrl-rs reproduction.
//!
//! The original MSRL synchronises fragments with NCCL collectives between
//! GPUs and MPI over InfiniBand between workers (§5.2 of the paper).
//! Neither a GPU fabric nor a multi-node cluster is available here, so
//! this crate substitutes both layers:
//!
//! * [`topology`] — devices, nodes and cluster descriptions, including the
//!   paper's two testbeds (Tab. 3);
//! * [`fabric`] — a *real* in-process transport: one endpoint per fragment
//!   replica, FIFO channels, and the collectives MSRL's partition
//!   annotations name (`AllGather`, `AllReduce`, `Broadcast`, point-to-
//!   point send/receive). Used when FDGs execute for real on threads.
//! * [`model`] — α–β (latency–bandwidth) cost models for PCIe, NVLink,
//!   10 GbE and 100 Gb InfiniBand links, and analytic collective cost
//!   formulas. Used by the discrete-event simulator to price the same
//!   collectives on the paper's clusters.
//!
//! Keeping the *semantics* (who blocks on whom) in [`fabric`] and the
//! *timing* in [`model`] means both execution modes share one notion of a
//! collective, so the simulator cannot drift from real behaviour.

#![warn(missing_docs)]

pub mod fabric;
pub mod model;
pub mod topology;

pub use fabric::{CommError, Endpoint, Fabric, PendingOp, PendingRecv};
pub use model::{LinkModel, NetworkModel};
pub use topology::{ClusterSpec, DeviceId, DeviceKind, NodeSpec};

/// Whether communication/computation overlap is enabled (`MSRL_OVERLAP`,
/// default on; `0`/`false`/`off` disable). Read per call so tests and
/// report binaries can flip it between runs.
pub fn overlap_enabled() -> bool {
    match std::env::var("MSRL_OVERLAP") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "false" || v == "off")
        }
        Err(_) => true,
    }
}

/// The bounded-staleness window for double-buffered weight sync
/// (`MSRL_STALENESS`, default 1): actors may roll out on weights at most
/// this many iterations old while the next broadcast is in flight.
pub fn staleness_bound() -> usize {
    std::env::var("MSRL_STALENESS").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(1)
}

/// Chunk size, in `f32` elements, for the chunked all-reduce
/// (`MSRL_COMM_CHUNK`, default 32768, minimum 1).
pub fn comm_chunk_elems() -> usize {
    std::env::var("MSRL_COMM_CHUNK")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(32_768)
        .max(1)
}
