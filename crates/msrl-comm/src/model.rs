//! α–β link cost models and analytic collective cost formulas.
//!
//! The paper's distribution-policy trade-offs (Figs. 7c, 7d, 8) are driven
//! by how often fragments synchronise and how much data each
//! synchronisation moves. The standard α–β model prices a message of `n`
//! bytes on a link as `α + n/β` (latency plus serialisation time); ring
//! collective formulas then price AllReduce/AllGather/Broadcast across `p`
//! participants. These are the cost inputs the discrete-event simulator
//! charges when replaying the paper's cluster experiments.

use serde::{Deserialize, Serialize};

use crate::topology::DeviceId;

/// An α–β link: fixed latency plus bytes over bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way message latency in seconds (α).
    pub latency_s: f64,
    /// Bandwidth in bytes per second (β).
    pub bandwidth_bps: f64,
}

impl LinkModel {
    /// Creates a link model.
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        LinkModel { latency_s, bandwidth_bps }
    }

    /// Time to move `bytes` across the link once.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// PCIe 3.0 x16: ~12.8 GB/s effective, ~5 µs latency.
    pub fn pcie() -> Self {
        LinkModel::new(5e-6, 12.8e9)
    }

    /// NVLink 2.0: ~150 GB/s effective, ~2 µs latency.
    pub fn nvlink() -> Self {
        LinkModel::new(2e-6, 150e9)
    }

    /// 10 Gb Ethernet: ~1.1 GB/s effective, ~200 µs latency (the paper's
    /// cloud cluster measures 0.2 ms baseline latency in Fig. 7d).
    pub fn ethernet_10g() -> Self {
        LinkModel::new(200e-6, 1.1e9)
    }

    /// 100 Gb InfiniBand: ~11 GB/s effective, ~2 µs latency.
    pub fn infiniband_100g() -> Self {
        LinkModel::new(2e-6, 11e9)
    }

    /// In-process shared memory (co-located fragments): effectively free
    /// but not zero, modelling a memcpy.
    pub fn shared_memory() -> Self {
        LinkModel::new(2e-7, 50e9)
    }
}

/// A two-tier network: one link class inside a node, another between
/// nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link between devices on the same node (PCIe or NVLink).
    pub intra_node: LinkModel,
    /// Link between nodes (Ethernet or InfiniBand).
    pub inter_node: LinkModel,
}

impl NetworkModel {
    /// The paper's cloud cluster fabric: PCIe + 10 GbE.
    pub fn cloud() -> Self {
        NetworkModel { intra_node: LinkModel::pcie(), inter_node: LinkModel::ethernet_10g() }
    }

    /// The paper's local cluster fabric: NVLink + 100 Gb InfiniBand.
    pub fn local() -> Self {
        NetworkModel { intra_node: LinkModel::nvlink(), inter_node: LinkModel::infiniband_100g() }
    }

    /// Returns a copy with extra one-way latency added to the inter-node
    /// link — the `tc`-injected latency sweep of Fig. 7d.
    pub fn with_added_latency(mut self, seconds: f64) -> Self {
        self.inter_node.latency_s += seconds;
        self
    }

    /// The link between two devices.
    pub fn link(&self, a: DeviceId, b: DeviceId) -> LinkModel {
        if a.co_located(&b) {
            self.intra_node
        } else {
            self.inter_node
        }
    }

    /// The *widest-spanning* link among a participant set: if any pair
    /// crosses nodes, collectives are bottlenecked by the inter-node link.
    pub fn spanning_link(&self, participants: &[DeviceId]) -> LinkModel {
        let crosses = participants.windows(2).any(|w| !w[0].co_located(&w[1]))
            || participants.first().zip(participants.last()).is_some_and(|(a, b)| !a.co_located(b));
        if crosses {
            self.inter_node
        } else {
            self.intra_node
        }
    }

    /// Point-to-point transfer time.
    pub fn p2p_time(&self, from: DeviceId, to: DeviceId, bytes: u64) -> f64 {
        self.link(from, to).transfer_time(bytes)
    }

    /// Ring AllReduce over `p` participants, `bytes` per participant:
    /// `2(p−1)` steps, each moving `bytes/p` and paying one latency.
    pub fn allreduce_time(&self, participants: &[DeviceId], bytes: u64) -> f64 {
        let p = participants.len();
        if p <= 1 {
            return 0.0;
        }
        let link = self.spanning_link(participants);
        let steps = 2 * (p - 1);
        steps as f64 * (link.latency_s + (bytes as f64 / p as f64) / link.bandwidth_bps)
    }

    /// Ring AllGather over `p` participants, `bytes` contributed by each:
    /// `p−1` steps, each moving one contribution.
    pub fn allgather_time(&self, participants: &[DeviceId], bytes: u64) -> f64 {
        let p = participants.len();
        if p <= 1 {
            return 0.0;
        }
        let link = self.spanning_link(participants);
        (p - 1) as f64 * (link.latency_s + bytes as f64 / link.bandwidth_bps)
    }

    /// Binomial-tree broadcast of `bytes` from a root to `p−1` receivers:
    /// `⌈log₂ p⌉` rounds.
    pub fn broadcast_time(&self, participants: &[DeviceId], bytes: u64) -> f64 {
        let p = participants.len();
        if p <= 1 {
            return 0.0;
        }
        let link = self.spanning_link(participants);
        let rounds = (p as f64).log2().ceil();
        rounds * (link.latency_s + bytes as f64 / link.bandwidth_bps)
    }

    /// Gather of `bytes` from each of `p−1` senders to a root, serialised
    /// at the root's ingress (the single-learner bottleneck of DP-A/DP-B).
    pub fn gather_time(&self, participants: &[DeviceId], bytes: u64) -> f64 {
        let p = participants.len();
        if p <= 1 {
            return 0.0;
        }
        let link = self.spanning_link(participants);
        // The root receives p−1 messages; latency pipelines, payloads
        // serialise on its ingress link.
        link.latency_s + (p - 1) as f64 * (bytes as f64 / link.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpus_spread(n: usize) -> Vec<DeviceId> {
        (0..n).map(|i| DeviceId::gpu(i, 0)).collect()
    }

    fn gpus_one_node(n: usize) -> Vec<DeviceId> {
        (0..n).map(|i| DeviceId::gpu(0, i)).collect()
    }

    #[test]
    fn transfer_time_is_alpha_beta() {
        let l = LinkModel::new(1e-3, 1e9);
        let t = l.transfer_time(1_000_000);
        assert!((t - (1e-3 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn nvlink_faster_than_ethernet() {
        let bytes = 10_000_000;
        assert!(
            LinkModel::nvlink().transfer_time(bytes)
                < LinkModel::ethernet_10g().transfer_time(bytes)
        );
    }

    #[test]
    fn colocated_uses_intra_link() {
        let n = NetworkModel::local();
        let t_intra = n.p2p_time(DeviceId::gpu(0, 0), DeviceId::gpu(0, 1), 1 << 20);
        let t_inter = n.p2p_time(DeviceId::gpu(0, 0), DeviceId::gpu(1, 0), 1 << 20);
        assert!(t_intra < t_inter);
    }

    #[test]
    fn spanning_link_detects_cross_node() {
        let n = NetworkModel::cloud();
        assert_eq!(n.spanning_link(&gpus_one_node(4)), LinkModel::pcie());
        assert_eq!(n.spanning_link(&gpus_spread(2)), LinkModel::ethernet_10g());
    }

    #[test]
    fn allreduce_scales_with_latency_times_steps() {
        // Small tensors: latency dominates; doubling participants roughly
        // doubles the step count (Fig. 7d mechanism: DP-C transmits many
        // small tensors and suffers under added latency).
        let net = NetworkModel::cloud();
        let t4 = net.allreduce_time(&gpus_spread(4), 1024);
        let t8 = net.allreduce_time(&gpus_spread(8), 1024);
        assert!(t8 > 1.8 * t4, "t8 {t8} vs t4 {t4}");
    }

    #[test]
    fn allreduce_bandwidth_term_is_p_independent_for_large_tensors() {
        // Large tensors: ring AllReduce moves ~2·bytes regardless of p.
        let net = NetworkModel::local();
        let big = 1 << 30;
        let t4 = net.allreduce_time(&gpus_spread(4), big);
        let t16 = net.allreduce_time(&gpus_spread(16), big);
        assert!(t16 < 1.5 * t4, "t16 {t16} vs t4 {t4}");
    }

    #[test]
    fn added_latency_only_affects_inter_node() {
        let base = NetworkModel::cloud();
        let slow = base.with_added_latency(6e-3);
        assert_eq!(base.intra_node, slow.intra_node);
        assert!(slow.inter_node.latency_s > 6e-3);
    }

    #[test]
    fn collectives_are_free_for_single_participant() {
        let net = NetworkModel::cloud();
        let one = gpus_spread(1);
        assert_eq!(net.allreduce_time(&one, 1 << 20), 0.0);
        assert_eq!(net.allgather_time(&one, 1 << 20), 0.0);
        assert_eq!(net.broadcast_time(&one, 1 << 20), 0.0);
        assert_eq!(net.gather_time(&one, 1 << 20), 0.0);
    }

    #[test]
    fn gather_serialises_at_root() {
        let net = NetworkModel::cloud();
        let t8 = net.gather_time(&gpus_spread(8), 1 << 20);
        let t16 = net.gather_time(&gpus_spread(16), 1 << 20);
        // Payload term doubles with p (more senders into one root).
        assert!(t16 > 1.9 * t8 - net.inter_node.latency_s);
    }
}
