//! A real in-process transport with MPI/NCCL-style collectives and
//! non-blocking, overlap-friendly primitives.
//!
//! When MSRL executes a fragmented dataflow graph for real, each fragment
//! replica runs on its own thread ("device") and synchronises with the
//! collectives named by the partition annotations. [`Fabric::new`] builds
//! a fully-connected group of [`Endpoint`]s over FIFO channels; each
//! endpoint then offers `send`/`recv`, `all_gather`, `all_reduce_mean`,
//! `broadcast` and `barrier` with the same blocking semantics as the MPI
//! operations they stand in for — plus the asynchronous surface the
//! distribution policies use to *overlap* communication with computation:
//!
//! * [`Endpoint::isend`] / [`Endpoint::irecv`] — handle-based
//!   non-blocking point-to-point ops. An [`PendingRecv`] is polled
//!   ([`PendingRecv::poll`]) or waited ([`PendingRecv::wait`]); the wait
//!   parks on the channel's condvar, so a blocked fragment costs no CPU.
//! * [`Endpoint::all_reduce_mean_concat`] — a fused collective: extra
//!   payload segments (e.g. episode returns) ride the gradient
//!   all-reduce in a single barrier instead of paying a second one.
//! * [`Endpoint::all_reduce_mean_chunked`] — splits large payloads so
//!   reduction of chunk *k* overlaps the transfer of chunk *k+1*.
//! * [`Endpoint::recv_any`] — completion-order receive across several
//!   peers, for arrival-order learners (A3C, parameter servers) that
//!   previously spin-polled.
//!
//! An optional injected latency per message reproduces the `tc`-based
//! latency experiments of the paper (Fig. 7d) in real mode. The latency
//! is modelled at the *receiver*: `send` stamps a delivery deadline and
//! returns immediately (messages are "in flight"), and the receiving
//! side sleeps out whatever remains of the deadline when it claims the
//! message. The sender therefore never blocks for the simulated wire
//! time — the property the overlap machinery depends on — and nobody
//! holds a lock across the latency simulation.
//!
//! Every operation feeds the [`msrl_telemetry`] pipeline: blocking calls
//! record `comm.*` spans when `MSRL_TRACE` is on (a [`PendingRecv::wait`]
//! records only the *residual* blocked time, which is how reclaimed
//! overlap shows up in profiles), and the always-on counters
//! `comm.bytes_sent` / `comm.bytes_recv` / `comm.msgs_sent` total traffic
//! while `comm.sim_latency_ns` attributes time spent waiting out the
//! injected latency. Each blocking site also records its latency into an
//! always-on `comm.*` histogram, so reports carry per-collective and
//! blocked-recv p50/p99 even without tracing.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};

/// Errors from transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The destination rank does not exist.
    UnknownRank {
        /// Offending rank.
        rank: usize,
        /// Group size.
        size: usize,
    },
    /// The peer endpoint was dropped while we were waiting on it.
    Disconnected,
    /// A collective received a message with an unexpected tag — the group
    /// is executing mismatched collectives (a fragment-graph bug).
    TagMismatch {
        /// Tag we expected.
        expected: u64,
        /// Tag we received.
        actual: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::UnknownRank { rank, size } => {
                write!(f, "rank {rank} out of range for group of {size}")
            }
            CommError::Disconnected => write!(f, "peer endpoint disconnected"),
            CommError::TagMismatch { expected, actual } => {
                write!(f, "collective tag mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A message: an opaque `f32` payload, a collective tag, and the instant
/// the simulated wire delivers it (None ⇒ immediately).
#[derive(Debug, Clone)]
struct Message {
    tag: u64,
    deliver_at: Option<Instant>,
    payload: Vec<f32>,
}

/// True once the simulated wire has delivered `msg`.
fn delivered(msg: &Message) -> bool {
    msg.deliver_at.is_none_or(|at| at <= Instant::now())
}

/// Sleeps out whatever remains of `msg`'s delivery deadline, attributing
/// the waited time to `comm.sim_latency_ns`. The caller holds no locks
/// here — the message has already been dequeued.
fn wait_delivered(msg: &Message) {
    let Some(at) = msg.deliver_at else { return };
    let now = Instant::now();
    if at > now {
        let remaining = at - now;
        std::thread::sleep(remaining);
        msrl_telemetry::static_counter!("comm.sim_latency_ns").add(remaining.as_nanos() as u64);
    }
}

fn count_recv(payload: &[f32]) {
    msrl_telemetry::static_counter!("comm.bytes_recv")
        .add(payload.len() as u64 * std::mem::size_of::<f32>() as u64);
}

/// A communication group factory.
pub struct Fabric;

impl Fabric {
    /// Builds a fully-connected group of `n` endpoints.
    ///
    /// Endpoint `i` can be moved to its own thread; all endpoints must
    /// participate in each collective, mirroring MPI communicator
    /// semantics.
    #[allow(clippy::new_ret_no_self)] // factory for a *group* of endpoints
    pub fn new(n: usize) -> Vec<Endpoint> {
        Self::with_latency(n, Duration::ZERO)
    }

    /// Like [`Fabric::new`], but every message takes `latency` to arrive,
    /// emulating a slow network in real executions. The latency is paid
    /// by the *receiver* when it claims the message; senders never block.
    pub fn with_latency(n: usize, latency: Duration) -> Vec<Endpoint> {
        let mut senders: Vec<Vec<Sender<Message>>> = vec![Vec::with_capacity(n); n];
        let mut receivers: Vec<Vec<Receiver<Message>>> = (0..n).map(|_| Vec::new()).collect();
        // receivers[i][j] carries messages j → i.
        for i in 0..n {
            for _j in 0..n {
                let (tx, rx) = unbounded();
                receivers[i].push(rx);
                senders[i].push(tx);
            }
        }
        // senders built so that senders_for_rank_j[i] sends j → i: we need
        // for each endpoint j the list tx[j→i] for all i.
        let mut out = Vec::with_capacity(n);
        for j in 0..n {
            let mut txs = Vec::with_capacity(n);
            for receiver_senders in senders.iter() {
                txs.push(receiver_senders[j].clone());
            }
            out.push(Endpoint {
                rank: j,
                size: n,
                txs,
                rxs: std::mem::take(&mut receivers[j]),
                stash: RefCell::new((0..n).map(|_| VecDeque::new()).collect()),
                latency,
                next_tag: 1,
            });
        }
        out
    }
}

/// One participant in a communication group.
///
/// Endpoints are `Send` (movable to a device thread) but not `Sync`:
/// exactly one thread drives each endpoint, matching one-rank-per-device
/// MPI/NCCL usage.
pub struct Endpoint {
    rank: usize,
    size: usize,
    /// `txs[i]` sends to rank `i`.
    txs: Vec<Sender<Message>>,
    /// `rxs[j]` receives from rank `j`.
    rxs: Vec<Receiver<Message>>,
    /// Messages pulled off a channel by `try_recv`/`recv_any` before
    /// their simulated delivery deadline, kept FIFO per peer.
    stash: RefCell<Vec<VecDeque<Message>>>,
    latency: Duration,
    next_tag: u64,
}

impl Endpoint {
    /// This endpoint's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The group size.
    pub fn size(&self) -> usize {
        self.size
    }

    fn advance_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn check_rank(&self, rank: usize) -> Result<(), CommError> {
        if rank >= self.size {
            return Err(CommError::UnknownRank { rank, size: self.size });
        }
        Ok(())
    }

    /// Sends a payload to `to`. Never blocks: channels are unbounded and
    /// simulated latency is paid by the receiver.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks or if the peer is gone.
    pub fn send(&self, to: usize, payload: Vec<f32>) -> Result<(), CommError> {
        self.send_tagged(to, 0, payload)
    }

    /// Non-blocking send returning a handle, mirroring MPI `Isend`. The
    /// in-process transport completes sends eagerly, so the returned
    /// [`PendingOp`] is already complete; the handle exists so call sites
    /// read as the overlapped pattern they implement.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks or if the peer is gone.
    pub fn isend(&self, to: usize, payload: Vec<f32>) -> Result<PendingOp, CommError> {
        self.send(to, payload)?;
        Ok(PendingOp { _private: () })
    }

    fn send_tagged(&self, to: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError> {
        let _span = msrl_telemetry::span!("comm.send");
        msrl_telemetry::static_counter!("comm.msgs_sent").add(1);
        msrl_telemetry::static_counter!("comm.bytes_sent")
            .add(payload.len() as u64 * std::mem::size_of::<f32>() as u64);
        let deliver_at = (!self.latency.is_zero()).then(|| Instant::now() + self.latency);
        let tx = self.txs.get(to).ok_or(CommError::UnknownRank { rank: to, size: self.size })?;
        tx.send(Message { tag, deliver_at, payload }).map_err(|_| CommError::Disconnected)
    }

    /// Claims the next message from `from`: the stash first (FIFO), then
    /// the channel (parking until one arrives), then sleeps out any
    /// residual simulated latency — after the dequeue, holding no locks.
    fn next_message(&self, from: usize) -> Result<Message, CommError> {
        self.check_rank(from)?;
        let stashed = self.stash.borrow_mut()[from].pop_front();
        let msg = match stashed {
            Some(m) => m,
            None => self.rxs[from].recv().map_err(|_| CommError::Disconnected)?,
        };
        wait_delivered(&msg);
        Ok(msg)
    }

    /// Non-blocking claim: `Ok(None)` when nothing is queued or the head
    /// message is still in simulated flight (it is stashed, preserving
    /// FIFO order).
    fn try_next_message(&self, from: usize) -> Result<Option<Message>, CommError> {
        self.check_rank(from)?;
        let mut stash = self.stash.borrow_mut();
        if let Some(front) = stash[from].front() {
            if delivered(front) {
                return Ok(Some(stash[from].pop_front().expect("front exists")));
            }
            return Ok(None);
        }
        drop(stash);
        match self.rxs[from].try_recv() {
            Ok(msg) => {
                if delivered(&msg) {
                    Ok(Some(msg))
                } else {
                    self.stash.borrow_mut()[from].push_back(msg);
                    Ok(None)
                }
            }
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(CommError::Disconnected),
        }
    }

    /// Blocks until a payload arrives from `from`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks or if the peer is gone.
    pub fn recv(&self, from: usize) -> Result<Vec<f32>, CommError> {
        Ok(self.recv_tagged(from)?.1)
    }

    fn recv_tagged(&self, from: usize) -> Result<(u64, Vec<f32>), CommError> {
        let _span = msrl_telemetry::span!("comm.recv");
        let _hist = msrl_telemetry::static_histogram!("comm.recv").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        let msg = self.next_message(from)?;
        count_recv(&msg.payload);
        Ok((msg.tag, msg.payload))
    }

    /// Non-blocking receive from `from`; `Ok(None)` when no message is
    /// queued (or the head message is still in simulated flight). The
    /// asynchronous path A3C-style policies use.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks or if the peer is gone.
    pub fn try_recv(&self, from: usize) -> Result<Option<Vec<f32>>, CommError> {
        match self.try_next_message(from)? {
            Some(msg) => {
                count_recv(&msg.payload);
                Ok(Some(msg.payload))
            }
            None => Ok(None),
        }
    }

    /// Posts a non-blocking receive from `from`, mirroring MPI `Irecv`.
    ///
    /// The returned handle claims messages lazily: the next message
    /// dequeued from `from` through the handle, whether by
    /// [`PendingRecv::poll`] or [`PendingRecv::wait`]. Posting several
    /// receives from the same peer is supported as long as the handles
    /// are waited in posting order (the drivers' usage); interleaving
    /// `recv` calls with an outstanding handle on the same peer makes
    /// message attribution depend on dequeue order.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks.
    pub fn irecv(&self, from: usize) -> Result<PendingRecv, CommError> {
        self.check_rank(from)?;
        let prefetched = self.stash.borrow_mut()[from].pop_front();
        Ok(PendingRecv { from, rx: self.rxs[from].clone(), prefetched })
    }

    /// Blocks until a message arrives from *any* of the given peers and
    /// returns `(rank, payload)` in completion order — the arrival-order
    /// receive that A3C learners and parameter servers want. Parks with
    /// bounded backoff between polls instead of spinning, so a blocked
    /// learner does not burn the CPU its workers need.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks or when any polled peer is
    /// gone.
    pub fn recv_any(&self, from: &[usize]) -> Result<(usize, Vec<f32>), CommError> {
        let _span = msrl_telemetry::span!("comm.recv");
        let _hist = msrl_telemetry::static_histogram!("comm.recv").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        for &f in from {
            self.check_rank(f)?;
        }
        let mut backoff = Duration::from_micros(20);
        loop {
            for &f in from {
                if let Some(msg) = self.try_next_message(f)? {
                    count_recv(&msg.payload);
                    return Ok((f, msg.payload));
                }
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(1));
        }
    }

    /// One tagged exchange round: every rank ships `payload` to every
    /// peer and collects all contributions indexed by rank — the shared
    /// body of the collectives, kept span-free so each collective shows
    /// up in traces under exactly one name.
    fn exchange_tagged(&mut self, payload: Vec<f32>) -> Result<Vec<Vec<f32>>, CommError> {
        let tag = self.advance_tag();
        for to in 0..self.size {
            if to != self.rank {
                self.send_tagged(to, tag, payload.clone())?;
            }
        }
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); self.size];
        for (from, slot) in out.iter_mut().enumerate() {
            if from == self.rank {
                *slot = payload.clone();
            } else {
                let (t, p) = self.recv_tagged(from)?;
                if t != tag {
                    return Err(CommError::TagMismatch { expected: tag, actual: t });
                }
                *slot = p;
            }
        }
        Ok(out)
    }

    /// AllGather: every rank contributes a payload and receives all
    /// payloads, indexed by rank. Blocks until the whole group arrives.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or collective mismatch.
    pub fn all_gather(&mut self, payload: Vec<f32>) -> Result<Vec<Vec<f32>>, CommError> {
        let _span = msrl_telemetry::span!("comm.all_gather");
        let _hist = msrl_telemetry::static_histogram!("comm.all_gather").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        self.exchange_tagged(payload)
    }

    /// AllReduce with mean: element-wise average of every rank's payload.
    /// All payloads must have equal length.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection, mismatched collectives, or
    /// ragged payload lengths.
    pub fn all_reduce_mean(&mut self, payload: Vec<f32>) -> Result<Vec<f32>, CommError> {
        let _span = msrl_telemetry::span!("comm.all_reduce");
        let _hist = msrl_telemetry::static_histogram!("comm.all_reduce").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        let len = payload.len();
        let parts = self.exchange_tagged(payload)?;
        reduce_mean_parts(&parts, len, self.size)
    }

    /// Fused AllReduce+AllGather in one barrier: the `reduce` segment is
    /// element-wise averaged (equal length on every rank, like
    /// [`Endpoint::all_reduce_mean`]) while the `extra` segment — any
    /// length per rank — rides the same messages and is returned gathered
    /// by rank. Distribution policies use it to ship episode returns on
    /// the gradient all-reduce instead of paying a second barrier.
    ///
    /// Wire layout per message: `[reduce_len, reduce…, extra…]`; the
    /// header is an exact `f32` for any payload under 2²⁴ elements.
    ///
    /// The averaged segment is bit-identical to the unfused
    /// `all_reduce_mean` (same rank-order accumulation), and the gathered
    /// segments match `all_gather`.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection, mismatched collectives, or
    /// ragged `reduce` lengths.
    pub fn all_reduce_mean_concat(
        &mut self,
        reduce: Vec<f32>,
        extra: Vec<f32>,
    ) -> Result<(Vec<f32>, Vec<Vec<f32>>), CommError> {
        let _span = msrl_telemetry::span!("comm.all_reduce_fused");
        let _hist = msrl_telemetry::static_histogram!("comm.all_reduce_fused").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        let len = reduce.len();
        let mut framed = Vec::with_capacity(1 + len + extra.len());
        framed.push(len as f32);
        framed.extend_from_slice(&reduce);
        framed.extend_from_slice(&extra);
        let parts = self.exchange_tagged(framed)?;
        let mut acc = vec![0.0f32; len];
        let mut extras = Vec::with_capacity(self.size);
        for p in &parts {
            let rlen = p.first().copied().unwrap_or(-1.0);
            if rlen != len as f32 || p.len() < 1 + len {
                return Err(CommError::TagMismatch {
                    expected: len as u64,
                    actual: rlen.max(0.0) as u64,
                });
            }
            for (a, v) in acc.iter_mut().zip(&p[1..1 + len]) {
                *a += v;
            }
            extras.push(p[1 + len..].to_vec());
        }
        let n = self.size as f32;
        for a in &mut acc {
            *a /= n;
        }
        Ok((acc, extras))
    }

    /// Chunked AllReduce-mean: the payload is split into `chunk_elems`
    /// pieces, every piece is shipped up front (sends never block), and
    /// reduction of chunk *k* proceeds while chunk *k+1* is still in
    /// flight — the transfer/reduce pipelining of bucketed collectives.
    /// Results are bit-identical to [`Endpoint::all_reduce_mean`] for any
    /// chunk size (per-element accumulation order is unchanged).
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection, mismatched collectives, or
    /// ragged payload lengths.
    pub fn all_reduce_mean_chunked(
        &mut self,
        payload: Vec<f32>,
        chunk_elems: usize,
    ) -> Result<Vec<f32>, CommError> {
        let chunk = chunk_elems.max(1);
        if payload.len() <= chunk {
            return self.all_reduce_mean(payload);
        }
        let _span = msrl_telemetry::span!("comm.all_reduce");
        let n_chunks = payload.len().div_ceil(chunk);
        let _hist = msrl_telemetry::static_histogram!("comm.all_reduce").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        let tags: Vec<u64> = (0..n_chunks).map(|_| self.advance_tag()).collect();
        for (k, piece) in payload.chunks(chunk).enumerate() {
            for to in 0..self.size {
                if to != self.rank {
                    self.send_tagged(to, tags[k], piece.to_vec())?;
                }
            }
        }
        msrl_telemetry::static_counter!("comm.chunks").add(n_chunks as u64);
        let mut out = Vec::with_capacity(payload.len());
        for (k, piece) in payload.chunks(chunk).enumerate() {
            let mut parts: Vec<Vec<f32>> = vec![Vec::new(); self.size];
            for (from, slot) in parts.iter_mut().enumerate() {
                if from == self.rank {
                    *slot = piece.to_vec();
                } else {
                    let (t, p) = self.recv_tagged(from)?;
                    if t != tags[k] {
                        return Err(CommError::TagMismatch { expected: tags[k], actual: t });
                    }
                    *slot = p;
                }
            }
            out.extend(reduce_mean_parts(&parts, piece.len(), self.size)?);
        }
        Ok(out)
    }

    /// Broadcast from `root`: the root's payload is returned on every
    /// rank (the root passes its data; other ranks pass anything).
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or collective mismatch.
    pub fn broadcast(&mut self, root: usize, payload: Vec<f32>) -> Result<Vec<f32>, CommError> {
        let _span = msrl_telemetry::span!("comm.broadcast");
        let _hist = msrl_telemetry::static_histogram!("comm.broadcast").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        self.check_rank(root)?;
        let tag = self.advance_tag();
        if self.rank == root {
            for to in 0..self.size {
                if to != root {
                    self.send_tagged(to, tag, payload.clone())?;
                }
            }
            Ok(payload)
        } else {
            let (t, p) = self.recv_tagged(root)?;
            if t != tag {
                return Err(CommError::TagMismatch { expected: tag, actual: t });
            }
            Ok(p)
        }
    }

    /// Barrier: returns once every rank has entered.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let _span = msrl_telemetry::span!("comm.barrier");
        let _hist = msrl_telemetry::static_histogram!("comm.barrier").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        self.exchange_tagged(Vec::new()).map(|_| ())
    }
}

/// Sums `parts` element-wise in rank order and divides by `size`,
/// rejecting ragged contributions — the single reduction kernel behind
/// every AllReduce variant, so fused/chunked/unfused results agree
/// bit-for-bit.
fn reduce_mean_parts(parts: &[Vec<f32>], len: usize, size: usize) -> Result<Vec<f32>, CommError> {
    let mut acc = vec![0.0f32; len];
    for p in parts {
        if p.len() != len {
            return Err(CommError::TagMismatch { expected: len as u64, actual: p.len() as u64 });
        }
        for (a, v) in acc.iter_mut().zip(p) {
            *a += v;
        }
    }
    let n = size as f32;
    for a in &mut acc {
        *a /= n;
    }
    Ok(acc)
}

/// Handle for a posted non-blocking receive (see [`Endpoint::irecv`]).
///
/// Owns its own channel handle, so it stays valid while the endpoint
/// keeps communicating; drop it to abandon the receive (the message, if
/// any, is left for the endpoint to claim).
#[must_use = "a posted receive must be polled or waited"]
pub struct PendingRecv {
    from: usize,
    rx: Receiver<Message>,
    prefetched: Option<Message>,
}

impl PendingRecv {
    /// The rank this receive was posted against.
    pub fn from_rank(&self) -> usize {
        self.from
    }

    /// Non-blocking completion check: true once a message has arrived
    /// *and* cleared its simulated delivery deadline — a subsequent
    /// [`PendingRecv::wait`] returns without blocking.
    ///
    /// # Errors
    ///
    /// Returns an error if the peer is gone before sending.
    pub fn poll(&mut self) -> Result<bool, CommError> {
        if self.prefetched.is_none() {
            match self.rx.try_recv() {
                Ok(msg) => self.prefetched = Some(msg),
                Err(crossbeam_channel::TryRecvError::Empty) => return Ok(false),
                Err(crossbeam_channel::TryRecvError::Disconnected) => {
                    return Err(CommError::Disconnected)
                }
            }
        }
        Ok(delivered(self.prefetched.as_ref().expect("just prefetched")))
    }

    /// Completes the receive, parking (condvar inside the channel) until
    /// the message arrives — never spinning — and sleeping out any
    /// residual simulated latency. Records only this *residual* blocked
    /// time as a `comm.recv` span: compute overlapped with the transfer
    /// does not show up as communication time.
    ///
    /// # Errors
    ///
    /// Returns an error if the peer disconnected before sending.
    pub fn wait(mut self) -> Result<Vec<f32>, CommError> {
        let _span = msrl_telemetry::span!("comm.recv");
        let _hist = msrl_telemetry::static_histogram!("comm.recv").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Comm);
        let msg = match self.prefetched.take() {
            Some(m) => m,
            None => self.rx.recv().map_err(|_| CommError::Disconnected)?,
        };
        wait_delivered(&msg);
        count_recv(&msg.payload);
        Ok(msg.payload)
    }
}

/// Handle for a posted non-blocking send (see [`Endpoint::isend`]).
///
/// The in-process transport buffers eagerly, so the operation is
/// complete by the time the handle exists; `wait` is a no-op kept for
/// MPI-shaped symmetry.
#[must_use = "an isend handle documents a pending operation"]
pub struct PendingOp {
    _private: (),
}

impl PendingOp {
    /// True once the transfer has been handed to the transport (always,
    /// for the in-process fabric).
    pub fn is_complete(&self) -> bool {
        true
    }

    /// Completes the operation (immediately, for the in-process fabric).
    pub fn wait(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![1.0, 2.0]).unwrap();
        assert_eq!(b.recv(0).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn send_to_unknown_rank_fails() {
        let eps = Fabric::new(2);
        assert!(matches!(eps[0].send(5, vec![]), Err(CommError::UnknownRank { rank: 5, size: 2 })));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(b.try_recv(0).unwrap(), None);
        a.send(1, vec![7.0]).unwrap();
        // Delivery through an in-process channel is immediate.
        assert_eq!(b.try_recv(0).unwrap(), Some(vec![7.0]));
    }

    #[test]
    fn irecv_poll_and_wait() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let mut pending = b.irecv(0).unwrap();
        assert!(!pending.poll().unwrap(), "nothing sent yet");
        a.send(1, vec![3.0, 4.0]).unwrap();
        assert!(pending.poll().unwrap(), "message arrived");
        assert_eq!(pending.wait().unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn irecv_wait_parks_until_send() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let pending = b.irecv(0).unwrap();
        let h = thread::spawn(move || pending.wait().unwrap());
        thread::sleep(Duration::from_millis(20));
        a.send(1, vec![9.0]).unwrap();
        assert_eq!(h.join().unwrap(), vec![9.0]);
    }

    #[test]
    fn irecv_handles_complete_in_posting_order() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let first = b.irecv(0).unwrap();
        let second = b.irecv(0).unwrap();
        a.send(1, vec![1.0]).unwrap();
        a.send(1, vec![2.0]).unwrap();
        assert_eq!(first.wait().unwrap(), vec![1.0]);
        assert_eq!(second.wait().unwrap(), vec![2.0]);
    }

    #[test]
    fn isend_completes_eagerly() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let op = a.isend(1, vec![5.0]).unwrap();
        assert!(op.is_complete());
        op.wait();
        assert_eq!(b.recv(0).unwrap(), vec![5.0]);
    }

    #[test]
    fn recv_any_returns_in_completion_order() {
        let mut eps = Fabric::new(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        b.send(2, vec![1.0]).unwrap();
        let (rank1, p1) = c.recv_any(&[0, 1]).unwrap();
        assert_eq!((rank1, p1), (1, vec![1.0]));
        let h = thread::spawn(move || c.recv_any(&[0, 1]).unwrap());
        thread::sleep(Duration::from_millis(10));
        a.send(2, vec![2.0]).unwrap();
        assert_eq!(h.join().unwrap(), (0, vec![2.0]));
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let eps = Fabric::new(4);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let mine = vec![ep.rank() as f32];
                    ep.all_gather(mine).unwrap()
                })
            })
            .collect();
        for h in handles {
            let parts = h.join().unwrap();
            assert_eq!(parts, vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        }
    }

    #[test]
    fn all_reduce_mean_averages() {
        let eps = Fabric::new(3);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let mine = vec![ep.rank() as f32 * 3.0, 1.0];
                    ep.all_reduce_mean(mine).unwrap()
                })
            })
            .collect();
        for h in handles {
            let avg = h.join().unwrap();
            assert_eq!(avg, vec![3.0, 1.0]); // mean of 0,3,6 and of 1,1,1
        }
    }

    #[test]
    fn fused_collective_reduces_and_gathers_in_one_round() {
        let eps = Fabric::new(3);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let reduce = vec![ep.rank() as f32 * 3.0, 1.0];
                    let extra = vec![10.0 + ep.rank() as f32; ep.rank()]; // ragged
                    ep.all_reduce_mean_concat(reduce, extra).unwrap()
                })
            })
            .collect();
        for h in handles {
            let (avg, extras) = h.join().unwrap();
            assert_eq!(avg, vec![3.0, 1.0]);
            assert_eq!(extras, vec![vec![], vec![11.0], vec![12.0, 12.0]]);
        }
    }

    #[test]
    fn chunked_all_reduce_matches_unchunked() {
        let payload_of = |rank: usize| (0..10).map(|i| (rank * 10 + i) as f32).collect::<Vec<_>>();
        let run = |chunk: Option<usize>| {
            let eps = Fabric::new(3);
            let handles: Vec<_> = eps
                .into_iter()
                .map(|mut ep| {
                    thread::spawn(move || {
                        let mine = payload_of(ep.rank());
                        match chunk {
                            Some(c) => ep.all_reduce_mean_chunked(mine, c).unwrap(),
                            None => ep.all_reduce_mean(mine).unwrap(),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        };
        let reference = run(None);
        for chunk in [1, 3, 4, 10, 64] {
            assert_eq!(run(Some(chunk)), reference, "chunk size {chunk}");
        }
    }

    #[test]
    fn broadcast_distributes_root_payload() {
        let eps = Fabric::new(3);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let mine = if ep.rank() == 1 { vec![42.0] } else { vec![] };
                    ep.broadcast(1, mine).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![42.0]);
        }
    }

    #[test]
    fn repeated_collectives_stay_aligned() {
        // Two back-to-back all_gathers must not interleave payloads.
        let eps = Fabric::new(2);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let first = ep.all_gather(vec![1.0 + ep.rank() as f32]).unwrap();
                    let second = ep.all_gather(vec![10.0 + ep.rank() as f32]).unwrap();
                    (first, second)
                })
            })
            .collect();
        for h in handles {
            let (first, second) = h.join().unwrap();
            assert_eq!(first, vec![vec![1.0], vec![2.0]]);
            assert_eq!(second, vec![vec![10.0], vec![11.0]]);
        }
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let eps = Fabric::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    if ep.rank() != 0 {
                        // Everyone but rank 0 increments before the barrier.
                        c.fetch_add(1, Ordering::SeqCst);
                    } else {
                        // Rank 0 waits a little so laggards would be caught.
                        thread::sleep(Duration::from_millis(20));
                    }
                    ep.barrier().unwrap();
                    c.load(Ordering::SeqCst)
                })
            })
            .collect();
        for h in handles {
            // After the barrier every rank must observe all 3 increments.
            assert_eq!(h.join().unwrap(), 3);
        }
    }

    #[test]
    fn disconnect_is_reported() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        drop(eps); // rank 0 gone
        assert_eq!(b.recv(0), Err(CommError::Disconnected));
    }

    #[test]
    fn injected_latency_is_paid_by_the_receiver() {
        let mut eps = Fabric::with_latency(2, Duration::from_millis(30));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t0 = std::time::Instant::now();
        a.send(1, vec![1.0]).unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(25),
            "send must not block for the simulated wire time"
        );
        b.recv(0).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25), "receiver waits out the latency");
    }

    #[test]
    fn try_recv_respects_in_flight_latency() {
        let mut eps = Fabric::with_latency(2, Duration::from_millis(40));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![6.0]).unwrap();
        assert_eq!(b.try_recv(0).unwrap(), None, "message still in simulated flight");
        thread::sleep(Duration::from_millis(50));
        assert_eq!(b.try_recv(0).unwrap(), Some(vec![6.0]));
    }

    #[test]
    fn overlapped_compute_hides_latency() {
        // An irecv posted before compute hides the simulated wire time:
        // the residual wait is latency minus the overlapped work.
        let mut eps = Fabric::with_latency(2, Duration::from_millis(40));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![8.0]).unwrap();
        let pending = b.irecv(0).unwrap();
        thread::sleep(Duration::from_millis(30)); // "compute"
        let t0 = std::time::Instant::now();
        assert_eq!(pending.wait().unwrap(), vec![8.0]);
        assert!(
            t0.elapsed() < Duration::from_millis(25),
            "most of the latency was hidden behind compute"
        );
    }
}
