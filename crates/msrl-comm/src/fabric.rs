//! A real in-process transport with MPI/NCCL-style collectives.
//!
//! When MSRL executes a fragmented dataflow graph for real, each fragment
//! replica runs on its own thread ("device") and synchronises with the
//! collectives named by the partition annotations. [`Fabric::new`] builds
//! a fully-connected group of [`Endpoint`]s over FIFO channels; each
//! endpoint then offers `send`/`recv`, `all_gather`, `all_reduce_mean`,
//! `broadcast` and `barrier` with the same blocking semantics as the MPI
//! operations they stand in for.
//!
//! An optional injected latency per message reproduces the `tc`-based
//! latency experiments of the paper (Fig. 7d) in real mode.
//!
//! Every operation feeds the [`msrl_telemetry`] pipeline: blocking calls
//! record `comm.*` spans when `MSRL_TRACE` is on, and the always-on
//! counters `comm.bytes_sent` / `comm.bytes_recv` / `comm.msgs_sent`
//! total traffic while `comm.sim_latency_ns` attributes time spent in
//! the injected-latency sleep.

use std::fmt;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, Sender};

/// Errors from transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The destination rank does not exist.
    UnknownRank {
        /// Offending rank.
        rank: usize,
        /// Group size.
        size: usize,
    },
    /// The peer endpoint was dropped while we were waiting on it.
    Disconnected,
    /// A collective received a message with an unexpected tag — the group
    /// is executing mismatched collectives (a fragment-graph bug).
    TagMismatch {
        /// Tag we expected.
        expected: u64,
        /// Tag we received.
        actual: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::UnknownRank { rank, size } => {
                write!(f, "rank {rank} out of range for group of {size}")
            }
            CommError::Disconnected => write!(f, "peer endpoint disconnected"),
            CommError::TagMismatch { expected, actual } => {
                write!(f, "collective tag mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A message: an opaque `f32` payload plus a collective tag.
#[derive(Debug, Clone)]
struct Message {
    tag: u64,
    payload: Vec<f32>,
}

/// A communication group factory.
pub struct Fabric;

impl Fabric {
    /// Builds a fully-connected group of `n` endpoints.
    ///
    /// Endpoint `i` can be moved to its own thread; all endpoints must
    /// participate in each collective, mirroring MPI communicator
    /// semantics.
    #[allow(clippy::new_ret_no_self)] // factory for a *group* of endpoints
    pub fn new(n: usize) -> Vec<Endpoint> {
        Self::with_latency(n, Duration::ZERO)
    }

    /// Like [`Fabric::new`], but every `send` sleeps for `latency` first,
    /// emulating a slow network in real executions.
    pub fn with_latency(n: usize, latency: Duration) -> Vec<Endpoint> {
        let mut senders: Vec<Vec<Sender<Message>>> = vec![Vec::with_capacity(n); n];
        let mut receivers: Vec<Vec<Receiver<Message>>> = (0..n).map(|_| Vec::new()).collect();
        // receivers[i][j] carries messages j → i.
        for i in 0..n {
            for _j in 0..n {
                let (tx, rx) = unbounded();
                receivers[i].push(rx);
                senders[i].push(tx);
            }
        }
        // senders built so that senders_for_rank_j[i] sends j → i: we need
        // for each endpoint j the list tx[j→i] for all i.
        let mut out = Vec::with_capacity(n);
        for j in 0..n {
            let mut txs = Vec::with_capacity(n);
            for receiver_senders in senders.iter() {
                txs.push(receiver_senders[j].clone());
            }
            out.push(Endpoint {
                rank: j,
                size: n,
                txs,
                rxs: std::mem::take(&mut receivers[j]),
                latency,
                next_tag: 1,
            });
        }
        out
    }
}

/// One participant in a communication group.
///
/// Endpoints are `Send` (movable to a device thread) but not `Sync`:
/// exactly one thread drives each endpoint, matching one-rank-per-device
/// MPI/NCCL usage.
pub struct Endpoint {
    rank: usize,
    size: usize,
    /// `txs[i]` sends to rank `i`.
    txs: Vec<Sender<Message>>,
    /// `rxs[j]` receives from rank `j`.
    rxs: Vec<Receiver<Message>>,
    latency: Duration,
    next_tag: u64,
}

impl Endpoint {
    /// This endpoint's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The group size.
    pub fn size(&self) -> usize {
        self.size
    }

    fn advance_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// Sends a payload to `to` (non-blocking; channels are unbounded).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks or if the peer is gone.
    pub fn send(&self, to: usize, payload: Vec<f32>) -> Result<(), CommError> {
        self.send_tagged(to, 0, payload)
    }

    fn send_tagged(&self, to: usize, tag: u64, payload: Vec<f32>) -> Result<(), CommError> {
        let _span = msrl_telemetry::span!("comm.send");
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
            msrl_telemetry::static_counter!("comm.sim_latency_ns")
                .add(self.latency.as_nanos() as u64);
        }
        msrl_telemetry::static_counter!("comm.msgs_sent").add(1);
        msrl_telemetry::static_counter!("comm.bytes_sent")
            .add(payload.len() as u64 * std::mem::size_of::<f32>() as u64);
        let tx = self.txs.get(to).ok_or(CommError::UnknownRank { rank: to, size: self.size })?;
        tx.send(Message { tag, payload }).map_err(|_| CommError::Disconnected)
    }

    /// Blocks until a payload arrives from `from`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks or if the peer is gone.
    pub fn recv(&self, from: usize) -> Result<Vec<f32>, CommError> {
        Ok(self.recv_tagged(from)?.1)
    }

    fn recv_tagged(&self, from: usize) -> Result<(u64, Vec<f32>), CommError> {
        let _span = msrl_telemetry::span!("comm.recv");
        let rx =
            self.rxs.get(from).ok_or(CommError::UnknownRank { rank: from, size: self.size })?;
        let msg = rx.recv().map_err(|_| CommError::Disconnected)?;
        msrl_telemetry::static_counter!("comm.bytes_recv")
            .add(msg.payload.len() as u64 * std::mem::size_of::<f32>() as u64);
        Ok((msg.tag, msg.payload))
    }

    /// Non-blocking receive from `from`; `Ok(None)` when no message is
    /// queued. The asynchronous path A3C-style policies use.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown ranks or if the peer is gone.
    pub fn try_recv(&self, from: usize) -> Result<Option<Vec<f32>>, CommError> {
        let rx =
            self.rxs.get(from).ok_or(CommError::UnknownRank { rank: from, size: self.size })?;
        match rx.try_recv() {
            Ok(msg) => {
                msrl_telemetry::static_counter!("comm.bytes_recv")
                    .add(msg.payload.len() as u64 * std::mem::size_of::<f32>() as u64);
                Ok(Some(msg.payload))
            }
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(CommError::Disconnected),
        }
    }

    /// AllGather: every rank contributes a payload and receives all
    /// payloads, indexed by rank. Blocks until the whole group arrives.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or collective mismatch.
    pub fn all_gather(&mut self, payload: Vec<f32>) -> Result<Vec<Vec<f32>>, CommError> {
        let _span = msrl_telemetry::span!("comm.all_gather");
        let tag = self.advance_tag();
        for to in 0..self.size {
            if to != self.rank {
                self.send_tagged(to, tag, payload.clone())?;
            }
        }
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); self.size];
        for (from, slot) in out.iter_mut().enumerate() {
            if from == self.rank {
                *slot = payload.clone();
            } else {
                let (t, p) = self.recv_tagged(from)?;
                if t != tag {
                    return Err(CommError::TagMismatch { expected: tag, actual: t });
                }
                *slot = p;
            }
        }
        Ok(out)
    }

    /// AllReduce with mean: element-wise average of every rank's payload.
    /// All payloads must have equal length.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection, mismatched collectives, or
    /// ragged payload lengths.
    pub fn all_reduce_mean(&mut self, payload: Vec<f32>) -> Result<Vec<f32>, CommError> {
        let _span = msrl_telemetry::span!("comm.all_reduce");
        let len = payload.len();
        let parts = self.all_gather(payload)?;
        let mut acc = vec![0.0f32; len];
        for p in &parts {
            if p.len() != len {
                return Err(CommError::TagMismatch {
                    expected: len as u64,
                    actual: p.len() as u64,
                });
            }
            for (a, v) in acc.iter_mut().zip(p) {
                *a += v;
            }
        }
        let n = self.size as f32;
        for a in &mut acc {
            *a /= n;
        }
        Ok(acc)
    }

    /// Broadcast from `root`: the root's payload is returned on every
    /// rank (the root passes its data; other ranks pass anything).
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection or collective mismatch.
    pub fn broadcast(&mut self, root: usize, payload: Vec<f32>) -> Result<Vec<f32>, CommError> {
        let _span = msrl_telemetry::span!("comm.broadcast");
        if root >= self.size {
            return Err(CommError::UnknownRank { rank: root, size: self.size });
        }
        let tag = self.advance_tag();
        if self.rank == root {
            for to in 0..self.size {
                if to != root {
                    self.send_tagged(to, tag, payload.clone())?;
                }
            }
            Ok(payload)
        } else {
            let (t, p) = self.recv_tagged(root)?;
            if t != tag {
                return Err(CommError::TagMismatch { expected: tag, actual: t });
            }
            Ok(p)
        }
    }

    /// Barrier: returns once every rank has entered.
    ///
    /// # Errors
    ///
    /// Returns an error on disconnection.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let _span = msrl_telemetry::span!("comm.barrier");
        self.all_gather(Vec::new()).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, vec![1.0, 2.0]).unwrap();
        assert_eq!(b.recv(0).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn send_to_unknown_rank_fails() {
        let eps = Fabric::new(2);
        assert!(matches!(eps[0].send(5, vec![]), Err(CommError::UnknownRank { rank: 5, size: 2 })));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert_eq!(b.try_recv(0).unwrap(), None);
        a.send(1, vec![7.0]).unwrap();
        // Delivery through an in-process channel is immediate.
        assert_eq!(b.try_recv(0).unwrap(), Some(vec![7.0]));
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let eps = Fabric::new(4);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let mine = vec![ep.rank() as f32];
                    ep.all_gather(mine).unwrap()
                })
            })
            .collect();
        for h in handles {
            let parts = h.join().unwrap();
            assert_eq!(parts, vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        }
    }

    #[test]
    fn all_reduce_mean_averages() {
        let eps = Fabric::new(3);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let mine = vec![ep.rank() as f32 * 3.0, 1.0];
                    ep.all_reduce_mean(mine).unwrap()
                })
            })
            .collect();
        for h in handles {
            let avg = h.join().unwrap();
            assert_eq!(avg, vec![3.0, 1.0]); // mean of 0,3,6 and of 1,1,1
        }
    }

    #[test]
    fn broadcast_distributes_root_payload() {
        let eps = Fabric::new(3);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let mine = if ep.rank() == 1 { vec![42.0] } else { vec![] };
                    ep.broadcast(1, mine).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![42.0]);
        }
    }

    #[test]
    fn repeated_collectives_stay_aligned() {
        // Two back-to-back all_gathers must not interleave payloads.
        let eps = Fabric::new(2);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    let first = ep.all_gather(vec![1.0 + ep.rank() as f32]).unwrap();
                    let second = ep.all_gather(vec![10.0 + ep.rank() as f32]).unwrap();
                    (first, second)
                })
            })
            .collect();
        for h in handles {
            let (first, second) = h.join().unwrap();
            assert_eq!(first, vec![vec![1.0], vec![2.0]]);
            assert_eq!(second, vec![vec![10.0], vec![11.0]]);
        }
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let eps = Fabric::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    if ep.rank() != 0 {
                        // Everyone but rank 0 increments before the barrier.
                        c.fetch_add(1, Ordering::SeqCst);
                    } else {
                        // Rank 0 waits a little so laggards would be caught.
                        thread::sleep(Duration::from_millis(20));
                    }
                    ep.barrier().unwrap();
                    c.load(Ordering::SeqCst)
                })
            })
            .collect();
        for h in handles {
            // After the barrier every rank must observe all 3 increments.
            assert_eq!(h.join().unwrap(), 3);
        }
    }

    #[test]
    fn disconnect_is_reported() {
        let mut eps = Fabric::new(2);
        let b = eps.pop().unwrap();
        drop(eps); // rank 0 gone
        assert_eq!(b.recv(0), Err(CommError::Disconnected));
    }

    #[test]
    fn injected_latency_delays_send() {
        let mut eps = Fabric::with_latency(2, Duration::from_millis(30));
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t0 = std::time::Instant::now();
        a.send(1, vec![1.0]).unwrap();
        b.recv(0).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }
}
