//! Cluster topology: devices, nodes and testbed descriptions.

use serde::{Deserialize, Serialize};

/// The kind of a compute device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A CPU core (or a pool of cores treated as one scheduling unit).
    Cpu,
    /// A GPU accelerator.
    Gpu,
}

/// A device's position in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceId {
    /// Index of the worker node hosting the device.
    pub node: usize,
    /// Device kind.
    pub kind: DeviceKind,
    /// Index of the device within its kind on the node.
    pub index: usize,
}

impl DeviceId {
    /// A CPU device id.
    pub fn cpu(node: usize, index: usize) -> Self {
        DeviceId { node, kind: DeviceKind::Cpu, index }
    }

    /// A GPU device id.
    pub fn gpu(node: usize, index: usize) -> Self {
        DeviceId { node, kind: DeviceKind::Gpu, index }
    }

    /// Whether two devices share a node (and may use intra-node links).
    pub fn co_located(&self, other: &DeviceId) -> bool {
        self.node == other.node
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = match self.kind {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
        };
        write!(f, "node{}/{}{}", self.node, k, self.index)
    }
}

/// One worker node's resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// CPU cores on the node.
    pub cpu_cores: usize,
    /// GPUs on the node.
    pub gpus: usize,
}

/// A cluster: a homogeneous set of worker nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable name (e.g. `"cloud"`, `"local"`).
    pub name: String,
    /// Number of worker nodes.
    pub nodes: usize,
    /// Per-node resources.
    pub node: NodeSpec,
}

impl ClusterSpec {
    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.node.gpus
    }

    /// Total CPU cores in the cluster.
    pub fn total_cpus(&self) -> usize {
        self.nodes * self.node.cpu_cores
    }

    /// Enumerates all GPU device ids.
    pub fn gpus(&self) -> Vec<DeviceId> {
        (0..self.nodes)
            .flat_map(|n| (0..self.node.gpus).map(move |g| DeviceId::gpu(n, g)))
            .collect()
    }

    /// Enumerates all CPU device ids.
    pub fn cpus(&self) -> Vec<DeviceId> {
        (0..self.nodes)
            .flat_map(|n| (0..self.node.cpu_cores).map(move |c| DeviceId::cpu(n, c)))
            .collect()
    }

    /// The first `n` GPUs in node-major order.
    ///
    /// Returns `None` if the cluster has fewer than `n` GPUs.
    pub fn first_gpus(&self, n: usize) -> Option<Vec<DeviceId>> {
        let all = self.gpus();
        (all.len() >= n).then(|| all[..n].to_vec())
    }
}

/// The paper's cloud testbed (Tab. 3): 16 Azure NC24s_v2 VMs, each with
/// 24 Xeon E5-2690 cores and 4 P100 GPUs on PCIe, connected by 10 GbE.
pub fn cloud_cluster() -> ClusterSpec {
    ClusterSpec { name: "cloud".to_string(), nodes: 16, node: NodeSpec { cpu_cores: 24, gpus: 4 } }
}

/// The paper's local testbed (Tab. 3): 4 nodes, each with 96 Xeon 8160
/// cores and 8 V100 GPUs on NVLink, connected by 100 Gbps InfiniBand.
pub fn local_cluster() -> ClusterSpec {
    ClusterSpec { name: "local".to_string(), nodes: 4, node: NodeSpec { cpu_cores: 96, gpus: 8 } }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_totals_match_tab3() {
        let cloud = cloud_cluster();
        assert_eq!(cloud.total_gpus(), 64);
        assert_eq!(cloud.total_cpus(), 384);
        let local = local_cluster();
        assert_eq!(local.total_gpus(), 32);
        assert_eq!(local.total_cpus(), 384);
    }

    #[test]
    fn gpu_enumeration_is_node_major() {
        let c =
            ClusterSpec { name: "t".into(), nodes: 2, node: NodeSpec { cpu_cores: 1, gpus: 2 } };
        let gpus = c.gpus();
        assert_eq!(gpus.len(), 4);
        assert_eq!(gpus[0], DeviceId::gpu(0, 0));
        assert_eq!(gpus[1], DeviceId::gpu(0, 1));
        assert_eq!(gpus[2], DeviceId::gpu(1, 0));
    }

    #[test]
    fn first_gpus_bounds() {
        let cloud = cloud_cluster();
        assert_eq!(cloud.first_gpus(64).unwrap().len(), 64);
        assert!(cloud.first_gpus(65).is_none());
    }

    #[test]
    fn co_location() {
        assert!(DeviceId::gpu(1, 0).co_located(&DeviceId::cpu(1, 5)));
        assert!(!DeviceId::gpu(1, 0).co_located(&DeviceId::gpu(2, 0)));
    }

    #[test]
    fn display_format() {
        assert_eq!(DeviceId::gpu(3, 1).to_string(), "node3/gpu1");
        assert_eq!(DeviceId::cpu(0, 7).to_string(), "node0/cpu7");
    }
}
