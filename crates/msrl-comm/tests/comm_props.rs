//! Property-based tests for the communication substrate.

use std::thread;

use msrl_comm::model::{LinkModel, NetworkModel};
use msrl_comm::{DeviceId, Fabric};
use proptest::prelude::*;

proptest! {
    /// AllReduce-mean equals the arithmetic mean of the contributions for
    /// any payloads (all ranks agree on the result).
    #[test]
    fn all_reduce_mean_is_the_mean(
        payload_a in proptest::collection::vec(-10.0f32..10.0, 5),
        payload_b in proptest::collection::vec(-10.0f32..10.0, 5),
        payload_c in proptest::collection::vec(-10.0f32..10.0, 5),
    ) {
        let payloads = [payload_a, payload_b, payload_c];
        let expect: Vec<f32> = (0..5)
            .map(|i| payloads.iter().map(|p| p[i]).sum::<f32>() / 3.0)
            .collect();
        let eps = Fabric::new(3);
        let handles: Vec<_> = eps
            .into_iter()
            .zip(payloads)
            .map(|(mut ep, p)| thread::spawn(move || ep.all_reduce_mean(p).unwrap()))
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g - e).abs() < 1e-4);
            }
        }
    }

    /// AllGather preserves rank order and payload contents for ragged
    /// payload sizes.
    #[test]
    fn all_gather_preserves_order_and_content(sizes in proptest::collection::vec(0usize..6, 4)) {
        let eps = Fabric::new(4);
        let sizes2 = sizes.clone();
        let handles: Vec<_> = eps
            .into_iter()
            .enumerate()
            .map(|(rank, mut ep)| {
                let mine = vec![rank as f32; sizes2[rank]];
                thread::spawn(move || ep.all_gather(mine).unwrap())
            })
            .collect();
        for h in handles {
            let parts = h.join().unwrap();
            for (rank, part) in parts.iter().enumerate() {
                prop_assert_eq!(part.len(), sizes[rank]);
                prop_assert!(part.iter().all(|&v| v == rank as f32));
            }
        }
    }

    /// α–β transfer time is monotone in bytes and additive in latency.
    #[test]
    fn link_model_monotone(bytes in 0u64..1_000_000, extra in 0.0f64..0.01) {
        let base = LinkModel::ethernet_10g();
        let slower = LinkModel::new(base.latency_s + extra, base.bandwidth_bps);
        prop_assert!(slower.transfer_time(bytes) >= base.transfer_time(bytes));
        prop_assert!(base.transfer_time(bytes + 1) >= base.transfer_time(bytes));
        let dt = slower.transfer_time(bytes) - base.transfer_time(bytes);
        prop_assert!((dt - extra).abs() < 1e-12);
    }

    /// Collective cost formulas are non-negative and grow with
    /// participants for fixed payloads.
    #[test]
    fn collective_costs_grow_with_participants(p in 2usize..32, bytes in 1u64..10_000_000) {
        let net = NetworkModel::cloud();
        let small: Vec<DeviceId> = (0..p).map(|i| DeviceId::gpu(i, 0)).collect();
        let large: Vec<DeviceId> = (0..p + 1).map(|i| DeviceId::gpu(i, 0)).collect();
        for f in [
            NetworkModel::allreduce_time,
            NetworkModel::allgather_time,
            NetworkModel::gather_time,
        ] {
            let a = f(&net, &small, bytes);
            let b = f(&net, &large, bytes);
            prop_assert!(a >= 0.0);
            prop_assert!(b >= a, "{} vs {}", a, b);
        }
    }

    /// The fused collective is bit-identical to the unfused pair: for
    /// any payload length, rank count, and ragged extras, one
    /// `all_reduce_mean_concat` returns exactly what separate
    /// `all_reduce_mean` + `all_gather` calls return.
    #[test]
    fn fused_collective_matches_separate_calls(
        p in 2usize..5,
        reduce_len in 0usize..12,
        seed in 0u64..1000,
        extra_sizes in proptest::collection::vec(0usize..6, 4),
    ) {
        // Deterministic pseudo-random payloads per rank (proptest drives
        // the seed); extras are ragged across ranks.
        let payload = |rank: usize| -> Vec<f32> {
            (0..reduce_len)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add((rank * 31 + i) as u64);
                    (x % 2000) as f32 / 100.0 - 10.0
                })
                .collect()
        };
        let extra = |rank: usize| vec![rank as f32 + 0.5; extra_sizes[rank % 4]];

        let run = |fused: bool| -> Vec<(Vec<f32>, Vec<Vec<f32>>)> {
            let eps = Fabric::new(p);
            let handles: Vec<_> = eps
                .into_iter()
                .enumerate()
                .map(|(rank, mut ep)| {
                    let (r, e) = (payload(rank), extra(rank));
                    thread::spawn(move || {
                        if fused {
                            ep.all_reduce_mean_concat(r, e).unwrap()
                        } else {
                            let avg = ep.all_reduce_mean(r).unwrap();
                            (avg, ep.all_gather(e).unwrap())
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };

        let fused = run(true);
        let unfused = run(false);
        for ((fa, fe), (ua, ue)) in fused.iter().zip(&unfused) {
            // Bit-identical, not approximately equal: both paths reduce
            // in rank order via the same kernel.
            prop_assert_eq!(
                fa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ua.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            prop_assert_eq!(fe, ue);
        }
    }

    /// Chunked all-reduce is bit-identical to the single-shot reduction
    /// for any payload length and chunk size (including chunk sizes that
    /// don't divide the payload, and chunks larger than the payload).
    #[test]
    fn chunked_all_reduce_matches_unchunked(
        p in 2usize..5,
        len in 0usize..40,
        chunk in 1usize..16,
        seed in 0u64..1000,
    ) {
        let payload = |rank: usize| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add((rank * 17 + i) as u64);
                    (x % 2000) as f32 / 100.0 - 10.0
                })
                .collect()
        };
        let run = |chunked: bool| -> Vec<Vec<f32>> {
            let eps = Fabric::new(p);
            let handles: Vec<_> = eps
                .into_iter()
                .enumerate()
                .map(|(rank, mut ep)| {
                    let mine = payload(rank);
                    thread::spawn(move || {
                        if chunked {
                            ep.all_reduce_mean_chunked(mine, chunk).unwrap()
                        } else {
                            ep.all_reduce_mean(mine).unwrap()
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };
        for (c, u) in run(true).iter().zip(&run(false)) {
            prop_assert_eq!(
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                u.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    /// Point-to-point messages arrive in FIFO order per sender.
    #[test]
    fn p2p_is_fifo(values in proptest::collection::vec(-5.0f32..5.0, 1..20)) {
        let mut eps = Fabric::new(2);
        let receiver = eps.pop().unwrap();
        let sender = eps.pop().unwrap();
        for &v in &values {
            sender.send(1, vec![v]).unwrap();
        }
        for &v in &values {
            prop_assert_eq!(receiver.recv(0).unwrap(), vec![v]);
        }
    }
}
