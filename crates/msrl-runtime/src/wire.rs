//! Wire format for fragment-boundary payloads.
//!
//! Fragment interfaces exchange `f32` payloads over `msrl-comm`. This
//! module serialises the runtime's structured payloads —
//! [`SampleBatch`]es and weight vectors — into that representation, the
//! way the original system maps boundary data onto DL-engine tensors.

use msrl_core::api::SampleBatch;
use msrl_core::{FdgError, Result};
use msrl_tensor::Tensor;

/// Serialises a batch into a flat `f32` payload.
///
/// Layout: `[n, obs_w, act_w, segment_len, obs…, actions…, rewards…,
/// next_obs…, dones…, log_probs…, values…]`.
pub fn encode_batch(batch: &SampleBatch) -> Vec<f32> {
    let n = batch.len();
    let obs_w = batch.obs.len().checked_div(n).unwrap_or(0);
    let act_w = batch.actions.len().checked_div(n).unwrap_or(0);
    let mut out = Vec::with_capacity(8 + n * (2 * obs_w + act_w + 4));
    out.push(n as f32);
    out.push(obs_w as f32);
    out.push(act_w as f32);
    out.push(batch.segment_len as f32);
    out.extend_from_slice(batch.obs.data());
    out.extend_from_slice(batch.actions.data());
    out.extend_from_slice(batch.rewards.data());
    out.extend_from_slice(batch.next_obs.data());
    out.extend(batch.dones.iter().map(|&d| if d { 1.0 } else { 0.0 }));
    out.extend_from_slice(batch.log_probs.data());
    out.extend_from_slice(batch.values.data());
    out
}

/// Deserialises a payload produced by [`encode_batch`].
///
/// # Errors
///
/// Returns an error on truncated or inconsistent payloads.
pub fn decode_batch(wire: &[f32]) -> Result<SampleBatch> {
    let err = || FdgError::MissingKernel { op: "decode_batch(truncated payload)".into() };
    if wire.len() < 4 {
        return Err(err());
    }
    let n = wire[0] as usize;
    let obs_w = wire[1] as usize;
    let act_w = wire[2] as usize;
    let segment_len = wire[3] as usize;
    let expected = 4 + n * (2 * obs_w + act_w + 4);
    if wire.len() != expected {
        return Err(err());
    }
    let mut at = 4;
    let mut take = |len: usize| {
        let s = &wire[at..at + len];
        at += len;
        s.to_vec()
    };
    let obs = Tensor::from_vec(take(n * obs_w), &[n, obs_w]).map_err(FdgError::Tensor)?;
    let actions = if act_w == 1 {
        Tensor::from_vec(take(n), &[n]).map_err(FdgError::Tensor)?
    } else {
        Tensor::from_vec(take(n * act_w), &[n, act_w]).map_err(FdgError::Tensor)?
    };
    let rewards = Tensor::from_vec(take(n), &[n]).map_err(FdgError::Tensor)?;
    let next_obs = Tensor::from_vec(take(n * obs_w), &[n, obs_w]).map_err(FdgError::Tensor)?;
    let dones = take(n).iter().map(|&d| d > 0.5).collect();
    let log_probs = Tensor::from_vec(take(n), &[n]).map_err(FdgError::Tensor)?;
    let values = Tensor::from_vec(take(n), &[n]).map_err(FdgError::Tensor)?;
    Ok(SampleBatch { obs, actions, rewards, next_obs, dones, log_probs, values, segment_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize, obs_w: usize) -> SampleBatch {
        SampleBatch {
            obs: Tensor::arange(n * obs_w).reshape(&[n, obs_w]).unwrap(),
            actions: Tensor::arange(n),
            rewards: Tensor::full(&[n], 0.5),
            next_obs: Tensor::full(&[n, obs_w], 2.0),
            dones: (0..n).map(|i| i % 2 == 0).collect(),
            log_probs: Tensor::full(&[n], -0.3),
            values: Tensor::full(&[n], 1.5),
            segment_len: n,
        }
    }

    #[test]
    fn roundtrip_discrete() {
        let b = batch(6, 4);
        let decoded = decode_batch(&encode_batch(&b)).unwrap();
        assert_eq!(decoded.obs, b.obs);
        assert_eq!(decoded.actions, b.actions);
        assert_eq!(decoded.dones, b.dones);
        assert_eq!(decoded.segment_len, 6);
        assert_eq!(decoded.log_probs, b.log_probs);
    }

    #[test]
    fn roundtrip_continuous_actions() {
        let mut b = batch(3, 2);
        b.actions = Tensor::full(&[3, 4], 0.25);
        let decoded = decode_batch(&encode_batch(&b)).unwrap();
        assert_eq!(decoded.actions.shape(), &[3, 4]);
        assert_eq!(decoded.actions, b.actions);
    }

    #[test]
    fn truncated_payload_rejected() {
        let b = batch(4, 3);
        let mut wire = encode_batch(&b);
        wire.pop();
        assert!(decode_batch(&wire).is_err());
        assert!(decode_batch(&[1.0]).is_err());
    }
}
