//! # msrl-runtime
//!
//! The coordinator/worker runtime of the msrl-rs reproduction (§5 of the
//! paper).
//!
//! The flow mirrors Fig. 6: the **coordinator** ([`coordinator`]) traces
//! the algorithm into a fragmented dataflow graph, applies the deployment
//! configuration's *distribution policy* ([`policy`]) to obtain a
//! fragment-to-device [`policy::Placement`], and dispatches fragments;
//! **workers** ([`exec`]) then run the placed fragments — here, one OS
//! thread per device — exchanging data through `msrl-comm` collectives
//! bound to the fragments' interfaces. The [`wire`] module is the
//! serialisation layer fragments use at their boundaries.
//!
//! All six default distribution policies of Tab. 2 are implemented:
//!
//! | Policy | Strategy |
//! |--------|----------|
//! | DP-A   | replicated actor+env fragments, single learner, per-episode batched sync |
//! | DP-B   | actor fused with env on CPU, learner-side inference, per-step exchange |
//! | DP-C   | fused actor+learner replicas, data-parallel gradient AllReduce |
//! | DP-D   | whole training loop fused per GPU, replicated |
//! | DP-E   | dedicated environment workers (MARL) |
//! | DP-F   | central parameter-server fragment |
//!
//! Switching between them is a one-line change to the deployment
//! configuration — the algorithm implementation (in `msrl-algos`) is
//! untouched, which is the paper's central claim.

#![warn(missing_docs)]

pub mod actsrv;
pub mod advisor;
pub mod coordinator;
pub mod exec;
pub mod policy;
pub mod trace_algos;
pub mod wire;

pub use coordinator::{Coordinator, Deployment};
pub use exec::TrainingReport;
pub use policy::{Placement, Role};
