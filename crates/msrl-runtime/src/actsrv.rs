//! Cross-actor micro-batching act server.
//!
//! The PR 8 pack cache batches one actor's observation rows per rollout
//! step; with 1–2 envs per actor the panel kernels still see sliver
//! matrices. This module batches *across* actor fragments: every actor
//! registered with an [`ActServer`] submits its observation rows once
//! per rollout step, the last arriver (the *leader*) runs one fused
//! forward over the concatenated row block against the shared policy —
//! packed panels under the kernel tier — and each actor receives its
//! row slice back, sampling actions with its own generator.
//!
//! Matmul rows are independent and every epilogue in the fused forward
//! is element-wise, so the batched forward is **bit-identical** to the
//! per-actor forwards it replaces at equal weights: enabling the act
//! server (`MSRL_ACTSRV=1`) changes throughput, never results.
//!
//! The rendezvous is deliberately structured around [`ActServer::submit`]
//! — a blocking "rows in, row-slice out" exchange with no knowledge of
//! the rollout loop — so external episode streams (the ROADMAP item 4
//! serving frontend) can later join the same batch by registering as
//! additional clients.
//!
//! Weight sync is versioned by content: [`ActServer::sync_weights`]
//! applies a flat vector only when it differs from the cached weights,
//! so the p replicated actors of DP-A delivering the same broadcast
//! trigger exactly one unflatten + repack.
//!
//! Telemetry: `actsrv.batches` / `actsrv.rows` counters and the
//! `actsrv.batch_rows` histogram record every leader forward.

use std::sync::{Arc, Condvar, Mutex};

use msrl_algos::ppo::{PackedPpo, PpoPolicy};
use msrl_core::api::{ActOutput, Actor};
use msrl_core::{FdgError, Result};
use msrl_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared rendezvous state for one batching round.
struct Round {
    policy: PpoPolicy,
    /// Cached flat weights — the content-version for sync skipping.
    flat: Vec<f32>,
    packed: Option<PackedPpo>,
    /// Per-client observation rows submitted this round.
    pending: Vec<Option<Tensor>>,
    arrived: usize,
    /// Per-client forward slices: (head rows, value rows).
    results: Vec<Option<(Tensor, Tensor)>>,
    /// Clients that dropped (thread exited); excluded from rendezvous.
    departed: usize,
    /// A leader forward failed; every waiter must error out.
    poisoned: Option<String>,
}

/// Process-level micro-batching stage shared by all actor fragments.
pub struct ActServer {
    state: Mutex<Round>,
    cv: Condvar,
    clients: usize,
}

impl ActServer {
    /// Creates a server over a policy snapshot for exactly `clients`
    /// registered submitters.
    pub fn new(policy: PpoPolicy, clients: usize) -> Arc<Self> {
        let flat = policy.flatten();
        Arc::new(ActServer {
            state: Mutex::new(Round {
                policy,
                flat,
                packed: None,
                pending: (0..clients).map(|_| None).collect(),
                arrived: 0,
                results: (0..clients).map(|_| None).collect(),
                departed: 0,
                poisoned: None,
            }),
            cv: Condvar::new(),
            clients,
        })
    }

    /// Builds the [`Actor`] adapter for client slot `id` (one per actor
    /// fragment, ids `0..clients`). `seed` drives the client's private
    /// sampling stream, exactly like a standalone `PpoActor`'s.
    pub fn client(self: &Arc<Self>, id: usize, seed: u64) -> ActClient {
        ActClient { srv: Arc::clone(self), id, rng: StdRng::seed_from_u64(seed) }
    }

    /// Submits one client's observation rows for the current round and
    /// blocks until the round's batched forward has run; returns the
    /// client's slice of head outputs (`[rows, act]`) and values
    /// (`[rows]`). The last arriver runs the forward for everyone.
    pub fn submit(&self, id: usize, obs: Tensor) -> Result<(Tensor, Tensor)> {
        let mut st = self.state.lock().expect("act server lock");
        st.pending[id] = Some(obs);
        st.arrived += 1;
        loop {
            if let Some(msg) = &st.poisoned {
                return Err(FdgError::MissingKernel { op: format!("act server poisoned: {msg}") });
            }
            if let Some(r) = st.results[id].take() {
                return Ok(r);
            }
            if st.arrived > 0 && st.arrived + st.departed == self.clients {
                // Leader: every live client has arrived.
                if let Err(e) = Self::forward_round(&mut st) {
                    st.poisoned = Some(e.to_string());
                    self.cv.notify_all();
                    return Err(e);
                }
                self.cv.notify_all();
                continue;
            }
            st = self.cv.wait(st).expect("act server lock");
        }
    }

    /// One batched forward over all pending rows, scattered back into
    /// per-client result slots. Runs under the state lock — every other
    /// client is parked on the condvar.
    fn forward_round(st: &mut Round) -> Result<()> {
        let parts: Vec<(usize, Tensor)> =
            (0..st.pending.len()).filter_map(|i| st.pending[i].take().map(|t| (i, t))).collect();
        let obs_dim = parts.first().map(|(_, t)| t.shape()[1]).unwrap_or(0);
        let total: usize = parts.iter().map(|(_, t)| t.shape()[0]).sum();
        let mut rows = Vec::with_capacity(total * obs_dim);
        for (_, t) in &parts {
            rows.extend_from_slice(t.data());
        }
        let big = Tensor::from_vec(rows, &[total, obs_dim])?;
        // Same gate as PpoActor: packed panels only when the kernel
        // tier and fusion are both on.
        if msrl_tensor::par::tier_enabled() && msrl_tensor::par::fusion_enabled() {
            if st.packed.is_none() {
                st.packed = Some(PackedPpo::pack(&st.policy));
            }
        } else {
            st.packed = None;
        }
        let (out, values) = st.policy.forward_with(&big, st.packed.as_ref())?;
        msrl_telemetry::static_counter!("actsrv.batches").add(1);
        msrl_telemetry::static_counter!("actsrv.rows").add(total as u64);
        msrl_telemetry::static_histogram!("actsrv.batch_rows").record(total as u64);
        let width = out.shape()[1];
        let (od, vd) = (out.data(), values.data());
        let mut row0 = 0;
        for (id, t) in &parts {
            let m = t.shape()[0];
            let head =
                Tensor::from_vec(od[row0 * width..(row0 + m) * width].to_vec(), &[m, width])?;
            let vals = Tensor::from_vec(vd[row0..row0 + m].to_vec(), &[m])?;
            st.results[*id] = Some((head, vals));
            row0 += m;
        }
        st.arrived = 0;
        Ok(())
    }

    /// Full act for one client: rendezvous forward, then sample the
    /// client's rows with its own generator — the same draws the
    /// unbatched per-actor path would make.
    fn act(&self, id: usize, obs: Tensor, rng: &mut StdRng) -> Result<ActOutput> {
        let (out, values) = self.submit(id, obs)?;
        let st = self.state.lock().expect("act server lock");
        st.policy.sample_from(&out, values, rng)
    }

    /// Content-versioned weight sync: applies `flat` only when it
    /// differs from the cached weights, so replicated actors delivering
    /// the same broadcast cost one unflatten + one repack total.
    pub fn sync_weights(&self, flat: &[f32]) -> Result<()> {
        let mut st = self.state.lock().expect("act server lock");
        if st.flat == flat {
            return Ok(());
        }
        st.policy.unflatten(flat)?;
        st.flat = flat.to_vec();
        st.packed = None;
        Ok(())
    }

    /// The current flat weights (shared across all clients).
    pub fn params(&self) -> Vec<f32> {
        self.state.lock().expect("act server lock").flat.clone()
    }

    /// Whether the packed panel snapshot is currently built (test hook).
    pub fn has_packed_weights(&self) -> bool {
        self.state.lock().expect("act server lock").packed.is_some()
    }

    fn depart(&self) {
        let mut st = self.state.lock().expect("act server lock");
        st.departed += 1;
        // A waiter may now be the last live arriver: wake everyone so
        // one of them claims leadership instead of deadlocking.
        self.cv.notify_all();
    }
}

/// Per-actor handle: an [`Actor`] whose forwards go through the shared
/// batching server while sampling stays local (own `StdRng` stream).
pub struct ActClient {
    srv: Arc<ActServer>,
    id: usize,
    rng: StdRng,
}

impl Actor for ActClient {
    fn act(&mut self, obs: &Tensor) -> Result<ActOutput> {
        self.srv.act(self.id, obs.clone(), &mut self.rng)
    }

    fn policy_params(&self) -> Vec<f32> {
        self.srv.params()
    }

    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()> {
        self.srv.sync_weights(flat)
    }
}

impl Drop for ActClient {
    fn drop(&mut self) {
        self.srv.depart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_algos::ppo::PpoActor;

    fn obs_block(rows: usize, dim: usize, salt: u64) -> Tensor {
        let data: Vec<f32> =
            (0..rows * dim).map(|i| ((i as u64 * 37 + salt * 101) as f32 * 0.013).sin()).collect();
        Tensor::from_vec(data, &[rows, dim]).unwrap()
    }

    /// The paper-level contract: batching across actors must be
    /// bit-identical to per-actor forwards — actions, log-probs and
    /// values — because matmul rows are independent and sampling uses
    /// the same per-client streams.
    #[test]
    fn batched_act_is_bit_identical_to_per_actor_path() {
        let policy = PpoPolicy::discrete(4, 3, &[16, 16], 21);
        let n = 3;
        let srv = ActServer::new(policy.clone(), n);
        let mut clients: Vec<ActClient> = (0..n).map(|i| srv.client(i, 500 + i as u64)).collect();
        let obs: Vec<Tensor> = (0..n).map(|i| obs_block(2, 4, i as u64)).collect();

        // Drive one round from three threads (the rendezvous needs all
        // clients), collecting each client's output.
        let outs: Vec<ActOutput> = std::thread::scope(|s| {
            let handles: Vec<_> = clients
                .iter_mut()
                .zip(&obs)
                .map(|(c, o)| s.spawn(move || c.act(o).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (i, out) in outs.iter().enumerate() {
            let mut solo = PpoActor::new(policy.clone(), 500 + i as u64);
            let expect = solo.act(&obs[i]).unwrap();
            assert_eq!(out.actions.data(), expect.actions.data(), "client {i} actions");
            assert_eq!(out.log_probs.data(), expect.log_probs.data(), "client {i} log-probs");
            assert_eq!(
                out.values.as_ref().unwrap().data(),
                expect.values.as_ref().unwrap().data(),
                "client {i} values"
            );
        }
    }

    /// Identical re-broadcasts must not repack; changed weights must.
    #[test]
    fn content_versioned_sync_packs_once() {
        msrl_tensor::par::with_tier(true, || {
            let policy = PpoPolicy::discrete(4, 2, &[8], 3);
            let srv = ActServer::new(policy, 2);
            let mut a = srv.client(0, 1);
            let mut b = srv.client(1, 2);
            std::thread::scope(|s| {
                let o0 = obs_block(1, 4, 0);
                let o1 = obs_block(1, 4, 1);
                let h = s.spawn(move || b.act(&o1).map(|_| b));
                a.act(&o0).unwrap();
                b = h.join().unwrap().unwrap();
                assert!(srv.has_packed_weights());
                let flat = a.policy_params();
                let packs = msrl_telemetry::counter_total("tensor.pack_b");
                a.set_policy_params(&flat).unwrap();
                b.set_policy_params(&flat).unwrap();
                assert!(srv.has_packed_weights(), "identical syncs keep the panels");
                assert_eq!(msrl_telemetry::counter_total("tensor.pack_b"), packs);
                let mut changed = flat;
                changed[0] += 1.0;
                a.set_policy_params(&changed).unwrap();
                assert!(!srv.has_packed_weights(), "new weights drop the panels");
            });
        });
    }

    /// A departing client (dropped handle) must not deadlock the
    /// remaining clients' rounds.
    #[test]
    fn departure_releases_the_rendezvous() {
        let policy = PpoPolicy::discrete(4, 2, &[8], 9);
        let srv = ActServer::new(policy, 2);
        let mut a = srv.client(0, 1);
        let b = srv.client(1, 2);
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                // Arrives first, then the other client departs instead
                // of submitting; this client must become leader of a
                // 1-client round.
                a.act(&obs_block(2, 4, 7)).unwrap()
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(b);
            let out = h.join().unwrap();
            assert_eq!(out.actions.shape(), &[2]);
        });
    }
}
