//! Traced FDGs for the built-in algorithms.
//!
//! This module performs the step the original system does with static
//! Python analysis: it records each algorithm's training-loop body as an
//! annotated dataflow graph, placing the partition annotations exactly
//! where the paper's Alg. 1 places its `#@MSRL.fragment(...)` comments.

use msrl_core::annotate::{Collective, FragmentKind};
use msrl_core::config::AlgorithmConfig;
use msrl_core::trace::{trace_mlp, TraceCtx};
use msrl_core::DataflowGraph;

/// Traces the PPO/MAPPO training-loop body following Alg. 1 of the
/// paper: actor inference → action annotation → env step → step
/// annotation → buffer insert/sample → buffer annotation → learn →
/// learner (weight-sync) annotation.
pub fn trace_ppo(
    cfg: &AlgorithmConfig,
    obs_dim: usize,
    act_dim: usize,
    hidden: usize,
) -> DataflowGraph {
    let ctx = TraceCtx::new();
    let envs = cfg.envs_per_actor.max(1);
    let widths = [obs_dim, hidden, hidden, hidden, hidden, hidden, act_dim];

    // Annotations mark *data* nodes at boundaries ([`TracedVar::boundary`]),
    // so the producing ops stay interior to their fragments — the op/data
    // node separation of the paper's Fig. 5.

    // Trainer: reset the environment (Alg. 1 line 26–27).
    let saved = ctx.enter_component("trainer");
    let state = ctx.env_reset(envs, obs_dim).boundary();
    ctx.annotate(FragmentKind::Reset, Collective::AllGather, &[&state]);
    ctx.exit_component(saved);

    // Actor: policy inference and action generation (lines 6–12).
    let saved = ctx.enter_component("actor");
    let policy_out = trace_mlp(&ctx, "actor_net", &state, &widths);
    let action = ctx.sample_action(&policy_out, envs, act_dim).boundary();
    ctx.annotate(FragmentKind::Action, Collective::AllGather, &[&action]);
    ctx.exit_component(saved);

    // Environment execution (line 10).
    let saved = ctx.enter_component("env");
    let (new_state, reward) = ctx.env_step(&action, envs, obs_dim);
    let (new_state, reward) = (new_state.boundary(), reward.boundary());
    ctx.annotate(FragmentKind::Step, Collective::AllGather, &[&reward, &new_state]);
    ctx.exit_component(saved);

    // Trainer: buffer exchange (lines 30–32).
    let saved = ctx.enter_component("trainer");
    let insert = ctx.replay_insert(&[&reward, &new_state]);
    let sample = ctx.replay_sample(&insert, envs * cfg.duration, obs_dim + act_dim + 3).boundary();
    ctx.annotate(FragmentKind::Buffer, Collective::AllGather, &[&sample]);
    ctx.exit_component(saved);

    // Learner: training and weight sync (lines 13–22, 33–34).
    let saved = ctx.enter_component("learner");
    let loss = ctx.learn(&sample);
    let n_params: usize = widths.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
    let params = ctx.read_params(&loss, n_params).boundary();
    ctx.annotate(FragmentKind::Learner, Collective::AllGather, &[&params]);
    ctx.exit_component(saved);

    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_core::partition::build_fdg;
    use msrl_core::{DeviceReq, OpKind};

    fn ppo_graph() -> DataflowGraph {
        trace_ppo(&AlgorithmConfig::ppo(1, 32), 17, 6, 64)
    }

    #[test]
    fn trace_has_all_five_annotations() {
        let g = ppo_graph();
        assert_eq!(g.annotations.len(), 5);
        let kinds: Vec<_> = g.annotations.iter().map(|a| a.kind.clone()).collect();
        assert!(kinds.contains(&FragmentKind::Reset));
        assert!(kinds.contains(&FragmentKind::Action));
        assert!(kinds.contains(&FragmentKind::Step));
        assert!(kinds.contains(&FragmentKind::Buffer));
        assert!(kinds.contains(&FragmentKind::Learner));
    }

    #[test]
    fn fdg_partitions_cleanly() {
        let fdg = build_fdg(ppo_graph()).unwrap();
        fdg.check_invariants().unwrap();
        assert!(fdg.fragments.len() >= 3, "actor/env/learner at minimum");
    }

    #[test]
    fn env_fragment_is_cpu_bound() {
        let fdg = build_fdg(ppo_graph()).unwrap();
        let env_frag = fdg
            .fragments
            .iter()
            .find(|f| f.interior.iter().any(|&i| fdg.graph.nodes[i].kind == OpKind::EnvStep))
            .expect("an env fragment exists");
        assert_eq!(env_frag.device_req, DeviceReq::CpuOnly);
    }

    #[test]
    fn actor_fragment_holds_the_seven_layer_network() {
        let fdg = build_fdg(ppo_graph()).unwrap();
        let actor_frag = fdg
            .fragments
            .iter()
            .find(|f| {
                f.interior.iter().any(|&i| {
                    matches!(&fdg.graph.nodes[i].kind, OpKind::Param { name } if name.starts_with("actor_net"))
                })
            })
            .expect("an actor fragment exists");
        let matmuls = actor_frag
            .interior
            .iter()
            .filter(|&&i| fdg.graph.nodes[i].kind == OpKind::MatMul)
            .count();
        assert_eq!(matmuls, 6, "seven-layer policy = six matmuls");
        assert_eq!(actor_frag.device_req, DeviceReq::Any, "operators can run on GPU");
    }

    #[test]
    fn weight_sync_exit_carries_all_params() {
        let fdg = build_fdg(ppo_graph()).unwrap();
        let params_node = fdg.graph.nodes.iter().find(|n| n.kind == OpKind::ReadParams).unwrap();
        // 17·64+64 + 4·(64·64+64) + 64·6+6 scalar parameters.
        let expect = 17 * 64 + 64 + 4 * (64 * 64 + 64) + 64 * 6 + 6;
        assert_eq!(params_node.shape, vec![expect]);
        assert_eq!(fdg.graph.bytes_of(&[params_node.id]), 4 * expect as u64);
    }
}
