//! The coordinator (§5.1): FDG generation and fragment dispatch.
//!
//! `Coordinator::deploy_ppo` performs the full front half of Fig. 6: it
//! traces the algorithm into a dataflow graph, runs Algorithm 2 to obtain
//! the FDG, and applies the deployment configuration's distribution
//! policy to produce the fragment placement that the execution engine
//! (`crate::exec`) realises with worker threads.

use msrl_core::config::{AlgorithmConfig, DeploymentConfig};
use msrl_core::partition::{build_fdg, Fdg};
use msrl_core::FdgError;

use crate::policy::{place, Placement, PlacementError};
use crate::trace_algos::trace_ppo;

/// Errors from deployment.
#[derive(Debug)]
pub enum DeployError {
    /// FDG construction failed.
    Fdg(FdgError),
    /// The distribution policy could not be applied.
    Placement(PlacementError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Fdg(e) => write!(f, "FDG generation failed: {e}"),
            DeployError::Placement(e) => write!(f, "placement failed: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// A deployed algorithm: the FDG plus its placement.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The fragmented dataflow graph.
    pub fdg: Fdg,
    /// The fragment-to-device placement.
    pub placement: Placement,
    /// The algorithm configuration it was built from.
    pub algo: AlgorithmConfig,
    /// The deployment configuration it was built from.
    pub deploy: DeploymentConfig,
}

impl Deployment {
    /// Validates the placement against the FDG's device requirements:
    /// every fragment role that hosts CPU-only graph fragments (native
    /// environment code) must have at least one CPU-capable instance.
    ///
    /// DP-D is the exception the paper calls out: it is "only applicable
    /// if the environment has a GPU implementation", so a GPU-only
    /// placement of env-hosting roles is reported for the caller to
    /// check against the environment's capabilities.
    ///
    /// # Errors
    ///
    /// Returns a description of the first conflict.
    pub fn validate(&self) -> Result<(), String> {
        use crate::policy::Role;
        use msrl_core::DeviceReq;
        let has_cpu_only_env =
            self.fdg.fragments.iter().any(|f| f.device_req == DeviceReq::CpuOnly);
        if !has_cpu_only_env {
            return Ok(());
        }
        // Roles that host environment execution under each policy
        // (fused actor+learner fragments drive their own environments).
        let env_roles = [Role::ActorEnv, Role::ActorLearner, Role::Env, Role::FusedLoop];
        let hosted: Vec<&crate::policy::PlacedFragment> =
            self.placement.fragments.iter().filter(|f| env_roles.contains(&f.role)).collect();
        if hosted.is_empty() {
            return Err("no fragment role hosts the environment".to_string());
        }
        let any_cpu = hosted.iter().any(|f| f.device.kind == msrl_comm::DeviceKind::Cpu);
        // An ActorEnv fragment on a GPU still runs its environment
        // processes on the node's co-located CPU cores (DP-A).
        let colocated_cores = hosted.iter().any(|f| {
            matches!(f.role, Role::ActorEnv | Role::ActorLearner) && self.deploy.cpus_per_worker > 0
        });
        let all_fused_gpu = hosted.iter().all(|f| f.role == Role::FusedLoop);
        if any_cpu || colocated_cores || all_fused_gpu {
            // CPU-capable (directly or via co-located cores), or
            // explicitly the GPU-only policy (DP-D), which requires a
            // batched device environment — the caller's responsibility
            // per §6.
            Ok(())
        } else {
            Err(format!(
                "environment fragments are CPU-only but {:?} instances have no CPU capacity",
                hosted[0].role
            ))
        }
    }

    /// A human-readable summary table (one line per placed fragment).
    pub fn describe(&self) -> String {
        let mut out = format!(
            "policy={} fragments={} graph_nodes={} sync={:?}\n",
            self.placement.policy.code(),
            self.placement.fragments.len(),
            self.fdg.graph.len(),
            self.placement.sync,
        );
        for f in &self.placement.fragments {
            out.push_str(&format!("  {:?}[{}] @ {}\n", f.role, f.replica, f.device));
        }
        out
    }
}

/// The coordinator.
pub struct Coordinator;

impl Coordinator {
    /// Traces, partitions and places a PPO-family algorithm.
    ///
    /// # Errors
    ///
    /// Returns an error when the trace fails validation or the policy is
    /// inapplicable to the deployment's devices.
    pub fn deploy_ppo(
        algo: &AlgorithmConfig,
        deploy: &DeploymentConfig,
        obs_dim: usize,
        act_dim: usize,
        hidden: usize,
    ) -> Result<Deployment, DeployError> {
        let _span = msrl_telemetry::span!("coordinator.deploy");
        let graph = trace_ppo(algo, obs_dim, act_dim, hidden);
        let fdg = build_fdg(graph).map_err(DeployError::Fdg)?;
        let placement = place(algo, deploy).map_err(DeployError::Placement)?;
        Ok(Deployment { fdg, placement, algo: algo.clone(), deploy: deploy.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Role;
    use msrl_core::config::PolicyName;

    #[test]
    fn deploy_ppo_under_every_builtin_policy() {
        let algo = AlgorithmConfig::ppo(4, 8);
        for policy in [
            PolicyName::SingleLearnerCoarse,
            PolicyName::SingleLearnerFine,
            PolicyName::MultipleLearners,
            PolicyName::GpuOnly,
            PolicyName::Environments,
            PolicyName::Central,
        ] {
            let deploy = DeploymentConfig::workers(4, 2, policy.clone());
            let d = Coordinator::deploy_ppo(&algo, &deploy, 17, 6, 64)
                .unwrap_or_else(|e| panic!("{}: {e}", policy.code()));
            d.fdg.check_invariants().unwrap();
            assert!(!d.placement.fragments.is_empty());
        }
    }

    #[test]
    fn switching_policy_does_not_change_the_fdg() {
        // The paper's core claim: the algorithm (and hence its FDG) is
        // independent of the distribution policy.
        let algo = AlgorithmConfig::ppo(4, 8);
        let a = Coordinator::deploy_ppo(
            &algo,
            &DeploymentConfig::workers(4, 2, PolicyName::SingleLearnerCoarse),
            17,
            6,
            64,
        )
        .unwrap();
        let c = Coordinator::deploy_ppo(
            &algo,
            &DeploymentConfig::workers(4, 2, PolicyName::MultipleLearners),
            17,
            6,
            64,
        )
        .unwrap();
        assert_eq!(a.fdg, c.fdg, "same algorithm ⇒ same FDG");
        assert_ne!(a.placement, c.placement, "different policy ⇒ different placement");
    }

    #[test]
    fn validate_accepts_builtin_policies() {
        let algo = AlgorithmConfig::ppo(2, 4);
        for policy in [
            PolicyName::SingleLearnerCoarse,
            PolicyName::SingleLearnerFine,
            PolicyName::MultipleLearners,
            PolicyName::GpuOnly, // DP-D defers env capability to the caller
            PolicyName::Environments,
            PolicyName::Central,
        ] {
            let deploy = DeploymentConfig::workers(4, 2, policy.clone());
            let d = Coordinator::deploy_ppo(&algo, &deploy, 4, 2, 16).unwrap();
            d.validate().unwrap_or_else(|e| panic!("{}: {e}", policy.code()));
        }
    }

    #[test]
    fn validate_rejects_env_starved_placement() {
        let algo = AlgorithmConfig::ppo(2, 4);
        let deploy = DeploymentConfig::workers(2, 1, PolicyName::SingleLearnerCoarse);
        let mut d = Coordinator::deploy_ppo(&algo, &deploy, 4, 2, 16).unwrap();
        // Corrupt the placement: drop every env-hosting fragment.
        d.placement.fragments.retain(|f| f.role == crate::policy::Role::Learner);
        assert!(d.validate().is_err());
    }

    #[test]
    fn describe_lists_fragments() {
        let algo = AlgorithmConfig::ppo(2, 4);
        let deploy = DeploymentConfig::workers(2, 1, PolicyName::SingleLearnerCoarse);
        let d = Coordinator::deploy_ppo(&algo, &deploy, 4, 2, 16).unwrap();
        let s = d.describe();
        assert!(s.contains("DP-A"));
        assert!(s.contains("Learner"));
        assert_eq!(d.placement.count(Role::ActorEnv), 2);
    }
}
