//! Distribution policies (§6, Tab. 2): mapping FDG fragments to devices.
//!
//! A distribution policy takes the deployment configuration and produces
//! a [`Placement`]: which fragment role runs on which device, how many
//! replicas exist, and how/when they synchronise. The six default
//! policies subsume the hard-coded strategies of existing systems (Acme,
//! SEED RL, Sebulba, WarpDrive/Anakin, parameter servers).

use msrl_comm::{DeviceId, DeviceKind};
use msrl_core::config::{AlgorithmConfig, DeploymentConfig, PolicyName};
use serde::{Deserialize, Serialize};

/// What a placed fragment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Policy inference plus environment interaction (an actor fragment
    /// with co-located environments).
    ActorEnv,
    /// A pure actor fragment (environments elsewhere).
    Actor,
    /// Environment execution only.
    Env,
    /// Policy training only.
    Learner,
    /// A fused actor+learner fragment (DP-C).
    ActorLearner,
    /// The entire training loop fused on one device (DP-D).
    FusedLoop,
    /// A central parameter-server / policy-pool fragment (DP-F).
    ParamServer,
}

/// How often replicated fragments synchronise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncGranularity {
    /// Once per episode (batched trajectories/weights — DP-A, DP-D).
    PerEpisode,
    /// Every environment step (DP-B).
    PerStep,
    /// Once per training epoch (gradient AllReduce — DP-C).
    PerEpoch,
}

/// One placed fragment instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedFragment {
    /// The fragment's role.
    pub role: Role,
    /// The device executing it.
    pub device: DeviceId,
    /// Replica index within its role.
    pub replica: usize,
}

/// A complete placement: the output of applying a distribution policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The policy that produced this placement.
    pub policy: PolicyName,
    /// All placed fragment instances.
    pub fragments: Vec<PlacedFragment>,
    /// Synchronisation granularity between replicas.
    pub sync: SyncGranularity,
}

impl Placement {
    /// All placed instances of a role.
    pub fn with_role(&self, role: Role) -> Vec<&PlacedFragment> {
        self.fragments.iter().filter(|f| f.role == role).collect()
    }

    /// Replica count for a role.
    pub fn count(&self, role: Role) -> usize {
        self.with_role(role).len()
    }

    /// Whether any fragment with this role sits on a GPU.
    pub fn role_on_gpu(&self, role: Role) -> bool {
        self.with_role(role).iter().any(|f| f.device.kind == DeviceKind::Gpu)
    }
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The deployment has no devices of a kind the policy requires.
    InsufficientDevices {
        /// What was missing.
        need: &'static str,
    },
    /// The policy name is not one of the built-in six.
    UnknownPolicy(String),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::InsufficientDevices { need } => {
                write!(f, "deployment lacks required devices: {need}")
            }
            PlacementError::UnknownPolicy(p) => write!(f, "unknown distribution policy {p}"),
        }
    }
}

impl std::error::Error for PlacementError {}

fn gpus(d: &DeploymentConfig) -> Vec<DeviceId> {
    (0..d.workers.len())
        .flat_map(|w| (0..d.gpus_per_worker).map(move |g| DeviceId::gpu(w, g)))
        .collect()
}

fn cpus(d: &DeploymentConfig) -> Vec<DeviceId> {
    (0..d.workers.len())
        .flat_map(|w| (0..d.cpus_per_worker).map(move |c| DeviceId::cpu(w, c)))
        .collect()
}

/// Applies a distribution policy, producing the fragment placement.
///
/// # Errors
///
/// Returns an error when the deployment lacks the devices the policy
/// requires (e.g. DP-D with no GPUs).
pub fn place(
    algo: &AlgorithmConfig,
    deploy: &DeploymentConfig,
) -> Result<Placement, PlacementError> {
    let gpu_list = gpus(deploy);
    let cpu_list = cpus(deploy);
    let actors = (algo.agents * algo.actors).max(1);
    let learners = (algo.agents * algo.learners).max(1);
    let policy = deploy.distribution_policy.clone();
    let mut fragments = Vec::new();

    let sync = match &policy {
        PolicyName::SingleLearnerCoarse => {
            // DP-A: actor+env replicas (GPU-backed when available), one
            // learner on the first GPU; per-episode batched sync.
            let devices = if gpu_list.is_empty() { &cpu_list } else { &gpu_list };
            if devices.is_empty() {
                return Err(PlacementError::InsufficientDevices { need: "any device" });
            }
            for i in 0..actors {
                fragments.push(PlacedFragment {
                    role: Role::ActorEnv,
                    device: devices[i % devices.len()],
                    replica: i,
                });
            }
            fragments.push(PlacedFragment { role: Role::Learner, device: devices[0], replica: 0 });
            SyncGranularity::PerEpisode
        }
        PolicyName::SingleLearnerFine => {
            // DP-B: actor fused with env on CPU fragments; learner (and
            // inference) on a GPU; per-step exchange.
            let gpu = *gpu_list.first().ok_or(PlacementError::InsufficientDevices {
                need: "a GPU for the DP-B learner",
            })?;
            if cpu_list.is_empty() {
                return Err(PlacementError::InsufficientDevices { need: "CPU workers" });
            }
            for i in 0..actors {
                fragments.push(PlacedFragment {
                    role: Role::ActorEnv,
                    device: cpu_list[i % cpu_list.len()],
                    replica: i,
                });
            }
            fragments.push(PlacedFragment { role: Role::Learner, device: gpu, replica: 0 });
            SyncGranularity::PerStep
        }
        PolicyName::MultipleLearners => {
            // DP-C: fused actor+learner replicas, one per device;
            // gradient AllReduce per epoch.
            let devices = if gpu_list.is_empty() { &cpu_list } else { &gpu_list };
            if devices.is_empty() {
                return Err(PlacementError::InsufficientDevices { need: "any device" });
            }
            for i in 0..learners.max(actors) {
                fragments.push(PlacedFragment {
                    role: Role::ActorLearner,
                    device: devices[i % devices.len()],
                    replica: i,
                });
            }
            SyncGranularity::PerEpoch
        }
        PolicyName::GpuOnly => {
            // DP-D: the whole loop fused per GPU.
            if gpu_list.is_empty() {
                return Err(PlacementError::InsufficientDevices {
                    need: "GPUs for the fused training loop",
                });
            }
            for (i, &g) in gpu_list.iter().enumerate() {
                fragments.push(PlacedFragment { role: Role::FusedLoop, device: g, replica: i });
            }
            SyncGranularity::PerEpisode
        }
        PolicyName::Environments => {
            // DP-E: the last worker is dedicated to environments; agents
            // (actor+learner pairs) occupy GPUs of the remaining workers.
            if deploy.workers.len() < 2 {
                return Err(PlacementError::InsufficientDevices {
                    need: "a dedicated environment worker",
                });
            }
            let env_worker = deploy.workers.len() - 1;
            for c in 0..deploy.cpus_per_worker {
                fragments.push(PlacedFragment {
                    role: Role::Env,
                    device: DeviceId::cpu(env_worker, c),
                    replica: c,
                });
            }
            let agent_gpus: Vec<DeviceId> =
                gpu_list.into_iter().filter(|g| g.node != env_worker).collect();
            if agent_gpus.is_empty() {
                return Err(PlacementError::InsufficientDevices { need: "agent GPUs" });
            }
            for i in 0..actors {
                fragments.push(PlacedFragment {
                    role: Role::ActorLearner,
                    device: agent_gpus[i % agent_gpus.len()],
                    replica: i,
                });
            }
            SyncGranularity::PerEpisode
        }
        PolicyName::Central => {
            // DP-F: a parameter-server fragment on worker 0 plus fused
            // worker fragments pushing updates / pulling policies.
            let devices = if gpu_list.is_empty() { &cpu_list } else { &gpu_list };
            if devices.is_empty() {
                return Err(PlacementError::InsufficientDevices { need: "any device" });
            }
            fragments.push(PlacedFragment {
                role: Role::ParamServer,
                device: DeviceId::cpu(0, 0),
                replica: 0,
            });
            for i in 0..actors {
                fragments.push(PlacedFragment {
                    role: Role::ActorLearner,
                    device: devices[i % devices.len()],
                    replica: i,
                });
            }
            SyncGranularity::PerEpisode
        }
        PolicyName::Custom(name) => return Err(PlacementError::UnknownPolicy(name.clone())),
    };

    Ok(Placement { policy, fragments, sync })
}

/// A user-defined distribution policy: a function from configurations to
/// a placement (§6: "further policies can be defined easily by expert
/// users").
pub type CustomPolicy = Box<
    dyn Fn(&AlgorithmConfig, &DeploymentConfig) -> Result<Placement, PlacementError> + Send + Sync,
>;

/// A registry resolving both the six built-in policies and user-defined
/// ones by name.
#[derive(Default)]
pub struct PolicyRegistry {
    custom: std::collections::HashMap<String, CustomPolicy>,
}

impl PolicyRegistry {
    /// An empty registry (built-ins are always available).
    pub fn new() -> Self {
        PolicyRegistry::default()
    }

    /// Registers a custom policy under a name; later registrations
    /// replace earlier ones.
    pub fn register(&mut self, name: impl Into<String>, policy: CustomPolicy) {
        self.custom.insert(name.into(), policy);
    }

    /// Resolves and applies the deployment's policy: built-ins first,
    /// then custom registrations for `PolicyName::Custom` names.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::UnknownPolicy`] for unregistered custom
    /// names, or device errors from the resolved policy.
    pub fn place(
        &self,
        algo: &AlgorithmConfig,
        deploy: &DeploymentConfig,
    ) -> Result<Placement, PlacementError> {
        match &deploy.distribution_policy {
            PolicyName::Custom(name) => match self.custom.get(name) {
                Some(f) => f(algo, deploy),
                None => Err(PlacementError::UnknownPolicy(name.clone())),
            },
            _ => place(algo, deploy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ppo_cfg(actors: usize) -> AlgorithmConfig {
        AlgorithmConfig::ppo(actors, 4)
    }

    fn deploy(workers: usize, gpus: usize, policy: PolicyName) -> DeploymentConfig {
        DeploymentConfig::workers(workers, gpus, policy)
    }

    #[test]
    fn dp_a_has_single_learner_and_replicated_actors() {
        let p = place(&ppo_cfg(8), &deploy(4, 2, PolicyName::SingleLearnerCoarse)).unwrap();
        assert_eq!(p.count(Role::ActorEnv), 8);
        assert_eq!(p.count(Role::Learner), 1);
        assert_eq!(p.sync, SyncGranularity::PerEpisode);
        assert!(p.role_on_gpu(Role::ActorEnv), "actors use GPUs for inference");
    }

    #[test]
    fn dp_b_actors_on_cpu_learner_on_gpu() {
        let p = place(&ppo_cfg(6), &deploy(2, 1, PolicyName::SingleLearnerFine)).unwrap();
        assert_eq!(p.sync, SyncGranularity::PerStep);
        assert!(!p.role_on_gpu(Role::ActorEnv), "DP-B fuses actor+env on CPUs");
        assert!(p.role_on_gpu(Role::Learner));
        // No GPUs at all → DP-B is inapplicable.
        assert!(place(&ppo_cfg(2), &deploy(2, 0, PolicyName::SingleLearnerFine)).is_err());
    }

    #[test]
    fn dp_c_fuses_actor_and_learner() {
        let p = place(&ppo_cfg(4), &deploy(2, 2, PolicyName::MultipleLearners)).unwrap();
        assert_eq!(p.count(Role::ActorLearner), 4);
        assert_eq!(p.count(Role::Learner), 0, "no separate learner");
        assert_eq!(p.sync, SyncGranularity::PerEpoch);
    }

    #[test]
    fn dp_d_covers_every_gpu_and_requires_gpus() {
        let p = place(&ppo_cfg(1), &deploy(4, 4, PolicyName::GpuOnly)).unwrap();
        assert_eq!(p.count(Role::FusedLoop), 16);
        assert!(p.role_on_gpu(Role::FusedLoop));
        assert!(place(&ppo_cfg(1), &deploy(4, 0, PolicyName::GpuOnly)).is_err());
    }

    #[test]
    fn dp_e_dedicates_a_worker_to_environments() {
        let mut cfg = ppo_cfg(6);
        cfg.agents = 6;
        cfg.actors = 1;
        let p = place(&cfg, &deploy(4, 2, PolicyName::Environments)).unwrap();
        let env_nodes: Vec<usize> = p.with_role(Role::Env).iter().map(|f| f.device.node).collect();
        assert!(env_nodes.iter().all(|&n| n == 3), "all envs on the last worker");
        let agent_nodes: Vec<usize> =
            p.with_role(Role::ActorLearner).iter().map(|f| f.device.node).collect();
        assert!(agent_nodes.iter().all(|&n| n != 3), "agents avoid the env worker");
        assert!(place(&cfg, &deploy(1, 2, PolicyName::Environments)).is_err());
    }

    #[test]
    fn dp_f_adds_a_parameter_server() {
        let p = place(&ppo_cfg(4), &deploy(2, 1, PolicyName::Central)).unwrap();
        assert_eq!(p.count(Role::ParamServer), 1);
        assert_eq!(p.count(Role::ActorLearner), 4);
    }

    #[test]
    fn custom_policy_is_rejected_without_registration() {
        let d = deploy(1, 1, PolicyName::Custom("mine".into()));
        assert!(matches!(place(&ppo_cfg(1), &d), Err(PlacementError::UnknownPolicy(_))));
    }

    #[test]
    fn registry_resolves_custom_policies() {
        // An expert-defined policy: task-parallel A3C-style per-env actor
        // sharding — one ActorEnv fragment per environment instance.
        let mut reg = PolicyRegistry::new();
        reg.register(
            "env-sharded",
            Box::new(|algo, deploy| {
                let cpus: Vec<DeviceId> = (0..deploy.workers.len())
                    .flat_map(|w| (0..deploy.cpus_per_worker).map(move |c| DeviceId::cpu(w, c)))
                    .collect();
                let fragments = (0..algo.total_envs())
                    .map(|i| PlacedFragment {
                        role: Role::ActorEnv,
                        device: cpus[i % cpus.len()],
                        replica: i,
                    })
                    .collect();
                Ok(Placement {
                    policy: PolicyName::Custom("env-sharded".into()),
                    fragments,
                    sync: SyncGranularity::PerEpisode,
                })
            }),
        );
        let algo = ppo_cfg(2); // 2 actors × 4 envs = 8 fragments
        let d = deploy(2, 0, PolicyName::Custom("env-sharded".into()));
        let p = reg.place(&algo, &d).unwrap();
        assert_eq!(p.count(Role::ActorEnv), 8);
        // Built-ins still resolve through the registry.
        let d2 = deploy(2, 1, PolicyName::SingleLearnerCoarse);
        assert_eq!(reg.place(&algo, &d2).unwrap().count(Role::Learner), 1);
        // Unregistered custom names still fail.
        let d3 = deploy(2, 1, PolicyName::Custom("nope".into()));
        assert!(reg.place(&algo, &d3).is_err());
    }

    #[test]
    fn actors_spread_across_devices_round_robin() {
        let p = place(&ppo_cfg(4), &deploy(2, 2, PolicyName::SingleLearnerCoarse)).unwrap();
        let devices: Vec<DeviceId> = p.with_role(Role::ActorEnv).iter().map(|f| f.device).collect();
        // 4 actors over 4 GPUs: all distinct.
        let mut unique = devices.clone();
        unique.sort_by_key(|d| (d.node, d.index));
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }
}
