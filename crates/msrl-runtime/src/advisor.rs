//! Policy advisor: ranks DP-A..DP-F for a profiled workload.
//!
//! Consumes the `TelemetryReport` JSON artifacts that `profile_report`
//! commits under `results/profile_*.json` and combines the measured
//! per-fragment costs with a simple analytic fragment/comm cost model to
//! predict the per-iteration period of each distribution policy at a
//! given actor count and link latency. The point is the paper's: the
//! best policy is workload- and network-dependent, and a profile of one
//! run is enough to choose the next one.
//!
//! ## Cost model
//!
//! With `r` the per-actor rollout compute (p50), `l` the whole-batch
//! learn compute per iteration (all epochs), `l1 = l / p` its per-actor
//! share, `L` the one-way per-message link latency, `p` the actor
//! count, `E` the epoch (sync-round) count, and `s` the env steps per
//! iteration:
//!
//! | Policy | Period | Rationale |
//! |--------|--------|-----------|
//! | DP-A | `max(r, L) + p·l1` | one batched exchange per iteration, broadcast overlapped with rollout |
//! | DP-B | `r + 2sL + p·l1` | learner-side inference pays a round trip per env step |
//! | DP-C | `r + E·(l1 + L)` | per-epoch gradient AllReduce, compute data-parallel |
//! | DP-D | `r + E·l1 + L` | fused on-device loop, one weight AllReduce per episode |
//! | DP-E | `r + 2sL + E·l1 + L` | env-worker messaging per step plus local learn and weight sync |
//! | DP-F | `max(r, 2L) + p·l1` | push+pull round trip, pulls overlapped with rollout |
//!
//! The model deliberately ignores serialisation and contention — it is
//! a ranking device, not a simulator — and the `advise` binary prints
//! the measured per-iteration periods from the artifacts next to the
//! modelled ones so disagreement is visible.

use std::time::Duration;

use serde::{Deserialize, Value};

/// What the advisor extracts from one `profile_*.json` artifact.
#[derive(Debug, Clone)]
pub struct ProfileSummary {
    /// Artifact the summary came from (file name or label).
    pub source: String,
    /// Distribution policy inferred from the artifact name (e.g.
    /// `dp_a`), or `"unknown"`.
    pub policy: String,
    /// Actor-side fragment replicas (max count over `fragment.*` spans).
    pub actors: usize,
    /// Training iterations (rollout phases per actor).
    pub iterations: usize,
    /// p50 of one `phase.rollout` (per-actor rollout compute), ns.
    pub rollout_p50_ns: u64,
    /// p50 of one `phase.learn`, ns. Pure compute only when the profile
    /// has a dedicated learner fragment; under fused policies it
    /// includes the in-phase collective.
    pub learn_p50_ns: u64,
    /// Vectorised env steps per iteration per actor.
    pub steps_per_iter: u64,
    /// Measured wall-clock per iteration of the fragment that closes
    /// each iteration: the dedicated learner when the run has one
    /// (actor fragments also carry startup and the trailing drain of
    /// overlapped broadcasts), else the busiest fragment, ns.
    pub measured_period_ns: Option<u64>,
    /// Whether the run had a dedicated learner fragment
    /// (`fragment.learner`), making `learn_p50_ns` comm-free.
    pub has_dedicated_learner: bool,
}

fn span_stat(spans: &Value, name: &str, stat: &str) -> Option<u64> {
    let Value::Seq(items) = spans else { return None };
    for item in items {
        if let Ok(Value::Str(n)) = item.field("name") {
            if n == name {
                return item.field(stat).ok().and_then(|v| u64::from_value(v).ok());
            }
        }
    }
    None
}

/// Parses one profile artifact (`TelemetryReport::to_json` output).
///
/// # Errors
///
/// Returns a description of the first structural problem: not JSON, no
/// `spans` array, or no `phase.rollout`/`fragment.*` spans to size the
/// workload from.
pub fn parse_profile(json: &str, source: &str) -> Result<ProfileSummary, String> {
    let root = serde_json::value_from_str(json).map_err(|e| format!("{source}: {e}"))?;
    let spans = root.field("spans").map_err(|e| format!("{source}: {e}"))?;
    let Value::Seq(items) = spans else {
        return Err(format!("{source}: `spans` is not an array"));
    };

    // Actor count: the widest replicated fragment.
    let mut actors = 0u64;
    // The busiest fragment carries the run's critical path.
    let mut busiest: Option<(u64, u64)> = None; // (total_ns, count)
    for item in items {
        let Ok(Value::Str(name)) = item.field("name") else { continue };
        if !name.starts_with("fragment.") {
            continue;
        }
        let count = item.field("count").ok().and_then(|v| u64::from_value(v).ok()).unwrap_or(0);
        let total = item.field("total_ns").ok().and_then(|v| u64::from_value(v).ok()).unwrap_or(0);
        actors = actors.max(count);
        if busiest.is_none_or(|(t, _)| total > t) {
            busiest = Some((total, count.max(1)));
        }
    }
    if actors == 0 {
        return Err(format!("{source}: no fragment.* spans"));
    }

    let rollout_count = span_stat(spans, "phase.rollout", "count")
        .filter(|&c| c > 0)
        .ok_or_else(|| format!("{source}: no phase.rollout span"))?;
    let iterations = (rollout_count / actors).max(1);
    let rollout_p50_ns = span_stat(spans, "phase.rollout", "p50_ns").unwrap_or(0);
    let learn_p50_ns = span_stat(spans, "phase.learn", "p50_ns").unwrap_or(0);

    let env_steps = root
        .field("counters")
        .ok()
        .and_then(|c| c.field("env.steps").ok())
        .and_then(|v| u64::from_value(v).ok())
        .unwrap_or(0);
    let steps_per_iter = env_steps / (actors * iterations).max(1);

    let has_dedicated_learner = span_stat(spans, "fragment.learner", "count").is_some();
    let measured_period_ns = if has_dedicated_learner {
        span_stat(spans, "fragment.learner", "total_ns")
            .zip(span_stat(spans, "fragment.learner", "count"))
            .map(|(total, count)| total / count.max(1) / iterations)
    } else {
        busiest.map(|(total, count)| total / count / iterations)
    };

    let policy = source
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_prefix("profile_"))
        .map(|rest| rest.trim_end_matches(".json").split('_').take(2).collect::<Vec<_>>().join("_"))
        .unwrap_or_else(|| "unknown".to_string());

    Ok(ProfileSummary {
        source: source.to_string(),
        policy,
        actors: actors as usize,
        iterations: iterations as usize,
        rollout_p50_ns,
        learn_p50_ns,
        steps_per_iter,
        measured_period_ns,
        has_dedicated_learner,
    })
}

/// Workload + network parameters the cost model runs on.
#[derive(Debug, Clone)]
pub struct CostModelInputs {
    /// Per-actor rollout compute per iteration, ns.
    pub rollout_ns: f64,
    /// Whole-batch learn compute per iteration (all epochs), ns.
    pub learn_ns: f64,
    /// Actor (replica) count `p`.
    pub actors: usize,
    /// Synchronisation rounds per iteration `E` (PPO epochs for the
    /// per-epoch-sync policies).
    pub epochs: usize,
    /// Env steps per iteration `s` (drives the per-step policies).
    pub steps_per_iter: u64,
    /// One-way per-message link latency `L`.
    pub latency: Duration,
}

impl CostModelInputs {
    /// Builds model inputs from a profile, overriding the actor count
    /// and network parameters the caller wants to plan for.
    pub fn from_profile(
        profile: &ProfileSummary,
        actors: usize,
        latency: Duration,
        epochs: usize,
    ) -> CostModelInputs {
        CostModelInputs {
            rollout_ns: profile.rollout_p50_ns as f64,
            learn_ns: profile.learn_p50_ns as f64,
            actors: actors.max(1),
            epochs: epochs.max(1),
            steps_per_iter: profile.steps_per_iter.max(1),
            latency,
        }
    }
}

/// One row of the advisor's ranking.
#[derive(Debug, Clone)]
pub struct PolicyEstimate {
    /// Policy name (`dp_a`..`dp_f`).
    pub policy: &'static str,
    /// Modelled per-iteration period, ns.
    pub period_ns: f64,
    /// What dominates the period under this policy.
    pub note: &'static str,
}

impl PolicyEstimate {
    /// Modelled iteration throughput.
    pub fn iters_per_sec(&self) -> f64 {
        if self.period_ns > 0.0 {
            1e9 / self.period_ns
        } else {
            0.0
        }
    }
}

/// Ranks all six policies for the given inputs, fastest first.
pub fn rank_policies(inp: &CostModelInputs) -> Vec<PolicyEstimate> {
    let r = inp.rollout_ns;
    let l1 = inp.learn_ns / inp.actors as f64;
    let p = inp.actors as f64;
    let e = inp.epochs as f64;
    let s = inp.steps_per_iter as f64;
    let lat = inp.latency.as_nanos() as f64;
    let mut rows = vec![
        PolicyEstimate {
            policy: "dp_a",
            period_ns: r.max(lat) + p * l1,
            note: "batched exchange, broadcast overlapped with rollout",
        },
        PolicyEstimate {
            policy: "dp_b",
            period_ns: r + 2.0 * s * lat + p * l1,
            note: "per-step round trip to the learner",
        },
        PolicyEstimate {
            policy: "dp_c",
            period_ns: r + e * (l1 + lat),
            note: "per-epoch gradient AllReduce",
        },
        PolicyEstimate {
            policy: "dp_d",
            period_ns: r + e * l1 + lat,
            note: "fused on-device loop, one weight sync per episode",
        },
        PolicyEstimate {
            policy: "dp_e",
            period_ns: r + 2.0 * s * lat + e * l1 + lat,
            note: "env-worker message per step plus weight sync",
        },
        PolicyEstimate {
            policy: "dp_f",
            period_ns: r.max(2.0 * lat) + p * l1,
            note: "parameter-server push+pull, pulls overlapped",
        },
    ];
    rows.sort_by(|a, b| a.period_ns.total_cmp(&b.period_ns));
    rows
}

/// Renders the ranking (and any measured periods) as an aligned table.
pub fn render_table(rows: &[PolicyEstimate], measured: &[ProfileSummary]) -> String {
    let mut out = String::new();
    out.push_str("rank  policy  model ms/iter  model it/s  note\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{:>4}  {:<6}  {:>13.3}  {:>10.1}  {}\n",
            i + 1,
            row.policy,
            row.period_ns / 1e6,
            row.iters_per_sec(),
            row.note
        ));
    }
    if !measured.is_empty() {
        out.push_str("\nmeasured (from profile artifacts):\n");
        out.push_str("policy  ms/iter  source\n");
        let mut sorted: Vec<&ProfileSummary> = measured.iter().collect();
        sorted.sort_by_key(|s| s.measured_period_ns.unwrap_or(u64::MAX));
        for s in sorted {
            if let Some(period) = s.measured_period_ns {
                out.push_str(&format!(
                    "{:<6}  {:>7.3}  {}\n",
                    s.policy,
                    period as f64 / 1e6,
                    s.source
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(name: &str) -> ProfileSummary {
        let path = format!("{}/../../results/{name}", env!("CARGO_MANIFEST_DIR"));
        let json = std::fs::read_to_string(&path).expect("committed profile artifact");
        parse_profile(&json, name).expect("parse committed profile")
    }

    #[test]
    fn advisor_ranks_dp_a_ahead_of_dp_c_for_rollout_heavy_cartpole() {
        let dp_a = load("profile_dp_a_overlap.json");
        let dp_c = load("profile_dp_c_overlap.json");
        assert!(dp_a.has_dedicated_learner, "DP-A profile separates learn from comm");
        assert!(dp_a.actors >= 2 && dp_a.iterations >= 2);

        // Model ranking at the profiled 10 ms link latency.
        let inputs =
            CostModelInputs::from_profile(&dp_a, dp_a.actors, Duration::from_millis(10), 1);
        let rows = rank_policies(&inputs);
        let pos = |name: &str| rows.iter().position(|r| r.policy == name).unwrap();
        assert!(pos("dp_a") < pos("dp_c"), "model must rank DP-A ahead of DP-C: {rows:?}");
        assert_eq!(rows[0].policy, "dp_a", "DP-A wins the rollout-heavy profile");
        // The per-step policies must be heavily penalised at 10 ms.
        assert!(pos("dp_b") > pos("dp_c") && pos("dp_e") > pos("dp_c"));

        // The artifacts agree: DP-A's measured period beats DP-C's.
        let (ma, mc) = (
            dp_a.measured_period_ns.expect("dp_a busiest fragment"),
            dp_c.measured_period_ns.expect("dp_c busiest fragment"),
        );
        assert!(ma < mc, "measured DP-A ({ma} ns/iter) must beat DP-C ({mc} ns/iter)");
        // And the model's absolute estimate is in the right regime
        // (latency-dominated ≈ 10–15 ms, not µs or seconds).
        let dpa_model = rows[pos("dp_a")].period_ns;
        assert!((5e6..5e7).contains(&dpa_model), "DP-A model period: {dpa_model}");
    }

    #[test]
    fn zero_latency_ranking_is_compute_dominated() {
        let dp_a = load("profile_dp_a_overlap.json");
        let inputs = CostModelInputs::from_profile(&dp_a, 4, Duration::ZERO, 4);
        let rows = rank_policies(&inputs);
        // With a free network, every period collapses to compute terms
        // and nothing should be latency-dominated.
        assert!(rows.iter().all(|r| r.period_ns < 1e8), "{rows:?}");
        let table = render_table(&rows, &[dp_a]);
        assert!(table.contains("rank") && table.contains("dp_a"));
    }

    #[test]
    fn parse_rejects_malformed_profiles() {
        assert!(parse_profile("not json", "x").is_err());
        assert!(parse_profile("{\"spans\": []}", "x").is_err());
        assert!(parse_profile("{\"spans\": 3}", "x").is_err());
    }
}
