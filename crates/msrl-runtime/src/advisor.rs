//! Policy advisor: ranks DP-A..DP-F for a profiled workload.
//!
//! Consumes the `TelemetryReport` JSON artifacts that `profile_report`
//! commits under `results/profile_*.json` and combines the measured
//! per-fragment costs with a simple analytic fragment/comm cost model to
//! predict the per-iteration period of each distribution policy at a
//! given actor count and link latency. The point is the paper's: the
//! best policy is workload- and network-dependent, and a profile of one
//! run is enough to choose the next one.
//!
//! ## Cost model
//!
//! With `r` the per-actor rollout compute (p50), `l` the whole-batch
//! learn compute per iteration (all epochs), `l1 = l / p` its per-actor
//! share, `L` the one-way per-message link latency, `p` the actor
//! count, `E` the epoch (sync-round) count, and `s` the env steps per
//! iteration:
//!
//! | Policy | Period | Rationale |
//! |--------|--------|-----------|
//! | DP-A | `max(r, L) + p·l1` | one batched exchange per iteration, broadcast overlapped with rollout |
//! | DP-B | `r + 2sL + p·l1` | learner-side inference pays a round trip per env step |
//! | DP-C | `r + E·(l1 + L)` | per-epoch gradient AllReduce, compute data-parallel |
//! | DP-D | `r + E·l1 + L` | fused on-device loop, one weight AllReduce per episode |
//! | DP-E | `r + 2sL + E·l1 + L` | env-worker messaging per step plus local learn and weight sync |
//! | DP-F | `max(r, 2L) + p·l1` | push+pull round trip, pulls overlapped with rollout |
//!
//! The model deliberately ignores serialisation and contention — it is
//! a ranking device, not a simulator — and the `advise` binary prints
//! the measured per-iteration periods from the artifacts next to the
//! modelled ones so disagreement is visible.
//!
//! ## Live mode
//!
//! [`LiveAdvisor`] feeds the same cost model from the always-on
//! attribution stream instead of a post-hoc profile: it tails
//! `msrl.run_event.v2` lines, EWMA-smooths the per-iteration rollout
//! and learn terms, and re-ranks a candidate set on every event. A
//! recommendation is printed only when the bottleneck shift persists
//! through a hysteresis window (margin × consecutive confirmations),
//! and it is advice only — the advisor never re-plans the run itself.

use std::time::Duration;

use serde::{Deserialize, Value};

/// What the advisor extracts from one `profile_*.json` artifact.
#[derive(Debug, Clone)]
pub struct ProfileSummary {
    /// Artifact the summary came from (file name or label).
    pub source: String,
    /// Distribution policy inferred from the artifact name (e.g.
    /// `dp_a`), or `"unknown"`.
    pub policy: String,
    /// Actor-side fragment replicas (max count over `fragment.*` spans).
    pub actors: usize,
    /// Training iterations (rollout phases per actor).
    pub iterations: usize,
    /// p50 of one `phase.rollout` (per-actor rollout compute), ns.
    pub rollout_p50_ns: u64,
    /// p50 of one `phase.learn`, ns. Pure compute only when the profile
    /// has a dedicated learner fragment; under fused policies it
    /// includes the in-phase collective.
    pub learn_p50_ns: u64,
    /// Vectorised env steps per iteration per actor.
    pub steps_per_iter: u64,
    /// Measured wall-clock per iteration of the fragment that closes
    /// each iteration: the dedicated learner when the run has one
    /// (actor fragments also carry startup and the trailing drain of
    /// overlapped broadcasts), else the busiest fragment, ns.
    pub measured_period_ns: Option<u64>,
    /// Whether the run had a dedicated learner fragment
    /// (`fragment.learner`), making `learn_p50_ns` comm-free.
    pub has_dedicated_learner: bool,
}

fn span_stat(spans: &Value, name: &str, stat: &str) -> Option<u64> {
    let Value::Seq(items) = spans else { return None };
    for item in items {
        if let Ok(Value::Str(n)) = item.field("name") {
            if n == name {
                return item.field(stat).ok().and_then(|v| u64::from_value(v).ok());
            }
        }
    }
    None
}

/// Parses one profile artifact (`TelemetryReport::to_json` output).
///
/// # Errors
///
/// Returns a description of the first structural problem: not JSON, no
/// `spans` array, or no `phase.rollout`/`fragment.*` spans to size the
/// workload from.
pub fn parse_profile(json: &str, source: &str) -> Result<ProfileSummary, String> {
    let root = serde_json::value_from_str(json).map_err(|e| format!("{source}: {e}"))?;
    let spans = root.field("spans").map_err(|e| format!("{source}: {e}"))?;
    let Value::Seq(items) = spans else {
        return Err(format!("{source}: `spans` is not an array"));
    };

    // Actor count: the widest replicated fragment.
    let mut actors = 0u64;
    // The busiest fragment carries the run's critical path.
    let mut busiest: Option<(u64, u64)> = None; // (total_ns, count)
    for item in items {
        let Ok(Value::Str(name)) = item.field("name") else { continue };
        if !name.starts_with("fragment.") {
            continue;
        }
        let count = item.field("count").ok().and_then(|v| u64::from_value(v).ok()).unwrap_or(0);
        let total = item.field("total_ns").ok().and_then(|v| u64::from_value(v).ok()).unwrap_or(0);
        actors = actors.max(count);
        if busiest.is_none_or(|(t, _)| total > t) {
            busiest = Some((total, count.max(1)));
        }
    }
    if actors == 0 {
        return Err(format!("{source}: no fragment.* spans"));
    }

    let rollout_count = span_stat(spans, "phase.rollout", "count")
        .filter(|&c| c > 0)
        .ok_or_else(|| format!("{source}: no phase.rollout span"))?;
    let iterations = (rollout_count / actors).max(1);
    let rollout_p50_ns = span_stat(spans, "phase.rollout", "p50_ns").unwrap_or(0);
    let learn_p50_ns = span_stat(spans, "phase.learn", "p50_ns").unwrap_or(0);

    let env_steps = root
        .field("counters")
        .ok()
        .and_then(|c| c.field("env.steps").ok())
        .and_then(|v| u64::from_value(v).ok())
        .unwrap_or(0);
    let steps_per_iter = env_steps / (actors * iterations).max(1);

    let has_dedicated_learner = span_stat(spans, "fragment.learner", "count").is_some();
    let measured_period_ns = if has_dedicated_learner {
        span_stat(spans, "fragment.learner", "total_ns")
            .zip(span_stat(spans, "fragment.learner", "count"))
            .map(|(total, count)| total / count.max(1) / iterations)
    } else {
        busiest.map(|(total, count)| total / count / iterations)
    };

    let policy = source
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_prefix("profile_"))
        .map(|rest| rest.trim_end_matches(".json").split('_').take(2).collect::<Vec<_>>().join("_"))
        .unwrap_or_else(|| "unknown".to_string());

    Ok(ProfileSummary {
        source: source.to_string(),
        policy,
        actors: actors as usize,
        iterations: iterations as usize,
        rollout_p50_ns,
        learn_p50_ns,
        steps_per_iter,
        measured_period_ns,
        has_dedicated_learner,
    })
}

/// Workload + network parameters the cost model runs on.
#[derive(Debug, Clone)]
pub struct CostModelInputs {
    /// Per-actor rollout compute per iteration, ns.
    pub rollout_ns: f64,
    /// Whole-batch learn compute per iteration (all epochs), ns.
    pub learn_ns: f64,
    /// Actor (replica) count `p`.
    pub actors: usize,
    /// Synchronisation rounds per iteration `E` (PPO epochs for the
    /// per-epoch-sync policies).
    pub epochs: usize,
    /// Env steps per iteration `s` (drives the per-step policies).
    pub steps_per_iter: u64,
    /// One-way per-message link latency `L`.
    pub latency: Duration,
}

impl CostModelInputs {
    /// Builds model inputs from a profile, overriding the actor count
    /// and network parameters the caller wants to plan for.
    pub fn from_profile(
        profile: &ProfileSummary,
        actors: usize,
        latency: Duration,
        epochs: usize,
    ) -> CostModelInputs {
        CostModelInputs {
            rollout_ns: profile.rollout_p50_ns as f64,
            learn_ns: profile.learn_p50_ns as f64,
            actors: actors.max(1),
            epochs: epochs.max(1),
            steps_per_iter: profile.steps_per_iter.max(1),
            latency,
        }
    }
}

/// One row of the advisor's ranking.
#[derive(Debug, Clone)]
pub struct PolicyEstimate {
    /// Policy name (`dp_a`..`dp_f`).
    pub policy: &'static str,
    /// Modelled per-iteration period, ns.
    pub period_ns: f64,
    /// What dominates the period under this policy.
    pub note: &'static str,
}

impl PolicyEstimate {
    /// Modelled iteration throughput.
    pub fn iters_per_sec(&self) -> f64 {
        if self.period_ns > 0.0 {
            1e9 / self.period_ns
        } else {
            0.0
        }
    }
}

/// Ranks all six policies for the given inputs, fastest first.
pub fn rank_policies(inp: &CostModelInputs) -> Vec<PolicyEstimate> {
    let r = inp.rollout_ns;
    let l1 = inp.learn_ns / inp.actors as f64;
    let p = inp.actors as f64;
    let e = inp.epochs as f64;
    let s = inp.steps_per_iter as f64;
    let lat = inp.latency.as_nanos() as f64;
    let mut rows = vec![
        PolicyEstimate {
            policy: "dp_a",
            period_ns: r.max(lat) + p * l1,
            note: "batched exchange, broadcast overlapped with rollout",
        },
        PolicyEstimate {
            policy: "dp_b",
            period_ns: r + 2.0 * s * lat + p * l1,
            note: "per-step round trip to the learner",
        },
        PolicyEstimate {
            policy: "dp_c",
            period_ns: r + e * (l1 + lat),
            note: "per-epoch gradient AllReduce",
        },
        PolicyEstimate {
            policy: "dp_d",
            period_ns: r + e * l1 + lat,
            note: "fused on-device loop, one weight sync per episode",
        },
        PolicyEstimate {
            policy: "dp_e",
            period_ns: r + 2.0 * s * lat + e * l1 + lat,
            note: "env-worker message per step plus weight sync",
        },
        PolicyEstimate {
            policy: "dp_f",
            period_ns: r.max(2.0 * lat) + p * l1,
            note: "parameter-server push+pull, pulls overlapped",
        },
    ];
    rows.sort_by(|a, b| a.period_ns.total_cmp(&b.period_ns));
    rows
}

/// One attribution sample parsed from a `msrl.run_event.v2` JSONL line.
///
/// This is the live advisor's input: the per-iteration critical-path
/// breakdown the attribution engine streams through the run-event sink.
#[derive(Debug, Clone)]
pub struct AttrSample {
    /// Distribution policy that emitted the event (`dp_a`, ...).
    pub policy: String,
    /// Iteration number within the run.
    pub iteration: u64,
    /// Iteration wall time, ns.
    pub wall_ns: u64,
    /// Slowest fragment's rollout compute this iteration, ns — the
    /// cost model's per-actor rollout term `r`.
    pub rollout_ns: u64,
    /// Total learn compute across fragments, ns — the cost model's
    /// whole-batch learn term `l`.
    pub learn_ns: u64,
    /// Slowest fragment's comm-blocked time, ns.
    pub comm_ns: u64,
    /// Fragments that did rollout work (the replica count `p`).
    pub actors: usize,
    /// Dominant component this iteration (`rollout`/`learn`/`comm`/`idle`).
    pub bottleneck: String,
    /// `role/id` of fragments flagged as stragglers.
    pub stragglers: Vec<String>,
}

/// Parses one metrics-stream line into an [`AttrSample`].
///
/// Returns `Ok(None)` for v1 lines (no `attr` payload) so callers can
/// tail a mixed-schema stream without special-casing.
///
/// # Errors
///
/// Returns a description of the first structural problem in a v2 line.
pub fn parse_run_event_v2(line: &str) -> Result<Option<AttrSample>, String> {
    let root = serde_json::value_from_str(line).map_err(|e| e.to_string())?;
    let Ok(attr) = root.field("attr") else { return Ok(None) };
    let policy = match root.field("policy") {
        Ok(Value::Str(s)) => s.clone(),
        _ => return Err("run event lacks a `policy` string".to_string()),
    };
    let iteration = root
        .field("iteration")
        .ok()
        .and_then(|v| u64::from_value(v).ok())
        .ok_or("run event lacks an `iteration`")?;
    let num = |v: &Value, name: &str| -> Result<u64, String> {
        v.field(name)
            .ok()
            .and_then(|f| u64::from_value(f).ok())
            .ok_or_else(|| format!("attr lacks `{name}`"))
    };
    let wall_ns = num(attr, "wall_ns")?;
    let bottleneck = match attr.field("bottleneck") {
        Ok(Value::Str(s)) => s.clone(),
        _ => return Err("attr lacks a `bottleneck` string".to_string()),
    };
    let Ok(Value::Seq(frags)) = attr.field("fragments") else {
        return Err("attr lacks a `fragments` array".to_string());
    };
    let (mut rollout_ns, mut learn_ns, mut comm_ns, mut actors) = (0u64, 0u64, 0u64, 0usize);
    let mut stragglers = Vec::new();
    for f in frags {
        let fr = num(f, "rollout_ns")?;
        rollout_ns = rollout_ns.max(fr);
        learn_ns += num(f, "learn_ns")?;
        comm_ns = comm_ns.max(num(f, "comm_ns")?);
        if fr > 0 {
            actors += 1;
        }
        if let (Ok(Value::Str(role)), Ok(Value::Bool(true))) =
            (f.field("role"), f.field("straggler"))
        {
            let id = num(f, "id").unwrap_or(0);
            stragglers.push(format!("{role}/{id}"));
        }
    }
    Ok(Some(AttrSample {
        policy,
        iteration,
        wall_ns,
        rollout_ns,
        learn_ns,
        comm_ns,
        actors,
        bottleneck,
        stragglers,
    }))
}

/// Tuning for the live advisor's folding and hysteresis.
#[derive(Debug, Clone)]
pub struct LiveAdvisorConfig {
    /// Policies the advisor is allowed to recommend. The default pair
    /// `{dp_a, dp_c}` is the coarse-sync trade-off the cost model can
    /// genuinely flip on (DP-D dominates DP-C analytically, so ranking
    /// the full set would never recommend DP-C).
    pub candidates: Vec<&'static str>,
    /// One-way link latency `L` to plan for.
    pub latency: Duration,
    /// Sync rounds per iteration `E`.
    pub epochs: usize,
    /// EWMA weight of each new sample (0..=1; higher reacts faster).
    pub alpha: f64,
    /// A challenger must beat the incumbent's modelled period by this
    /// relative margin to count towards a flip.
    pub margin: f64,
    /// Consecutive margin-beating events required before the
    /// recommendation flips (hysteresis against transient noise).
    pub confirm: usize,
}

impl Default for LiveAdvisorConfig {
    fn default() -> Self {
        LiveAdvisorConfig {
            candidates: vec!["dp_a", "dp_c"],
            latency: Duration::from_millis(10),
            epochs: 1,
            alpha: 0.3,
            margin: 0.10,
            confirm: 3,
        }
    }
}

/// A recommendation the live advisor emitted after a bottleneck shift
/// (or on the first sample).
#[derive(Debug, Clone)]
pub struct LiveRecommendation {
    /// The policy the advisor now recommends.
    pub policy: &'static str,
    /// The previous recommendation (`None` on the initial one).
    pub previous: Option<&'static str>,
    /// Modelled period of the recommended policy, ns.
    pub period_ns: f64,
    /// Bottleneck label of the sample that triggered the change.
    pub bottleneck: String,
    /// How many attribution events had been folded in at that point.
    pub events: u64,
}

/// Folds the v2 attribution stream into the DP-A..DP-F cost model and
/// recommends a re-partition when the bottleneck shifts.
///
/// Recommendation only: the advisor never restarts or re-plans the run
/// itself. Workload terms (`r`, `l`) are EWMA-smoothed and a flip needs
/// [`LiveAdvisorConfig::confirm`] consecutive events where the
/// challenger beats the incumbent by [`LiveAdvisorConfig::margin`], so
/// noise below the hysteresis threshold never flips the advice.
#[derive(Debug)]
pub struct LiveAdvisor {
    cfg: LiveAdvisorConfig,
    rollout_ewma: f64,
    learn_ewma: f64,
    actors: usize,
    steps_per_iter: u64,
    current: Option<&'static str>,
    streak: usize,
    events: u64,
}

impl LiveAdvisor {
    /// Creates a live advisor with the given tuning.
    pub fn new(cfg: LiveAdvisorConfig) -> LiveAdvisor {
        LiveAdvisor {
            cfg,
            rollout_ewma: 0.0,
            learn_ewma: 0.0,
            actors: 1,
            steps_per_iter: 1,
            current: None,
            streak: 0,
            events: 0,
        }
    }

    /// The current recommendation, if any sample has been folded in.
    pub fn current(&self) -> Option<&'static str> {
        self.current
    }

    /// Attribution events folded in so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The smoothed cost-model inputs the advisor currently ranks on.
    pub fn inputs(&self) -> CostModelInputs {
        CostModelInputs {
            rollout_ns: self.rollout_ewma,
            learn_ns: self.learn_ewma,
            actors: self.actors,
            epochs: self.cfg.epochs,
            steps_per_iter: self.steps_per_iter,
            latency: self.cfg.latency,
        }
    }

    /// Folds one metrics-stream line in; v1 lines are ignored.
    ///
    /// # Errors
    ///
    /// Propagates [`parse_run_event_v2`] failures.
    pub fn observe_line(&mut self, line: &str) -> Result<Option<LiveRecommendation>, String> {
        Ok(parse_run_event_v2(line)?.and_then(|s| self.observe(&s)))
    }

    /// Folds one attribution sample in, returning a recommendation when
    /// it is the first sample or the bottleneck shift has persisted
    /// through the hysteresis window.
    pub fn observe(&mut self, sample: &AttrSample) -> Option<LiveRecommendation> {
        self.events += 1;
        self.actors = self.actors.max(sample.actors.max(1));
        let a = self.cfg.alpha.clamp(0.0, 1.0);
        if self.events == 1 {
            self.rollout_ewma = sample.rollout_ns as f64;
            self.learn_ewma = sample.learn_ns as f64;
        } else {
            self.rollout_ewma = (1.0 - a) * self.rollout_ewma + a * sample.rollout_ns as f64;
            self.learn_ewma = (1.0 - a) * self.learn_ewma + a * sample.learn_ns as f64;
        }

        let rows = rank_policies(&self.inputs());
        let candidate = |name: &str| rows.iter().find(|r| r.policy == name).map(|r| r.period_ns);
        let mut best: Option<(&'static str, f64)> = None;
        for &name in &self.cfg.candidates {
            if let Some(period) = candidate(name) {
                if best.is_none_or(|(_, b)| period < b) {
                    best = Some((name, period));
                }
            }
        }
        let (winner, winner_period) = best?;

        let Some(incumbent) = self.current else {
            // First sample: adopt the winner outright.
            self.current = Some(winner);
            return Some(LiveRecommendation {
                policy: winner,
                previous: None,
                period_ns: winner_period,
                bottleneck: sample.bottleneck.clone(),
                events: self.events,
            });
        };
        if winner == incumbent {
            self.streak = 0;
            return None;
        }
        let incumbent_period = candidate(incumbent).unwrap_or(f64::INFINITY);
        if winner_period < incumbent_period * (1.0 - self.cfg.margin) {
            self.streak += 1;
        } else {
            self.streak = 0;
            return None;
        }
        if self.streak < self.cfg.confirm.max(1) {
            return None;
        }
        self.streak = 0;
        self.current = Some(winner);
        Some(LiveRecommendation {
            policy: winner,
            previous: Some(incumbent),
            period_ns: winner_period,
            bottleneck: sample.bottleneck.clone(),
            events: self.events,
        })
    }
}

/// Renders the ranking (and any measured periods) as an aligned table.
pub fn render_table(rows: &[PolicyEstimate], measured: &[ProfileSummary]) -> String {
    let mut out = String::new();
    out.push_str("rank  policy  model ms/iter  model it/s  note\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{:>4}  {:<6}  {:>13.3}  {:>10.1}  {}\n",
            i + 1,
            row.policy,
            row.period_ns / 1e6,
            row.iters_per_sec(),
            row.note
        ));
    }
    if !measured.is_empty() {
        out.push_str("\nmeasured (from profile artifacts):\n");
        out.push_str("policy  ms/iter  source\n");
        let mut sorted: Vec<&ProfileSummary> = measured.iter().collect();
        sorted.sort_by_key(|s| s.measured_period_ns.unwrap_or(u64::MAX));
        for s in sorted {
            if let Some(period) = s.measured_period_ns {
                out.push_str(&format!(
                    "{:<6}  {:>7.3}  {}\n",
                    s.policy,
                    period as f64 / 1e6,
                    s.source
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(name: &str) -> ProfileSummary {
        let path = format!("{}/../../results/{name}", env!("CARGO_MANIFEST_DIR"));
        let json = std::fs::read_to_string(&path).expect("committed profile artifact");
        parse_profile(&json, name).expect("parse committed profile")
    }

    #[test]
    fn advisor_ranks_dp_a_ahead_of_dp_c_for_rollout_heavy_cartpole() {
        let dp_a = load("profile_dp_a_overlap.json");
        let dp_c = load("profile_dp_c_overlap.json");
        assert!(dp_a.has_dedicated_learner, "DP-A profile separates learn from comm");
        assert!(dp_a.actors >= 2 && dp_a.iterations >= 2);

        // Model ranking at the profiled 10 ms link latency.
        let inputs =
            CostModelInputs::from_profile(&dp_a, dp_a.actors, Duration::from_millis(10), 1);
        let rows = rank_policies(&inputs);
        let pos = |name: &str| rows.iter().position(|r| r.policy == name).unwrap();
        assert!(pos("dp_a") < pos("dp_c"), "model must rank DP-A ahead of DP-C: {rows:?}");
        assert_eq!(rows[0].policy, "dp_a", "DP-A wins the rollout-heavy profile");
        // The per-step policies must be heavily penalised at 10 ms.
        assert!(pos("dp_b") > pos("dp_c") && pos("dp_e") > pos("dp_c"));

        // The artifacts agree: DP-A's measured period beats DP-C's.
        let (ma, mc) = (
            dp_a.measured_period_ns.expect("dp_a busiest fragment"),
            dp_c.measured_period_ns.expect("dp_c busiest fragment"),
        );
        assert!(ma < mc, "measured DP-A ({ma} ns/iter) must beat DP-C ({mc} ns/iter)");
        // And the model's absolute estimate is in the right regime
        // (latency-dominated ≈ 10–15 ms, not µs or seconds).
        let dpa_model = rows[pos("dp_a")].period_ns;
        assert!((5e6..5e7).contains(&dpa_model), "DP-A model period: {dpa_model}");
    }

    #[test]
    fn zero_latency_ranking_is_compute_dominated() {
        let dp_a = load("profile_dp_a_overlap.json");
        let inputs = CostModelInputs::from_profile(&dp_a, 4, Duration::ZERO, 4);
        let rows = rank_policies(&inputs);
        // With a free network, every period collapses to compute terms
        // and nothing should be latency-dominated.
        assert!(rows.iter().all(|r| r.period_ns < 1e8), "{rows:?}");
        let table = render_table(&rows, &[dp_a]);
        assert!(table.contains("rank") && table.contains("dp_a"));
    }

    #[test]
    fn parse_rejects_malformed_profiles() {
        assert!(parse_profile("not json", "x").is_err());
        assert!(parse_profile("{\"spans\": []}", "x").is_err());
        assert!(parse_profile("{\"spans\": 3}", "x").is_err());
    }

    /// Builds a real v2 metrics line: 3 actor fragments rolling out for
    /// `r_ns` and one learner learning for `l_ns`, attributed by the
    /// engine and serialised through the run-event sink.
    fn v2_line(iter: u64, r_ns: u64, l_ns: u64) -> String {
        use msrl_telemetry as tel;
        let mut stamps = Vec::new();
        for id in 0..3u64 {
            stamps.push(tel::StepStamp {
                role: "actor",
                fragment: id,
                class: tel::StepClass::Rollout,
                start_ns: 0,
                end_ns: r_ns,
            });
        }
        stamps.push(tel::StepStamp {
            role: "learner",
            fragment: 0,
            class: tel::StepClass::Learn,
            start_ns: 0,
            end_ns: l_ns,
        });
        let wall = r_ns.max(l_ns) + 1;
        let attr = tel::attribute(&stamps, 0, wall, 2.0);
        tel::RunEvent {
            policy: "dp_a",
            iteration: iter,
            reward: 1.0,
            loss: None,
            entropy: None,
            iters_per_sec: 10.0,
            comm_bytes: 0,
            staleness: 0,
            plan_cache_hit_rate: None,
            attr: Some(attr),
            actsrv: None,
            health: None,
        }
        .to_json_line()
    }

    #[test]
    fn parse_run_event_v2_extracts_workload_terms() {
        let line = v2_line(3, 20_000_000, 300_000);
        let sample = parse_run_event_v2(&line).unwrap().expect("v2 line carries attr");
        assert_eq!(sample.policy, "dp_a");
        assert_eq!(sample.iteration, 3);
        assert_eq!(sample.rollout_ns, 20_000_000, "slowest actor's rollout");
        assert_eq!(sample.learn_ns, 300_000, "summed learn compute");
        assert_eq!(sample.actors, 3);
        assert_eq!(sample.bottleneck, "rollout");

        // v1 lines (no attr) are passed over, not rejected.
        let v1 = r#"{"schema": "msrl.run_event.v1", "policy": "dp_a", "iteration": 1}"#;
        assert!(parse_run_event_v2(v1).unwrap().is_none());
        assert!(parse_run_event_v2("not json").is_err());
    }

    #[test]
    fn live_advisor_flips_dp_a_to_dp_c_when_bottleneck_shifts() {
        let mut adv = LiveAdvisor::new(LiveAdvisorConfig::default());
        let mut recs = Vec::new();
        // Rollout-bound regime: 20 ms rollout, 0.3 ms learn. At 10 ms
        // latency DP-A's single batched exchange wins.
        for i in 0..6 {
            if let Some(r) = adv.observe_line(&v2_line(i, 20_000_000, 300_000)).unwrap() {
                recs.push(r);
            }
        }
        assert_eq!(recs.len(), 1, "one initial recommendation: {recs:?}");
        assert_eq!(recs[0].policy, "dp_a");
        assert_eq!(recs[0].previous, None);
        // The workload turns learn-bound mid-stream: 5 ms rollout, 90 ms
        // learn. Data-parallel DP-C now wins decisively; the flip lands
        // after the hysteresis window (3 confirming events), not on the
        // first shifted sample.
        for i in 6..12 {
            if let Some(r) = adv.observe_line(&v2_line(i, 5_000_000, 90_000_000)).unwrap() {
                recs.push(r);
            }
        }
        assert_eq!(recs.len(), 2, "exactly one flip: {recs:?}");
        assert_eq!(recs[1].policy, "dp_c");
        assert_eq!(recs[1].previous, Some("dp_a"));
        assert!(recs[1].events >= 6 + 3, "flip respects the confirmation window");
        assert_eq!(adv.current(), Some("dp_c"));
    }

    #[test]
    fn live_advisor_is_stable_under_noise_below_hysteresis() {
        // Workload pinned near the DP-A/DP-C break-even point
        // (l = 1.5e7 at 10 ms, p = 3: both periods are 3.5e7), with
        // alpha = 1 so every sample's jitter hits the model unsmoothed.
        // The ±4% learn jitter lets DP-C win some events, but never by
        // the 10% margin — the recommendation must not flip.
        let cfg = LiveAdvisorConfig { alpha: 1.0, ..LiveAdvisorConfig::default() };
        let mut adv = LiveAdvisor::new(cfg);
        let mut recs = Vec::new();
        for i in 0..20u64 {
            let l = if i % 2 == 0 { 14_500_000 } else { 15_500_000 };
            if let Some(r) = adv.observe_line(&v2_line(i, 20_000_000, l)).unwrap() {
                recs.push(r);
            }
        }
        assert_eq!(recs.len(), 1, "only the initial recommendation: {recs:?}");
        assert_eq!(adv.current(), Some("dp_a"), "noise below hysteresis never flips");
    }

    #[test]
    fn live_advisor_agrees_with_committed_profile_ranking() {
        // Folding the committed DP-A profile's workload terms into the
        // live path must reproduce the offline ranking: DP-A beats DP-C
        // on rollout-heavy CartPole at the profiled 10 ms latency.
        let dp_a = load("profile_dp_a_overlap.json");
        let sample = AttrSample {
            policy: "dp_a".to_string(),
            iteration: 0,
            wall_ns: dp_a.rollout_p50_ns + dp_a.learn_p50_ns,
            rollout_ns: dp_a.rollout_p50_ns,
            learn_ns: dp_a.learn_p50_ns,
            comm_ns: 0,
            actors: dp_a.actors,
            bottleneck: "rollout".to_string(),
            stragglers: Vec::new(),
        };
        let mut adv = LiveAdvisor::new(LiveAdvisorConfig::default());
        let rec = adv.observe(&sample).expect("first sample recommends");
        assert_eq!(rec.policy, "dp_a");
    }
}
