//! DP-F (central parameter server / policy pool).
//!
//! A dedicated fragment holds the authoritative policy and its optimiser
//! state; worker fragments collect experience, compute local gradients,
//! *push* them to the server and *pull* fresh weights — the
//! parameter-server pattern of Li et al. (OSDI '14) that Tab. 2 cites for
//! CTDE-based MARL. Updates apply in arrival order (asynchronous
//! semantics: a worker never waits for its peers, only for the server's
//! reply to its own push).
//!
//! Weight pulls are overlapped: after pushing gradients a worker posts an
//! `irecv` for the server's reply and starts its next rollout right away,
//! swapping weights in when the pull lands. The number of outstanding
//! pulls is bounded by `DistPpoConfig::staleness` (overlap off ⇒ zero,
//! the fully blocking original).

use std::collections::VecDeque;

use msrl_algos::ppo::{PpoActor, PpoLearner, PpoPolicy};
use msrl_algos::rollout::collect;
use msrl_comm::{Fabric, PendingRecv};
use msrl_core::api::{Actor, Learner};
use msrl_core::{FdgError, Result};
use msrl_env::{Environment, VecEnv};

use super::{finish_run, mean_or_prev, DistPpoConfig, RunObserver, TrainingReport};

/// Runs PPO under DP-F.
///
/// # Errors
///
/// Propagates algorithm/communication failures from any fragment.
pub fn run_dp_f<E, F>(make_env: F, dist: &DistPpoConfig) -> Result<TrainingReport>
where
    E: Environment + 'static,
    F: Fn(usize, usize) -> E + Send + Sync,
{
    dist.apply_fusion();
    let p = dist.actors.max(1);
    // Ranks 0..p are workers; rank p is the parameter server.
    let mut endpoints = Fabric::with_latency(p + 1, dist.link_latency);
    let server_ep = endpoints.pop().expect("fabric yields p+1 endpoints");

    let probe = make_env(0, 0);
    let (obs_dim, spec) = (probe.obs_dim(), probe.action_spec());
    drop(probe);
    let policy = if spec.is_discrete() {
        PpoPolicy::discrete(obs_dim, spec.policy_width(), &dist.hidden, dist.seed)
    } else {
        PpoPolicy::continuous(obs_dim, spec.policy_width(), &dist.hidden, dist.seed)
    };
    let comm_err = |e: msrl_comm::CommError| FdgError::MissingKernel { op: format!("comm: {e}") };

    let result = std::thread::scope(|scope| -> Result<TrainingReport> {
        let mut handles = Vec::new();
        for (rank, ep) in endpoints.into_iter().enumerate() {
            let policy = policy.clone();
            let make_env = &make_env;
            let ppo = dist.ppo.clone();
            handles.push(scope.spawn(move || -> Result<()> {
                // A worker: local actor + gradient computation; weights
                // live at the server.
                let _frag = msrl_telemetry::span!("fragment.worker", rank);
                msrl_telemetry::set_fragment("worker", rank as u64);
                let mut actor = PpoActor::new(policy.clone(), dist.seed + 1 + rank as u64);
                let mut grad_engine = PpoLearner::new(policy, ppo);
                let mut envs = VecEnv::new(
                    (0..dist.envs_per_actor.max(1))
                        .map(|i| Box::new(make_env(rank, i)) as Box<dyn Environment>)
                        .collect(),
                );
                // Outstanding weight pulls, oldest first; their count is
                // the worker's staleness (pulls not yet swapped in).
                let stale_bound = dist.stale_bound();
                let mut pending: VecDeque<PendingRecv> = VecDeque::new();
                for _ in 0..dist.iterations {
                    {
                        let _s = msrl_telemetry::span!("phase.weight_sync");
                        // Swap in any pull that already landed, then block
                        // until within the outstanding-pull bound.
                        while let Some(front) = pending.front_mut() {
                            let landed = front.poll().map_err(comm_err)?;
                            if !landed && pending.len() <= stale_bound {
                                break;
                            }
                            let w = pending
                                .pop_front()
                                .expect("front exists")
                                .wait()
                                .map_err(comm_err)?;
                            actor.set_policy_params(&w)?;
                            grad_engine.set_policy_params(&w)?;
                        }
                    }
                    let stale = !pending.is_empty();
                    if stale {
                        msrl_telemetry::static_counter!("comm.stale_iters").add(1);
                    }
                    let batch = {
                        let _ov = stale.then(|| msrl_telemetry::span!("comm.overlap"));
                        let _s = msrl_telemetry::span!("phase.rollout");
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Rollout);
                        collect(&mut actor, &mut envs, dist.steps_per_iter)?
                    };
                    let grads = {
                        let _s = msrl_telemetry::span!("phase.learn");
                        let _h = msrl_telemetry::static_histogram!("phase.learn").time();
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                        grad_engine.grads(&batch)?
                    };
                    // Push gradients; the pull for the server's reply is
                    // posted immediately and waited (at most) next
                    // iteration.
                    let _s = msrl_telemetry::span!("phase.weight_sync");
                    ep.isend(p, grads).map_err(comm_err)?.wait();
                    ep.isend(p, envs.take_finished_returns()).map_err(comm_err)?.wait();
                    pending.push_back(ep.irecv(p).map_err(comm_err)?);
                }
                // Consume the remaining replies so the server's sends
                // never hit a dropped channel.
                for pr in pending {
                    let _ = pr.wait();
                }
                Ok(())
            }));
        }

        // The parameter-server fragment.
        let frag = msrl_telemetry::span!("fragment.param_server", p);
        msrl_telemetry::set_fragment("param_server", p as u64);
        let mut server = PpoLearner::new(policy, dist.ppo.clone());
        let mut report = TrainingReport::default();
        let mut prev_reward = 0.0;
        // The server loses per-worker loss context (it only sees
        // gradients), so the stream carries reward/throughput/staleness.
        let mut obs_stream = RunObserver::new("dp_f", dist.stale_bound());
        let mut outstanding: Vec<usize> = vec![dist.iterations; p];
        for _ in 0..dist.iterations {
            let mut finished = Vec::new();
            for _ in 0..p {
                // Apply in true arrival order (asynchronous updates):
                // with overlapped workers a fast rank's next push may
                // beat a slow rank's first. Only ranks with pushes still
                // owed are polled — a worker that already sent its last
                // push may have exited and dropped its endpoint.
                let active: Vec<usize> = outstanding
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(r, _)| r)
                    .collect();
                let (rank, grads) = server_ep.recv_any(&active).map_err(comm_err)?;
                outstanding[rank] -= 1;
                finished.extend(server_ep.recv(rank).map_err(comm_err)?);
                {
                    let _s = msrl_telemetry::span!("phase.learn");
                    let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                    server.apply_grads(&grads)?;
                }
                server_ep.send(rank, server.policy_params()).map_err(comm_err)?;
            }
            prev_reward = mean_or_prev(&finished, prev_reward);
            report.iteration_rewards.push(prev_reward);
            let params = msrl_telemetry::health_enabled().then(|| server.policy_params());
            obs_stream.observe(prev_reward, None, None, params.as_deref());
        }
        drop(frag);
        for h in handles {
            h.join().expect("worker thread must not panic")?;
        }
        report.final_params = server.policy_params();
        Ok(report)
    });
    finish_run("dp_f", result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::cartpole::CartPole;

    #[test]
    fn dp_f_trains_cartpole_through_parameter_server() {
        // Overlapped pulls make the server's update order (and thus the
        // reward curve) timing-dependent, so the workload must learn
        // decisively: a higher learning rate keeps the improvement check
        // robust across schedules.
        let dist = DistPpoConfig {
            actors: 3,
            envs_per_actor: 2,
            steps_per_iter: 48,
            iterations: 25,
            hidden: vec![32],
            seed: 10,
            ppo: msrl_algos::ppo::PpoConfig { lr: 2e-3, ..Default::default() },
            ..DistPpoConfig::default()
        };
        let report = run_dp_f(|a, i| CartPole::new((a * 13 + i) as u64), &dist).unwrap();
        assert_eq!(report.iteration_rewards.len(), 25);
        assert!(
            report.recent_reward(5) > report.early_reward(5),
            "DP-F must improve: {} → {}",
            report.early_reward(5),
            report.recent_reward(5)
        );
    }
}
