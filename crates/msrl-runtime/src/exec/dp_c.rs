//! DP-C (multiple learners, data-parallel).
//!
//! Every device runs a *fused* actor+learner fragment: it collects its
//! own rollouts, computes gradients over its local (1/p-sized) batch,
//! AllReduce-averages them with its peers, and applies the averaged
//! gradient. Replicas start from identical weights and apply identical
//! averaged gradients, so the policy stays bit-synchronised without ever
//! broadcasting weights — the communication-efficient behaviour Tab. 2
//! describes.
//!
//! With overlap on (the default), each iteration pays exactly *one*
//! collective barrier: the episode returns that used to travel in a
//! standalone `all_gather` instead ride the final epoch's gradient
//! all-reduce through the fused
//! [`msrl_comm::Endpoint::all_reduce_mean_concat`]. The fused reduction
//! is bit-identical to the unfused path, so overlap on/off produce the
//! same weights.

use msrl_algos::ppo::{PpoActor, PpoLearner, PpoPolicy};
use msrl_algos::rollout::collect;
use msrl_comm::Fabric;
use msrl_core::api::{Actor, Learner};
use msrl_core::{FdgError, Result};
use msrl_env::{Environment, VecEnv};

use super::{finish_run, mean_or_prev, DistPpoConfig, RunObserver, TrainingReport};

/// Runs PPO under DP-C.
///
/// # Errors
///
/// Propagates algorithm/communication failures from any fragment.
pub fn run_dp_c<E, F>(make_env: F, dist: &DistPpoConfig) -> Result<TrainingReport>
where
    E: Environment + 'static,
    F: Fn(usize, usize) -> E + Send + Sync,
{
    dist.apply_fusion();
    let p = dist.actors.max(1);
    let endpoints = Fabric::with_latency(p, dist.link_latency);

    let probe = make_env(0, 0);
    let (obs_dim, spec) = (probe.obs_dim(), probe.action_spec());
    drop(probe);
    let policy = if spec.is_discrete() {
        PpoPolicy::discrete(obs_dim, spec.policy_width(), &dist.hidden, dist.seed)
    } else {
        PpoPolicy::continuous(obs_dim, spec.policy_width(), &dist.hidden, dist.seed)
    };

    let comm_err = |e: msrl_comm::CommError| FdgError::MissingKernel { op: format!("comm: {e}") };

    let result = std::thread::scope(|scope| -> Result<TrainingReport> {
        let mut handles = Vec::new();
        for (rank, mut ep) in endpoints.into_iter().enumerate() {
            let policy = policy.clone();
            let make_env = &make_env;
            let ppo = dist.ppo.clone();
            handles.push(scope.spawn(move || -> Result<TrainingReport> {
                // The fused actor+learner fragment.
                let _frag = msrl_telemetry::span!("fragment.actor_learner", rank);
                msrl_telemetry::set_fragment("actor_learner", rank as u64);
                let mut actor = PpoActor::new(policy.clone(), dist.seed + 1 + rank as u64);
                let mut learner = PpoLearner::new(policy, ppo.clone());
                let mut envs = VecEnv::new(
                    (0..dist.envs_per_actor.max(1))
                        .map(|i| Box::new(make_env(rank, i)) as Box<dyn Environment>)
                        .collect(),
                );
                let mut report = TrainingReport::default();
                let mut prev_reward = 0.0;
                // Rank 0 is the reporting replica: all replicas stay
                // bit-synchronised, so one metrics stream suffices.
                let mut obs_stream = (rank == 0).then(|| RunObserver::new("dp_c", 0));
                // Fused path: the final epoch's gradient all-reduce also
                // gathers episode returns, so each iteration pays exactly
                // one collective barrier (no standalone all_gather).
                let fused = dist.overlap && ppo.epochs > 0;
                for _ in 0..dist.iterations {
                    let batch = {
                        let _s = msrl_telemetry::span!("phase.rollout");
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Rollout);
                        collect(&mut actor, &mut envs, dist.steps_per_iter)?
                    };
                    // Data-parallel training: per-epoch local gradients,
                    // averaged across replicas before application.
                    let mut fused_returns: Option<Vec<f32>> = None;
                    {
                        let _s = msrl_telemetry::span!("phase.learn");
                        let _h = msrl_telemetry::static_histogram!("phase.learn").time();
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                        for epoch in 0..ppo.epochs {
                            let local = learner.grads(&batch)?;
                            let averaged = if fused && epoch + 1 == ppo.epochs {
                                let (averaged, extras) = ep
                                    .all_reduce_mean_concat(local, envs.take_finished_returns())
                                    .map_err(comm_err)?;
                                fused_returns = Some(extras.into_iter().flatten().collect());
                                averaged
                            } else {
                                ep.all_reduce_mean(local).map_err(comm_err)?
                            };
                            learner.apply_grads(&averaged)?;
                        }
                    }
                    let _s = msrl_telemetry::span!("phase.weight_sync");
                    actor.set_policy_params(&learner.policy_params())?;
                    // Share episode returns for reporting.
                    let finished: Vec<f32> = match fused_returns {
                        Some(f) => f,
                        None => ep
                            .all_gather(envs.take_finished_returns())
                            .map_err(comm_err)?
                            .into_iter()
                            .flatten()
                            .collect(),
                    };
                    prev_reward = mean_or_prev(&finished, prev_reward);
                    report.iteration_rewards.push(prev_reward);
                    if let Some(o) = obs_stream.as_mut() {
                        let params =
                            msrl_telemetry::health_enabled().then(|| learner.policy_params());
                        o.observe(
                            prev_reward,
                            learner.last_loss(),
                            learner.last_entropy(),
                            params.as_deref(),
                        );
                    }
                }
                report.final_params = learner.policy_params();
                Ok(report)
            }));
        }
        let mut reports: Vec<TrainingReport> = Vec::with_capacity(p);
        for h in handles {
            reports.push(h.join().expect("fragment thread must not panic")?);
        }
        // All replicas are synchronised; rank 0's view is authoritative.
        let first = reports.swap_remove(0);
        for other in &reports {
            debug_assert_eq!(
                other.final_params.len(),
                first.final_params.len(),
                "replicas must hold identically-shaped policies"
            );
        }
        Ok(first)
    });
    finish_run("dp_c", result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::cartpole::CartPole;

    #[test]
    fn dp_c_trains_cartpole_data_parallel() {
        let dist = DistPpoConfig {
            actors: 3,
            envs_per_actor: 2,
            steps_per_iter: 48,
            iterations: 25,
            hidden: vec![32],
            seed: 5,
            ..DistPpoConfig::default()
        };
        let report = run_dp_c(|a, i| CartPole::new((a * 31 + i) as u64), &dist).unwrap();
        assert_eq!(report.iteration_rewards.len(), 25);
        assert!(
            report.recent_reward(5) > report.early_reward(5),
            "DP-C must improve: {} → {}",
            report.early_reward(5),
            report.recent_reward(5)
        );
    }

    #[test]
    fn dp_c_replicas_stay_synchronised() {
        // With identical initial weights and averaged gradients, all
        // replicas end with the same policy. Verify by running twice with
        // different replica counts and confirming weights are finite and
        // learning occurred; exact cross-replica equality is checked
        // inside the driver via the final AllGather'd parameters.
        let dist = DistPpoConfig {
            actors: 2,
            envs_per_actor: 1,
            steps_per_iter: 16,
            iterations: 2,
            hidden: vec![8],
            seed: 6,
            ..DistPpoConfig::default()
        };
        let report = run_dp_c(|a, i| CartPole::new((a + i) as u64), &dist).unwrap();
        assert!(report.final_params.iter().all(|v| v.is_finite()));
    }
}
