//! DP-E (dedicated environment workers) — the MARL configuration of
//! Fig. 11.
//!
//! A dedicated worker thread owns the multi-agent environment and does
//! nothing else; one fragment per agent owns that agent's policy replica
//! and training. Each step, the env worker sends every agent its local
//! observation and receives an action back; at the end of an episode it
//! ships each agent its own trajectory. Agents then train locally and
//! AllReduce-average their weights, realising MAPPO's parameter sharing
//! across distributed agent fragments.

use msrl_algos::buffer::{step_batch, TrajectoryBuffer};
use msrl_algos::ppo::{PpoActor, PpoConfig, PpoLearner, PpoPolicy};
use msrl_comm::Fabric;
use msrl_core::api::{Actor, Learner};
use msrl_core::{FdgError, Result};
use msrl_env::{Action, MultiAgentEnvironment};
use msrl_tensor::Tensor;

use super::{finish_run, RunObserver, TrainingReport};

/// Configuration for the DP-E MARL driver.
#[derive(Debug, Clone)]
pub struct DpEConfig {
    /// Episodes to train.
    pub episodes: usize,
    /// Hidden widths of per-agent policies.
    pub hidden: Vec<usize>,
    /// PPO hyper-parameters for each agent learner.
    pub ppo: PpoConfig,
    /// Base seed.
    pub seed: u64,
    /// Route linear layers through the fused `MatMul+bias+activation`
    /// kernel (bit-identical to the unfused path). Defaults from
    /// `MSRL_FUSION`.
    pub fusion: bool,
}

/// Runs MAPPO under DP-E on the environment produced by `make_env`.
///
/// Returns per-episode mean per-agent step reward.
///
/// # Errors
///
/// Propagates algorithm/communication failures from any fragment.
pub fn run_dp_e<M, F>(make_env: F, cfg: &DpEConfig) -> Result<TrainingReport>
where
    M: MultiAgentEnvironment + 'static,
    F: FnOnce() -> M + Send,
{
    msrl_tensor::par::set_fusion(cfg.fusion);
    let env = make_env();
    let n = env.n_agents();
    let obs_dim = env.obs_dim();
    let n_actions = env.action_spec().policy_width();
    let horizon = env.horizon();
    // Ranks 0..n are agents; rank n is the environment worker.
    let mut endpoints = Fabric::new(n + 1);
    let env_ep = endpoints.pop().expect("fabric yields n+1 endpoints");
    let policy = PpoPolicy::discrete(obs_dim, n_actions, &cfg.hidden, cfg.seed);
    let comm_err = |e: msrl_comm::CommError| FdgError::MissingKernel { op: format!("comm: {e}") };

    let result = std::thread::scope(|scope| -> Result<TrainingReport> {
        let mut handles = Vec::new();
        for (rank, mut ep) in endpoints.into_iter().enumerate() {
            let policy = policy.clone();
            let ppo = cfg.ppo.clone();
            handles.push(scope.spawn(move || -> Result<()> {
                // Agent fragment: act per step, learn per episode, share
                // parameters with peers (ranks 0..n are agents; the env
                // worker does not join the weight AllReduce).
                let _frag = msrl_telemetry::span!("fragment.agent", rank);
                msrl_telemetry::set_fragment("agent", rank as u64);
                let mut actor = PpoActor::new(policy.clone(), cfg.seed + 1 + rank as u64);
                let mut learner = PpoLearner::new(policy, ppo);
                for _ in 0..cfg.episodes {
                    let mut buf = TrajectoryBuffer::new();
                    let mut prev: Option<(Tensor, Tensor, Tensor, Tensor)> = None;
                    let rollout = msrl_telemetry::span!("phase.rollout");
                    let rollout_attr = msrl_telemetry::step(msrl_telemetry::StepClass::Rollout);
                    loop {
                        // [done_flag, obs...] from the env worker.
                        let msg = ep.recv(n).map_err(comm_err)?;
                        let done = msg[0] > 0.5;
                        let reward = msg[1];
                        let obs = Tensor::from_vec(msg[2..].to_vec(), &[1, obs_dim])
                            .map_err(FdgError::Tensor)?;
                        if let Some((pobs, pact, plp, pval)) = prev.take() {
                            buf.insert(step_batch(
                                pobs,
                                pact,
                                Tensor::from_vec(vec![reward], &[1]).map_err(FdgError::Tensor)?,
                                obs.clone(),
                                vec![done],
                                plp,
                                pval,
                            ));
                        }
                        if done {
                            break;
                        }
                        let out = actor.act(&obs)?;
                        ep.send(n, out.actions.data().to_vec()).map_err(comm_err)?;
                        prev = Some((
                            obs,
                            out.actions,
                            out.log_probs,
                            out.values.expect("PPO policy has a critic"),
                        ));
                    }
                    drop(rollout_attr);
                    drop(rollout);
                    let batch = buf.drain_env_major()?;
                    if !batch.is_empty() {
                        let _s = msrl_telemetry::span!("phase.learn");
                        let _h = msrl_telemetry::static_histogram!("phase.learn").time();
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                        learner.learn(&batch)?;
                    }
                    // MAPPO parameter sharing across agent fragments.
                    let _sync = msrl_telemetry::span!("phase.weight_sync");
                    let avg = {
                        let mine = learner.policy_params();
                        let parts = ep.all_gather(mine).map_err(comm_err)?;
                        let agents = &parts[..n];
                        let len = agents[0].len();
                        let mut acc = vec![0.0f32; len];
                        for part in agents {
                            for (a, v) in acc.iter_mut().zip(part) {
                                *a += v;
                            }
                        }
                        for a in &mut acc {
                            *a /= n as f32;
                        }
                        acc
                    };
                    learner.set_policy_params(&avg)?;
                    actor.set_policy_params(&avg)?;
                }
                Ok(())
            }));
        }

        // Environment-worker fragment.
        let frag = msrl_telemetry::span!("fragment.env_worker", n);
        msrl_telemetry::set_fragment("env_worker", n as u64);
        let mut env = env;
        let mut env_ep = env_ep;
        let mut report = TrainingReport::default();
        // The env worker sees every agent's reward, so it streams the
        // run's metrics; per-agent losses stay local to agent fragments.
        let mut obs_stream = RunObserver::new("dp_e", 0);
        for _ in 0..cfg.episodes {
            let mut obs = env.reset();
            let mut total = 0.0;
            let mut rewards = vec![0.0f32; n];
            let mut steps = 0usize;
            loop {
                let done_now = steps >= horizon;
                for (agent, o) in obs.iter().enumerate() {
                    let mut msg = vec![if done_now { 1.0 } else { 0.0 }, rewards[agent]];
                    msg.extend_from_slice(o.data());
                    env_ep.send(agent, msg).map_err(comm_err)?;
                }
                if done_now {
                    break;
                }
                let mut actions = Vec::with_capacity(n);
                for agent in 0..n {
                    let a = env_ep.recv(agent).map_err(comm_err)?;
                    actions.push(Action::Discrete(a[0] as usize));
                }
                let step = env.step(&actions);
                total += step.rewards.iter().sum::<f32>();
                rewards = step.rewards;
                obs = step.obs;
                steps += 1;
                if step.done && steps < horizon {
                    // Environments with early termination end the episode
                    // for everyone.
                    for (agent, o) in obs.iter().enumerate() {
                        let mut msg = vec![1.0, rewards[agent]];
                        msg.extend_from_slice(o.data());
                        env_ep.send(agent, msg).map_err(comm_err)?;
                    }
                    break;
                }
            }
            // The env worker participates in the agents' AllGather as a
            // passive rank so group semantics hold.
            env_ep.all_gather(Vec::new()).map_err(comm_err)?;
            let mean = total / (n * steps.max(1)) as f32;
            report.iteration_rewards.push(mean);
            // DP-E's driver thread owns no policy replica (the agent
            // fragments train their own); no parameter scan here.
            obs_stream.observe(mean, None, None, None);
        }
        drop(frag);
        for h in handles {
            h.join().expect("agent thread must not panic")?;
        }
        Ok(report)
    });
    finish_run("dp_e", result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::mpe::SimpleSpread;

    #[test]
    fn dp_e_runs_mappo_with_env_worker() {
        let cfg = DpEConfig {
            episodes: 20,
            hidden: vec![32],
            ppo: PpoConfig { lr: 7e-4, epochs: 4, entropy_coef: 0.005, ..PpoConfig::default() },
            seed: 9,
            fusion: msrl_tensor::par::fusion_enabled(),
        };
        let report = run_dp_e(|| SimpleSpread::new(3, 5).with_horizon(20), &cfg).unwrap();
        assert_eq!(report.iteration_rewards.len(), 20);
        assert!(report.iteration_rewards.iter().all(|r| r.is_finite()));
    }
}
