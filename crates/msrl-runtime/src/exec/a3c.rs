//! The asynchronous A3C driver (Figs. 7b and 9b's workload).
//!
//! Each worker fragment owns exactly one environment and a policy
//! replica; after every n-step rollout it computes gradients locally and
//! ships them to the learner fragment *asynchronously* — it does not
//! wait for its peers, only for the learner's weight reply to its own
//! push. The learner applies gradients in arrival order (Hogwild-style,
//! serialised by its mailbox), which is exactly the asynchrony that
//! makes A3C's per-actor work independent of the actor count.

use msrl_algos::a3c::{A3cConfig, A3cLearner, A3cWorker};
use msrl_algos::ppo::PpoPolicy;
use msrl_algos::rollout::collect;
use msrl_comm::Fabric;
use msrl_core::api::{Actor, Learner};
use msrl_core::{FdgError, Result};
use msrl_env::{Environment, VecEnv};

use super::{finish_run, mean_or_prev, RunObserver, TrainingReport};

/// Configuration for the asynchronous A3C driver.
#[derive(Debug, Clone)]
pub struct A3cDistConfig {
    /// Worker (actor) fragments, each with one environment.
    pub workers: usize,
    /// Steps per local rollout before a gradient push.
    pub rollout_steps: usize,
    /// Gradient pushes per worker.
    pub pushes_per_worker: usize,
    /// Hidden widths of the shared network.
    pub hidden: Vec<usize>,
    /// A3C hyper-parameters.
    pub a3c: A3cConfig,
    /// Base seed.
    pub seed: u64,
    /// Route linear layers through the fused `MatMul+bias+activation`
    /// kernel (bit-identical to the unfused path). Defaults from
    /// `MSRL_FUSION`.
    pub fusion: bool,
}

impl Default for A3cDistConfig {
    fn default() -> Self {
        A3cDistConfig {
            workers: 3,
            rollout_steps: 32,
            pushes_per_worker: 20,
            hidden: vec![32],
            a3c: A3cConfig::default(),
            seed: 0,
            fusion: msrl_tensor::par::fusion_enabled(),
        }
    }
}

/// Runs A3C with asynchronous gradient pushes.
///
/// # Errors
///
/// Propagates algorithm/communication failures from any fragment.
pub fn run_a3c<E, F>(make_env: F, dist: &A3cDistConfig) -> Result<TrainingReport>
where
    E: Environment + 'static,
    F: Fn(usize) -> E + Send + Sync,
{
    msrl_tensor::par::set_fusion(dist.fusion);
    let p = dist.workers.max(1);
    // Ranks 0..p are workers; rank p is the learner.
    let mut endpoints = Fabric::new(p + 1);
    let learner_ep = endpoints.pop().expect("fabric yields p+1 endpoints");

    let probe = make_env(0);
    let (obs_dim, spec) = (probe.obs_dim(), probe.action_spec());
    drop(probe);
    let policy = PpoPolicy::discrete(obs_dim, spec.policy_width(), &dist.hidden, dist.seed);
    let comm_err = |e: msrl_comm::CommError| FdgError::MissingKernel { op: format!("comm: {e}") };

    let result = std::thread::scope(|scope| -> Result<TrainingReport> {
        let mut handles = Vec::new();
        for (rank, ep) in endpoints.into_iter().enumerate() {
            let policy = policy.clone();
            let make_env = &make_env;
            let cfg = dist.a3c.clone();
            handles.push(scope.spawn(move || -> Result<()> {
                // One environment per A3C actor (the defining property).
                let _frag = msrl_telemetry::span!("fragment.worker", rank);
                msrl_telemetry::set_fragment("worker", rank as u64);
                let mut worker = A3cWorker::new(policy, cfg, dist.seed + 1 + rank as u64);
                let mut envs = VecEnv::new(vec![Box::new(make_env(rank)) as Box<dyn Environment>]);
                for _ in 0..dist.pushes_per_worker {
                    let batch = {
                        let _s = msrl_telemetry::span!("phase.rollout");
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Rollout);
                        collect(&mut worker, &mut envs, dist.rollout_steps)?
                    };
                    let grads = {
                        let _s = msrl_telemetry::span!("phase.learn");
                        let _h = msrl_telemetry::static_histogram!("phase.learn").time();
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                        worker.local_grads(&batch)?
                    };
                    // Asynchronous push: no coordination with peers.
                    let _s = msrl_telemetry::span!("phase.weight_sync");
                    ep.send(p, grads).map_err(comm_err)?;
                    ep.send(p, envs.take_finished_returns()).map_err(comm_err)?;
                    let weights = ep.recv(p).map_err(comm_err)?;
                    worker.set_policy_params(&weights)?;
                }
                Ok(())
            }));
        }

        // The learner applies gradients in whatever order they arrive.
        // `recv_any` blocks (with bounded backoff, never a hot spin)
        // until *some* worker's push lands, so stragglers are never
        // waited on and an idle learner does not burn the CPU its
        // workers need.
        msrl_telemetry::set_fragment("learner", p as u64);
        let mut learner = A3cLearner::new(policy, &dist.a3c);
        let mut report = TrainingReport::default();
        let mut prev_reward = 0.0;
        // One metrics event per applied push — the natural "iteration"
        // of an asynchronous learner.
        let mut obs_stream = RunObserver::new("a3c", 0);
        let mut remaining: Vec<usize> = vec![dist.pushes_per_worker; p];
        while remaining.iter().any(|&r| r > 0) {
            // Only poll workers with pushes outstanding: a finished
            // worker's endpoint may already be gone.
            let active: Vec<usize> =
                remaining.iter().enumerate().filter(|(_, &r)| r > 0).map(|(r, _)| r).collect();
            let (rank, grads) = learner_ep.recv_any(&active).map_err(comm_err)?;
            let finished = learner_ep.recv(rank).map_err(comm_err)?;
            {
                let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                learner.apply_grads(&grads)?;
            }
            learner_ep.send(rank, learner.policy_params()).map_err(comm_err)?;
            remaining[rank] -= 1;
            prev_reward = mean_or_prev(&finished, prev_reward);
            report.iteration_rewards.push(prev_reward);
            let params = msrl_telemetry::health_enabled().then(|| learner.policy_params());
            obs_stream.observe(prev_reward, None, None, params.as_deref());
        }
        for h in handles {
            h.join().expect("worker thread must not panic")?;
        }
        report.final_params = learner.policy_params();
        Ok(report)
    });
    finish_run("a3c", result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::cartpole::CartPole;

    #[test]
    fn async_a3c_trains_cartpole() {
        // Gradient arrival order is scheduler-dependent (the asynchrony
        // under test), so any single seed is noisy; the learning signal
        // must show up within a few.
        let mut improved = false;
        for seed in [1, 2, 3] {
            let dist = A3cDistConfig {
                workers: 3,
                rollout_steps: 32,
                pushes_per_worker: 40,
                hidden: vec![32],
                a3c: A3cConfig { lr: 2e-3, ..A3cConfig::default() },
                seed,
                ..A3cDistConfig::default()
            };
            let report = run_a3c(|w| CartPole::new(seed + w as u64), &dist).unwrap();
            assert_eq!(report.iteration_rewards.len(), 3 * 40);
            if report.recent_reward(20) > report.early_reward(20) {
                improved = true;
                break;
            }
        }
        assert!(improved, "async A3C must improve on at least one of three seeds");
    }

    #[test]
    fn async_updates_apply_every_push() {
        let dist = A3cDistConfig {
            workers: 2,
            rollout_steps: 8,
            pushes_per_worker: 3,
            hidden: vec![8],
            seed: 18,
            ..A3cDistConfig::default()
        };
        let report = run_a3c(|w| CartPole::new(10 + w as u64), &dist).unwrap();
        assert_eq!(report.iteration_rewards.len(), 6, "one entry per applied push");
        assert!(!report.final_params.is_empty());
    }
}
