//! Real multi-threaded fragment execution (§5.2).
//!
//! Each placed fragment runs on its own OS thread ("device"); fragments
//! synchronise through `msrl-comm` endpoints exactly as their interfaces
//! prescribe: per-episode trajectory gathers and weight broadcasts under
//! DP-A, per-step exchanges under DP-B, gradient AllReduce under DP-C,
//! weight AllReduce between fused loops under DP-D, environment-worker
//! messaging under DP-E, and parameter-server push/pull under DP-F.
//!
//! Every driver consumes the *same* algorithm components from
//! `msrl-algos`; only the orchestration differs — the executable form of
//! the paper's claim that distribution policies require no algorithm
//! changes.
//!
//! # Interaction with the threaded tensor backend
//!
//! The tensor kernels these drivers invoke (batched inference in DP-B's
//! central learner, the fused per-replica loops of DP-D, per-agent
//! training under DP-E) respect [`msrl_tensor::Backend`]: under the
//! default `Threaded` backend, large ops additionally split across
//! intra-op worker threads. Fragment threads and intra-op threads
//! compose — each fragment's ops fan out independently — so on hosts
//! where `actors × MSRL_THREADS` would oversubscribe the machine, cap
//! intra-op parallelism with `MSRL_THREADS=1` (or `MSRL_BACKEND=scalar`
//! for the bit-exact reference path).

mod a3c;
mod dp_a;
mod dp_b;
mod dp_c;
mod dp_d;
mod dp_e;
mod dp_f;

pub use a3c::{run_a3c, A3cDistConfig};
pub use dp_a::run_dp_a;
pub use dp_b::run_dp_b;
pub use dp_c::run_dp_c;
pub use dp_d::{run_dp_d, DpDConfig};
pub use dp_e::{run_dp_e, DpEConfig};
pub use dp_f::run_dp_f;

use msrl_algos::ppo::PpoConfig;
use msrl_core::Result;

/// Configuration shared by the PPO distribution drivers.
#[derive(Debug, Clone)]
pub struct DistPpoConfig {
    /// Actor (or fused actor+learner) replicas.
    pub actors: usize,
    /// Environments per actor.
    pub envs_per_actor: usize,
    /// Vectorised steps collected per training iteration.
    pub steps_per_iter: usize,
    /// Training iterations to run.
    pub iterations: usize,
    /// Hidden layer widths of the policy.
    pub hidden: Vec<usize>,
    /// PPO hyper-parameters.
    pub ppo: PpoConfig,
    /// Base RNG seed (replicas derive their own deterministically).
    pub seed: u64,
    /// Overlap communication with computation (double-buffered weight
    /// sync under DP-A/DP-F, fused collective under DP-C). Defaults from
    /// `MSRL_OVERLAP`; off means every sync is fully blocking.
    pub overlap: bool,
    /// Bounded-staleness window for overlapped weight sync: actors may
    /// roll out on weights at most this many iterations old. Defaults
    /// from `MSRL_STALENESS`; ignored when `overlap` is off.
    pub staleness: usize,
    /// Simulated per-message wire latency on the comm fabric — the
    /// in-process analogue of the paper's `tc`-injected network latency
    /// (Fig. 7d). Zero (the default) means in-process channel speed.
    pub link_latency: std::time::Duration,
    /// Route linear layers through the fused `MatMul+bias+activation`
    /// kernel and enable the graph compiler's fusion passes (both
    /// bit-identical to the unfused path). Defaults from `MSRL_FUSION`
    /// (on unless set to `0`/`off`/`false`/`no`).
    pub fusion: bool,
    /// Micro-batch policy forwards *across* actor fragments through the
    /// shared [`crate::actsrv::ActServer`] (DP-A). Bit-identical to the
    /// per-actor path; forces the staleness bound to zero (all actors
    /// share one weight snapshot). Defaults from `MSRL_ACTSRV` (off
    /// unless set to `1`/`on`/`true`/`yes`).
    pub act_server: bool,
}

/// Resolves the `MSRL_ACTSRV` toggle (default off).
pub fn act_server_enabled() -> bool {
    matches!(std::env::var("MSRL_ACTSRV").as_deref(), Ok("1") | Ok("on") | Ok("true") | Ok("yes"))
}

impl Default for DistPpoConfig {
    fn default() -> Self {
        DistPpoConfig {
            actors: 2,
            envs_per_actor: 4,
            steps_per_iter: 64,
            iterations: 10,
            hidden: vec![32, 32],
            ppo: PpoConfig::default(),
            seed: 0,
            overlap: msrl_comm::overlap_enabled(),
            staleness: msrl_comm::staleness_bound(),
            link_latency: std::time::Duration::ZERO,
            fusion: msrl_tensor::par::fusion_enabled(),
            act_server: act_server_enabled(),
        }
    }
}

impl DistPpoConfig {
    /// The effective staleness bound: `staleness` when overlap is on,
    /// zero (fully synchronous) otherwise — one code path for both. The
    /// act server also forces zero: its clients share one policy
    /// snapshot, so per-actor weight versions cannot diverge.
    pub(crate) fn stale_bound(&self) -> usize {
        if self.overlap && !self.act_server {
            self.staleness
        } else {
            0
        }
    }

    /// Applies the config's fusion choice to the process-global gate so
    /// every thread a driver spawns sees it. Called once at each
    /// driver's entry.
    pub(crate) fn apply_fusion(&self) {
        msrl_tensor::par::set_fusion(self.fusion);
    }
}

/// The outcome of a distributed training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Mean return of episodes finished in each iteration (NaN-free; an
    /// iteration with no finished episode repeats the previous value).
    pub iteration_rewards: Vec<f32>,
    /// Learner loss per iteration (empty for gradient-only policies).
    pub losses: Vec<f32>,
    /// Final policy weights (flat), for evaluation by the caller.
    pub final_params: Vec<f32>,
}

impl TrainingReport {
    /// Mean reward over the last `n` iterations.
    pub fn recent_reward(&self, n: usize) -> f32 {
        let tail: Vec<f32> = self.iteration_rewards.iter().rev().take(n).copied().collect();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f32>() / tail.len() as f32
    }

    /// Mean reward over the first `n` iterations.
    pub fn early_reward(&self, n: usize) -> f32 {
        let head: Vec<f32> = self.iteration_rewards.iter().take(n).copied().collect();
        if head.is_empty() {
            return 0.0;
        }
        head.iter().sum::<f32>() / head.len() as f32
    }
}

/// Summarises finished-episode returns into one scalar, carrying the
/// previous iteration's value forward when nothing finished.
pub(crate) fn mean_or_prev(finished: &[f32], prev: f32) -> f32 {
    if finished.is_empty() {
        prev
    } else {
        finished.iter().sum::<f32>() / finished.len() as f32
    }
}

/// Per-iteration observability for a driver's learner-side loop: emits
/// one [`msrl_telemetry::RunEvent`] per iteration (reward, loss,
/// entropy, it/s, comm-byte delta, staleness, plan-cache hit rate) and
/// records the iteration period into the always-on `fragment.eval`
/// histogram — one fragment-body execution per iteration, so DP runs
/// carry latency quantiles even with `MSRL_TRACE` unset. (PPO's learn
/// path trains through the tape, not the interpreter, so the
/// interpreter's own `fragment.eval` samples only appear in
/// interpreter-driven workloads.)
pub(crate) struct RunObserver {
    policy: &'static str,
    staleness: u64,
    last: std::time::Instant,
    bytes_prev: u64,
    actsrv_batches_prev: u64,
    actsrv_rows_prev: u64,
    iteration: u64,
    /// Streaming health detectors over this run's metrics (None when
    /// `MSRL_HEALTH=0`).
    monitor: Option<msrl_telemetry::HealthMonitor>,
    health_updates_prev: u64,
    health_audits_prev: u64,
}

impl RunObserver {
    /// Starts observing a run. Also installs the flight recorder's
    /// panic hook so a dying worker leaves post-mortem state on disk,
    /// and opens the first attribution window so step stamps from
    /// before the run don't leak into iteration 0.
    pub(crate) fn new(policy: &'static str, staleness: usize) -> RunObserver {
        msrl_telemetry::install_panic_hook();
        msrl_telemetry::reset_window();
        RunObserver {
            policy,
            staleness: staleness as u64,
            last: std::time::Instant::now(),
            bytes_prev: msrl_telemetry::counter_total("comm.bytes_sent"),
            actsrv_batches_prev: msrl_telemetry::counter_total("actsrv.batches"),
            actsrv_rows_prev: msrl_telemetry::counter_total("actsrv.rows"),
            iteration: 0,
            monitor: msrl_telemetry::health_enabled().then(msrl_telemetry::HealthMonitor::default),
            health_updates_prev: msrl_telemetry::counter_total("health.updates"),
            health_audits_prev: msrl_telemetry::counter_total("health.audits"),
        }
    }

    /// One health pass over the just-closed iteration: folds the
    /// sentinel gauges the learner published (read only when their
    /// counters moved, so learner-less drivers omit them), scans the
    /// policy parameters for non-finite values with the fused kernel,
    /// and feeds the run-level signals to the streaming detectors. A
    /// freshly fired Critical finding snapshots the verdict and
    /// triggers a flight-recorder dump carrying it (DESIGN §3.15).
    fn health_block(
        &mut self,
        reward: f32,
        loss: Option<f32>,
        entropy: Option<f32>,
        iters_per_sec: f64,
        params: Option<&[f32]>,
    ) -> Option<msrl_telemetry::HealthStatus> {
        let monitor = self.monitor.as_mut()?;
        let _t = msrl_telemetry::static_histogram!("health.observe").time();
        let gauge = |name: &str| msrl_telemetry::Gauge::handle(name).get();
        let updates = msrl_telemetry::counter_total("health.updates");
        let stepped = updates > self.health_updates_prev;
        self.health_updates_prev = updates;
        let audits = msrl_telemetry::counter_total("health.audits");
        let audited = audits > self.health_audits_prev;
        self.health_audits_prev = audits;
        let sample = msrl_telemetry::HealthSample {
            iteration: self.iteration,
            reward: f64::from(reward),
            loss: loss.map(f64::from),
            entropy: entropy.map(f64::from),
            iters_per_sec,
            staleness_bound: self.staleness,
            // Observed staleness is not separately instrumented on the
            // live path (the comm layer enforces the bound); replay and
            // unit streams exercise the breach detector.
            staleness_observed: None,
            grad_norm: stepped.then(|| gauge("health.grad_norm")),
            weight_norm: stepped.then(|| gauge("health.weight_norm")),
            update_ratio: stepped.then(|| gauge("health.update_ratio")),
            nonfinite_params: params.map(msrl_tensor::kernels::count_nonfinite),
            audit_rel_err: audited.then(|| gauge("health.audit_rel_err")),
        };
        let status = monitor.observe(&sample);
        let critical = status
            .findings
            .iter()
            .find(|f| f.severity == msrl_telemetry::Severity::Critical)
            .map(|f| format!("{}: {}", f.detector, f.detail));
        if let Some(reason) = critical {
            msrl_telemetry::set_last_verdict(&monitor.verdict());
            match msrl_telemetry::flightrec::dump("health", &reason) {
                Ok(_) => {}
                Err(e) => eprintln!("msrl: health-triggered flightrec dump failed: {e}"),
            }
        }
        // Schedule the next tier-2 shadow audit: first actor forward of
        // the coming iteration runs the dual-tier comparison.
        let every = msrl_telemetry::audit_every();
        if every > 0 && (self.iteration + 1).is_multiple_of(every) {
            msrl_telemetry::request_audit();
        }
        Some(status)
    }

    /// Closes one iteration: records its period, computes the
    /// critical-path attribution over the iteration window (draining
    /// every fragment thread's step stamps), runs the health detectors,
    /// and streams the training-metrics event — schema v2 when
    /// attribution is on, v3 when the health watchdog is.
    pub(crate) fn observe(
        &mut self,
        reward: f32,
        loss: Option<f32>,
        entropy: Option<f32>,
        params: Option<&[f32]>,
    ) {
        let now = std::time::Instant::now();
        let dt = now.duration_since(self.last);
        self.last = now;
        msrl_telemetry::static_histogram!("fragment.eval").record_duration(dt);
        let attr = if msrl_telemetry::attr_enabled() {
            let t = msrl_telemetry::static_histogram!("attr.finish_iteration").time();
            let a = msrl_telemetry::finish_iteration();
            drop(t);
            Some(a)
        } else {
            None
        };
        let bytes = msrl_telemetry::counter_total("comm.bytes_sent");
        let hits = msrl_telemetry::counter_total("interp.plan_cache.hit");
        let misses = msrl_telemetry::counter_total("interp.plan_cache.miss");
        let plan_cache_hit_rate = (hits + misses > 0).then(|| hits as f64 / (hits + misses) as f64);
        // Act-server deltas: an active server runs ≥1 batched forward
        // per iteration, so a zero delta means it is off — omit the
        // block rather than streaming noise.
        let actsrv_batches = msrl_telemetry::counter_total("actsrv.batches");
        let actsrv_rows = msrl_telemetry::counter_total("actsrv.rows");
        let actsrv =
            (actsrv_batches > self.actsrv_batches_prev).then(|| msrl_telemetry::ActsrvStats {
                batches: actsrv_batches.saturating_sub(self.actsrv_batches_prev),
                rows: actsrv_rows.saturating_sub(self.actsrv_rows_prev),
            });
        let iters_per_sec = if dt.as_secs_f64() > 0.0 { 1.0 / dt.as_secs_f64() } else { 0.0 };
        let health = self.health_block(reward, loss, entropy, iters_per_sec, params);
        msrl_telemetry::emit_run_event(&msrl_telemetry::RunEvent {
            policy: self.policy,
            iteration: self.iteration,
            reward: f64::from(reward),
            loss: loss.map(f64::from),
            entropy: entropy.map(f64::from),
            iters_per_sec,
            comm_bytes: bytes.saturating_sub(self.bytes_prev),
            staleness: self.staleness,
            plan_cache_hit_rate,
            attr,
            actsrv,
            health,
        });
        self.bytes_prev = bytes;
        self.actsrv_batches_prev = actsrv_batches;
        self.actsrv_rows_prev = actsrv_rows;
        self.iteration += 1;
    }
}

/// Driver epilogue: flushes the metrics stream (and the
/// `MSRL_METRICS_TEXT_FILE` exposition) and, on an error outcome,
/// writes a flight-recorder dump so failed runs leave evidence.
///
/// A flush failure is surfaced, not swallowed: the stream is the health
/// subsystem's evidence trail, and a silently truncated JSONL file
/// would read as a healthy run. The `sink.io_errors` counter carries
/// the same signal into the exposition snapshot.
pub(crate) fn finish_run<T>(policy: &'static str, result: Result<T>) -> Result<T> {
    if let Err(e) = msrl_telemetry::flush_metrics() {
        eprintln!("msrl: metrics stream write failed for {policy}: {e}");
    }
    if let Err(e) = &result {
        let _ = msrl_telemetry::flightrec::dump("driver_error", &format!("{policy}: {e:?}"));
    }
    result
}

/// Resolves `MSRL_FAULT_NAN_ITER`: a fault-injection hook for the
/// health e2e — after finishing this (0-based) iteration, DP-A scales
/// one learner weight to infinity so the next health pass must detect
/// the poisoned parameter vector within one iteration.
pub(crate) fn fault_nan_iter() -> Option<u64> {
    std::env::var("MSRL_FAULT_NAN_ITER").ok()?.parse().ok()
}
