//! DP-B (single learner, fine synchronisation).
//!
//! Actor fragments fuse with their environments on CPU devices and hold
//! **no policy copy**: every step, an actor ships observations to the
//! learner, which performs the (batched) inference, records the
//! behaviour statistics, and returns actions — SEED-RL-style central
//! inference. Training data therefore never needs a separate exchange,
//! and no weights are ever broadcast; the price is a synchronisation per
//! step (Tab. 2's "fine" granularity).

use msrl_algos::buffer::{step_batch, TrajectoryBuffer};
use msrl_algos::ppo::{PpoLearner, PpoPolicy};
use msrl_algos::rollout::decode_actions;
use msrl_comm::Fabric;
use msrl_core::api::{Learner, SampleBatch};
use msrl_core::{FdgError, Result};
use msrl_env::{Environment, VecEnv};
use msrl_tensor::{ops, Tensor};

use super::{finish_run, mean_or_prev, DistPpoConfig, RunObserver, TrainingReport};

/// Runs PPO under DP-B.
///
/// # Errors
///
/// Propagates algorithm/communication failures from any fragment.
pub fn run_dp_b<E, F>(make_env: F, dist: &DistPpoConfig) -> Result<TrainingReport>
where
    E: Environment + 'static,
    F: Fn(usize, usize) -> E + Send + Sync,
{
    dist.apply_fusion();
    let p = dist.actors.max(1);
    let mut endpoints = Fabric::with_latency(p + 1, dist.link_latency);
    let learner_ep = endpoints.pop().expect("fabric yields p+1 endpoints");

    let probe = make_env(0, 0);
    let (obs_dim, spec) = (probe.obs_dim(), probe.action_spec());
    drop(probe);
    let policy = if spec.is_discrete() {
        PpoPolicy::discrete(obs_dim, spec.policy_width(), &dist.hidden, dist.seed)
    } else {
        PpoPolicy::continuous(obs_dim, spec.policy_width(), &dist.hidden, dist.seed)
    };
    let envs_i = dist.envs_per_actor.max(1);

    let comm_err = |e: msrl_comm::CommError| FdgError::MissingKernel { op: format!("comm: {e}") };

    let result = std::thread::scope(|scope| -> Result<TrainingReport> {
        let mut handles = Vec::new();
        for (rank, ep) in endpoints.into_iter().enumerate() {
            let make_env = &make_env;
            handles.push(scope.spawn(move || -> Result<()> {
                // The actor+env fragment: no policy, just the loop.
                let _frag = msrl_telemetry::span!("fragment.actor", rank);
                msrl_telemetry::set_fragment("actor", rank as u64);
                let mut envs = VecEnv::new(
                    (0..envs_i)
                        .map(|i| Box::new(make_env(rank, i)) as Box<dyn Environment>)
                        .collect(),
                );
                for _ in 0..dist.iterations {
                    let _iter = msrl_telemetry::span!("phase.rollout");
                    let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Rollout);
                    let mut obs = envs.reset();
                    for _ in 0..dist.steps_per_iter {
                        // Fine-grained exchange: obs up, actions down.
                        // The reply receive is posted as soon as the obs
                        // ship; the step itself is round-trip bound (the
                        // env cannot advance without the actions), which
                        // is exactly Tab. 2's "fine" granularity cost.
                        ep.isend(p, obs.data().to_vec()).map_err(comm_err)?.wait();
                        let pending = ep.irecv(p).map_err(comm_err)?;
                        let wire_actions = pending.wait().map_err(comm_err)?;
                        let actions_t = if spec.is_discrete() {
                            Tensor::from_vec(wire_actions, &[envs_i])
                        } else {
                            Tensor::from_vec(wire_actions, &[envs_i, spec.policy_width()])
                        }
                        .map_err(FdgError::Tensor)?;
                        let actions = decode_actions(&actions_t, spec);
                        let step = envs.step(&actions);
                        // Feedback for the learner-side buffer:
                        // rewards ++ dones ++ next_obs.
                        let mut fb = step.rewards.data().to_vec();
                        fb.extend(step.dones.iter().map(|&d| if d { 1.0 } else { 0.0 }));
                        fb.extend_from_slice(step.obs.data());
                        ep.send(p, fb).map_err(comm_err)?;
                        obs = step.obs;
                    }
                    ep.send(p, envs.take_finished_returns()).map_err(comm_err)?;
                }
                Ok(())
            }));
        }

        let frag = msrl_telemetry::span!("fragment.learner", 0usize);
        msrl_telemetry::set_fragment("learner", 0);
        let mut learner = PpoLearner::new(policy, dist.ppo.clone());
        let mut rng = msrl_tensor::init::rng(dist.seed + 17);
        let mut report = TrainingReport::default();
        let mut prev_reward = 0.0;
        let mut obs_stream = RunObserver::new("dp_b", 0);
        for _ in 0..dist.iterations {
            let mut buffers: Vec<TrajectoryBuffer> =
                (0..p).map(|_| TrajectoryBuffer::new()).collect();
            let rollout = msrl_telemetry::span!("phase.rollout");
            let rollout_attr = msrl_telemetry::step(msrl_telemetry::StepClass::Rollout);
            for _ in 0..dist.steps_per_iter {
                // Gather observations from every actor, infer centrally.
                let mut per_actor_obs = Vec::with_capacity(p);
                for rank in 0..p {
                    let wire = learner_ep.recv(rank).map_err(comm_err)?;
                    per_actor_obs.push(
                        Tensor::from_vec(wire, &[envs_i, obs_dim]).map_err(FdgError::Tensor)?,
                    );
                }
                let refs: Vec<&Tensor> = per_actor_obs.iter().collect();
                let stacked = ops::concat(&refs, 0).map_err(FdgError::Tensor)?;
                let out = learner.policy.act(&stacked, &mut rng)?;
                let values = out.values.clone().expect("PPO policy has a critic");
                // Scatter actions, then collect the env feedback.
                let act_w = if spec.is_discrete() { 1 } else { spec.policy_width() };
                for rank in 0..p {
                    let lo = rank * envs_i * act_w;
                    let hi = lo + envs_i * act_w;
                    learner_ep.send(rank, out.actions.data()[lo..hi].to_vec()).map_err(comm_err)?;
                }
                for (rank, buffer) in buffers.iter_mut().enumerate() {
                    let fb = learner_ep.recv(rank).map_err(comm_err)?;
                    let rewards = Tensor::from_vec(fb[..envs_i].to_vec(), &[envs_i])
                        .map_err(FdgError::Tensor)?;
                    let dones: Vec<bool> =
                        fb[envs_i..2 * envs_i].iter().map(|&d| d > 0.5).collect();
                    let next_obs = Tensor::from_vec(fb[2 * envs_i..].to_vec(), &[envs_i, obs_dim])
                        .map_err(FdgError::Tensor)?;
                    let row = |t: &Tensor| {
                        let lo = rank * envs_i;
                        let w = t.len() / (p * envs_i);
                        Tensor::from_vec(
                            t.data()[lo * w..(lo + envs_i) * w].to_vec(),
                            &if w == 1 { vec![envs_i] } else { vec![envs_i, w] },
                        )
                        .expect("slice preserves width")
                    };
                    buffer.insert(step_batch(
                        row(&stacked),
                        row(&out.actions),
                        rewards,
                        next_obs,
                        dones,
                        row(&out.log_probs),
                        row(&values),
                    ));
                }
            }
            drop(rollout_attr);
            drop(rollout);
            // Train on the union of the per-actor trajectories.
            let mut batches = Vec::with_capacity(p);
            for buffer in &mut buffers {
                batches.push(buffer.drain_env_major()?);
            }
            let batch = SampleBatch::concat(&batches)?;
            let loss = {
                let _s = msrl_telemetry::span!("phase.learn");
                let _h = msrl_telemetry::static_histogram!("phase.learn").time();
                let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                learner.learn(&batch)?
            };
            let mut finished = Vec::new();
            for rank in 0..p {
                finished.extend(learner_ep.recv(rank).map_err(comm_err)?);
            }
            prev_reward = mean_or_prev(&finished, prev_reward);
            report.iteration_rewards.push(prev_reward);
            report.losses.push(loss);
            let params = msrl_telemetry::health_enabled().then(|| learner.policy_params());
            obs_stream.observe(prev_reward, Some(loss), learner.last_entropy(), params.as_deref());
        }
        drop(frag);
        for h in handles {
            h.join().expect("actor thread must not panic")?;
        }
        report.final_params = learner.policy_params();
        Ok(report)
    });
    finish_run("dp_b", result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::cartpole::CartPole;

    #[test]
    fn dp_b_trains_cartpole_with_central_inference() {
        let dist = DistPpoConfig {
            actors: 2,
            envs_per_actor: 2,
            steps_per_iter: 48,
            iterations: 25,
            hidden: vec![32],
            seed: 3,
            ..DistPpoConfig::default()
        };
        let report = run_dp_b(|a, i| CartPole::new((a * 7 + i) as u64), &dist).unwrap();
        assert_eq!(report.iteration_rewards.len(), 25);
        assert!(
            report.recent_reward(5) > report.early_reward(5),
            "DP-B must improve: {} → {}",
            report.early_reward(5),
            report.recent_reward(5)
        );
    }
}
