//! DP-D (GPU only).
//!
//! The whole training loop — inference, environment, update — fuses into
//! one fragment per device, which is only possible because the
//! environment has a batched, device-executable implementation
//! (`msrl_env::batched`). Fragments replicate across devices and
//! synchronise once per episode by AllReduce-averaging their policy
//! weights (the multi-GPU extension of Fig. 10b that WarpDrive lacks).

use msrl_algos::buffer::{step_batch, TrajectoryBuffer};
use msrl_algos::ppo::{PpoConfig, PpoLearner, PpoPolicy};
use msrl_comm::Fabric;
use msrl_core::api::Learner;
use msrl_core::{FdgError, Result};
use msrl_env::batched::BatchedEnv;

use super::{finish_run, RunObserver, TrainingReport};

/// Configuration for the fused GPU-only loop.
#[derive(Debug, Clone)]
pub struct DpDConfig {
    /// Device (fragment replica) count.
    pub devices: usize,
    /// Episodes to train.
    pub episodes: usize,
    /// Hidden widths of the policy.
    pub hidden: Vec<usize>,
    /// PPO hyper-parameters.
    pub ppo: PpoConfig,
    /// Base seed.
    pub seed: u64,
    /// Route linear layers through the fused `MatMul+bias+activation`
    /// kernel (bit-identical to the unfused path). Defaults from
    /// `MSRL_FUSION`.
    pub fusion: bool,
}

/// Runs the fused training loop on `devices` replicas, each owning the
/// batched environment produced by `make_env(replica)`.
///
/// Returns the per-episode mean reward (averaged over replicas).
///
/// # Errors
///
/// Propagates algorithm/communication failures from any fragment.
pub fn run_dp_d<B, F>(make_env: F, cfg: &DpDConfig) -> Result<TrainingReport>
where
    B: BatchedEnv + 'static,
    F: Fn(usize) -> B + Send + Sync,
{
    msrl_tensor::par::set_fusion(cfg.fusion);
    let p = cfg.devices.max(1);
    let endpoints = Fabric::new(p);
    let probe = make_env(0);
    let (obs_dim, n_actions) = (probe.obs_dim(), probe.n_actions());
    drop(probe);
    let policy = PpoPolicy::discrete(obs_dim, n_actions, &cfg.hidden, cfg.seed);
    let comm_err = |e: msrl_comm::CommError| FdgError::MissingKernel { op: format!("comm: {e}") };

    let result = std::thread::scope(|scope| -> Result<TrainingReport> {
        let mut handles = Vec::new();
        for (rank, mut ep) in endpoints.into_iter().enumerate() {
            let policy = policy.clone();
            let make_env = &make_env;
            let ppo = cfg.ppo.clone();
            handles.push(scope.spawn(move || -> Result<TrainingReport> {
                let _frag = msrl_telemetry::span!("fragment.fused_loop", rank);
                msrl_telemetry::set_fragment("fused_loop", rank as u64);
                let mut env = make_env(rank);
                let mut learner = PpoLearner::new(policy, ppo);
                let mut rng = msrl_tensor::init::rng(cfg.seed + 100 + rank as u64);
                let mut report = TrainingReport::default();
                // Rank 0 streams the run's training metrics; replicas are
                // weight-synchronised every episode so one stream suffices.
                let mut obs_stream = (rank == 0).then(|| RunObserver::new("dp_d", 0));
                for _ in 0..cfg.episodes {
                    // Fused loop: everything below is "on device".
                    let mut buf = TrajectoryBuffer::new();
                    let rollout = msrl_telemetry::span!("phase.rollout");
                    let rollout_attr = msrl_telemetry::step(msrl_telemetry::StepClass::Rollout);
                    let mut obs = env.reset();
                    let mut total_reward = 0.0;
                    let mut steps = 0usize;
                    loop {
                        let out = learner.policy.act(&obs, &mut rng)?;
                        let actions: Vec<usize> =
                            out.actions.data().iter().map(|&a| a as usize).collect();
                        let step = env.step(&actions);
                        total_reward += step.rewards.data().iter().sum::<f32>();
                        steps += 1;
                        let n = env.total_agents();
                        buf.insert(step_batch(
                            obs.clone(),
                            out.actions,
                            step.rewards.clone(),
                            step.obs.clone(),
                            vec![step.done; n],
                            out.log_probs,
                            out.values.expect("PPO policy has a critic"),
                        ));
                        obs = step.obs;
                        if step.done {
                            break;
                        }
                    }
                    drop(rollout_attr);
                    drop(rollout);
                    let batch = buf.drain_env_major()?;
                    let loss = {
                        let _s = msrl_telemetry::span!("phase.learn");
                        let _h = msrl_telemetry::static_histogram!("phase.learn").time();
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                        learner.learn(&batch)?
                    };
                    // Per-episode replica sync: average weights. With
                    // overlap on, large payloads go through the chunked
                    // all-reduce so reduction of chunk k overlaps the
                    // transfer of chunk k+1 (bit-identical either way).
                    if p > 1 {
                        let _s = msrl_telemetry::span!("phase.weight_sync");
                        let params = learner.policy_params();
                        let avg = if msrl_comm::overlap_enabled() {
                            ep.all_reduce_mean_chunked(params, msrl_comm::comm_chunk_elems())
                        } else {
                            ep.all_reduce_mean(params)
                        }
                        .map_err(comm_err)?;
                        learner.set_policy_params(&avg)?;
                    }
                    let denom = (env.total_agents() * steps.max(1)) as f32;
                    report.iteration_rewards.push(total_reward / denom);
                    if let Some(o) = obs_stream.as_mut() {
                        let params =
                            msrl_telemetry::health_enabled().then(|| learner.policy_params());
                        o.observe(
                            total_reward / denom,
                            Some(loss),
                            learner.last_entropy(),
                            params.as_deref(),
                        );
                    }
                }
                report.final_params = learner.policy_params();
                Ok(report)
            }));
        }
        let mut reports = Vec::with_capacity(p);
        for h in handles {
            reports.push(h.join().expect("fragment thread must not panic")?);
        }
        // Average the per-replica reward curves.
        let episodes = cfg.episodes;
        let mut merged = TrainingReport::default();
        for e in 0..episodes {
            let mean = reports.iter().map(|r| r.iteration_rewards[e]).sum::<f32>() / p as f32;
            merged.iteration_rewards.push(mean);
        }
        merged.final_params = reports.swap_remove(0).final_params;
        Ok(merged)
    });
    finish_run("dp_d", result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::batched::{BatchedCartPole, BatchedTag};

    #[test]
    fn dp_d_runs_fused_cartpole_loop() {
        let cfg = DpDConfig {
            devices: 2,
            episodes: 8,
            hidden: vec![16],
            ppo: PpoConfig { lr: 1e-3, epochs: 2, ..PpoConfig::default() },
            seed: 7,
            fusion: msrl_tensor::par::fusion_enabled(),
        };
        let report = run_dp_d(|r| BatchedCartPole::new(16, r as u64), &cfg).unwrap();
        assert_eq!(report.iteration_rewards.len(), 8);
        assert!(report.final_params.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dp_d_runs_batched_tag() {
        let cfg = DpDConfig {
            devices: 1,
            episodes: 4,
            hidden: vec![16],
            ppo: PpoConfig { epochs: 1, ..PpoConfig::default() },
            seed: 8,
            fusion: msrl_tensor::par::fusion_enabled(),
        };
        let report = run_dp_d(|r| BatchedTag::new(8, 3, 1, r as u64), &cfg).unwrap();
        assert_eq!(report.iteration_rewards.len(), 4);
    }
}
