//! DP-A (single learner, coarse synchronisation).
//!
//! Actor+environment fragments are replicated — one thread each, with a
//! local policy replica and a vectorised environment set. Once per
//! iteration every actor ships its whole trajectory to the single
//! learner fragment: the per-episode batched synchronisation of Tab. 2.
//!
//! Weight parameters are *double-buffered*: instead of blocking on the
//! learner's broadcast each iteration, every actor posts an `irecv` for
//! the next weight message and immediately rolls out on its current
//! weights, swapping buffers when the receive completes. A bounded
//! staleness window (`DistPpoConfig::staleness`, default 1 iteration)
//! keeps learning on-policy enough to converge: each weight message is
//! version-stamped, and an actor blocks only when rolling out would
//! exceed the bound. Overlap off degenerates to staleness 0 — the fully
//! synchronous original — through the same code path.

use std::collections::VecDeque;

use msrl_algos::ppo::{PpoActor, PpoLearner, PpoPolicy};
use msrl_algos::rollout::collect;
use msrl_comm::{Fabric, PendingRecv};
use msrl_core::api::{Actor, Learner, SampleBatch};
use msrl_core::{FdgError, Result};
use msrl_env::{Environment, VecEnv};

use crate::wire::{decode_batch, encode_batch};

use super::{fault_nan_iter, finish_run, mean_or_prev, DistPpoConfig, RunObserver, TrainingReport};

/// Runs PPO under DP-A. `make_env(actor, instance)` constructs one
/// environment.
///
/// # Errors
///
/// Propagates algorithm/communication failures from any fragment.
pub fn run_dp_a<E, F>(make_env: F, dist: &DistPpoConfig) -> Result<TrainingReport>
where
    E: Environment + 'static,
    F: Fn(usize, usize) -> E + Send + Sync,
{
    dist.apply_fusion();
    let p = dist.actors.max(1);
    // Ranks 0..p are actors; rank p is the learner.
    let mut endpoints = Fabric::with_latency(p + 1, dist.link_latency);
    let learner_ep = endpoints.pop().expect("fabric yields p+1 endpoints");

    // Probe env specs and build the shared starting policy.
    let probe = make_env(0, 0);
    let (obs_dim, spec) = (probe.obs_dim(), probe.action_spec());
    drop(probe);
    let policy = if spec.is_discrete() {
        PpoPolicy::discrete(obs_dim, spec.policy_width(), &dist.hidden, dist.seed)
    } else {
        PpoPolicy::continuous(obs_dim, spec.policy_width(), &dist.hidden, dist.seed)
    };

    let comm_err = |e: msrl_comm::CommError| FdgError::MissingKernel { op: format!("comm: {e}") };

    // Cross-actor micro-batching: one shared act server collects every
    // fragment's observation rows per rollout step and runs one fused
    // forward over the concatenated block (bit-identical to the
    // per-actor path — see `crate::actsrv`).
    let srv = dist.act_server.then(|| crate::actsrv::ActServer::new(policy.clone(), p));

    let result = std::thread::scope(|scope| -> Result<TrainingReport> {
        let mut handles = Vec::new();
        for (rank, ep) in endpoints.into_iter().enumerate() {
            let policy = policy.clone();
            let srv = srv.clone();
            let make_env = &make_env;
            let stale_bound = dist.stale_bound();
            handles.push(scope.spawn(move || -> Result<()> {
                let _frag = msrl_telemetry::span!("fragment.actor", rank);
                msrl_telemetry::set_fragment("actor", rank as u64);
                let seed = dist.seed + 1 + rank as u64;
                let mut actor: Box<dyn Actor> = match &srv {
                    Some(srv) => Box::new(srv.client(rank, seed)),
                    None => Box::new(PpoActor::new(policy, seed)),
                };
                let mut envs = VecEnv::new(
                    (0..dist.envs_per_actor.max(1))
                        .map(|i| Box::new(make_env(rank, i)) as Box<dyn Environment>)
                        .collect(),
                );
                // Double-buffered weights: `pending` holds posted irecvs
                // for broadcasts still in flight; `version` is the
                // iteration whose learn step produced the weights the
                // actor currently runs on (0 = initial weights).
                let mut pending: VecDeque<PendingRecv> = VecDeque::new();
                let mut version = 0usize;
                let swap =
                    |w: Vec<f32>, version: &mut usize, actor: &mut dyn Actor| -> Result<()> {
                        *version = w[0] as usize;
                        actor.set_policy_params(&w[1..])
                    };
                for iter in 0..dist.iterations {
                    {
                        let _s = msrl_telemetry::span!("phase.weight_sync");
                        // Swap in any broadcast that has already landed
                        // (cost-free catch-up), oldest first.
                        while let Some(front) = pending.front_mut() {
                            if front.poll().map_err(comm_err)? {
                                let w = pending
                                    .pop_front()
                                    .expect("front exists")
                                    .wait()
                                    .map_err(comm_err)?;
                                swap(w, &mut version, actor.as_mut())?;
                            } else {
                                break;
                            }
                        }
                        // Block only when rolling out now would exceed
                        // the staleness bound.
                        while iter - version > stale_bound {
                            let w = pending
                                .pop_front()
                                .expect("a broadcast is outstanding whenever version lags")
                                .wait()
                                .map_err(comm_err)?;
                            swap(w, &mut version, actor.as_mut())?;
                        }
                    }
                    assert!(
                        iter - version <= stale_bound,
                        "staleness bound violated: iter {iter} on version {version} weights \
                         (bound {stale_bound})"
                    );
                    let stale = version < iter;
                    if stale {
                        msrl_telemetry::static_counter!("comm.stale_iters").add(1);
                    }
                    let batch = {
                        // comm.overlap marks rollout executed while the
                        // next weight broadcast is still in flight — the
                        // communication time reclaimed by overlapping.
                        let _ov = stale.then(|| msrl_telemetry::span!("comm.overlap"));
                        let _s = msrl_telemetry::span!("phase.rollout");
                        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Rollout);
                        collect(actor.as_mut(), &mut envs, dist.steps_per_iter)?
                    };
                    let _s = msrl_telemetry::span!("phase.weight_sync");
                    ep.isend(p, encode_batch(&batch)).map_err(comm_err)?.wait();
                    ep.isend(p, envs.take_finished_returns()).map_err(comm_err)?.wait();
                    pending.push_back(ep.irecv(p).map_err(comm_err)?);
                }
                // Drain outstanding broadcasts so the learner's final
                // sends are consumed before the channel drops.
                for pr in pending {
                    let _ = pr.wait();
                }
                Ok(())
            }));
        }

        // Learner fragment body (runs on the calling thread).
        let frag = msrl_telemetry::span!("fragment.learner", 0usize);
        msrl_telemetry::set_fragment("learner", 0);
        let mut learner = PpoLearner::new(policy, dist.ppo.clone());
        let mut report = TrainingReport::default();
        let mut prev_reward = 0.0;
        let mut obs = RunObserver::new("dp_a", dist.stale_bound());
        let fault_nan = fault_nan_iter();
        for iter in 0..dist.iterations {
            let mut batches = Vec::with_capacity(p);
            let mut finished = Vec::new();
            for rank in 0..p {
                batches.push(decode_batch(&learner_ep.recv(rank).map_err(comm_err)?)?);
                finished.extend(learner_ep.recv(rank).map_err(comm_err)?);
            }
            let batch = SampleBatch::concat(&batches)?;
            let loss = {
                let _s = msrl_telemetry::span!("phase.learn");
                let _h = msrl_telemetry::static_histogram!("phase.learn").time();
                let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Learn);
                learner.learn(&batch)?
            };
            if fault_nan == Some(iter as u64) {
                // Fault injection (`MSRL_FAULT_NAN_ITER`): scale one
                // weight to infinity so this iteration's health pass
                // must flag the poisoned parameter vector. Injecting at
                // the run's last iteration keeps the poisoned broadcast
                // unused — actors drain their final weight sync.
                let mut w = learner.policy_params();
                if let Some(v) = w.first_mut() {
                    *v = f32::INFINITY;
                }
                learner.set_policy_params(&w)?;
            }
            // Version-stamped broadcast: learning from iteration `iter`'s
            // batches produces the version `iter + 1` weights (exact as
            // f32 for any realistic iteration count).
            let mut weights = vec![(iter + 1) as f32];
            weights.extend(learner.policy_params());
            {
                let _s = msrl_telemetry::span!("phase.weight_sync");
                for rank in 0..p {
                    learner_ep.isend(rank, weights.clone()).map_err(comm_err)?.wait();
                }
            }
            prev_reward = mean_or_prev(&finished, prev_reward);
            report.iteration_rewards.push(prev_reward);
            report.losses.push(loss);
            let params = msrl_telemetry::health_enabled().then(|| learner.policy_params());
            obs.observe(prev_reward, Some(loss), learner.last_entropy(), params.as_deref());
        }
        drop(frag);
        for h in handles {
            h.join().expect("actor thread must not panic")?;
        }
        report.final_params = learner.policy_params();
        Ok(report)
    });
    finish_run("dp_a", result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::cartpole::CartPole;

    #[test]
    fn dp_a_trains_cartpole_distributed() {
        // lr raised from the 3e-4 default so the improvement margin is
        // robust for both the synchronous and the overlapped
        // (bounded-staleness) weight-sync paths this test covers via the
        // MSRL_OVERLAP/MSRL_STALENESS defaults.
        let dist = DistPpoConfig {
            actors: 3,
            envs_per_actor: 2,
            steps_per_iter: 64,
            iterations: 25,
            hidden: vec![32],
            seed: 1,
            ppo: msrl_algos::ppo::PpoConfig { lr: 2e-3, ..msrl_algos::ppo::PpoConfig::default() },
            ..DistPpoConfig::default()
        };
        let report = run_dp_a(|a, i| CartPole::new((a * 100 + i) as u64), &dist).unwrap();
        assert_eq!(report.iteration_rewards.len(), 25);
        assert_eq!(report.losses.len(), 25);
        assert!(!report.final_params.is_empty());
        assert!(
            report.recent_reward(5) > report.early_reward(5),
            "distributed PPO must improve: {:?} → {:?}",
            report.early_reward(5),
            report.recent_reward(5)
        );
    }

    #[test]
    fn act_server_run_is_bit_identical_to_per_actor_run() {
        // Same config, same seeds; the only difference is routing policy
        // forwards through the cross-actor act server. Overlap is off so
        // both runs use the same (zero) staleness bound — the act server
        // forces zero regardless, and a differing bound would change
        // which weights actors roll out on.
        let base = DistPpoConfig {
            actors: 3,
            envs_per_actor: 2,
            steps_per_iter: 32,
            iterations: 4,
            hidden: vec![16],
            seed: 11,
            overlap: false,
            act_server: false,
            ..DistPpoConfig::default()
        };
        let plain = run_dp_a(|a, i| CartPole::new((a * 10 + i) as u64), &base).unwrap();
        let batched = run_dp_a(
            |a, i| CartPole::new((a * 10 + i) as u64),
            &DistPpoConfig { act_server: true, ..base },
        )
        .unwrap();
        assert_eq!(plain.final_params, batched.final_params, "weights must match bitwise");
        assert_eq!(plain.iteration_rewards, batched.iteration_rewards);
        assert_eq!(plain.losses, batched.losses);
        assert!(
            msrl_telemetry::counter_total("actsrv.batches") >= 4 * 32,
            "act server must have run one batched forward per rollout step"
        );
    }

    #[test]
    fn dp_a_single_actor_matches_shape() {
        let dist = DistPpoConfig {
            actors: 1,
            envs_per_actor: 2,
            steps_per_iter: 16,
            iterations: 3,
            hidden: vec![8],
            seed: 2,
            ..DistPpoConfig::default()
        };
        let report = run_dp_a(|a, i| CartPole::new((a + i) as u64), &dist).unwrap();
        assert_eq!(report.iteration_rewards.len(), 3);
    }
}
