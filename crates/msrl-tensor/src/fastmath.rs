//! Opt-in fast-math transcendental kernels — kernel tier level 2.
//!
//! Everything below tier 2 in this crate is bit-identical to the naive
//! reference kernels by construction; that contract caps softmax and
//! tanh-heavy forwards because scalar libm `exp`/`tanh` dominate their
//! cost and have no bit-identical vector form. This module is the
//! explicitly *opt-in* escape hatch (`MSRL_TIER=2`, see
//! [`crate::par::tier_level`]): polynomial `exp`/`tanh`/`sigmoid`
//! evaluated 8 or 16 lanes at a time.
//!
//! # Accuracy contract
//!
//! [`fast_exp`] is the classic Cephes `expf` scheme — range reduction
//! to `x = z·ln2 + r`, a degree-5 polynomial for `eʳ`, and an exponent
//! rebuild via integer bit assembly. Its relative error against libm is
//! below `3e-7` (≈2 ulp) across the clamp range, verified by proptest.
//! [`fast_tanh`] and [`fast_sigmoid`] derive from it with one division
//! each and stay within `1e-6` absolute error of libm on ±20 (the
//! training-relevant range; both saturate identically beyond it).
//!
//! # Determinism contract
//!
//! Fast-math is *not* bit-identical to tiers 0/1 — that is the point —
//! but it **is** deterministic and ISA-independent: the AVX-512, AVX2
//! and portable paths execute the exact scalar operation sequence
//! (separate multiply and add, never an FMA; `floor`; truncating
//! int-cast), so every lane rounds identically to the scalar reference
//! and a tier-2 run reproduces bit-for-bit on any x86-64 host. Row
//! reductions (the softmax max and sum) use a 16-lane tree fixed by
//! [`RLANES`], not by the register width, so their combination order —
//! and therefore their bits — are identical on every dispatch level
//! too. Tests pin vector == scalar equality; only the *fast vs libm*
//! gap needs a tolerance.
//!
//! # Edge cases
//!
//! Inputs are clamped with SSE `min`/`max` semantics (`if a < b`
//! comparisons, NaN compares false), so a NaN input saturates to the
//! clamp bound instead of propagating — acceptable for an opt-in tier
//! whose e2e gates would catch NaN-producing runs anyway. `fast_exp`
//! never overflows to infinity: the clamp keeps `2^z` finite.

use crate::kernels::{self, MatKernel};

/// Which elementwise transcendental [`apply_slice`] should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unary {
    /// `fast_exp(x)`.
    Exp,
    /// `fast_tanh(x)`.
    Tanh,
    /// `fast_sigmoid(x)`.
    Sigmoid,
}

// Cephes expf constants (also used by sse_mathfun / avx_mathfun).
const EXP_HI: f32 = 88.376_26_f32; // log(2^127.5), keeps 2^z finite
const EXP_LO: f32 = -88.376_26_f32;
const LOG2EF: f32 = std::f32::consts::LOG2_E;
#[allow(clippy::excessive_precision)] // exact: 0x3f318000, the Madsen hi-part of ln2
const C1: f32 = 0.693_359_375_f32;
const C2: f32 = -2.121_944_4e-4_f32;
const P0: f32 = 1.987_569_2e-4_f32;
const P1: f32 = 1.398_199_9e-3_f32;
const P2: f32 = 8.333_452e-3_f32;
const P3: f32 = 4.166_579_6e-2_f32;
const P4: f32 = 1.666_666_5e-1_f32;
#[allow(clippy::excessive_precision)] // Cephes coefficient, digits kept verbatim
const P5: f32 = 5.000_000_2e-1_f32;

/// SSE `minps` semantics: `if a < b { a } else { b }` — NaN in `a`
/// selects `b`, so a NaN input saturates to the clamp bound.
#[inline]
fn ss_min(a: f32, b: f32) -> f32 {
    if a < b {
        a
    } else {
        b
    }
}

/// SSE `maxps` semantics, mirror of [`ss_min`].
#[inline]
fn ss_max(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Polynomial `eˣ`, the scalar reference every vector lane replays.
///
/// Saturates (finite) at the clamp bounds instead of overflowing to
/// `inf` / underflowing below `2⁻¹²⁷` (which flushes to exactly `0.0`).
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    let x = ss_min(x, EXP_HI);
    let x = ss_max(x, EXP_LO);
    // x = z*ln2 + r with z integer-valued: z = floor(x*log2(e) + 0.5).
    let z = (x * LOG2EF + 0.5).floor();
    // Two-constant Madsen split of ln2 keeps r exact to ~1e-11.
    let x = x - z * C1;
    let r = x - z * C2;
    let r2 = r * r;
    let mut y = P0;
    y = y * r + P1;
    y = y * r + P2;
    y = y * r + P3;
    y = y * r + P4;
    y = y * r + P5;
    y *= r2;
    y += r;
    y += 1.0;
    // 2^z assembled directly in the exponent field; z ∈ [-127, 127].
    let pow2 = f32::from_bits((((z as i32) + 127) << 23) as u32);
    y * pow2
}

/// Polynomial `tanh(x)` via `fast_exp`: `t = e^(−2|x|) ∈ [0, 1]`, then
/// `(1 − t)/(1 + t)` with the sign of `x` restored — the denominator is
/// ≥ 1, so no overflow or division hazard exists anywhere in the range.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    let ax = f32::from_bits(x.to_bits() & 0x7fff_ffff);
    let t = fast_exp(ax * -2.0);
    let r = (1.0 - t) / (1.0 + t);
    f32::from_bits(r.to_bits() | (x.to_bits() & 0x8000_0000))
}

/// Polynomial logistic sigmoid `1/(1 + e^(−x))` via `fast_exp`.
#[inline]
pub fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(f32::from_bits(x.to_bits() ^ 0x8000_0000)))
}

#[inline]
fn apply_scalar(u: Unary, v: f32) -> f32 {
    match u {
        Unary::Exp => fast_exp(v),
        Unary::Tanh => fast_tanh(v),
        Unary::Sigmoid => fast_sigmoid(v),
    }
}

fn apply_portable(u: Unary, data: &mut [f32]) {
    for v in data.iter_mut() {
        *v = apply_scalar(u, *v);
    }
}

/// Applies the transcendental in place over a contiguous slice, lanes
/// across elements, dispatched AVX-512 → AVX2 → portable like
/// [`kernels::select`]. All three paths are bitwise-identical (see the
/// module docs' determinism contract).
pub fn apply_slice(u: Unary, data: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        match kernels::select() {
            // SAFETY: `select` returned this variant only after runtime
            // feature detection confirmed the ISA.
            MatKernel::Avx512 => unsafe {
                x86::apply_avx512(u, data);
                return;
            },
            MatKernel::Avx2 => unsafe {
                x86::apply_avx2(u, data);
                return;
            },
            MatKernel::Portable => {}
        }
    }
    apply_portable(u, data);
}

/// Virtual lane count of the tier-2 row-reduction tree. Fixed at 16 on
/// every dispatch level so the max/sum combination order — and
/// therefore the result bits — are ISA-independent: AVX-512 holds the
/// 16 lanes in one zmm register, AVX2 in two ymm registers, and the
/// portable path in a plain array, all collapsed by the same fixed
/// pairwise tree.
const RLANES: usize = 16;

/// Folds the row's sub-16 remainder into the leading lanes, then
/// collapses all 16 lanes with a fixed pairwise tree (16 → 8 → 4 → 2
/// → 1). Shared by every dispatch level, which is what pins the
/// reduction bits across ISAs.
#[inline]
fn fold_tail_and_tree(acc: &mut [f32; RLANES], tail: &[f32], f: impl Fn(f32, f32) -> f32) -> f32 {
    for (a, &x) in acc.iter_mut().zip(tail) {
        *a = f(*a, x);
    }
    let mut w = RLANES / 2;
    while w > 0 {
        for j in 0..w {
            acc[j] = f(acc[j], acc[j + w]);
        }
        w /= 2;
    }
    acc[0]
}

/// 16-lane blocked fold: lane `j` accumulates elements `j`, `j+16`,
/// `j+32`, … — exactly the order the vector paths replay in registers.
#[inline]
fn lane_fold(row: &[f32], init: f32, f: impl Fn(f32, f32) -> f32 + Copy) -> f32 {
    let mut acc = [init; RLANES];
    let blocks = row.len() / RLANES;
    for b in 0..blocks {
        for (j, a) in acc.iter_mut().enumerate() {
            *a = f(*a, row[b * RLANES + j]);
        }
    }
    fold_tail_and_tree(&mut acc, &row[blocks * RLANES..], f)
}

/// Portable reference of the tier-2 softmax row: 16-lane tree max,
/// `fast_exp(x − max)`, 16-lane tree sum, scale by the reciprocal.
fn softmax_row_portable(row: &mut [f32]) {
    let max = lane_fold(row, f32::NEG_INFINITY, ss_max);
    for o in row.iter_mut() {
        *o = fast_exp(*o - max);
    }
    let sum = lane_fold(row, 0.0, |a, b| a + b);
    let inv = 1.0 / sum;
    for o in row.iter_mut() {
        *o *= inv;
    }
}

/// Tier-2 softmax row: tree max, fused vector `fast_exp(x − max)`,
/// tree sum, vector scale — dispatched AVX-512 → AVX2 → portable, all
/// three bitwise-identical because the reduction tree is fixed at
/// [`RLANES`] lanes on every level and the exp pass is elementwise.
///
/// Not bit-identical to the tier-0/1 softmax: both the exponentials
/// (polynomial vs libm) and the reduction order (lane tree vs serial)
/// differ — tolerance-gated like the rest of tier 2.
pub fn softmax_row_fast_inplace(row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        match kernels::select() {
            // SAFETY: `select` returned this variant only after runtime
            // feature detection confirmed the ISA.
            MatKernel::Avx512 => unsafe {
                x86::softmax_row_avx512(row);
                return;
            },
            MatKernel::Avx2 => unsafe {
                x86::softmax_row_avx2(row);
                return;
            },
            MatKernel::Portable => {}
        }
    }
    softmax_row_portable(row);
}

/// Tier-2 companion to [`kernels::softmax_rows_tiered`]: copies rows
/// `offset/n ..` of the row-major source into `out` and applies
/// [`softmax_row_fast_inplace`] to each row.
pub fn softmax_rows_fast(ad: &[f32], offset: usize, out: &mut [f32], n: usize) {
    if out.is_empty() || n == 0 {
        return;
    }
    out.copy_from_slice(&ad[offset..offset + out.len()]);
    for row in out.chunks_mut(n) {
        softmax_row_fast_inplace(row);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Vector lanes of the scalar reference: every step is the same
    //! rounding sequence (`mul` then `add`, never FMA; `floor`;
    //! truncating `cvtt`), so lanes match [`super::fast_exp`] bitwise.
    //! Bitwise ops run on integer vectors (`and`/`or`/`xor` on
    //! `si512` need only `avx512f`, unlike the `ps` forms).

    use std::arch::x86_64::{
        __m256, __m512, _mm256_add_epi32, _mm256_add_ps, _mm256_and_si256, _mm256_castps_si256,
        _mm256_castsi256_ps, _mm256_cvttps_epi32, _mm256_div_ps, _mm256_floor_ps, _mm256_loadu_ps,
        _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps, _mm256_or_si256, _mm256_set1_epi32,
        _mm256_set1_ps, _mm256_setzero_ps, _mm256_slli_epi32, _mm256_storeu_ps, _mm256_sub_ps,
        _mm256_xor_si256, _mm512_add_epi32, _mm512_add_ps, _mm512_and_si512, _mm512_castps_si512,
        _mm512_castsi512_ps, _mm512_cvttps_epi32, _mm512_div_ps, _mm512_loadu_ps, _mm512_max_ps,
        _mm512_min_ps, _mm512_mul_ps, _mm512_or_si512, _mm512_roundscale_ps, _mm512_set1_epi32,
        _mm512_set1_ps, _mm512_setzero_ps, _mm512_slli_epi32, _mm512_storeu_ps, _mm512_sub_ps,
        _mm512_xor_si512,
    };

    use super::{Unary, C1, C2, EXP_HI, EXP_LO, LOG2EF, P0, P1, P2, P3, P4, P5, RLANES};

    /// `_MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC` for `roundscale`.
    const FLOOR: i32 = 0x09;

    /// 8-lane [`super::fast_exp`].
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn vexp256(x: __m256) -> __m256 {
        let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
        let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
        let z = _mm256_floor_ps(_mm256_add_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2EF)),
            _mm256_set1_ps(0.5),
        ));
        let x = _mm256_sub_ps(x, _mm256_mul_ps(z, _mm256_set1_ps(C1)));
        let r = _mm256_sub_ps(x, _mm256_mul_ps(z, _mm256_set1_ps(C2)));
        let r2 = _mm256_mul_ps(r, r);
        let mut y = _mm256_set1_ps(P0);
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P1));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P2));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P3));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P4));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(P5));
        y = _mm256_mul_ps(y, r2);
        y = _mm256_add_ps(y, r);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvttps_epi32(z),
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, pow2)
    }

    /// 8-lane [`super::fast_tanh`].
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn vtanh256(x: __m256) -> __m256 {
        let xi = _mm256_castps_si256(x);
        let ax = _mm256_castsi256_ps(_mm256_and_si256(xi, _mm256_set1_epi32(0x7fff_ffff)));
        let t = vexp256(_mm256_mul_ps(ax, _mm256_set1_ps(-2.0)));
        let one = _mm256_set1_ps(1.0);
        let r = _mm256_div_ps(_mm256_sub_ps(one, t), _mm256_add_ps(one, t));
        let sign = _mm256_and_si256(xi, _mm256_set1_epi32(i32::MIN));
        _mm256_castsi256_ps(_mm256_or_si256(_mm256_castps_si256(r), sign))
    }

    /// 8-lane [`super::fast_sigmoid`].
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn vsigmoid256(x: __m256) -> __m256 {
        let nx = _mm256_castsi256_ps(_mm256_xor_si256(
            _mm256_castps_si256(x),
            _mm256_set1_epi32(i32::MIN),
        ));
        let one = _mm256_set1_ps(1.0);
        _mm256_div_ps(one, _mm256_add_ps(one, vexp256(nx)))
    }

    /// In-place [`super::apply_slice`] over ymm lanes, scalar edge.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn apply_avx2(u: Unary, data: &mut [f32]) {
        const L: usize = 8;
        let p = data.as_mut_ptr();
        let mut i = 0;
        while i + L <= data.len() {
            let v = _mm256_loadu_ps(p.add(i));
            let o = match u {
                Unary::Exp => vexp256(v),
                Unary::Tanh => vtanh256(v),
                Unary::Sigmoid => vsigmoid256(v),
            };
            _mm256_storeu_ps(p.add(i), o);
            i += L;
        }
        for v in data[i..].iter_mut() {
            *v = super::apply_scalar(u, *v);
        }
    }

    /// 16-lane [`super::fast_exp`].
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn vexp512(x: __m512) -> __m512 {
        let x = _mm512_min_ps(x, _mm512_set1_ps(EXP_HI));
        let x = _mm512_max_ps(x, _mm512_set1_ps(EXP_LO));
        let z = _mm512_roundscale_ps::<FLOOR>(_mm512_add_ps(
            _mm512_mul_ps(x, _mm512_set1_ps(LOG2EF)),
            _mm512_set1_ps(0.5),
        ));
        let x = _mm512_sub_ps(x, _mm512_mul_ps(z, _mm512_set1_ps(C1)));
        let r = _mm512_sub_ps(x, _mm512_mul_ps(z, _mm512_set1_ps(C2)));
        let r2 = _mm512_mul_ps(r, r);
        let mut y = _mm512_set1_ps(P0);
        y = _mm512_add_ps(_mm512_mul_ps(y, r), _mm512_set1_ps(P1));
        y = _mm512_add_ps(_mm512_mul_ps(y, r), _mm512_set1_ps(P2));
        y = _mm512_add_ps(_mm512_mul_ps(y, r), _mm512_set1_ps(P3));
        y = _mm512_add_ps(_mm512_mul_ps(y, r), _mm512_set1_ps(P4));
        y = _mm512_add_ps(_mm512_mul_ps(y, r), _mm512_set1_ps(P5));
        y = _mm512_mul_ps(y, r2);
        y = _mm512_add_ps(y, r);
        y = _mm512_add_ps(y, _mm512_set1_ps(1.0));
        let pow2 = _mm512_castsi512_ps(_mm512_slli_epi32::<23>(_mm512_add_epi32(
            _mm512_cvttps_epi32(z),
            _mm512_set1_epi32(127),
        )));
        _mm512_mul_ps(y, pow2)
    }

    /// 16-lane [`super::fast_tanh`].
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn vtanh512(x: __m512) -> __m512 {
        let xi = _mm512_castps_si512(x);
        let ax = _mm512_castsi512_ps(_mm512_and_si512(xi, _mm512_set1_epi32(0x7fff_ffff)));
        let t = vexp512(_mm512_mul_ps(ax, _mm512_set1_ps(-2.0)));
        let one = _mm512_set1_ps(1.0);
        let r = _mm512_div_ps(_mm512_sub_ps(one, t), _mm512_add_ps(one, t));
        let sign = _mm512_and_si512(xi, _mm512_set1_epi32(i32::MIN));
        _mm512_castsi512_ps(_mm512_or_si512(_mm512_castps_si512(r), sign))
    }

    /// 16-lane [`super::fast_sigmoid`].
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn vsigmoid512(x: __m512) -> __m512 {
        let nx = _mm512_castsi512_ps(_mm512_xor_si512(
            _mm512_castps_si512(x),
            _mm512_set1_epi32(i32::MIN),
        ));
        let one = _mm512_set1_ps(1.0);
        _mm512_div_ps(one, _mm512_add_ps(one, vexp512(nx)))
    }

    /// In-place [`super::apply_slice`] over zmm lanes, scalar edge.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn apply_avx512(u: Unary, data: &mut [f32]) {
        const L: usize = 16;
        let p = data.as_mut_ptr();
        let mut i = 0;
        while i + L <= data.len() {
            let v = _mm512_loadu_ps(p.add(i));
            let o = match u {
                Unary::Exp => vexp512(v),
                Unary::Tanh => vtanh512(v),
                Unary::Sigmoid => vsigmoid512(v),
            };
            _mm512_storeu_ps(p.add(i), o);
            i += L;
        }
        for v in data[i..].iter_mut() {
            *v = super::apply_scalar(u, *v);
        }
    }

    /// zmm [`super::softmax_row_fast_inplace`]: the 16 virtual lanes of
    /// the reduction tree live in one register; the spill array feeds
    /// the shared scalar tail + tree fold, so bits match the portable
    /// reference exactly.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn softmax_row_avx512(row: &mut [f32]) {
        let n = row.len();
        let blocks = n / RLANES;
        let p = row.as_mut_ptr();

        let mut macc = [f32::NEG_INFINITY; RLANES];
        if blocks > 0 {
            let mut v = _mm512_set1_ps(f32::NEG_INFINITY);
            for b in 0..blocks {
                // maxps(acc, x) = acc > x ? acc : x — matches ss_max.
                v = _mm512_max_ps(v, _mm512_loadu_ps(p.add(b * RLANES)));
            }
            _mm512_storeu_ps(macc.as_mut_ptr(), v);
        }
        let max = super::fold_tail_and_tree(&mut macc, &row[blocks * RLANES..], super::ss_max);

        let vm = _mm512_set1_ps(max);
        let mut i = 0;
        while i + RLANES <= n {
            _mm512_storeu_ps(p.add(i), vexp512(_mm512_sub_ps(_mm512_loadu_ps(p.add(i)), vm)));
            i += RLANES;
        }
        for o in row[i..].iter_mut() {
            *o = super::fast_exp(*o - max);
        }

        let mut sacc = [0.0f32; RLANES];
        if blocks > 0 {
            let mut v = _mm512_setzero_ps();
            for b in 0..blocks {
                v = _mm512_add_ps(v, _mm512_loadu_ps(p.add(b * RLANES)));
            }
            _mm512_storeu_ps(sacc.as_mut_ptr(), v);
        }
        let sum = super::fold_tail_and_tree(&mut sacc, &row[blocks * RLANES..], |a, b| a + b);

        let inv = 1.0 / sum;
        let vi = _mm512_set1_ps(inv);
        let mut i = 0;
        while i + RLANES <= n {
            _mm512_storeu_ps(p.add(i), _mm512_mul_ps(_mm512_loadu_ps(p.add(i)), vi));
            i += RLANES;
        }
        for o in row[i..].iter_mut() {
            *o *= inv;
        }
    }

    /// ymm [`super::softmax_row_fast_inplace`]: the 16 virtual lanes
    /// split across two registers (lanes 0–7 and 8–15), spilled into the
    /// same 16-slot array and folded by the shared tail + tree, so bits
    /// match the zmm and portable paths exactly.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`crate::kernels::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn softmax_row_avx2(row: &mut [f32]) {
        const H: usize = 8;
        let n = row.len();
        let blocks = n / RLANES;
        let p = row.as_mut_ptr();

        let mut macc = [f32::NEG_INFINITY; RLANES];
        if blocks > 0 {
            let mut a0 = _mm256_set1_ps(f32::NEG_INFINITY);
            let mut a1 = a0;
            for b in 0..blocks {
                a0 = _mm256_max_ps(a0, _mm256_loadu_ps(p.add(b * RLANES)));
                a1 = _mm256_max_ps(a1, _mm256_loadu_ps(p.add(b * RLANES + H)));
            }
            _mm256_storeu_ps(macc.as_mut_ptr(), a0);
            _mm256_storeu_ps(macc.as_mut_ptr().add(H), a1);
        }
        let max = super::fold_tail_and_tree(&mut macc, &row[blocks * RLANES..], super::ss_max);

        let vm = _mm256_set1_ps(max);
        let mut i = 0;
        while i + H <= n {
            _mm256_storeu_ps(p.add(i), vexp256(_mm256_sub_ps(_mm256_loadu_ps(p.add(i)), vm)));
            i += H;
        }
        for o in row[i..].iter_mut() {
            *o = super::fast_exp(*o - max);
        }

        let mut sacc = [0.0f32; RLANES];
        if blocks > 0 {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = a0;
            for b in 0..blocks {
                a0 = _mm256_add_ps(a0, _mm256_loadu_ps(p.add(b * RLANES)));
                a1 = _mm256_add_ps(a1, _mm256_loadu_ps(p.add(b * RLANES + H)));
            }
            _mm256_storeu_ps(sacc.as_mut_ptr(), a0);
            _mm256_storeu_ps(sacc.as_mut_ptr().add(H), a1);
        }
        let sum = super::fold_tail_and_tree(&mut sacc, &row[blocks * RLANES..], |a, b| a + b);

        let inv = 1.0 / sum;
        let vi = _mm256_set1_ps(inv);
        let mut i = 0;
        while i + H <= n {
            _mm256_storeu_ps(p.add(i), _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), vi));
            i += H;
        }
        for o in row[i..].iter_mut() {
            *o *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_range(lo: f32, hi: f32, steps: usize) -> Vec<f32> {
        (0..=steps).map(|i| lo + (hi - lo) * i as f32 / steps as f32).collect()
    }

    #[test]
    fn fast_exp_matches_libm_within_rel_tolerance() {
        for &x in &dense_range(-87.0, 88.0, 40_000) {
            let fast = fast_exp(x);
            let exact = x.exp();
            let rel = ((fast - exact) / exact).abs();
            assert!(rel < 3e-7, "x={x}: fast={fast} libm={exact} rel={rel}");
        }
    }

    #[test]
    fn fast_tanh_and_sigmoid_match_libm_on_training_range() {
        for &x in &dense_range(-20.0, 20.0, 40_000) {
            let dt = (fast_tanh(x) - x.tanh()).abs();
            assert!(dt < 1e-6, "tanh x={x} err={dt}");
            let ds = (fast_sigmoid(x) - 1.0 / (1.0 + (-x).exp())).abs();
            assert!(ds < 1e-6, "sigmoid x={x} err={ds}");
        }
    }

    #[test]
    fn saturation_and_signed_zero_edges() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert_eq!(fast_exp(-1000.0), 0.0);
        assert!(fast_exp(1000.0).is_finite());
        assert!(fast_exp(f32::NAN).is_finite(), "NaN saturates to the clamp bound");
        assert_eq!(fast_tanh(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(fast_tanh(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(fast_tanh(50.0), 1.0);
        assert_eq!(fast_tanh(-50.0), -1.0);
        assert_eq!(fast_sigmoid(100.0), 1.0);
        // Saturation divides by e^88.4: the quotient is subnormal, not 0.
        assert!(fast_sigmoid(-100.0) < 1e-38);
    }

    #[test]
    fn dispatched_slice_matches_scalar_reference_bitwise() {
        // 37 elements: covers full zmm lanes, a ymm-width tail and a
        // scalar edge on every dispatch level.
        let input: Vec<f32> = (0..37)
            .map(|i| (i as f32 - 18.0) * 1.337 + if i % 3 == 0 { 0.123 } else { -0.456 })
            .collect();
        for u in [Unary::Exp, Unary::Tanh, Unary::Sigmoid] {
            let mut dispatched = input.clone();
            apply_slice(u, &mut dispatched);
            let mut scalar = input.clone();
            apply_portable(u, &mut scalar);
            for (i, (d, s)) in dispatched.iter().zip(&scalar).enumerate() {
                assert_eq!(d.to_bits(), s.to_bits(), "{u:?} lane {i}: {d} vs {s}");
            }
        }
    }

    #[test]
    fn softmax_row_dispatch_matches_portable_reference_bitwise() {
        // Lengths exercising: tail-only (< 16), exact blocks, a ymm-wide
        // tail, sub-8 scalar edges, and multi-block rows.
        for n in [5usize, 16, 23, 37, 64, 130] {
            let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.61).cos() * 7.0 - 1.5).collect();
            let mut dispatched = input.clone();
            softmax_row_fast_inplace(&mut dispatched);
            let mut portable = input.clone();
            softmax_row_portable(&mut portable);
            for (i, (d, s)) in dispatched.iter().zip(&portable).enumerate() {
                assert_eq!(d.to_bits(), s.to_bits(), "n={n} lane {i}: {d} vs {s}");
            }
        }
    }

    #[test]
    fn softmax_row_fast_is_normalized_and_close_to_exact() {
        let mut row: Vec<f32> = (0..23).map(|i| (i as f32 * 0.77).sin() * 6.0).collect();
        let mut exact = row.clone();
        crate::ops::softmax_row_inplace(&mut exact);
        softmax_row_fast_inplace(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "sum={sum}");
        for (f, e) in row.iter().zip(&exact) {
            assert!((f - e).abs() < 1e-6, "fast={f} exact={e}");
        }
    }

    #[test]
    fn softmax_rows_fast_copies_from_offset() {
        let n = 5;
        let ad: Vec<f32> = (0..4 * n).map(|i| i as f32 * 0.3 - 2.0).collect();
        let mut part = vec![0.0; 2 * n];
        softmax_rows_fast(&ad, 2 * n, &mut part, n);
        let mut expect = ad[2 * n..4 * n].to_vec();
        for row in expect.chunks_mut(n) {
            softmax_row_fast_inplace(row);
        }
        assert_eq!(part, expect);
    }
}
