//! Error types for tensor operations.

use std::fmt;

/// Errors produced by tensor operations.
///
/// Every fallible operation in this crate reports failures through this
/// type instead of panicking, so that the MSRL runtime can surface
/// mis-configured fragments (e.g. a fusion pass that produced an
/// inconsistent batch dimension) as recoverable errors.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two shapes that were required to match (exactly or after
    /// broadcasting) did not.
    ShapeMismatch {
        /// Operation that failed, e.g. `"matmul"`.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// The data length did not match the product of the shape dimensions.
    LengthMismatch {
        /// Expected number of elements (product of shape).
        expected: usize,
        /// Actual data length.
        actual: usize,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An index was out of range along some axis.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The axis length.
        len: usize,
    },
    /// The operation requires a different rank than the tensor has.
    RankMismatch {
        /// Operation that failed.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// A reshape target had a different element count.
    ReshapeMismatch {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An empty input where at least one element was required.
    EmptyInput {
        /// Operation that failed.
        op: &'static str,
    },
    /// The autograd tape did not contain the requested variable, or the
    /// variable belongs to a different tape.
    UnknownVariable {
        /// The variable id.
        id: usize,
    },
    /// Backward was requested from a non-scalar output.
    NonScalarLoss {
        /// Shape of the output the caller tried to differentiate.
        shape: Vec<usize>,
    },
    /// A numeric-domain failure (e.g. `ln` of a non-positive value when
    /// `strict` checking is enabled).
    NumericDomain {
        /// Operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch between {lhs:?} and {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape volume {expected}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "{op}: expected rank {expected}, got {actual}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from:?} to {to:?}: element counts differ")
            }
            TensorError::EmptyInput { op } => write!(f, "{op}: empty input"),
            TensorError::UnknownVariable { id } => {
                write!(f, "unknown autograd variable id {id}")
            }
            TensorError::NonScalarLoss { shape } => {
                write!(f, "backward requires a scalar loss, got shape {shape:?}")
            }
            TensorError::NumericDomain { op } => write!(f, "{op}: numeric domain error"),
        }
    }
}

impl std::error::Error for TensorError {}
