//! Neural-network building blocks: linear layers and multi-layer
//! perceptrons.
//!
//! The paper's evaluation uses "a seven-layer DNN" policy (§7.1); [`Mlp`]
//! is that policy's implementation here. Modules own their parameters as
//! plain [`Tensor`]s; to train, a module is *bound* to a [`Tape`], which
//! registers the parameters as differentiable variables for one training
//! step. Inference-only paths ([`Mlp::infer`]) skip the tape entirely —
//! this mirrors the original system, where actor fragments run policy
//! inference without building a gradient graph.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::autograd::{Gradients, Tape, Var};
use crate::init;
use crate::ops;
use crate::tensor::Tensor;
use crate::Result;

/// Activation functions supported by [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no activation).
    Linear,
}

impl Activation {
    fn apply_var(self, x: &Var) -> Var {
        match self {
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Linear => x.clone(),
        }
    }

    fn apply_tensor(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => ops::relu(x),
            Activation::Tanh => ops::tanh(x),
            Activation::Sigmoid => ops::sigmoid(x),
            Activation::Linear => x.clone(),
        }
    }

    /// The fused-kernel selector applying the same scalar function.
    fn fused(self) -> ops::Act {
        match self {
            Activation::Relu => ops::Act::Relu,
            Activation::Tanh => ops::Act::Tanh,
            Activation::Sigmoid => ops::Act::Sigmoid,
            Activation::Linear => ops::Act::Linear,
        }
    }
}

/// A fully-connected layer `y = x·W + b` with `W: [in, out]`, `b: [out]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight matrix, `[fan_in, fan_out]`.
    pub w: Tensor,
    /// Bias vector, `[fan_out]`.
    pub b: Tensor,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        Linear { w: init::xavier_uniform(fan_in, fan_out, rng), b: Tensor::zeros(&[fan_out]) }
    }

    /// Input feature count.
    pub fn fan_in(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output feature count.
    pub fn fan_out(&self) -> usize {
        self.w.shape()[1]
    }

    /// Forward pass without gradients: `x: [batch, in] → [batch, out]`.
    ///
    /// With fusion on ([`crate::par::fusion_enabled`]) this runs the
    /// one-pass fused kernel; the two paths are bit-identical.
    pub fn infer(&self, x: &Tensor) -> Result<Tensor> {
        if crate::par::fusion_enabled() {
            ops::linear_act(x, &self.w, &self.b, ops::Act::Linear)
        } else {
            ops::add(&ops::matmul(x, &self.w)?, &self.b)
        }
    }
}

/// A multi-layer perceptron.
///
/// Hidden layers share one activation; the output layer has its own
/// (usually [`Activation::Linear`] for logits/values).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// The stack of layers, input-most first.
    pub layers: Vec<Linear>,
    /// Activation applied after every hidden layer.
    pub hidden_activation: Activation,
    /// Activation applied after the final layer.
    pub output_activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[obs, 64, 64, act]`.
    ///
    /// `sizes` must have at least two entries (input and output width).
    pub fn new(
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least input and output widths");
        let layers = sizes.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Mlp { layers, hidden_activation, output_activation }
    }

    /// The seven-layer policy network of the paper's evaluation (§7.1):
    /// five hidden layers of `hidden` units between input and output.
    pub fn seven_layer(obs_dim: usize, out_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let sizes = [obs_dim, hidden, hidden, hidden, hidden, hidden, out_dim];
        Mlp::new(&sizes, Activation::Tanh, Activation::Linear, rng)
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::fan_in)
    }

    /// Output feature count.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::fan_out)
    }

    /// Flat list of parameter tensors, in a stable order (`w0, b0, w1, …`).
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| [&l.w, &l.b]).collect()
    }

    /// Mutable flat list of parameter tensors, same order as [`Mlp::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(|l| [&mut l.w, &mut l.b]).collect()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Forward pass without gradients: `[batch, in] → [batch, out]`.
    ///
    /// With fusion on, each layer runs as one fused
    /// matmul+bias+activation pass and the previous layer's
    /// intermediate is recycled straight back to the buffer pool —
    /// bit-identical to the unfused chain.
    pub fn infer(&self, x: &Tensor) -> Result<Tensor> {
        let last = self.layers.len() - 1;
        if crate::par::fusion_enabled() {
            let mut h: Option<Tensor> = None;
            for (i, layer) in self.layers.iter().enumerate() {
                let act = if i == last { self.output_activation } else { self.hidden_activation };
                let next =
                    ops::linear_act(h.as_ref().unwrap_or(x), &layer.w, &layer.b, act.fused())?;
                if let Some(dead) = h.replace(next) {
                    dead.recycle();
                }
            }
            return Ok(h.unwrap_or_else(|| x.clone()));
        }
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.infer(&h)?;
            let act = if i == last { self.output_activation } else { self.hidden_activation };
            h = act.apply_tensor(&h);
        }
        Ok(h)
    }

    /// Registers the parameters on `tape` for one differentiable step.
    pub fn bind(&self, tape: &Tape) -> MlpBinding {
        let params = self
            .layers
            .iter()
            .flat_map(|l| [tape.var(l.w.clone()), tape.var(l.b.clone())])
            .collect();
        MlpBinding {
            params,
            hidden_activation: self.hidden_activation,
            output_activation: self.output_activation,
        }
    }

    /// Overwrites this module's parameters from another module of the same
    /// architecture (MSRL's policy-weight synchronisation between actor and
    /// learner fragments).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the architectures differ.
    pub fn load_from(&mut self, other: &Mlp) -> Result<()> {
        if self.layers.len() != other.layers.len() {
            return Err(crate::TensorError::RankMismatch {
                op: "load_from",
                expected: self.layers.len(),
                actual: other.layers.len(),
            });
        }
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            if dst.w.shape() != src.w.shape() || dst.b.shape() != src.b.shape() {
                return Err(crate::TensorError::ShapeMismatch {
                    op: "load_from",
                    lhs: dst.w.shape().to_vec(),
                    rhs: src.w.shape().to_vec(),
                });
            }
            dst.w = src.w.clone();
            dst.b = src.b.clone();
        }
        Ok(())
    }

    /// Serialises all parameters into one flat vector (the wire format used
    /// by weight-synchronisation collectives).
    pub fn flatten_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for p in self.params() {
            out.extend_from_slice(p.data());
        }
        out
    }

    /// Loads parameters from a flat vector produced by
    /// [`Mlp::flatten_params`] on an identically-shaped module.
    ///
    /// # Errors
    ///
    /// Returns a length error if `flat` has the wrong number of values.
    pub fn unflatten_params(&mut self, flat: &[f32]) -> Result<()> {
        if flat.len() != self.num_params() {
            return Err(crate::TensorError::LengthMismatch {
                expected: self.num_params(),
                actual: flat.len(),
            });
        }
        let mut offset = 0;
        for p in self.params_mut() {
            let n = p.len();
            p.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        Ok(())
    }

    /// Packs every layer's weight into the kernel tier's panel layout
    /// for repeated batched inference ([`PackedMlp::infer`]).
    ///
    /// One `pack_b` per layer, paid once per weight version and
    /// amortized over every forward that follows — the batched-rollout
    /// analogue of the interpreter's hot-plan tier-up. The caller owns
    /// invalidation: a [`PackedMlp`] is a snapshot of the weights at
    /// pack time and must be rebuilt after any parameter update.
    pub fn pack(&self) -> PackedMlp {
        let layers = self
            .layers
            .iter()
            .map(|l| {
                let (k, n) = (l.fan_in(), l.fan_out());
                (crate::kernels::pack_b(l.w.data(), k, n), l.b.clone())
            })
            .collect();
        PackedMlp {
            layers,
            hidden_activation: self.hidden_activation,
            output_activation: self.output_activation,
        }
    }
}

/// An inference-only [`Mlp`] snapshot whose weights are pre-packed into
/// the kernel tier's cache-blocked panels.
///
/// [`PackedMlp::infer`] mirrors the fused [`Mlp::infer`] loop exactly —
/// same per-layer [`ops::linear_act_prepacked`] accumulation order, same
/// intermediate recycling — so outputs are bit-identical to the plain
/// module the snapshot was packed from.
#[derive(Debug)]
pub struct PackedMlp {
    layers: Vec<(crate::kernels::PackedB, Tensor)>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl PackedMlp {
    /// Forward pass over the packed panels: `[batch, in] → [batch, out]`.
    pub fn infer(&self, x: &Tensor) -> Result<Tensor> {
        let last = self.layers.len() - 1;
        let mut h: Option<Tensor> = None;
        for (i, (wp, b)) in self.layers.iter().enumerate() {
            let act = if i == last { self.output_activation } else { self.hidden_activation };
            let next = ops::linear_act_prepacked(h.as_ref().unwrap_or(x), wp, b, act.fused())?;
            if let Some(dead) = h.replace(next) {
                dead.recycle();
            }
        }
        Ok(h.unwrap_or_else(|| x.clone()))
    }
}

/// An [`Mlp`] whose parameters are live variables on a tape.
pub struct MlpBinding {
    params: Vec<Var>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl MlpBinding {
    /// Differentiable forward pass.
    ///
    /// With fusion on, each layer records a single fused
    /// [`Var::linear`] node (one output traversal, one tape node)
    /// instead of the matmul → add → activation triple; values and
    /// gradients are bit-identical either way.
    pub fn forward(&self, x: &Var) -> Result<Var> {
        let mut h = x.clone();
        let n_layers = self.params.len() / 2;
        let fused = crate::par::fusion_enabled();
        for i in 0..n_layers {
            let w = &self.params[2 * i];
            let b = &self.params[2 * i + 1];
            let act =
                if i == n_layers - 1 { self.output_activation } else { self.hidden_activation };
            h = if fused {
                h.linear(w, b, act.fused())?
            } else {
                act.apply_var(&h.matmul(w)?.add(b)?)
            };
        }
        Ok(h)
    }

    /// The bound parameter variables, in [`Mlp::params`] order.
    pub fn param_vars(&self) -> &[Var] {
        &self.params
    }

    /// Extracts this module's gradients from a backward pass, in
    /// [`Mlp::params`] order. Parameters that did not influence the loss
    /// get zero gradients.
    pub fn grads(&self, grads: &Gradients) -> Vec<Tensor> {
        self.params.iter().map(|p| grads.get_or_zeros(p)).collect()
    }

    /// Like [`Mlp::grads`], but moves the gradients out instead of
    /// cloning them — each parameter's gradient is owned by exactly one
    /// module, so learners extract without a copy.
    pub fn take_grads(&self, grads: &mut Gradients) -> Vec<Tensor> {
        self.params.iter().map(|p| grads.take_or_zeros(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn infer_shapes() {
        let mut r = rng(0);
        let mlp = Mlp::new(&[4, 8, 2], Activation::Tanh, Activation::Linear, &mut r);
        let x = Tensor::zeros(&[5, 4]);
        let y = mlp.infer(&x).unwrap();
        assert_eq!(y.shape(), &[5, 2]);
    }

    #[test]
    fn seven_layer_has_seven_layers() {
        let mut r = rng(0);
        let mlp = Mlp::seven_layer(17, 6, 64, &mut r);
        // Six linear layers = seven "layers" of units counting input.
        assert_eq!(mlp.layers.len(), 6);
        assert_eq!(mlp.input_dim(), 17);
        assert_eq!(mlp.output_dim(), 6);
    }

    #[test]
    fn bound_forward_matches_infer() {
        let mut r = rng(3);
        let mlp = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Linear, &mut r);
        let x = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.5, 0.5, -0.5], &[2, 3]).unwrap();
        let plain = mlp.infer(&x).unwrap();
        let tape = Tape::new();
        let binding = mlp.bind(&tape);
        let traced = binding.forward(&tape.var(x)).unwrap().value();
        for (a, b) in plain.data().iter().zip(traced.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fusion_paths_are_bit_identical() {
        let mut r = rng(7);
        let mlp = Mlp::new(&[4, 8, 8, 2], Activation::Tanh, Activation::Linear, &mut r);
        let x =
            Tensor::from_vec((0..12).map(|i| (i as f32 * 0.3).sin()).collect(), &[3, 4]).unwrap();
        let y_on = crate::par::with_fusion(true, || mlp.infer(&x).unwrap());
        let y_off = crate::par::with_fusion(false, || mlp.infer(&x).unwrap());
        assert_eq!(y_on.data(), y_off.data(), "fused infer must be bit-identical");
        let run = |on: bool| {
            crate::par::with_fusion(on, || {
                let tape = Tape::new();
                let binding = mlp.bind(&tape);
                let loss = binding.forward(&tape.var(x.clone())).unwrap().square().sum();
                let grads = tape.backward(&loss).unwrap();
                (loss.value(), binding.grads(&grads))
            })
        };
        let (loss_on, grads_on) = run(true);
        let (loss_off, grads_off) = run(false);
        assert_eq!(loss_on.data(), loss_off.data());
        for (a, b) in grads_on.iter().zip(&grads_off) {
            assert_eq!(a.data(), b.data(), "fused grads must be bit-identical");
        }
    }

    #[test]
    fn packed_infer_is_bit_identical_to_plain_infer() {
        let mut r = rng(11);
        let mlp = Mlp::new(&[6, 32, 32, 3], Activation::Tanh, Activation::Linear, &mut r);
        let packed = mlp.pack();
        for batch in [1usize, 7, 33] {
            let x = Tensor::from_vec(
                (0..batch * 6).map(|i| (i as f32 * 0.17).cos()).collect(),
                &[batch, 6],
            )
            .unwrap();
            let plain = crate::par::with_fusion(true, || mlp.infer(&x).unwrap());
            let fast = packed.infer(&x).unwrap();
            assert_eq!(plain.data(), fast.data(), "batch {batch} diverged");
        }
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let mut r = rng(5);
        let mlp = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Linear, &mut r);
        let tape = Tape::new();
        let binding = mlp.bind(&tape);
        let x = tape.var(Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap());
        let loss = binding.forward(&x).unwrap().square().sum();
        let grads = tape.backward(&loss).unwrap();
        let gs = binding.grads(&grads);
        assert_eq!(gs.len(), 4);
        assert!(gs.iter().any(|g| g.data().iter().any(|v| *v != 0.0)));
        for (g, p) in gs.iter().zip(mlp.params()) {
            assert_eq!(g.shape(), p.shape());
        }
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let mut r = rng(9);
        let src = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, &mut r);
        let mut dst = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, &mut r);
        assert_ne!(src.flatten_params(), dst.flatten_params());
        dst.unflatten_params(&src.flatten_params()).unwrap();
        assert_eq!(src.flatten_params(), dst.flatten_params());
        assert!(dst.unflatten_params(&[0.0]).is_err());
    }

    #[test]
    fn load_from_copies_weights() {
        let mut r = rng(9);
        let src = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, &mut r);
        let mut dst = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, &mut r);
        dst.load_from(&src).unwrap();
        assert_eq!(dst.flatten_params(), src.flatten_params());
        let mut wrong = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Linear, &mut r);
        assert!(wrong.load_from(&src).is_err());
    }
}
