//! Execution-backend selection and scoped-thread parallel helpers.
//!
//! The tensor kernels in [`crate::ops`] run under one of two backends:
//!
//! * [`Backend::Scalar`] — single-threaded reference kernels; the
//!   bit-exact baseline every other backend is validated against.
//! * [`Backend::Threaded`] — the same kernels partitioned over OS
//!   threads with `std::thread::scope`. Partitioning is always along
//!   *output* regions, so no two threads write the same element and the
//!   per-element accumulation order matches the scalar backend (matmul
//!   and axis reductions are bit-exact across backends; whole-tensor
//!   sums split per chunk and agree to rounding).
//!
//! The backend is process-global: resolved once from the
//! `MSRL_BACKEND` environment variable (`scalar` | `threaded`,
//! defaulting to `threaded`) and overridable programmatically with
//! [`set_backend`]. Worker count comes from `MSRL_THREADS` when set
//! (useful to exercise multi-chunk paths on small machines) and
//! otherwise from [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicU8, Ordering};

/// Which execution strategy the tensor kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference kernels.
    Scalar,
    /// Kernels partitioned across scoped OS threads.
    Threaded,
}

const UNSET: u8 = 0;
const SCALAR: u8 = 1;
const THREADED: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(UNSET);

/// Returns the active global backend, resolving `MSRL_BACKEND` on first
/// use.
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        SCALAR => Backend::Scalar,
        THREADED => Backend::Threaded,
        _ => {
            let resolved = match std::env::var("MSRL_BACKEND").as_deref() {
                Ok("scalar") | Ok("Scalar") | Ok("SCALAR") => Backend::Scalar,
                _ => Backend::Threaded,
            };
            set_backend(resolved);
            resolved
        }
    }
}

/// Overrides the global backend (takes precedence over `MSRL_BACKEND`).
pub fn set_backend(b: Backend) {
    let raw = match b {
        Backend::Scalar => SCALAR,
        Backend::Threaded => THREADED,
    };
    BACKEND.store(raw, Ordering::Relaxed);
}

/// Runs `f` with the given backend active, then restores the previous
/// one. Intended for tests and benchmarks that compare backends; the
/// switch is process-global, so concurrent callers of this function
/// race (the test suites that use it run their comparisons within one
/// test body).
pub fn with_backend<T>(b: Backend, f: impl FnOnce() -> T) -> T {
    let prev = backend();
    set_backend(b);
    let out = f();
    set_backend(prev);
    out
}

const FUSION_OFF: u8 = 1;
const FUSION_ON: u8 = 2;

static FUSION: AtomicU8 = AtomicU8::new(UNSET);

/// Whether fused kernels and graph-compiler optimization passes are
/// active, resolving `MSRL_FUSION` on first use (default: on).
///
/// When on, `nn` routes linear layers through the fused
/// `MatMul+bias+activation` kernel ([`crate::ops::linear_act`]) and the
/// `msrl-core` graph compiler runs its operator-fusion passes. Both
/// paths are bit-identical to the unfused reference; `MSRL_FUSION=0`
/// restores the separate-operator execution exactly.
pub fn fusion_enabled() -> bool {
    match FUSION.load(Ordering::Relaxed) {
        FUSION_ON => true,
        FUSION_OFF => false,
        _ => {
            let resolved = !matches!(
                std::env::var("MSRL_FUSION").as_deref(),
                Ok("0") | Ok("off") | Ok("false") | Ok("no")
            );
            set_fusion(resolved);
            resolved
        }
    }
}

/// Overrides the global fusion gate (takes precedence over `MSRL_FUSION`).
pub fn set_fusion(on: bool) {
    FUSION.store(if on { FUSION_ON } else { FUSION_OFF }, Ordering::Relaxed);
}

/// Runs `f` with the fusion gate forced to `on`, then restores the
/// previous setting. As with [`with_backend`], the switch is
/// process-global; comparison tests run both sides within one test body.
pub fn with_fusion<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = fusion_enabled();
    set_fusion(on);
    let out = f();
    set_fusion(prev);
    out
}

/// Worker-thread count for the threaded backend.
///
/// `MSRL_THREADS` wins when parseable and non-zero; otherwise the
/// host's available parallelism. Re-read on every call so tests can
/// force multi-chunk execution regardless of initialization order.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("MSRL_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Elements below which threaded kernels stay serial: thread spawn and
/// join cost more than the work they would cover.
pub const PAR_MIN_ELEMS: usize = 16 * 1024;

/// Multiply–add count below which matmul stays serial.
pub const PAR_MIN_FLOPS: usize = 64 * 64 * 64;

/// True when the active backend wants `work_items` split over threads.
///
/// `MSRL_PAR_MIN`, when set, overrides `serial_below`; tests set it to 1
/// so tiny inputs still exercise the multi-chunk code paths.
pub fn should_parallelize(work_items: usize, serial_below: usize) -> bool {
    let cutoff =
        std::env::var("MSRL_PAR_MIN").ok().and_then(|v| v.parse().ok()).unwrap_or(serial_below);
    backend() == Backend::Threaded && work_items >= cutoff && thread_count() > 1
}

/// Splits `out` into one contiguous chunk per worker and runs
/// `f(offset_of_chunk, chunk)` for each on scoped threads.
///
/// Chunk boundaries depend only on `out.len()` and the worker count, so
/// results are deterministic for a fixed configuration. With one worker
/// this degenerates to a plain call on the full slice.
pub fn fill_chunks<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let workers = thread_count().min(out.len().max(1));
    let chunk_len = out.len().div_ceil(workers);
    if workers <= 1 || chunk_len == 0 {
        f(0, out);
        return;
    }
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx * chunk_len, chunk));
        }
    });
}

/// As [`fill_chunks`], but chunk boundaries are multiples of `align`
/// elements — used when `out` is made of logical records (matrix rows,
/// broadcast runs) that must not straddle two workers.
pub fn fill_chunks_aligned<T, F>(out: &mut [T], align: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align > 0 && out.len().is_multiple_of(align), "output must be whole records");
    let records = out.len() / align;
    let workers = thread_count().min(records.max(1));
    let chunk_len = records.div_ceil(workers) * align;
    if workers <= 1 || chunk_len == 0 {
        f(0, out);
        return;
    }
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx * chunk_len, chunk));
        }
    });
}

/// Partitions `0..n` into one contiguous range per worker and runs
/// `f(range)` for each on scoped threads, collecting the per-range
/// results in range order.
pub fn map_ranges<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let workers = thread_count().min(n.max(1));
    let chunk = n.div_ceil(workers);
    if workers <= 1 || chunk == 0 {
        return vec![f(0..n)];
    }
    let starts: Vec<usize> = (0..workers).map(|w| w * chunk).filter(|&s| s < n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = starts
            .iter()
            .map(|&s| {
                let f = &f;
                scope.spawn(move || f(s..(s + chunk).min(n)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker must not panic")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_chunks_covers_every_slot() {
        std::env::set_var("MSRL_THREADS", "4");
        let mut out = vec![0usize; 103];
        fill_chunks(&mut out, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = offset + i;
            }
        });
        std::env::remove_var("MSRL_THREADS");
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn map_ranges_preserves_order() {
        std::env::set_var("MSRL_THREADS", "3");
        let sums = map_ranges(100, |r| r.sum::<usize>());
        std::env::remove_var("MSRL_THREADS");
        assert_eq!(sums.iter().sum::<usize>(), 4950);
    }

    #[test]
    fn backend_override_round_trips() {
        let prev = backend();
        let inside = with_backend(Backend::Scalar, backend);
        assert_eq!(inside, Backend::Scalar);
        assert_eq!(backend(), prev);
    }

    #[test]
    fn fusion_override_round_trips() {
        let prev = fusion_enabled();
        let inside = with_fusion(false, fusion_enabled);
        assert!(!inside);
        assert_eq!(fusion_enabled(), prev);
        let inside = with_fusion(true, fusion_enabled);
        assert!(inside);
        assert_eq!(fusion_enabled(), prev);
    }
}
