//! Execution-backend selection and scoped-thread parallel helpers.
//!
//! The tensor kernels in [`crate::ops`] run under one of two backends:
//!
//! * [`Backend::Scalar`] — single-threaded reference kernels; the
//!   bit-exact baseline every other backend is validated against.
//! * [`Backend::Threaded`] — the same kernels partitioned over OS
//!   threads with `std::thread::scope`. Partitioning is always along
//!   *output* regions, so no two threads write the same element and the
//!   per-element accumulation order matches the scalar backend (matmul
//!   and axis reductions are bit-exact across backends; whole-tensor
//!   sums split per chunk and agree to rounding).
//!
//! The backend is process-global: resolved once from the
//! `MSRL_BACKEND` environment variable (`scalar` | `threaded`,
//! defaulting to `threaded`) and overridable programmatically with
//! [`set_backend`]. Worker count comes from `MSRL_THREADS` when set
//! (useful to exercise multi-chunk paths on small machines) and
//! otherwise from [`std::thread::available_parallelism`]; both are
//! resolved once and cached, so the per-op dispatch check
//! ([`should_parallelize`]) costs a couple of atomic loads — on a
//! one-thread host the threaded backend therefore routes straight to
//! the serial kernels with no per-call environment or syscall overhead.
//! Tests override the cached values with [`with_threads`] /
//! [`with_par_min`] instead of mutating the environment.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Which execution strategy the tensor kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference kernels.
    Scalar,
    /// Kernels partitioned across scoped OS threads.
    Threaded,
}

const UNSET: u8 = 0;
const SCALAR: u8 = 1;
const THREADED: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(UNSET);

/// Returns the active global backend, resolving `MSRL_BACKEND` on first
/// use.
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        SCALAR => Backend::Scalar,
        THREADED => Backend::Threaded,
        _ => {
            let resolved = match std::env::var("MSRL_BACKEND").as_deref() {
                Ok("scalar") | Ok("Scalar") | Ok("SCALAR") => Backend::Scalar,
                _ => Backend::Threaded,
            };
            set_backend(resolved);
            resolved
        }
    }
}

/// Overrides the global backend (takes precedence over `MSRL_BACKEND`).
pub fn set_backend(b: Backend) {
    let raw = match b {
        Backend::Scalar => SCALAR,
        Backend::Threaded => THREADED,
    };
    BACKEND.store(raw, Ordering::Relaxed);
}

/// Runs `f` with the given backend active, then restores the previous
/// one. Intended for tests and benchmarks that compare backends; the
/// switch is process-global, so concurrent callers of this function
/// race (the test suites that use it run their comparisons within one
/// test body).
pub fn with_backend<T>(b: Backend, f: impl FnOnce() -> T) -> T {
    let prev = backend();
    set_backend(b);
    let out = f();
    set_backend(prev);
    out
}

const FUSION_OFF: u8 = 1;
const FUSION_ON: u8 = 2;

static FUSION: AtomicU8 = AtomicU8::new(UNSET);

/// Whether fused kernels and graph-compiler optimization passes are
/// active, resolving `MSRL_FUSION` on first use (default: on).
///
/// When on, `nn` routes linear layers through the fused
/// `MatMul+bias+activation` kernel ([`crate::ops::linear_act`]) and the
/// `msrl-core` graph compiler runs its operator-fusion passes. Both
/// paths are bit-identical to the unfused reference; `MSRL_FUSION=0`
/// restores the separate-operator execution exactly.
pub fn fusion_enabled() -> bool {
    match FUSION.load(Ordering::Relaxed) {
        FUSION_ON => true,
        FUSION_OFF => false,
        _ => {
            let resolved = !matches!(
                std::env::var("MSRL_FUSION").as_deref(),
                Ok("0") | Ok("off") | Ok("false") | Ok("no")
            );
            set_fusion(resolved);
            resolved
        }
    }
}

/// Overrides the global fusion gate (takes precedence over `MSRL_FUSION`).
pub fn set_fusion(on: bool) {
    FUSION.store(if on { FUSION_ON } else { FUSION_OFF }, Ordering::Relaxed);
}

/// Runs `f` with the fusion gate forced to `on`, then restores the
/// previous setting. As with [`with_backend`], the switch is
/// process-global; comparison tests run both sides within one test body.
pub fn with_fusion<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = fusion_enabled();
    set_fusion(on);
    let out = f();
    set_fusion(prev);
    out
}

/// The kernel tier stores `level + 1` so `UNSET` (0) can mean
/// "resolve `MSRL_TIER` on first use".
static TIER: AtomicU8 = AtomicU8::new(UNSET);

fn resolve_tier_level() -> u8 {
    match TIER.load(Ordering::Relaxed) {
        UNSET => {
            let resolved = match std::env::var("MSRL_TIER").as_deref() {
                Ok("0") | Ok("off") | Ok("false") | Ok("no") => 0,
                Ok("2") | Ok("fast") | Ok("fastmath") => 2,
                _ => 1,
            };
            set_tier_level(resolved);
            resolved
        }
        stored => stored - 1,
    }
}

/// The active kernel-tier level, resolving `MSRL_TIER` on first use
/// (default: 1).
///
/// * **0** — naive reference kernels only.
/// * **1** — bit-identical tiered kernels (packed matmul microkernels,
///   fused-transpose backward products, gathered SIMD reductions, hot
///   cached-plan promotion). Same per-element accumulation order as
///   level 0, so results are bit-identical.
/// * **2** — everything in level 1 *plus* the opt-in fast-math kernels
///   in [`crate::fastmath`] (vectorized polynomial `exp`/`tanh`/
///   `sigmoid`). Not bit-identical to levels 0/1; gated by tolerance
///   tests instead. Never the default — it must be requested with
///   `MSRL_TIER=2` (or `fast`/`fastmath`) or [`set_tier_level`].
///
/// Ops without a fast-math kernel fall back to their level-1 (or
/// level-0) path automatically under level 2.
pub fn tier_level() -> u8 {
    resolve_tier_level()
}

/// Whether the hot-plan kernel tier is active (tier level ≥ 1),
/// resolving `MSRL_TIER` on first use (default: on).
///
/// When on, large matmuls route through the packed register-tiled
/// microkernels in [`crate::kernels`], autograd backward passes use the
/// fused-transpose products ([`crate::ops::matmul_at`] /
/// [`crate::ops::matmul_bt`]), and the `msrl-core` interpreter promotes
/// hot cached plans to pre-packed tiered execution. Every tiered path
/// preserves the naive kernels' per-element accumulation order, so
/// results are bit-identical; `MSRL_TIER=0` restores the untiered
/// execution exactly. See [`tier_level`] for the opt-in fast-math
/// level 2.
pub fn tier_enabled() -> bool {
    resolve_tier_level() >= 1
}

/// Whether the opt-in fast-math tier (level 2) is active. Paths that
/// have a fast-math kernel consult this; everything else ignores it.
pub fn fastmath_enabled() -> bool {
    resolve_tier_level() >= 2
}

/// Overrides the global kernel-tier gate (takes precedence over
/// `MSRL_TIER`). `true` selects level 1, `false` level 0; use
/// [`set_tier_level`] to request the fast-math level 2.
pub fn set_tier(on: bool) {
    set_tier_level(if on { 1 } else { 0 });
}

/// Overrides the global kernel-tier level (takes precedence over
/// `MSRL_TIER`). Levels above 2 clamp to 2.
pub fn set_tier_level(level: u8) {
    TIER.store(level.min(2) + 1, Ordering::Relaxed);
}

/// Runs `f` with the kernel-tier gate forced to `on`, then restores the
/// previous setting (including a fast-math level 2, which round-trips
/// intact). Process-global, like [`with_backend`].
pub fn with_tier<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = resolve_tier_level();
    set_tier(on);
    let out = f();
    set_tier_level(prev);
    out
}

/// Runs `f` with the kernel-tier level forced to `level`, then restores
/// the previous setting. Process-global, like [`with_backend`].
pub fn with_tier_level<T>(level: u8, f: impl FnOnce() -> T) -> T {
    let prev = resolve_tier_level();
    set_tier_level(level);
    let out = f();
    set_tier_level(prev);
    out
}

/// Programmatic worker-count override; 0 means "no override".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// The environment-resolved worker count, computed once.
static THREADS_RESOLVED: OnceLock<usize> = OnceLock::new();

/// Worker-thread count for the threaded backend.
///
/// A [`set_threads`] override wins; otherwise `MSRL_THREADS` (when
/// parseable and non-zero) or the host's available parallelism,
/// resolved once and cached — the per-call cost is one atomic load.
pub fn thread_count() -> usize {
    let ov = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if ov > 0 {
        return ov;
    }
    *THREADS_RESOLVED.get_or_init(|| {
        std::env::var("MSRL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
    })
}

/// Overrides the worker count (`None` restores `MSRL_THREADS` / host
/// parallelism). Takes the role the mutable `MSRL_THREADS` environment
/// variable used to play in tests.
pub fn set_threads(n: Option<usize>) {
    THREADS_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Runs `f` with the worker count forced to `n`, then restores the
/// previous override. Process-global, like [`with_backend`].
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = THREADS_OVERRIDE.swap(n, Ordering::Relaxed);
    let out = f();
    THREADS_OVERRIDE.store(prev, Ordering::Relaxed);
    out
}

/// Elements below which threaded kernels stay serial: thread spawn and
/// join cost more than the work they would cover.
pub const PAR_MIN_ELEMS: usize = 16 * 1024;

/// Multiply–add count below which matmul stays serial.
pub const PAR_MIN_FLOPS: usize = 64 * 64 * 64;

/// Programmatic parallel-cutoff override; `usize::MAX` means "none".
static PAR_MIN_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);
/// The environment-resolved cutoff (`None` when `MSRL_PAR_MIN` is
/// unset), computed once.
static PAR_MIN_RESOLVED: OnceLock<Option<usize>> = OnceLock::new();

/// Overrides every kernel's serial-below cutoff (`None` restores the
/// per-kernel defaults / `MSRL_PAR_MIN`). Tests set it to 1 so tiny
/// inputs still exercise the multi-chunk code paths.
pub fn set_par_min(n: Option<usize>) {
    PAR_MIN_OVERRIDE.store(n.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// Runs `f` with the parallel cutoff forced to `n`, then restores the
/// previous override. Process-global, like [`with_backend`].
pub fn with_par_min<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = PAR_MIN_OVERRIDE.swap(n, Ordering::Relaxed);
    let out = f();
    PAR_MIN_OVERRIDE.store(prev, Ordering::Relaxed);
    out
}

/// True when the active backend wants `work_items` split over threads.
///
/// Checks are ordered cheapest-exit-first: the backend and the cached
/// worker count are single atomic loads, so on a scalar backend or a
/// one-thread host this is effectively free — the threaded backend with
/// one worker dispatches straight to the serial kernels. A
/// [`set_par_min`] override (or `MSRL_PAR_MIN`, resolved once) replaces
/// `serial_below`.
pub fn should_parallelize(work_items: usize, serial_below: usize) -> bool {
    if backend() != Backend::Threaded || thread_count() <= 1 {
        return false;
    }
    let ov = PAR_MIN_OVERRIDE.load(Ordering::Relaxed);
    let cutoff = if ov != usize::MAX {
        ov
    } else {
        PAR_MIN_RESOLVED
            .get_or_init(|| std::env::var("MSRL_PAR_MIN").ok().and_then(|v| v.parse().ok()))
            .unwrap_or(serial_below)
    };
    work_items >= cutoff
}

/// Splits `out` into one contiguous chunk per worker and runs
/// `f(offset_of_chunk, chunk)` for each on scoped threads.
///
/// Chunk boundaries depend only on `out.len()` and the worker count, so
/// results are deterministic for a fixed configuration. With one worker
/// this degenerates to a plain call on the full slice.
pub fn fill_chunks<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let workers = thread_count().min(out.len().max(1));
    let chunk_len = out.len().div_ceil(workers);
    if workers <= 1 || chunk_len == 0 {
        f(0, out);
        return;
    }
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx * chunk_len, chunk));
        }
    });
}

/// As [`fill_chunks`], but chunk boundaries are multiples of `align`
/// elements — used when `out` is made of logical records (matrix rows,
/// broadcast runs) that must not straddle two workers.
pub fn fill_chunks_aligned<T, F>(out: &mut [T], align: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align > 0 && out.len().is_multiple_of(align), "output must be whole records");
    let records = out.len() / align;
    let workers = thread_count().min(records.max(1));
    let chunk_len = records.div_ceil(workers) * align;
    if workers <= 1 || chunk_len == 0 {
        f(0, out);
        return;
    }
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx * chunk_len, chunk));
        }
    });
}

/// Partitions `0..n` into one contiguous range per worker and runs
/// `f(range)` for each on scoped threads, collecting the per-range
/// results in range order.
pub fn map_ranges<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let workers = thread_count().min(n.max(1));
    let chunk = n.div_ceil(workers);
    if workers <= 1 || chunk == 0 {
        return vec![f(0..n)];
    }
    let starts: Vec<usize> = (0..workers).map(|w| w * chunk).filter(|&s| s < n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = starts
            .iter()
            .map(|&s| {
                let f = &f;
                scope.spawn(move || f(s..(s + chunk).min(n)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker must not panic")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_chunks_covers_every_slot() {
        let mut out = vec![0usize; 103];
        with_threads(4, || {
            fill_chunks(&mut out, |offset, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = offset + i;
                }
            });
        });
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn map_ranges_preserves_order() {
        let sums = with_threads(3, || map_ranges(100, |r| r.sum::<usize>()));
        assert_eq!(sums.iter().sum::<usize>(), 4950);
    }

    #[test]
    fn thread_and_par_min_overrides_round_trip() {
        with_threads(7, || assert_eq!(thread_count(), 7));
        with_backend(Backend::Threaded, || {
            with_threads(4, || {
                with_par_min(1, || assert!(should_parallelize(2, PAR_MIN_ELEMS)));
                with_par_min(1000, || assert!(!should_parallelize(2, 1)));
            });
            // One effective worker: straight to the serial kernels, no
            // matter how small the cutoff.
            with_threads(1, || {
                with_par_min(1, || assert!(!should_parallelize(1 << 20, 1)));
            });
        });
    }

    #[test]
    fn tier_override_round_trips() {
        let prev = tier_enabled();
        let inside = with_tier(false, tier_enabled);
        assert!(!inside);
        assert_eq!(tier_enabled(), prev);
        let inside = with_tier(true, tier_enabled);
        assert!(inside);
        assert_eq!(tier_enabled(), prev);
    }

    #[test]
    fn tier_level_round_trips_and_maps_to_gates() {
        let prev = tier_level();
        let inside = with_tier_level(0, || (tier_level(), tier_enabled(), fastmath_enabled()));
        assert_eq!(inside, (0, false, false));
        let inside = with_tier_level(1, || (tier_level(), tier_enabled(), fastmath_enabled()));
        assert_eq!(inside, (1, true, false));
        let inside = with_tier_level(2, || (tier_level(), tier_enabled(), fastmath_enabled()));
        assert_eq!(inside, (2, true, true));
        // Levels above 2 clamp.
        let inside = with_tier_level(7, tier_level);
        assert_eq!(inside, 2);
        assert_eq!(tier_level(), prev);
        // A boolean with_tier nested under level 2 restores level 2.
        let restored = with_tier_level(2, || {
            with_tier(false, fastmath_enabled);
            tier_level()
        });
        assert_eq!(restored, 2);
        assert_eq!(tier_level(), prev);
    }

    #[test]
    fn backend_override_round_trips() {
        let prev = backend();
        let inside = with_backend(Backend::Scalar, backend);
        assert_eq!(inside, Backend::Scalar);
        assert_eq!(backend(), prev);
    }

    #[test]
    fn fusion_override_round_trips() {
        let prev = fusion_enabled();
        let inside = with_fusion(false, fusion_enabled);
        assert!(!inside);
        assert_eq!(fusion_enabled(), prev);
        let inside = with_fusion(true, fusion_enabled);
        assert!(inside);
        assert_eq!(fusion_enabled(), prev);
    }
}
