//! The dense tensor type and its constructors/accessors.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A dense, row-major, contiguous `f32` tensor.
///
/// `Tensor` is the value type that flows along edges of MSRL's fragmented
/// dataflow graphs. It is deliberately simple — contiguous storage, no
/// views — because the FDG interpreter and the fusion pass reason about
/// whole tensors, not aliased slices.
///
/// Cloning a `Tensor` clones its buffer; the MSRL runtime moves tensors
/// between fragments instead of sharing them, mirroring how devices
/// exchange materialised buffers in the original system.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: Shape::new(&[]) }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![0.0; shape.volume()], shape }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![1.0; shape.volume()], shape }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![value; shape.volume()], shape }
    }

    /// Creates a 1-D tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Tensor { data: (0..n).map(|i| i as f32).collect(), shape: Shape::new(&[n]) }
    }

    /// The shape extents, outermost first.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object.
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Consumes the tensor, returning its storage to the thread-local
    /// buffer pool (see [`crate::alloc`]) so a later operator output of
    /// the same length skips its heap allocation.
    pub fn recycle(self) {
        crate::alloc::give(self.data);
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the tensor has more than
    /// one element.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() == 1 {
            Ok(self.data[0])
        } else {
            Err(TensorError::LengthMismatch { expected: 1, actual: self.data.len() })
        }
    }

    /// Returns the element at the given multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or any coordinate is out of range.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "at",
                expected: self.rank(),
                actual: index.len(),
            });
        }
        for (i, (&c, &d)) in index.iter().zip(self.shape.dims()).enumerate() {
            if c >= d {
                let _ = i;
                return Err(TensorError::IndexOutOfRange { index: c, len: d });
            }
        }
        let strides = self.shape.strides();
        let linear: usize = index.iter().zip(&strides).map(|(c, s)| c * s).sum();
        Ok(self.data[linear])
    }

    /// Reinterprets the buffer under a new shape with the same volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] when the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let to = Shape::new(dims);
        if to.volume() != self.shape.volume() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor { data: self.data.clone(), shape: to })
    }

    /// Row `i` of a rank-2 tensor as a new 1-D tensor.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix inputs or out-of-range rows.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { op: "row", expected: 2, actual: self.rank() });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfRange { index: i, len: rows });
        }
        Tensor::from_vec(self.data[i * cols..(i + 1) * cols].to_vec(), &[cols])
    }

    /// Whether all elements are finite (no NaN/inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item().unwrap(), 2.5);
        assert!(Tensor::zeros(&[2]).item().is_err());
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.0).data(), &[7.0, 7.0]);
    }

    #[test]
    fn at_indexes_row_major() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.at(&[1, 2]).unwrap(), 6.0);
        assert!(t.at(&[2, 0]).is_err());
        assert!(t.at(&[0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]).unwrap();
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn row_extracts_matrix_row() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(1).unwrap().data(), &[3.0, 4.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }
}
