//! Probability distributions for stochastic policies.
//!
//! Policy-gradient algorithms (PPO, MAPPO, A3C) sample actions from a
//! distribution parameterised by the policy network and differentiate the
//! log-probability of the taken action. Discrete-action environments (MPE,
//! CartPole) use [`Categorical`]; continuous-control environments
//! (HalfCheetah) use [`DiagGaussian`]. The `*_stats` functions are the
//! differentiable counterparts, used inside learner fragments.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};

use crate::autograd::Var;
use crate::ops;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// A batch of categorical distributions, one per row of a logits matrix.
#[derive(Debug, Clone)]
pub struct Categorical {
    /// Row-wise log-probabilities, `[batch, n_actions]`.
    log_probs: Tensor,
}

impl Categorical {
    /// Builds from unnormalised logits `[batch, n_actions]`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix input.
    pub fn from_logits(logits: &Tensor) -> Result<Self> {
        Ok(Categorical { log_probs: ops::log_softmax_rows(logits)? })
    }

    /// Number of distributions in the batch.
    pub fn batch(&self) -> usize {
        self.log_probs.shape()[0]
    }

    /// Number of categories.
    pub fn n_actions(&self) -> usize {
        self.log_probs.shape()[1]
    }

    /// Samples one action per row.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<usize> {
        let (m, n) = (self.batch(), self.n_actions());
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.log_probs.data()[i * n..(i + 1) * n];
            let u: f32 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            let mut chosen = n - 1;
            for (j, &lp) in row.iter().enumerate() {
                acc += lp.exp();
                if u < acc {
                    chosen = j;
                    break;
                }
            }
            out.push(chosen);
        }
        out
    }

    /// Greedy (argmax) action per row.
    pub fn mode(&self) -> Vec<usize> {
        let am = ops::argmax_rows(&self.log_probs).expect("rank-2 by construction");
        am.data().iter().map(|&v| v as usize).collect()
    }

    /// Log-probability of the given action per row, `[batch]`.
    ///
    /// # Errors
    ///
    /// Returns an error when lengths mismatch or actions are out of range.
    pub fn log_prob(&self, actions: &[usize]) -> Result<Tensor> {
        ops::select_per_row(&self.log_probs, actions)
    }

    /// Per-row entropy, `[batch]`.
    pub fn entropy(&self) -> Tensor {
        let (m, n) = (self.batch(), self.n_actions());
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.log_probs.data()[i * n..(i + 1) * n];
            out.push(-row.iter().map(|&lp| lp.exp() * lp).sum::<f32>());
        }
        Tensor::from_vec(out, &[m]).expect("length matches")
    }
}

/// Differentiable categorical log-prob and entropy over a logits variable.
///
/// Returns `(log_prob, entropy)`, each `[batch]`, with gradients flowing
/// into `logits`.
///
/// # Errors
///
/// Propagates shape errors from the softmax/selection ops.
pub fn categorical_stats(logits: &Var, actions: &[usize]) -> Result<(Var, Var)> {
    let log_sm = logits.log_softmax_rows()?;
    let log_prob = log_sm.select_per_row(actions)?;
    // entropy = -Σ_j p·log p along the action axis
    let p = log_sm.exp();
    let entropy = p.mul(&log_sm)?.sum_axis(1)?.neg();
    Ok((log_prob, entropy))
}

/// A batch of diagonal Gaussians: `mean [batch, dim]`, shared `log_std [dim]`.
#[derive(Debug, Clone)]
pub struct DiagGaussian {
    mean: Tensor,
    log_std: Tensor,
}

impl DiagGaussian {
    /// Builds from a mean matrix and a per-dimension log-std vector.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes are incompatible.
    pub fn new(mean: Tensor, log_std: Tensor) -> Result<Self> {
        if mean.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "diag_gaussian",
                expected: 2,
                actual: mean.rank(),
            });
        }
        if log_std.rank() != 1 || log_std.shape()[0] != mean.shape()[1] {
            return Err(TensorError::ShapeMismatch {
                op: "diag_gaussian",
                lhs: mean.shape().to_vec(),
                rhs: log_std.shape().to_vec(),
            });
        }
        Ok(DiagGaussian { mean, log_std })
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.mean.shape()[0]
    }

    /// Action dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.shape()[1]
    }

    /// Samples one action vector per row, `[batch, dim]`.
    pub fn sample(&self, rng: &mut StdRng) -> Tensor {
        let (m, d) = (self.batch(), self.dim());
        let mut out = Vec::with_capacity(m * d);
        for i in 0..m {
            for j in 0..d {
                let z: f32 = StandardNormal.sample(rng);
                out.push(self.mean.data()[i * d + j] + self.log_std.data()[j].exp() * z);
            }
        }
        Tensor::from_vec(out, &[m, d]).expect("length matches")
    }

    /// The distribution mean (greedy action).
    pub fn mode(&self) -> Tensor {
        self.mean.clone()
    }

    /// Log-density of `actions` (`[batch, dim]`) per row, `[batch]`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `actions` does not match the batch.
    pub fn log_prob(&self, actions: &Tensor) -> Result<Tensor> {
        if actions.shape() != self.mean.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "log_prob",
                lhs: self.mean.shape().to_vec(),
                rhs: actions.shape().to_vec(),
            });
        }
        let (m, d) = (self.batch(), self.dim());
        let ln_2pi = (2.0 * std::f32::consts::PI).ln();
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let mut lp = 0.0;
            for j in 0..d {
                let ls = self.log_std.data()[j];
                let std = ls.exp();
                let z = (actions.data()[i * d + j] - self.mean.data()[i * d + j]) / std;
                lp += -0.5 * (z * z + ln_2pi) - ls;
            }
            out.push(lp);
        }
        Tensor::from_vec(out, &[m])
    }

    /// Entropy per row (identical across the batch for shared log-std),
    /// `[batch]`.
    pub fn entropy(&self) -> Tensor {
        let ln_2pi_e = (2.0 * std::f32::consts::PI * std::f32::consts::E).ln();
        let h: f32 = self.log_std.data().iter().map(|ls| ls + 0.5 * ln_2pi_e).sum();
        Tensor::full(&[self.batch()], h)
    }
}

/// Differentiable diagonal-Gaussian log-prob and entropy.
///
/// `mean` is `[batch, dim]` on a tape; `log_std` is a `[dim]` variable on
/// the same tape; `actions` is a constant `[batch, dim]` tensor. Returns
/// `(log_prob [batch], entropy [batch])` with gradients flowing into both
/// `mean` and `log_std`.
///
/// # Errors
///
/// Propagates shape errors.
pub fn gaussian_stats(mean: &Var, log_std: &Var, actions: &Tensor) -> Result<(Var, Var)> {
    let batch = mean.shape()[0];
    let dim = mean.shape()[1];
    if actions.shape() != [batch, dim] {
        return Err(TensorError::ShapeMismatch {
            op: "gaussian_stats",
            lhs: mean.shape().to_vec(),
            rhs: actions.shape().to_vec(),
        });
    }
    let ln_2pi = (2.0 * std::f32::consts::PI).ln();
    let a = mean.constant(actions.clone());
    // z = (a - mean) / std;  log_prob = Σ_d [-0.5 z² - log_std - 0.5 ln 2π]
    let std = log_std.exp();
    let z = a.sub(mean)?.div(&std)?;
    let per_dim = z.square().mul_scalar(-0.5).sub(log_std)?.add_scalar(-0.5 * ln_2pi);
    let log_prob = per_dim.sum_axis(1)?;
    // entropy = Σ_d (log_std + 0.5 ln 2πe), replicated over the batch
    let ln_2pi_e = (2.0 * std::f32::consts::PI * std::f32::consts::E).ln();
    let ent_scalar = log_std.add_scalar(0.5 * ln_2pi_e).sum_axis(0)?;
    let ones_b = mean.constant(Tensor::ones(&[batch]));
    let ent = ones_b.mul(&ent_scalar)?;
    Ok((log_prob, ent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;
    use crate::init::rng;

    #[test]
    fn categorical_probs_normalised() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0], &[2, 3]).unwrap();
        let c = Categorical::from_logits(&logits).unwrap();
        let e = c.entropy();
        // Uniform row has entropy ln 3.
        assert!((e.data()[1] - 3.0f32.ln()).abs() < 1e-5);
        assert!(e.data()[0] < e.data()[1]);
    }

    #[test]
    fn categorical_sampling_matches_probs() {
        let logits = Tensor::from_vec(vec![0.0, 2.0], &[1, 2]).unwrap();
        let c = Categorical::from_logits(&logits).unwrap();
        let mut r = rng(0);
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[c.sample(&mut r)[0]] += 1;
        }
        let p1 = counts[1] as f32 / 5000.0;
        let expect = (2.0f32.exp()) / (1.0 + 2.0f32.exp());
        assert!((p1 - expect).abs() < 0.03, "p1 {p1} vs {expect}");
    }

    #[test]
    fn categorical_mode_is_argmax() {
        let logits = Tensor::from_vec(vec![0.0, 5.0, -1.0], &[1, 3]).unwrap();
        let c = Categorical::from_logits(&logits).unwrap();
        assert_eq!(c.mode(), vec![1]);
    }

    #[test]
    fn gaussian_log_prob_peaks_at_mean() {
        let mean = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let log_std = Tensor::zeros(&[2]);
        let g = DiagGaussian::new(mean.clone(), log_std).unwrap();
        let at_mean = g.log_prob(&mean).unwrap().data()[0];
        let off = Tensor::from_vec(vec![2.0, -1.0], &[1, 2]).unwrap();
        let off_prob = g.log_prob(&off).unwrap().data()[0];
        assert!(at_mean > off_prob);
        // At the mean with unit std: -0.5·ln(2π) per dim, 2 dims.
        let expect = -(2.0 * std::f32::consts::PI).ln();
        assert!((at_mean - expect).abs() < 1e-5);
    }

    #[test]
    fn gaussian_sampling_statistics() {
        let mean = Tensor::full(&[1, 1], 2.0);
        let log_std = Tensor::full(&[1], 0.0);
        let g = DiagGaussian::new(mean, log_std).unwrap();
        let mut r = rng(3);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let s = g.sample(&mut r).data()[0];
            sum += s;
            sum_sq += s * s;
        }
        let m = sum / n as f32;
        let var = sum_sq / n as f32 - m * m;
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_shape_checks() {
        assert!(DiagGaussian::new(Tensor::zeros(&[3]), Tensor::zeros(&[3])).is_err());
        assert!(DiagGaussian::new(Tensor::zeros(&[2, 3]), Tensor::zeros(&[2])).is_err());
        let g = DiagGaussian::new(Tensor::zeros(&[2, 3]), Tensor::zeros(&[3])).unwrap();
        assert!(g.log_prob(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn differentiable_categorical_matches_plain() {
        let tape = Tape::new();
        let logits_t = Tensor::from_vec(vec![0.5, -0.5, 1.5, 0.0, 0.0, 0.0], &[2, 3]).unwrap();
        let logits = tape.var(logits_t.clone());
        let (lp, ent) = categorical_stats(&logits, &[2, 0]).unwrap();
        let plain = Categorical::from_logits(&logits_t).unwrap();
        let plain_lp = plain.log_prob(&[2, 0]).unwrap();
        for (a, b) in lp.value().data().iter().zip(plain_lp.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in ent.value().data().iter().zip(plain.entropy().data()) {
            assert!((a - b).abs() < 1e-4);
        }
        let loss = lp.sum();
        let g = tape.backward(&loss).unwrap();
        assert!(g.get(logits.id()).is_some());
    }

    #[test]
    fn differentiable_gaussian_matches_plain() {
        let tape = Tape::new();
        let mean_t = Tensor::from_vec(vec![0.2, -0.3, 1.0, 0.5], &[2, 2]).unwrap();
        let ls_t = Tensor::from_vec(vec![-0.5, 0.1], &[2]).unwrap();
        let actions = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2]).unwrap();
        let mean = tape.var(mean_t.clone());
        let ls = tape.var(ls_t.clone());
        let (lp, ent) = gaussian_stats(&mean, &ls, &actions).unwrap();
        let plain = DiagGaussian::new(mean_t, ls_t).unwrap();
        let plain_lp = plain.log_prob(&actions).unwrap();
        for (a, b) in lp.value().data().iter().zip(plain_lp.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        for (a, b) in ent.value().data().iter().zip(plain.entropy().data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        let loss = lp.sum();
        let g = tape.backward(&loss).unwrap();
        assert!(g.get(mean.id()).is_some());
        assert!(g.get(ls.id()).is_some());
    }
}
