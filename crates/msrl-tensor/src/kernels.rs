//! Packed, register-tiled matmul microkernels — the hot-plan kernel
//! tier.
//!
//! The naive matmul in [`crate::ops`] streams `b` row by row and
//! accumulates directly into the output, which bounds it at one scalar
//! multiply–add per element per pass. The kernels here restructure the
//! *memory layout and instruction schedule only*: `b` is packed once
//! into [`PackedB`] column panels ([`NR`][PackedB::nr] columns wide,
//! k-major within each panel, zero-padded at the right edge), and the
//! microkernel holds an `MR × NR` accumulator tile in registers while
//! sweeping `k`.
//!
//! # Why the results are bit-identical to the naive kernel
//!
//! Every output element `out[i][j]` is produced by exactly the
//! computation the naive kernel performs for it: one accumulator
//! initialised to `0.0`, then `acc += a[i][kk] * b[kk][j]` for `kk`
//! ascending — a separate multiply and add (never a fused
//! multiply–add, which rounds once instead of twice), no reordering, no
//! zero-skipping (IEEE requires `0 × NaN` and `0 × ∞` to contaminate
//! the accumulator). Register tiling changes *which elements are in
//! flight together*, not the per-element operation sequence, and
//! packing changes where `b[kk][j]` is read from, not its value. The
//! zero padding of a partial right-edge panel is never stored: edge
//! columns take the scalar path below, so a padded lane can never leak
//! a `0 × NaN` into real output.
//!
//! # Kernel families
//!
//! Selected once per process by runtime CPU-feature detection
//! ([`select`]), no compile-time target flags required:
//!
//! * **AVX-512** — 8×32 tiles: 16 zmm accumulators plus 2 panel
//!   registers, `_mm512_add_ps(_mm512_mul_ps(..))` (deliberately not
//!   `_mm512_fmadd_ps`).
//! * **AVX2** — 4×32 tiles on ymm registers, same mul-then-add
//!   discipline.
//! * **Portable** — 4×16 tiles in plain arrays; safe Rust that the
//!   autovectorizer handles on any architecture.
//!
//! Row remainders (`m % MR`) and the partial right-edge panel run
//! through a shared scalar edge loop with the same per-element
//! accumulation order.
//!
//! # Unpacked row kernels
//!
//! Packing pays off when the panel is reused across many output rows.
//! For the small matmuls RL training is full of (minibatch × hidden
//! layers), [`matmul_simd_rows`] and [`matmul_at_rows`] instead
//! vectorise the naive loop *across output columns* directly on the
//! row-major operand: each output element still gets its own
//! accumulator swept over `k` ascending with separate multiply and
//! add, so the results stay bit-identical — lanes hold *different*
//! output elements, never partial sums of one.

use std::sync::OnceLock;

/// Which microkernel family [`select`] chose for this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatKernel {
    /// 8×32 zmm register tiles (`avx512f`).
    Avx512,
    /// 4×32 ymm register tiles (`avx2`).
    Avx2,
    /// 4×16 array tiles, safe portable Rust.
    Portable,
}

/// Returns the microkernel family for this host, detected once.
pub fn select() -> MatKernel {
    static KERNEL: OnceLock<MatKernel> = OnceLock::new();
    *KERNEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return MatKernel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return MatKernel::Avx2;
            }
        }
        MatKernel::Portable
    })
}

/// `b` repacked into column panels for the selected microkernel.
///
/// Panel `p` covers output columns `p*nr .. (p+1)*nr` and stores them
/// k-major: element `(kk, c)` of the panel is `b[kk][p*nr + c]`. The
/// final panel is zero-padded on the right; padded lanes are computed
/// by the vector kernels but never stored (edge columns go through the
/// scalar path), so padding cannot perturb results.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB {
    data: Vec<f32>,
    k: usize,
    n: usize,
    nr: usize,
    kernel: MatKernel,
}

impl PackedB {
    /// Rows of the packed matrix (`b.shape()[0]`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the packed matrix (`b.shape()[1]`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Panel width in columns.
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Packed storage footprint in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the packed matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Packs a row-major `[k, n]` matrix into [`PackedB`] panels for this
/// host's microkernel. Cost is one copy of `b`; the tier pays it once
/// per weight (or once per call for ad-hoc large matmuls) and the
/// microkernel then reads panels sequentially.
pub fn pack_b(bd: &[f32], k: usize, n: usize) -> PackedB {
    msrl_telemetry::static_counter!("tensor.pack_b").add(1);
    let kernel = select();
    let nr = match kernel {
        MatKernel::Avx512 | MatKernel::Avx2 => 32,
        MatKernel::Portable => 16,
    };
    let panels = n.div_ceil(nr);
    let mut data = vec![0.0f32; panels * k * nr];
    for p in 0..panels {
        let j0 = p * nr;
        let w = nr.min(n - j0);
        let base = p * k * nr;
        for kk in 0..k {
            data[base + kk * nr..base + kk * nr + w]
                .copy_from_slice(&bd[kk * n + j0..kk * n + j0 + w]);
        }
    }
    PackedB { data, k, n, nr, kernel }
}

/// Computes rows `row0..row0 + out_rows.len()/n` of `a × b` into
/// `out_rows` from the packed representation of `b`, overwriting every
/// element (the buffer need not be zeroed). Bit-identical to the naive
/// kernel; the signature mirrors `matmul_rows` so callers partition
/// output rows across threads the same way.
///
/// # Panics
///
/// Debug-asserts that `bp` was packed from a `[k, n]` matrix.
pub fn matmul_packed_rows(
    ad: &[f32],
    row0: usize,
    out_rows: &mut [f32],
    k: usize,
    n: usize,
    bp: &PackedB,
) {
    debug_assert_eq!((bp.k, bp.n), (k, n), "packed operand shape mismatch");
    if n == 0 || out_rows.is_empty() {
        return;
    }
    let a = &ad[row0 * k..];
    #[cfg(target_arch = "x86_64")]
    {
        match bp.kernel {
            // SAFETY: `select()` only returns these variants after
            // runtime detection of the corresponding CPU feature.
            MatKernel::Avx512 => unsafe {
                x86::tile_avx512(a, k, &bp.data, out_rows, n);
                return;
            },
            MatKernel::Avx2 => unsafe {
                x86::tile_avx2(a, k, &bp.data, out_rows, n);
                return;
            },
            MatKernel::Portable => {}
        }
    }
    tile_portable(a, k, &bp.data, out_rows, n, bp.nr);
}

/// Computes rows `row0..row0 + out_rows.len()/n` of `a × b` into
/// `out_rows` straight from the row-major `[k, n]` operand `bd` — no
/// packing. SIMD lanes run across output columns; per element the
/// accumulation is the exact naive sequence, so results are
/// bit-identical to [`crate::ops::matmul`]'s reference loop.
pub fn matmul_simd_rows(
    ad: &[f32],
    row0: usize,
    out_rows: &mut [f32],
    k: usize,
    n: usize,
    bd: &[f32],
) {
    if n == 0 || out_rows.is_empty() {
        return;
    }
    let a = &ad[row0 * k..];
    #[cfg(target_arch = "x86_64")]
    {
        match select() {
            // SAFETY: `select()` only returns these variants after
            // runtime detection of the corresponding CPU feature.
            MatKernel::Avx512 => unsafe {
                x86::rows_avx512(a, k, bd, out_rows, n);
                return;
            },
            MatKernel::Avx2 => unsafe {
                x86::rows_avx2(a, k, bd, out_rows, n);
                return;
            },
            MatKernel::Portable => {}
        }
    }
    rows_portable(a, k, bd, out_rows, n);
}

/// Like [`matmul_simd_rows`], but for `aᵀ × b` without materialising
/// the transpose: `ad` is the row-major `[p, m]` matrix whose *columns*
/// are the left operand's rows. Output rows `row0..` land in
/// `out_rows` (`[.., n]`). Per-element accumulation order matches the
/// transpose-then-multiply composition exactly.
pub fn matmul_at_rows(
    ad: &[f32],
    row0: usize,
    out_rows: &mut [f32],
    p: usize,
    m: usize,
    n: usize,
    bd: &[f32],
) {
    if n == 0 || out_rows.is_empty() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        match select() {
            // SAFETY: as in `matmul_simd_rows`.
            MatKernel::Avx512 => unsafe {
                x86::at_rows_avx512(ad, row0, out_rows, p, m, n, bd);
                return;
            },
            MatKernel::Avx2 => unsafe {
                x86::at_rows_avx2(ad, row0, out_rows, p, m, n, bd);
                return;
            },
            MatKernel::Portable => {}
        }
    }
    at_rows_portable(ad, row0, out_rows, p, m, n, bd);
}

/// Like [`matmul_simd_rows`], but for `a × bᵀ` without materialising
/// the transpose: `bd` is the row-major `[n, p]` matrix whose *rows*
/// are the right operand's columns. The x86 kernels gather the strided
/// column `bd[j·p + kk]` for a full lane block of consecutive `j` per
/// `kk` step; per element the accumulation is the scalar dot's exact
/// sequence (ascending `kk`, one accumulator, mul then add).
pub fn matmul_bt_rows(
    ad: &[f32],
    row0: usize,
    out_rows: &mut [f32],
    p: usize,
    n: usize,
    bd: &[f32],
) {
    if n == 0 || out_rows.is_empty() {
        return;
    }
    let a = &ad[row0 * p..];
    #[cfg(target_arch = "x86_64")]
    {
        match select() {
            // SAFETY: as in `matmul_simd_rows`.
            MatKernel::Avx512 => unsafe {
                x86::bt_rows_avx512(a, out_rows, p, n, bd);
                return;
            },
            MatKernel::Avx2 => unsafe {
                x86::bt_rows_avx2(a, out_rows, p, n, bd);
                return;
            },
            MatKernel::Portable => {}
        }
    }
    bt_rows_portable(a, out_rows, p, n, bd);
}

/// Which fold a reduction microkernel applies.
///
/// The scalar reference for each output element is one accumulator,
/// swept over the reduced axis in ascending index order:
/// `acc = acc + v` for [`RedOp::Sum`], [`max_fold`] for [`RedOp::Max`].
/// The vector kernels replicate that per-element sequence exactly —
/// lanes span independent *output* elements, never one reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedOp {
    /// `acc + v`, ascending index.
    Sum,
    /// [`max_fold`], ascending index.
    Max,
}

impl RedOp {
    /// The fold's identity element (`0.0` / `-∞`).
    #[inline]
    pub fn init(self) -> f32 {
        match self {
            RedOp::Sum => 0.0,
            RedOp::Max => f32::NEG_INFINITY,
        }
    }
}

/// The pinned max-fold step shared by the scalar reference and the
/// vector kernels: take `v` when it compares greater or when the
/// accumulator is NaN, otherwise keep the accumulator.
///
/// This matches `f32::max`'s NaN handling (a NaN operand is ignored;
/// NaN results only from an all-NaN fold seeded by a NaN accumulator)
/// but *pins* the tie case `f32::max` leaves unspecified: on operands
/// that compare equal — notably `+0.0` vs `-0.0` — the accumulator
/// (earliest) value wins. The vector kernels implement exactly this
/// predicate (`v > acc`, ordered-quiet, OR `acc ≠ acc`), so tiered and
/// reference folds are bit-identical on every input including NaN/∞.
#[inline]
pub fn max_fold(acc: f32, v: f32) -> f32 {
    if v > acc || acc.is_nan() {
        v
    } else {
        acc
    }
}

/// Counts the non-finite (NaN or ±∞) entries of a slice — the numeric
/// sentinel the health watchdog runs over the flat parameter vector
/// once per iteration.
///
/// IEEE-754 single precision encodes every non-finite value with an
/// all-ones exponent, so the scan is a pure integer mask-and-compare on
/// the bit pattern: no float compares, no NaN-propagation hazards, and
/// the unrolled accumulator loop autovectorises on every dispatch
/// family. Order-independent (a count), so no fold-order pinning is
/// needed.
#[must_use]
pub fn count_nonfinite(data: &[f32]) -> u64 {
    const EXP_MASK: u32 = 0x7f80_0000;
    let mut chunks = data.chunks_exact(16);
    let mut counts = [0u32; 16];
    for c in &mut chunks {
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += u32::from(v.to_bits() & EXP_MASK == EXP_MASK);
        }
    }
    let mut total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
    for v in chunks.remainder() {
        total += u64::from(v.to_bits() & EXP_MASK == EXP_MASK);
    }
    total
}

/// Row reductions (`inner == 1`): `out[r] = fold(ad[(row0+r)·mid ..
/// (row0+r+1)·mid])`, then optionally `· scale` — the single-pass
/// `mean_axis` epilogue, applied to each output element right after its
/// own fold finishes (the same per-element multiply a separate rescale
/// traversal would perform).
///
/// Each output element is a whole-row fold with a serial dependency, so
/// the SIMD kernels put lanes across *rows*: one stride-`mid` gather
/// per ascending `m` step feeds a full block of row accumulators, and
/// every row keeps the scalar ascending-index fold order exactly.
pub fn reduce_rows(
    ad: &[f32],
    row0: usize,
    out: &mut [f32],
    mid: usize,
    op: RedOp,
    scale: Option<f32>,
) {
    if out.is_empty() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // Gather lane offsets are 32-bit.
        if mid.saturating_mul(16) <= i32::MAX as usize {
            match select() {
                // SAFETY: `select()` only returns these variants after
                // runtime detection of the corresponding CPU feature.
                MatKernel::Avx512 => unsafe {
                    x86::reduce_rows_avx512(ad, row0, out, mid, op, scale);
                    return;
                },
                MatKernel::Avx2 => unsafe {
                    x86::reduce_rows_avx2(ad, row0, out, mid, op, scale);
                    return;
                },
                MatKernel::Portable => {}
            }
        }
    }
    reduce_rows_portable(ad, row0, out, mid, op, scale);
}

/// Group reductions (`inner > 1`): `out` is whole groups of `inner`
/// output slots, group `g` covering outer index `group0 + g`;
/// `out[g·inner + i] = fold(ad[((group0+g)·mid + m)·inner + i])` over
/// ascending `m`, then optionally `· scale`.
///
/// Output slots along `inner` are contiguous and independent, so lanes
/// run straight across them with plain vector loads; each slot keeps
/// its scalar ascending-`m` fold order.
pub fn reduce_groups(
    ad: &[f32],
    group0: usize,
    out: &mut [f32],
    mid: usize,
    inner: usize,
    op: RedOp,
    scale: Option<f32>,
) {
    if out.is_empty() || inner == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        match select() {
            // SAFETY: as in `reduce_rows`.
            MatKernel::Avx512 => unsafe {
                x86::reduce_groups_avx512(ad, group0, out, mid, inner, op, scale);
                return;
            },
            MatKernel::Avx2 => unsafe {
                x86::reduce_groups_avx2(ad, group0, out, mid, inner, op, scale);
                return;
            },
            MatKernel::Portable => {}
        }
    }
    reduce_groups_portable(ad, group0, out, mid, inner, op, scale);
}

/// Vectorized-across-rows softmax: copies rows `offset/n ..` of the
/// row-major source into `out` and applies the exact
/// [`crate::ops::softmax_row_inplace`] arithmetic to each row.
///
/// The per-row *max* fold runs with lanes across a block of rows (one
/// stride-`n` gather per ascending column), and the final scale pass is
/// a contiguous vector multiply by the row's reciprocal sum; the
/// exponentiate-and-accumulate middle pass stays scalar per element —
/// `f32::exp` is a libm call with no bit-identical vector form, and the
/// running sum is a serial chain whose order the contract fixes. Every
/// row therefore replays the scalar helper's exact sequence, so results
/// are bit-identical to the untiered path.
pub fn softmax_rows_tiered(ad: &[f32], offset: usize, out: &mut [f32], n: usize) {
    if out.is_empty() || n == 0 {
        return;
    }
    out.copy_from_slice(&ad[offset..offset + out.len()]);
    #[cfg(target_arch = "x86_64")]
    {
        if n.saturating_mul(16) <= i32::MAX as usize {
            match select() {
                // SAFETY: as in `reduce_rows`.
                MatKernel::Avx512 => unsafe {
                    x86::softmax_rows_avx512(out, n);
                    return;
                },
                MatKernel::Avx2 => unsafe {
                    x86::softmax_rows_avx2(out, n);
                    return;
                },
                MatKernel::Portable => {}
            }
        }
    }
    for row in out.chunks_mut(n) {
        crate::ops::softmax_row_inplace(row);
    }
}

/// Portable row-reduction kernel: a block of row accumulators advanced
/// together per `m` step — plain arrays the compiler can pipeline, each
/// row still folding in ascending order.
fn reduce_rows_portable(
    ad: &[f32],
    row0: usize,
    out: &mut [f32],
    mid: usize,
    op: RedOp,
    scale: Option<f32>,
) {
    const RB: usize = 8;
    let rows = out.len();
    let mut r0 = 0;
    while r0 + RB <= rows {
        let mut acc = [op.init(); RB];
        for m in 0..mid {
            for (l, a) in acc.iter_mut().enumerate() {
                let v = ad[(row0 + r0 + l) * mid + m];
                *a = match op {
                    RedOp::Sum => *a + v,
                    RedOp::Max => max_fold(*a, v),
                };
            }
        }
        if let Some(s) = scale {
            for a in &mut acc {
                *a *= s;
            }
        }
        out[r0..r0 + RB].copy_from_slice(&acc);
        r0 += RB;
    }
    for (r, o) in out.iter_mut().enumerate().skip(r0) {
        let row = &ad[(row0 + r) * mid..(row0 + r + 1) * mid];
        let mut acc = op.init();
        match op {
            RedOp::Sum => {
                for &v in row {
                    acc += v;
                }
            }
            RedOp::Max => {
                for &v in row {
                    acc = max_fold(acc, v);
                }
            }
        }
        if let Some(s) = scale {
            acc *= s;
        }
        *o = acc;
    }
}

/// Portable group-reduction kernel: 16-slot array accumulators across
/// the contiguous inner dimension.
fn reduce_groups_portable(
    ad: &[f32],
    group0: usize,
    out: &mut [f32],
    mid: usize,
    inner: usize,
    op: RedOp,
    scale: Option<f32>,
) {
    const L: usize = 16;
    for (g, group) in out.chunks_mut(inner).enumerate() {
        let src = (group0 + g) * mid * inner;
        let blocks = inner / L;
        for jb in 0..blocks {
            let j = jb * L;
            let mut acc = [op.init(); L];
            for m in 0..mid {
                let v: &[f32; L] =
                    ad[src + m * inner + j..src + m * inner + j + L].try_into().expect("L block");
                for (a, &vv) in acc.iter_mut().zip(v) {
                    *a = match op {
                        RedOp::Sum => *a + vv,
                        RedOp::Max => max_fold(*a, vv),
                    };
                }
            }
            if let Some(s) = scale {
                for a in &mut acc {
                    *a *= s;
                }
            }
            group[j..j + L].copy_from_slice(&acc);
        }
        for (jj, slot) in group.iter_mut().enumerate().skip(blocks * L) {
            let mut acc = op.init();
            for m in 0..mid {
                let v = ad[src + m * inner + jj];
                acc = match op {
                    RedOp::Sum => acc + v,
                    RedOp::Max => max_fold(acc, v),
                };
            }
            if let Some(s) = scale {
                acc *= s;
            }
            *slot = acc;
        }
    }
}

/// Portable `a × bᵀ` row kernel: plain scalar dots — rows of both
/// operands are contiguous, so there is no strided access to hide and
/// nothing for lanes to win without changing accumulation order.
fn bt_rows_portable(a: &[f32], out: &mut [f32], p: usize, n: usize, bd: &[f32]) {
    let rows = out.len() / n;
    for r in 0..rows {
        let arow = &a[r * p..(r + 1) * p];
        for (j, o) in out[r * n..(r + 1) * n].iter_mut().enumerate() {
            let brow = &bd[j * p..(j + 1) * p];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// Portable column-lane row kernel: 16-element array accumulators the
/// autovectorizer maps onto whatever SIMD the target has.
fn rows_portable(a: &[f32], k: usize, bd: &[f32], out: &mut [f32], n: usize) {
    const L: usize = 16;
    let rows = out.len() / n;
    let blocks = n / L;
    for r in 0..rows {
        for jb in 0..blocks {
            let j = jb * L;
            let mut acc = [0.0f32; L];
            for kk in 0..k {
                let av = a[r * k + kk];
                let b: &[f32; L] = bd[kk * n + j..kk * n + j + L].try_into().expect("L block");
                for (slot, &bv) in acc.iter_mut().zip(b) {
                    *slot += av * bv;
                }
            }
            out[r * n + j..r * n + j + L].copy_from_slice(&acc);
        }
        for j in blocks * L..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[r * k + kk] * bd[kk * n + j];
            }
            out[r * n + j] = acc;
        }
    }
}

/// Portable transpose-free `aᵀ × b` row kernel.
fn at_rows_portable(
    ad: &[f32],
    row0: usize,
    out: &mut [f32],
    p: usize,
    m: usize,
    n: usize,
    bd: &[f32],
) {
    const L: usize = 16;
    let rows = out.len() / n;
    let blocks = n / L;
    for r in 0..rows {
        let i = row0 + r;
        for jb in 0..blocks {
            let j = jb * L;
            let mut acc = [0.0f32; L];
            for kk in 0..p {
                let av = ad[kk * m + i];
                let b: &[f32; L] = bd[kk * n + j..kk * n + j + L].try_into().expect("L block");
                for (slot, &bv) in acc.iter_mut().zip(b) {
                    *slot += av * bv;
                }
            }
            out[r * n + j..r * n + j + L].copy_from_slice(&acc);
        }
        for j in blocks * L..n {
            let mut acc = 0.0f32;
            for kk in 0..p {
                acc += ad[kk * m + i] * bd[kk * n + j];
            }
            out[r * n + j] = acc;
        }
    }
}

/// Scalar edge kernel: remainder rows under the full panels plus the
/// partial right-edge panel for every row. One accumulator per output
/// element, ascending `k`, separate multiply and add — the exact naive
/// sequence. Padded panel lanes (`c >= w`) are never read into an
/// accumulator that gets stored.
#[allow(clippy::too_many_arguments)]
fn edge_scalar(
    a: &[f32],
    k: usize,
    bp: &[f32],
    out: &mut [f32],
    n: usize,
    nr: usize,
    full_rows: usize,
    full_panels: usize,
) {
    let rows = out.len() / n;
    // Remainder rows across the full panels.
    for r in full_rows..rows {
        for p in 0..full_panels {
            let panel = &bp[p * k * nr..(p + 1) * k * nr];
            for c in 0..nr {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[r * k + kk] * panel[kk * nr + c];
                }
                out[r * n + p * nr + c] = acc;
            }
        }
    }
    // Partial right-edge panel, every row.
    let j0 = full_panels * nr;
    if j0 < n {
        let w = n - j0;
        let panel = &bp[full_panels * k * nr..];
        for r in 0..rows {
            for c in 0..w {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[r * k + kk] * panel[kk * nr + c];
                }
                out[r * n + j0 + c] = acc;
            }
        }
    }
}

/// Portable 4×16 register-tile kernel: plain arrays the autovectorizer
/// maps onto whatever SIMD the target has, with the same per-element
/// mul-then-add accumulation as the naive kernel.
fn tile_portable(a: &[f32], k: usize, bp: &[f32], out: &mut [f32], n: usize, nr: usize) {
    const MR: usize = 4;
    let rows = out.len() / n;
    let full_rows = rows - rows % MR;
    let full_panels = n / nr;
    let mut i = 0;
    while i < full_rows {
        for p in 0..full_panels {
            let panel = &bp[p * k * nr..(p + 1) * k * nr];
            let mut acc = [[0.0f32; 16]; MR];
            for kk in 0..k {
                let b: &[f32; 16] = panel[kk * nr..kk * nr + 16].try_into().expect("nr == 16");
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let av = a[(i + r) * k + kk];
                    for (slot, &bv) in acc_r.iter_mut().zip(b) {
                        *slot += av * bv;
                    }
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                out[(i + r) * n + p * nr..(i + r) * n + p * nr + 16].copy_from_slice(acc_r);
            }
        }
        i += MR;
    }
    edge_scalar(a, k, bp, out, n, nr, full_rows, full_panels);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Runtime-dispatched AVX2 / AVX-512 microkernels. Every accumulator
    //! update is `add(acc, mul(av, b))` — two roundings, exactly like the
    //! scalar `acc += av * bv` — never a fused multiply–add.

    use std::arch::x86_64::{
        __m256, __m512, _mm256_add_ps, _mm256_blendv_ps, _mm256_cmp_ps, _mm256_i32gather_ps,
        _mm256_loadu_ps, _mm256_mul_ps, _mm256_mullo_epi32, _mm256_or_ps, _mm256_set1_epi32,
        _mm256_set1_ps, _mm256_setr_epi32, _mm256_setzero_ps, _mm256_storeu_ps, _mm512_add_ps,
        _mm512_cmp_ps_mask, _mm512_i32gather_ps, _mm512_loadu_ps, _mm512_mask_blend_ps,
        _mm512_mul_ps, _mm512_mullo_epi32, _mm512_set1_epi32, _mm512_set1_ps, _mm512_setr_epi32,
        _mm512_setzero_ps, _mm512_storeu_ps, _CMP_GT_OQ, _CMP_UNORD_Q,
    };

    use super::{edge_scalar, reduce_rows_portable, RedOp};

    /// 8×32 zmm register-tile kernel.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tile_avx512(a: &[f32], k: usize, bp: &[f32], out: &mut [f32], n: usize) {
        const MR: usize = 8;
        const NR: usize = 32;
        let rows = out.len() / n;
        let full_rows = rows - rows % MR;
        let full_panels = n / NR;
        let ap = a.as_ptr();
        let pp = bp.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i < full_rows {
            for p in 0..full_panels {
                let panel = pp.add(p * k * NR);
                let mut acc = [[_mm512_setzero_ps(); 2]; MR];
                for kk in 0..k {
                    let bb = panel.add(kk * NR);
                    let b0: __m512 = _mm512_loadu_ps(bb);
                    let b1: __m512 = _mm512_loadu_ps(bb.add(16));
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let av = _mm512_set1_ps(*ap.add((i + r) * k + kk));
                        acc_r[0] = _mm512_add_ps(acc_r[0], _mm512_mul_ps(av, b0));
                        acc_r[1] = _mm512_add_ps(acc_r[1], _mm512_mul_ps(av, b1));
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    let o = op.add((i + r) * n + p * NR);
                    _mm512_storeu_ps(o, acc_r[0]);
                    _mm512_storeu_ps(o.add(16), acc_r[1]);
                }
            }
            i += MR;
        }
        edge_scalar(a, k, bp, out, n, NR, full_rows, full_panels);
    }

    /// Unpacked row kernel, zmm lanes across output columns.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn rows_avx512(a: &[f32], k: usize, bd: &[f32], out: &mut [f32], n: usize) {
        const L: usize = 16;
        const RB: usize = 4;
        let rows = out.len() / n;
        let blocks = n / L;
        let ap = a.as_ptr();
        let bp = bd.as_ptr();
        let op = out.as_mut_ptr();
        let mut r0 = 0;
        while r0 < rows {
            let rm = RB.min(rows - r0);
            for jb in 0..blocks {
                let j = jb * L;
                let mut acc = [_mm512_setzero_ps(); RB];
                for kk in 0..k {
                    let bv = _mm512_loadu_ps(bp.add(kk * n + j));
                    for (r, acc_r) in acc.iter_mut().take(rm).enumerate() {
                        let av = _mm512_set1_ps(*ap.add((r0 + r) * k + kk));
                        *acc_r = _mm512_add_ps(*acc_r, _mm512_mul_ps(av, bv));
                    }
                }
                for (r, acc_r) in acc.iter().take(rm).enumerate() {
                    _mm512_storeu_ps(op.add((r0 + r) * n + j), *acc_r);
                }
            }
            for j in blocks * L..n {
                for r in 0..rm {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += *ap.add((r0 + r) * k + kk) * *bp.add(kk * n + j);
                    }
                    *op.add((r0 + r) * n + j) = acc;
                }
            }
            r0 += rm;
        }
    }

    /// Unpacked row kernel, ymm lanes across output columns.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn rows_avx2(a: &[f32], k: usize, bd: &[f32], out: &mut [f32], n: usize) {
        const L: usize = 8;
        const RB: usize = 4;
        let rows = out.len() / n;
        let blocks = n / L;
        let ap = a.as_ptr();
        let bp = bd.as_ptr();
        let op = out.as_mut_ptr();
        let mut r0 = 0;
        while r0 < rows {
            let rm = RB.min(rows - r0);
            for jb in 0..blocks {
                let j = jb * L;
                let mut acc = [_mm256_setzero_ps(); RB];
                for kk in 0..k {
                    let bv = _mm256_loadu_ps(bp.add(kk * n + j));
                    for (r, acc_r) in acc.iter_mut().take(rm).enumerate() {
                        let av = _mm256_set1_ps(*ap.add((r0 + r) * k + kk));
                        *acc_r = _mm256_add_ps(*acc_r, _mm256_mul_ps(av, bv));
                    }
                }
                for (r, acc_r) in acc.iter().take(rm).enumerate() {
                    _mm256_storeu_ps(op.add((r0 + r) * n + j), *acc_r);
                }
            }
            for j in blocks * L..n {
                for r in 0..rm {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += *ap.add((r0 + r) * k + kk) * *bp.add(kk * n + j);
                    }
                    *op.add((r0 + r) * n + j) = acc;
                }
            }
            r0 += rm;
        }
    }

    /// Transpose-free `aᵀ × b` row kernel, zmm lanes across columns.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn at_rows_avx512(
        ad: &[f32],
        row0: usize,
        out: &mut [f32],
        p: usize,
        m: usize,
        n: usize,
        bd: &[f32],
    ) {
        const L: usize = 16;
        const RB: usize = 4;
        let rows = out.len() / n;
        let blocks = n / L;
        let ap = ad.as_ptr();
        let bp = bd.as_ptr();
        let op = out.as_mut_ptr();
        let mut r0 = 0;
        while r0 < rows {
            let rm = RB.min(rows - r0);
            for jb in 0..blocks {
                let j = jb * L;
                let mut acc = [_mm512_setzero_ps(); RB];
                for kk in 0..p {
                    let bv = _mm512_loadu_ps(bp.add(kk * n + j));
                    for (r, acc_r) in acc.iter_mut().take(rm).enumerate() {
                        let av = _mm512_set1_ps(*ap.add(kk * m + row0 + r0 + r));
                        *acc_r = _mm512_add_ps(*acc_r, _mm512_mul_ps(av, bv));
                    }
                }
                for (r, acc_r) in acc.iter().take(rm).enumerate() {
                    _mm512_storeu_ps(op.add((r0 + r) * n + j), *acc_r);
                }
            }
            for j in blocks * L..n {
                for r in 0..rm {
                    let i = row0 + r0 + r;
                    let mut acc = 0.0f32;
                    for kk in 0..p {
                        acc += *ap.add(kk * m + i) * *bp.add(kk * n + j);
                    }
                    *op.add((r0 + r) * n + j) = acc;
                }
            }
            r0 += rm;
        }
    }

    /// Transpose-free `aᵀ × b` row kernel, ymm lanes across columns.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn at_rows_avx2(
        ad: &[f32],
        row0: usize,
        out: &mut [f32],
        p: usize,
        m: usize,
        n: usize,
        bd: &[f32],
    ) {
        const L: usize = 8;
        const RB: usize = 4;
        let rows = out.len() / n;
        let blocks = n / L;
        let ap = ad.as_ptr();
        let bp = bd.as_ptr();
        let op = out.as_mut_ptr();
        let mut r0 = 0;
        while r0 < rows {
            let rm = RB.min(rows - r0);
            for jb in 0..blocks {
                let j = jb * L;
                let mut acc = [_mm256_setzero_ps(); RB];
                for kk in 0..p {
                    let bv = _mm256_loadu_ps(bp.add(kk * n + j));
                    for (r, acc_r) in acc.iter_mut().take(rm).enumerate() {
                        let av = _mm256_set1_ps(*ap.add(kk * m + row0 + r0 + r));
                        *acc_r = _mm256_add_ps(*acc_r, _mm256_mul_ps(av, bv));
                    }
                }
                for (r, acc_r) in acc.iter().take(rm).enumerate() {
                    _mm256_storeu_ps(op.add((r0 + r) * n + j), *acc_r);
                }
            }
            for j in blocks * L..n {
                for r in 0..rm {
                    let i = row0 + r0 + r;
                    let mut acc = 0.0f32;
                    for kk in 0..p {
                        acc += *ap.add(kk * m + i) * *bp.add(kk * n + j);
                    }
                    *op.add((r0 + r) * n + j) = acc;
                }
            }
            r0 += rm;
        }
    }

    /// Transpose-free `a × bᵀ` row kernel, zmm lanes across columns.
    ///
    /// Lanes are rows of `bd`, read via a stride-`p` gather at each
    /// `kk` step; one gather feeds every row in the block, and each
    /// output element keeps the scalar dot's accumulation order.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn bt_rows_avx512(a: &[f32], out: &mut [f32], p: usize, n: usize, bd: &[f32]) {
        const L: usize = 16;
        const RB: usize = 4;
        let rows = out.len() / n;
        let blocks = n / L;
        let ap = a.as_ptr();
        let bp = bd.as_ptr();
        let op = out.as_mut_ptr();
        let step = _mm512_mullo_epi32(
            _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
            _mm512_set1_epi32(p as i32),
        );
        let mut r0 = 0;
        while r0 < rows {
            let rm = RB.min(rows - r0);
            for jb in 0..blocks {
                let j = jb * L;
                let base = bp.add(j * p);
                let mut acc = [_mm512_setzero_ps(); RB];
                for kk in 0..p {
                    let bv = _mm512_i32gather_ps::<4>(step, base.add(kk));
                    for (r, acc_r) in acc.iter_mut().take(rm).enumerate() {
                        let av = _mm512_set1_ps(*ap.add((r0 + r) * p + kk));
                        *acc_r = _mm512_add_ps(*acc_r, _mm512_mul_ps(av, bv));
                    }
                }
                for (r, acc_r) in acc.iter().take(rm).enumerate() {
                    _mm512_storeu_ps(op.add((r0 + r) * n + j), *acc_r);
                }
            }
            for j in blocks * L..n {
                for r in 0..rm {
                    let mut acc = 0.0f32;
                    for kk in 0..p {
                        acc += *ap.add((r0 + r) * p + kk) * *bp.add(j * p + kk);
                    }
                    *op.add((r0 + r) * n + j) = acc;
                }
            }
            r0 += rm;
        }
    }

    /// Transpose-free `a × bᵀ` row kernel, ymm lanes across columns.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn bt_rows_avx2(a: &[f32], out: &mut [f32], p: usize, n: usize, bd: &[f32]) {
        const L: usize = 8;
        const RB: usize = 4;
        let rows = out.len() / n;
        let blocks = n / L;
        let ap = a.as_ptr();
        let bp = bd.as_ptr();
        let op = out.as_mut_ptr();
        let step = _mm256_mullo_epi32(
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
            _mm256_set1_epi32(p as i32),
        );
        let mut r0 = 0;
        while r0 < rows {
            let rm = RB.min(rows - r0);
            for jb in 0..blocks {
                let j = jb * L;
                let base = bp.add(j * p);
                let mut acc = [_mm256_setzero_ps(); RB];
                for kk in 0..p {
                    let bv = _mm256_i32gather_ps::<4>(base.add(kk), step);
                    for (r, acc_r) in acc.iter_mut().take(rm).enumerate() {
                        let av = _mm256_set1_ps(*ap.add((r0 + r) * p + kk));
                        *acc_r = _mm256_add_ps(*acc_r, _mm256_mul_ps(av, bv));
                    }
                }
                for (r, acc_r) in acc.iter().take(rm).enumerate() {
                    _mm256_storeu_ps(op.add((r0 + r) * n + j), *acc_r);
                }
            }
            for j in blocks * L..n {
                for r in 0..rm {
                    let mut acc = 0.0f32;
                    for kk in 0..p {
                        acc += *ap.add((r0 + r) * p + kk) * *bp.add(j * p + kk);
                    }
                    *op.add((r0 + r) * n + j) = acc;
                }
            }
            r0 += rm;
        }
    }

    /// 4×32 ymm register-tile kernel.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn tile_avx2(a: &[f32], k: usize, bp: &[f32], out: &mut [f32], n: usize) {
        const MR: usize = 4;
        const NR: usize = 32;
        let rows = out.len() / n;
        let full_rows = rows - rows % MR;
        let full_panels = n / NR;
        let ap = a.as_ptr();
        let pp = bp.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i < full_rows {
            for p in 0..full_panels {
                let panel = pp.add(p * k * NR);
                let mut acc = [[_mm256_setzero_ps(); 4]; MR];
                for kk in 0..k {
                    let bb = panel.add(kk * NR);
                    let b: [__m256; 4] = [
                        _mm256_loadu_ps(bb),
                        _mm256_loadu_ps(bb.add(8)),
                        _mm256_loadu_ps(bb.add(16)),
                        _mm256_loadu_ps(bb.add(24)),
                    ];
                    for (r, acc_r) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*ap.add((i + r) * k + kk));
                        for (slot, &bv) in acc_r.iter_mut().zip(&b) {
                            *slot = _mm256_add_ps(*slot, _mm256_mul_ps(av, bv));
                        }
                    }
                }
                for (r, acc_r) in acc.iter().enumerate() {
                    let o = op.add((i + r) * n + p * NR);
                    for (c, &v) in acc_r.iter().enumerate() {
                        _mm256_storeu_ps(o.add(8 * c), v);
                    }
                }
            }
            i += MR;
        }
        edge_scalar(a, k, bp, out, n, NR, full_rows, full_panels);
    }

    /// One [`super::max_fold`] step on 16 lanes: take `v` where it
    /// compares greater (ordered) or where `acc` is NaN.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn max_step_avx512(acc: __m512, v: __m512) -> __m512 {
        let take =
            _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, acc) | _mm512_cmp_ps_mask::<_CMP_UNORD_Q>(acc, acc);
        _mm512_mask_blend_ps(take, acc, v)
    }

    /// One [`super::max_fold`] step on 8 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn max_step_avx2(acc: __m256, v: __m256) -> __m256 {
        let take = _mm256_or_ps(
            _mm256_cmp_ps::<_CMP_GT_OQ>(v, acc),
            _mm256_cmp_ps::<_CMP_UNORD_Q>(acc, acc),
        );
        _mm256_blendv_ps(acc, v, take)
    }

    /// Row reduction, zmm lanes across 16 rows via stride-`mid` gathers.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn reduce_rows_avx512(
        ad: &[f32],
        row0: usize,
        out: &mut [f32],
        mid: usize,
        op: RedOp,
        scale: Option<f32>,
    ) {
        const L: usize = 16;
        let rows = out.len();
        let ap = ad.as_ptr();
        let step = _mm512_mullo_epi32(
            _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
            _mm512_set1_epi32(mid as i32),
        );
        let init = match op {
            RedOp::Sum => _mm512_setzero_ps(),
            RedOp::Max => _mm512_set1_ps(f32::NEG_INFINITY),
        };
        let mut r0 = 0;
        while r0 + L <= rows {
            let base = ap.add((row0 + r0) * mid);
            let mut acc = init;
            for m in 0..mid {
                let v = _mm512_i32gather_ps::<4>(step, base.add(m));
                acc = match op {
                    RedOp::Sum => _mm512_add_ps(acc, v),
                    RedOp::Max => max_step_avx512(acc, v),
                };
            }
            if let Some(s) = scale {
                acc = _mm512_mul_ps(acc, _mm512_set1_ps(s));
            }
            _mm512_storeu_ps(out.as_mut_ptr().add(r0), acc);
            r0 += L;
        }
        reduce_rows_portable(ad, row0 + r0, &mut out[r0..], mid, op, scale);
    }

    /// Row reduction, ymm lanes across 8 rows via stride-`mid` gathers.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn reduce_rows_avx2(
        ad: &[f32],
        row0: usize,
        out: &mut [f32],
        mid: usize,
        op: RedOp,
        scale: Option<f32>,
    ) {
        const L: usize = 8;
        let rows = out.len();
        let ap = ad.as_ptr();
        let step = _mm256_mullo_epi32(
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
            _mm256_set1_epi32(mid as i32),
        );
        let init = match op {
            RedOp::Sum => _mm256_setzero_ps(),
            RedOp::Max => _mm256_set1_ps(f32::NEG_INFINITY),
        };
        let mut r0 = 0;
        while r0 + L <= rows {
            let base = ap.add((row0 + r0) * mid);
            let mut acc = init;
            for m in 0..mid {
                let v = _mm256_i32gather_ps::<4>(base.add(m), step);
                acc = match op {
                    RedOp::Sum => _mm256_add_ps(acc, v),
                    RedOp::Max => max_step_avx2(acc, v),
                };
            }
            if let Some(s) = scale {
                acc = _mm256_mul_ps(acc, _mm256_set1_ps(s));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(r0), acc);
            r0 += L;
        }
        reduce_rows_portable(ad, row0 + r0, &mut out[r0..], mid, op, scale);
    }

    /// Group reduction, zmm lanes across the contiguous inner dim.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn reduce_groups_avx512(
        ad: &[f32],
        group0: usize,
        out: &mut [f32],
        mid: usize,
        inner: usize,
        op: RedOp,
        scale: Option<f32>,
    ) {
        const L: usize = 16;
        let ap = ad.as_ptr();
        let op_ = out.as_mut_ptr();
        let init = match op {
            RedOp::Sum => _mm512_setzero_ps(),
            RedOp::Max => _mm512_set1_ps(f32::NEG_INFINITY),
        };
        let groups = out.len() / inner;
        for g in 0..groups {
            let src = (group0 + g) * mid * inner;
            let dst = g * inner;
            let blocks = inner / L;
            for jb in 0..blocks {
                let j = jb * L;
                let mut acc = init;
                for m in 0..mid {
                    let v = _mm512_loadu_ps(ap.add(src + m * inner + j));
                    acc = match op {
                        RedOp::Sum => _mm512_add_ps(acc, v),
                        RedOp::Max => max_step_avx512(acc, v),
                    };
                }
                if let Some(s) = scale {
                    acc = _mm512_mul_ps(acc, _mm512_set1_ps(s));
                }
                _mm512_storeu_ps(op_.add(dst + j), acc);
            }
            reduce_tail_scalar(
                ad,
                src,
                &mut out[dst + blocks * L..dst + inner],
                mid,
                inner,
                blocks * L,
                op,
                scale,
            );
        }
    }

    /// Group reduction, ymm lanes across the contiguous inner dim.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn reduce_groups_avx2(
        ad: &[f32],
        group0: usize,
        out: &mut [f32],
        mid: usize,
        inner: usize,
        op: RedOp,
        scale: Option<f32>,
    ) {
        const L: usize = 8;
        let ap = ad.as_ptr();
        let op_ = out.as_mut_ptr();
        let init = match op {
            RedOp::Sum => _mm256_setzero_ps(),
            RedOp::Max => _mm256_set1_ps(f32::NEG_INFINITY),
        };
        let groups = out.len() / inner;
        for g in 0..groups {
            let src = (group0 + g) * mid * inner;
            let dst = g * inner;
            let blocks = inner / L;
            for jb in 0..blocks {
                let j = jb * L;
                let mut acc = init;
                for m in 0..mid {
                    let v = _mm256_loadu_ps(ap.add(src + m * inner + j));
                    acc = match op {
                        RedOp::Sum => _mm256_add_ps(acc, v),
                        RedOp::Max => max_step_avx2(acc, v),
                    };
                }
                if let Some(s) = scale {
                    acc = _mm256_mul_ps(acc, _mm256_set1_ps(s));
                }
                _mm256_storeu_ps(op_.add(dst + j), acc);
            }
            reduce_tail_scalar(
                ad,
                src,
                &mut out[dst + blocks * L..dst + inner],
                mid,
                inner,
                blocks * L,
                op,
                scale,
            );
        }
    }

    /// Scalar fold for the inner-dim slots a vector block doesn't cover.
    #[allow(clippy::too_many_arguments)]
    fn reduce_tail_scalar(
        ad: &[f32],
        src: usize,
        tail: &mut [f32],
        mid: usize,
        inner: usize,
        j0: usize,
        op: RedOp,
        scale: Option<f32>,
    ) {
        for (t, slot) in tail.iter_mut().enumerate() {
            let jj = j0 + t;
            let mut acc = op.init();
            for m in 0..mid {
                let v = ad[src + m * inner + jj];
                acc = match op {
                    RedOp::Sum => acc + v,
                    RedOp::Max => super::max_fold(acc, v),
                };
            }
            if let Some(s) = scale {
                acc *= s;
            }
            *slot = acc;
        }
    }

    /// Softmax over rows already copied into `out`: per-row max with zmm
    /// lanes across 16 rows (stride-`n` gathers), the exact scalar
    /// exp-and-sum sequence per row, then a vectorized scale by `1/sum`.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn softmax_rows_avx512(out: &mut [f32], n: usize) {
        const L: usize = 16;
        let rows = out.len() / n;
        let step = _mm512_mullo_epi32(
            _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
            _mm512_set1_epi32(n as i32),
        );
        let mut r0 = 0;
        while r0 + L <= rows {
            let base = out.as_ptr().add(r0 * n);
            let mut acc = _mm512_set1_ps(f32::NEG_INFINITY);
            for j in 0..n {
                let v = _mm512_i32gather_ps::<4>(step, base.add(j));
                acc = max_step_avx512(acc, v);
            }
            let mut maxs = [0.0f32; L];
            _mm512_storeu_ps(maxs.as_mut_ptr(), acc);
            for (l, &max) in maxs.iter().enumerate() {
                let row = &mut out[(r0 + l) * n..(r0 + l + 1) * n];
                // Exactly `softmax_row_inplace`'s middle pass: libm exp
                // and a serial ascending-index running sum.
                let mut sum = 0.0f32;
                for o in row.iter_mut() {
                    let e = (*o - max).exp();
                    sum += e;
                    *o = e;
                }
                let inv = 1.0 / sum;
                let iv = _mm512_set1_ps(inv);
                let rp = row.as_mut_ptr();
                let mut j = 0;
                while j + L <= n {
                    _mm512_storeu_ps(rp.add(j), _mm512_mul_ps(_mm512_loadu_ps(rp.add(j)), iv));
                    j += L;
                }
                for o in row[j..].iter_mut() {
                    *o *= inv;
                }
            }
            r0 += L;
        }
        for row in out[r0 * n..].chunks_mut(n) {
            crate::ops::softmax_row_inplace(row);
        }
    }

    /// Softmax over rows already copied into `out`, ymm lanes across 8
    /// rows.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (guaranteed by [`super::select`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn softmax_rows_avx2(out: &mut [f32], n: usize) {
        const L: usize = 8;
        let rows = out.len() / n;
        let step = _mm256_mullo_epi32(
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
            _mm256_set1_epi32(n as i32),
        );
        let mut r0 = 0;
        while r0 + L <= rows {
            let base = out.as_ptr().add(r0 * n);
            let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
            for j in 0..n {
                let v = _mm256_i32gather_ps::<4>(base.add(j), step);
                acc = max_step_avx2(acc, v);
            }
            let mut maxs = [0.0f32; L];
            _mm256_storeu_ps(maxs.as_mut_ptr(), acc);
            for (l, &max) in maxs.iter().enumerate() {
                let row = &mut out[(r0 + l) * n..(r0 + l + 1) * n];
                let mut sum = 0.0f32;
                for o in row.iter_mut() {
                    let e = (*o - max).exp();
                    sum += e;
                    *o = e;
                }
                let inv = 1.0 / sum;
                let iv = _mm256_set1_ps(inv);
                let rp = row.as_mut_ptr();
                let mut j = 0;
                while j + L <= n {
                    _mm256_storeu_ps(rp.add(j), _mm256_mul_ps(_mm256_loadu_ps(rp.add(j)), iv));
                    j += L;
                }
                for o in row[j..].iter_mut() {
                    *o *= inv;
                }
            }
            r0 += L;
        }
        for row in out[r0 * n..].chunks_mut(n) {
            crate::ops::softmax_row_inplace(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: the exact loop from `ops::matmul_rows`.
    fn naive(ad: &[f32], bd: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = ad[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += av * bd[kk * n + j];
                }
            }
        }
        out
    }

    fn vals(len: usize, seed: usize) -> Vec<f32> {
        (0..len).map(|i| (((i * 2654435761 + seed) % 1000) as f32) / 500.0 - 1.0).collect()
    }

    #[test]
    fn count_nonfinite_finds_every_poison_at_every_offset() {
        assert_eq!(count_nonfinite(&[]), 0);
        assert_eq!(count_nonfinite(&vals(1000, 3)), 0);
        // Each poison kind counts, at chunk-interior and remainder
        // offsets alike.
        for len in [1usize, 15, 16, 17, 64, 1000] {
            for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
                for pos in [0, len / 2, len - 1] {
                    let mut v = vals(len, 7);
                    v[pos] = poison;
                    assert_eq!(count_nonfinite(&v), 1, "len {len} pos {pos}");
                }
            }
        }
        // Subnormals, zeros and f32::MAX are finite; counts add up.
        assert_eq!(count_nonfinite(&[f32::MIN_POSITIVE / 2.0, -0.0, f32::MAX]), 0);
        let mut v = vals(100, 9);
        for i in (0..100).step_by(7) {
            v[i] = if i % 2 == 0 { f32::NAN } else { f32::INFINITY };
        }
        let expect = v.iter().filter(|x| !x.is_finite()).count() as u64;
        assert_eq!(count_nonfinite(&v), expect);
    }

    #[test]
    fn packed_matches_naive_bitwise_on_edge_shapes() {
        for &(m, k, n) in
            &[(1, 1, 1), (8, 8, 32), (9, 7, 33), (17, 5, 31), (3, 0, 4), (1, 6, 40), (64, 3, 2)]
        {
            let a = vals(m * k, 1);
            let b = vals(k * n, 2);
            let bp = pack_b(&b, k, n);
            let mut out = vec![f32::NAN; m * n];
            matmul_packed_rows(&a, 0, &mut out, k, n, &bp);
            let expect = naive(&a, &b, m, k, n);
            let same = out.iter().zip(&expect).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "({m},{k},{n}) diverged from the naive kernel");
        }
    }

    #[test]
    fn padded_panel_lanes_never_leak_nan() {
        // b's last column is NaN; with nr-padding the panel holds zeros
        // past it. Only the NaN column may be NaN in the output.
        let (m, k, n) = (4, 3, 17);
        let a = vals(m * k, 3);
        let mut b = vals(k * n, 4);
        for kk in 0..k {
            b[kk * n + (n - 1)] = f32::NAN;
        }
        let bp = pack_b(&b, k, n);
        let mut out = vec![0.0f32; m * n];
        matmul_packed_rows(&a, 0, &mut out, k, n, &bp);
        for r in 0..m {
            for c in 0..n - 1 {
                assert!(!out[r * n + c].is_nan(), "NaN leaked into column {c}");
            }
            assert!(out[r * n + n - 1].is_nan(), "real NaN column must propagate");
        }
    }

    #[test]
    fn simd_rows_match_naive_bitwise() {
        for &(m, k, n) in
            &[(1, 1, 1), (2, 17, 32), (5, 3, 19), (1, 6, 40), (3, 0, 4), (7, 9, 16), (2, 32, 6)]
        {
            let a = vals(m * k, 7);
            let b = vals(k * n, 8);
            let mut out = vec![f32::NAN; m * n];
            matmul_simd_rows(&a, 0, &mut out, k, n, &b);
            let expect = naive(&a, &b, m, k, n);
            let same = out.iter().zip(&expect).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "({m},{k},{n}) diverged from the naive kernel");
        }
    }

    #[test]
    fn at_rows_match_transposed_naive_bitwise() {
        // a is [p, m]; the reference transposes it and runs the naive loop.
        for &(p, m, n) in &[(1, 1, 1), (2, 17, 32), (4, 5, 19), (6, 1, 40), (3, 7, 16)] {
            let a = vals(p * m, 9);
            let b = vals(p * n, 10);
            let mut at = vec![0.0f32; m * p];
            for kk in 0..p {
                for i in 0..m {
                    at[i * p + kk] = a[kk * m + i];
                }
            }
            let mut out = vec![f32::NAN; m * n];
            matmul_at_rows(&a, 0, &mut out, p, m, n, &b);
            let expect = naive(&at, &b, m, p, n);
            let same = out.iter().zip(&expect).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "({p},{m},{n}) diverged from transpose + naive");
        }
    }

    #[test]
    fn bt_rows_match_transposed_naive_bitwise() {
        // b is [n, p]; the reference transposes it and runs the naive loop.
        // Shapes cover full gather blocks, column remainders, row-block
        // remainders (m > 4), and degenerate k.
        for &(m, p, n) in &[(1, 1, 1), (2, 32, 32), (5, 7, 19), (6, 3, 40), (9, 0, 16), (3, 2, 6)] {
            let a = vals(m * p, 11);
            let b = vals(n * p, 12);
            let mut bt = vec![0.0f32; p * n];
            for j in 0..n {
                for kk in 0..p {
                    bt[kk * n + j] = b[j * p + kk];
                }
            }
            let mut out = vec![f32::NAN; m * n];
            matmul_bt_rows(&a, 0, &mut out, p, n, &b);
            let expect = naive(&a, &bt, m, p, n);
            let same = out.iter().zip(&expect).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "({m},{p},{n}) diverged from transpose + naive");
        }
        // Row offset slices the left operand like a threaded chunk would.
        let (m, p, n) = (7, 5, 21);
        let a = vals(m * p, 13);
        let b = vals(n * p, 14);
        let mut full = vec![0.0f32; m * n];
        matmul_bt_rows(&a, 0, &mut full, p, n, &b);
        let mut part = vec![0.0f32; (m - 3) * n];
        matmul_bt_rows(&a, 3, &mut part, p, n, &b);
        assert_eq!(&full[3 * n..], &part[..]);
    }

    #[test]
    fn row_offset_matches_full_product() {
        let (m, k, n) = (12, 9, 34);
        let a = vals(m * k, 5);
        let b = vals(k * n, 6);
        let bp = pack_b(&b, k, n);
        let mut full = vec![0.0f32; m * n];
        matmul_packed_rows(&a, 0, &mut full, k, n, &bp);
        // Compute rows 5.. separately, as a threaded chunk would.
        let mut part = vec![0.0f32; (m - 5) * n];
        matmul_packed_rows(&a, 5, &mut part, k, n, &bp);
        assert_eq!(&full[5 * n..], &part[..]);
    }

    /// Naive reference for the reduction kernels: one accumulator per
    /// output element, ascending reduced index, optional scale epilogue.
    fn naive_reduce(
        ad: &[f32],
        rows: usize,
        mid: usize,
        inner: usize,
        op: RedOp,
        scale: Option<f32>,
    ) -> Vec<f32> {
        let mut out = vec![op.init(); rows * inner];
        for r in 0..rows {
            for m in 0..mid {
                for i in 0..inner {
                    let v = ad[(r * mid + m) * inner + i];
                    let slot = &mut out[r * inner + i];
                    *slot = match op {
                        RedOp::Sum => *slot + v,
                        RedOp::Max => max_fold(*slot, v),
                    };
                }
            }
            if let Some(s) = scale {
                for slot in &mut out[r * inner..(r + 1) * inner] {
                    *slot *= s;
                }
            }
        }
        out
    }

    fn assert_bits_eq(got: &[f32], expect: &[f32], what: &str) {
        assert_eq!(got.len(), expect.len(), "{what}: length");
        let same = got.iter().zip(expect).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{what} diverged from the naive fold: {got:?} vs {expect:?}");
    }

    #[test]
    fn reduce_rows_matches_naive_bitwise() {
        // Shapes cover full gather blocks (>=16 rows), remainders,
        // single rows, and zero-length folds.
        for &(rows, mid) in &[(1, 1), (33, 7), (16, 64), (5, 3), (40, 1), (7, 0), (18, 25)] {
            for &op in &[RedOp::Sum, RedOp::Max] {
                for &scale in &[None, Some(1.0 / mid.max(1) as f32)] {
                    let a = vals(rows * mid, 21);
                    let mut out = vec![f32::NAN; rows];
                    reduce_rows(&a, 0, &mut out, mid, op, scale);
                    let expect = naive_reduce(&a, rows, mid, 1, op, scale);
                    assert_bits_eq(&out, &expect, &format!("rows ({rows},{mid}) {op:?}"));
                }
            }
        }
        // Row offset slices like a threaded chunk would.
        let (rows, mid) = (37, 9);
        let a = vals(rows * mid, 22);
        let mut full = vec![0.0f32; rows];
        reduce_rows(&a, 0, &mut full, mid, RedOp::Sum, None);
        let mut part = vec![0.0f32; rows - 4];
        reduce_rows(&a, 4, &mut part, mid, RedOp::Sum, None);
        assert_eq!(&full[4..], &part[..]);
    }

    #[test]
    fn reduce_groups_matches_naive_bitwise() {
        for &(groups, mid, inner) in
            &[(1, 1, 1), (3, 7, 33), (2, 5, 16), (4, 0, 9), (2, 8, 3), (1, 12, 40)]
        {
            for &op in &[RedOp::Sum, RedOp::Max] {
                for &scale in &[None, Some(0.25f32)] {
                    let a = vals(groups * mid * inner, 23);
                    let mut out = vec![f32::NAN; groups * inner];
                    reduce_groups(&a, 0, &mut out, mid, inner, op, scale);
                    let expect = naive_reduce(&a, groups, mid, inner, op, scale);
                    assert_bits_eq(
                        &out,
                        &expect,
                        &format!("groups ({groups},{mid},{inner}) {op:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_max_handles_nan_and_infinities_like_the_scalar_fold() {
        // NaN poison in varying positions plus ±∞; the kernel must agree
        // bitwise with the scalar max_fold (NaN operands ignored, NaN
        // result only when every element is NaN).
        for &(rows, mid) in &[(17, 5), (20, 3)] {
            let mut a = vals(rows * mid, 31);
            a[0] = f32::NAN; // row 0 starts with NaN
            a[mid + (mid - 1)] = f32::NAN; // row 1 ends with NaN
            a[2 * mid] = f32::INFINITY;
            a[3 * mid] = f32::NEG_INFINITY;
            for v in a[4 * mid..5 * mid].iter_mut() {
                *v = f32::NAN; // row 4 all-NaN
            }
            let mut out = vec![0.0f32; rows];
            reduce_rows(&a, 0, &mut out, mid, RedOp::Max, None);
            let expect = naive_reduce(&a, rows, mid, 1, RedOp::Max, None);
            assert_bits_eq(&out, &expect, "NaN/∞ max rows");
            // NaN operands are ignored (as f32::max does), so an all-NaN
            // row keeps the -∞ seed.
            assert_eq!(out[4].to_bits(), f32::NEG_INFINITY.to_bits());

            let mut gout = vec![0.0f32; rows];
            // Same data seen as one group with inner == rows.
            reduce_groups(&a, 0, &mut gout, mid, rows, RedOp::Max, None);
            let gexpect = naive_reduce(&a, 1, mid, rows, RedOp::Max, None);
            assert_bits_eq(&gout, &gexpect, "NaN/∞ max groups");
        }
    }

    #[test]
    fn softmax_rows_tiered_matches_scalar_helper_bitwise() {
        for &(rows, n) in &[(1, 1), (17, 8), (33, 5), (16, 16), (40, 3), (2, 21)] {
            let a = vals(rows * n, 41);
            let mut out = vec![f32::NAN; rows * n];
            softmax_rows_tiered(&a, 0, &mut out, n);
            let mut expect = a.clone();
            for row in expect.chunks_mut(n) {
                crate::ops::softmax_row_inplace(row);
            }
            assert_bits_eq(&out, &expect, &format!("softmax ({rows},{n})"));
        }
        // Offset selects a row range like a threaded chunk would.
        let (rows, n) = (21, 6);
        let a = vals(rows * n, 42);
        let mut full = vec![0.0f32; rows * n];
        softmax_rows_tiered(&a, 0, &mut full, n);
        let mut part = vec![0.0f32; (rows - 3) * n];
        softmax_rows_tiered(&a, 3 * n, &mut part, n);
        assert_eq!(&full[3 * n..], &part[..]);
    }

    #[test]
    fn max_fold_pins_f32_max_nan_semantics() {
        assert_eq!(max_fold(1.0, f32::NAN).to_bits(), 1.0f32.to_bits());
        assert!(max_fold(f32::NAN, f32::NAN).is_nan());
        assert_eq!(max_fold(f32::NAN, 2.0).to_bits(), 2.0f32.to_bits());
        assert_eq!(max_fold(f32::NEG_INFINITY, f32::NAN).to_bits(), f32::NEG_INFINITY.to_bits());
        // The ±0 tie f32::max leaves unspecified is pinned: acc wins.
        assert_eq!(max_fold(0.0, -0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(max_fold(-0.0, 0.0).to_bits(), (-0.0f32).to_bits());
    }
}
