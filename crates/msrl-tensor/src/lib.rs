//! # msrl-tensor
//!
//! A from-scratch dense-tensor and neural-network substrate for the
//! [msrl-rs](https://github.com/msrl-rs/msrl-rs) reproduction of the MSRL
//! paper (USENIX ATC 2023).
//!
//! The original MSRL system executes dataflow fragments with the MindSpore
//! deep-learning engine. This crate plays that role here: it provides
//!
//! * [`Tensor`] — a row-major, contiguous, `f32` dense tensor with
//!   broadcasting element-wise arithmetic, matrix multiplication, reductions
//!   and shape manipulation;
//! * [`autograd`] — a tape-based reverse-mode automatic-differentiation
//!   engine over tensors;
//! * [`nn`] — neural-network building blocks (linear layers, multi-layer
//!   perceptrons, activations) used for RL policies and value functions;
//! * [`optim`] — SGD and Adam optimizers;
//! * [`dist`] — probability distributions (diagonal Gaussian, categorical)
//!   needed by policy-gradient methods.
//!
//! All fallible operations return [`Result`]; the library never panics on
//! user input (shape mismatches are reported as [`TensorError`]).
//!
//! ## Example
//!
//! ```
//! use msrl_tensor::{Tensor, autograd::Tape};
//!
//! let tape = Tape::new();
//! let x = tape.var(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
//! let w = tape.var(Tensor::from_vec(vec![0.5, -0.5, 1.0, 1.5], &[2, 2]).unwrap());
//! let y = x.matmul(&w).unwrap().sum();
//! let grads = tape.backward(&y).unwrap();
//! assert_eq!(grads.get(w.id()).unwrap().shape(), &[2, 2]);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod autograd;
pub mod dist;
pub mod error;
pub mod fastmath;
pub mod init;
pub mod kernels;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod par;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use par::Backend;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
