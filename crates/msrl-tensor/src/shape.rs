//! Shape arithmetic: volumes, strides and NumPy-style broadcasting.

use crate::error::TensorError;
use crate::Result;

/// A tensor shape: the extent of each axis, outermost first.
///
/// `Shape` is a thin wrapper over `Vec<usize>` that centralises the shape
/// arithmetic (volume, row-major strides, broadcast resolution) used across
/// the crate. A rank-0 shape (`[]`) denotes a scalar with volume 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major (C-order) strides for this shape.
    ///
    /// The stride of axis `i` is the number of linear elements between
    /// consecutive indices along that axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Resolves the broadcast shape of `self` and `other` under NumPy
    /// rules: align from the trailing axis; extents must be equal or one of
    /// them 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when any aligned pair of
    /// extents is incompatible.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0usize; rank];
        for i in 0..rank {
            let a = *self.0.get(self.rank().wrapping_sub(i + 1)).unwrap_or(&1);
            let b = *other.0.get(other.rank().wrapping_sub(i + 1)).unwrap_or(&1);
            out[rank - 1 - i] = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return Err(TensorError::ShapeMismatch {
                    op: "broadcast",
                    lhs: self.0.clone(),
                    rhs: other.0.clone(),
                });
            };
        }
        Ok(Shape(out))
    }

    /// Converts a linear index into per-axis coordinates for this shape.
    pub fn unravel(&self, mut linear: usize) -> Vec<usize> {
        let mut coords = vec![0; self.rank()];
        for (i, s) in self.strides().iter().enumerate() {
            coords[i] = linear / s;
            linear %= s;
        }
        coords
    }

    /// Converts per-axis coordinates into a linear index, clamping each
    /// coordinate to `0` along axes of extent 1 (the broadcast read rule).
    pub fn ravel_broadcast(&self, coords: &[usize]) -> usize {
        debug_assert!(coords.len() >= self.rank());
        let offset = coords.len() - self.rank();
        let strides = self.strides();
        let mut linear = 0;
        for i in 0..self.rank() {
            let c = if self.0[i] == 1 { 0 } else { coords[offset + i] };
            linear += c * strides[i];
        }
        linear
    }
}

/// A precomputed addressing plan for one broadcast binary operation.
///
/// Replaces per-element [`Shape::unravel`] + [`Shape::ravel_broadcast`]
/// (which allocate a coordinate vector per output element) with strided
/// iteration: the maximal trailing run of axes on which each operand is
/// either fully materialised or fully broadcast collapses into a single
/// contiguous *inner* loop, and the remaining *outer* axes advance by an
/// allocation-free odometer.
#[derive(Debug, Clone)]
pub struct BroadcastPlan {
    /// Elements per inner (contiguous) run.
    inner: usize,
    /// Operand step per inner element: 1 (materialised) or 0 (broadcast).
    a_inner_stride: usize,
    /// As `a_inner_stride`, for the right operand.
    b_inner_stride: usize,
    /// Extents of the outer axes, outermost first.
    outer_dims: Vec<usize>,
    /// Left-operand stride per outer axis (0 on broadcast axes).
    a_outer_strides: Vec<usize>,
    /// Right-operand stride per outer axis (0 on broadcast axes).
    b_outer_strides: Vec<usize>,
    /// Product of `outer_dims`.
    outer_steps: usize,
}

impl BroadcastPlan {
    /// Builds the plan for reading `a` and `b` at every position of
    /// `out` (which must be their broadcast shape).
    pub fn new(a: &Shape, b: &Shape, out: &Shape) -> Self {
        let rank = out.rank();
        let pad = |s: &Shape| -> Vec<usize> {
            let mut ext = vec![1usize; rank - s.rank()];
            ext.extend_from_slice(s.dims());
            ext
        };
        let a_ext = pad(a);
        let b_ext = pad(b);
        let eff_strides = |ext: &[usize]| -> Vec<usize> {
            let mut strides = vec![0usize; rank];
            let mut acc = 1usize;
            for i in (0..rank).rev() {
                strides[i] = if ext[i] == 1 { 0 } else { acc };
                acc *= ext[i];
            }
            strides
        };
        let a_eff = eff_strides(&a_ext);
        let b_eff = eff_strides(&b_ext);

        // Greedily extend the inner run from the trailing axis while each
        // operand stays in a single regime over the whole run: extents
        // matching `out` (contiguous read) or all ones (constant read).
        let (mut a_match, mut a_ones) = (true, true);
        let (mut b_match, mut b_ones) = (true, true);
        let mut split = rank;
        while split > 0 {
            let ax = split - 1;
            let na_match = a_match && a_ext[ax] == out.0[ax];
            let na_ones = a_ones && a_ext[ax] == 1;
            let nb_match = b_match && b_ext[ax] == out.0[ax];
            let nb_ones = b_ones && b_ext[ax] == 1;
            if !(na_match || na_ones) || !(nb_match || nb_ones) {
                break;
            }
            a_match = na_match;
            a_ones = na_ones;
            b_match = nb_match;
            b_ones = nb_ones;
            split = ax;
        }

        let inner: usize = out.0[split..].iter().product();
        BroadcastPlan {
            inner,
            a_inner_stride: usize::from(a_match && inner > 1),
            b_inner_stride: usize::from(b_match && inner > 1),
            outer_dims: out.0[..split].to_vec(),
            a_outer_strides: a_eff[..split].to_vec(),
            b_outer_strides: b_eff[..split].to_vec(),
            outer_steps: out.0[..split].iter().product(),
        }
    }

    /// Elements per contiguous inner run.
    pub fn inner(&self) -> usize {
        self.inner
    }

    /// Operand steps per inner element: `(a_step, b_step)`, each 0 or 1.
    pub fn inner_strides(&self) -> (usize, usize) {
        (self.a_inner_stride, self.b_inner_stride)
    }

    /// Number of inner runs (the product of the outer extents).
    pub fn outer_steps(&self) -> usize {
        self.outer_steps
    }

    /// Calls `f(a_base, b_base)` with the operand base offsets of every
    /// inner run in `range`, in ascending run order.
    ///
    /// Bases advance by an incremental odometer, so the per-run cost is
    /// O(1) amortised and allocation-free.
    pub fn for_each_base(&self, range: std::ops::Range<usize>, mut f: impl FnMut(usize, usize)) {
        if range.is_empty() {
            return;
        }
        let rank = self.outer_dims.len();
        // Seed coordinates and bases from the first run index.
        let mut coords = vec![0usize; rank];
        let (mut a_base, mut b_base) = (0usize, 0usize);
        let mut rem = range.start;
        for ax in (0..rank).rev() {
            let c = rem % self.outer_dims[ax];
            rem /= self.outer_dims[ax];
            coords[ax] = c;
            a_base += c * self.a_outer_strides[ax];
            b_base += c * self.b_outer_strides[ax];
        }
        for _ in range.clone() {
            f(a_base, b_base);
            // Odometer increment, innermost outer axis first.
            for ax in (0..rank).rev() {
                coords[ax] += 1;
                a_base += self.a_outer_strides[ax];
                b_base += self.b_outer_strides[ax];
                if coords[ax] < self.outer_dims[ax] {
                    break;
                }
                a_base -= self.outer_dims[ax] * self.a_outer_strides[ax];
                b_base -= self.outer_dims[ax] * self.b_outer_strides[ax];
                coords[ax] = 0;
            }
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(Shape::new(&[]).volume(), 1);
    }

    #[test]
    fn volume_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).volume(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_with_ones() {
        let a = Shape::new(&[2, 1, 4]);
        let b = Shape::new(&[3, 1]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[2, 3, 4]));
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::new(&[2, 2]);
        let s = Shape::new(&[]);
        assert_eq!(a.broadcast(&s).unwrap(), a);
        assert_eq!(s.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_incompatible_fails() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[4, 3]);
        assert!(a.broadcast(&b).is_err());
    }

    #[test]
    fn unravel_ravel_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        for i in 0..24 {
            let coords = s.unravel(i);
            assert_eq!(s.ravel_broadcast(&coords), i);
        }
    }

    #[test]
    fn ravel_broadcast_clamps_unit_axes() {
        let s = Shape::new(&[1, 3]);
        // Coordinate (5, 2) in a broadcast target of [6, 3] reads (0, 2).
        assert_eq!(s.ravel_broadcast(&[5, 2]), 2);
    }

    /// The strided plan visits exactly the offsets the coordinate-based
    /// reference produces, for every broadcast pattern shape combination
    /// the kernels rely on — including degenerate unit axes.
    #[test]
    fn broadcast_plan_matches_unravel_reference() {
        let cases: &[(&[usize], &[usize])] = &[
            (&[2, 3], &[2, 3]),
            (&[2, 3], &[3]),
            (&[2, 3], &[1]),
            (&[2, 3], &[]),
            (&[2, 1], &[1, 3]),
            (&[4, 1, 3], &[2, 1]),
            (&[1], &[5]),
            (&[1, 1, 1], &[2, 2, 2]),
            (&[6, 1, 4], &[6, 5, 1]),
            (&[3, 1, 1, 2], &[1, 4, 1, 2]),
        ];
        for &(da, db) in cases {
            let a = Shape::new(da);
            let b = Shape::new(db);
            let out = a.broadcast(&b).unwrap();
            let plan = BroadcastPlan::new(&a, &b, &out);
            assert_eq!(plan.outer_steps() * plan.inner(), out.volume(), "{da:?} {db:?}");
            let (ais, bis) = plan.inner_strides();
            let mut seen = Vec::new();
            plan.for_each_base(0..plan.outer_steps(), |ab, bb| {
                for t in 0..plan.inner() {
                    seen.push((ab + t * ais, bb + t * bis));
                }
            });
            let expect: Vec<(usize, usize)> = (0..out.volume())
                .map(|i| {
                    let coords = out.unravel(i);
                    (a.ravel_broadcast(&coords), b.ravel_broadcast(&coords))
                })
                .collect();
            assert_eq!(seen, expect, "plan disagrees for {da:?} vs {db:?}");
            // Split iteration must agree with full iteration.
            let mid = plan.outer_steps() / 2;
            let mut split = Vec::new();
            plan.for_each_base(0..mid, |ab, bb| split.push((ab, bb)));
            plan.for_each_base(mid..plan.outer_steps(), |ab, bb| split.push((ab, bb)));
            let mut full = Vec::new();
            plan.for_each_base(0..plan.outer_steps(), |ab, bb| full.push((ab, bb)));
            assert_eq!(split, full);
        }
    }
}
