//! Shape arithmetic: volumes, strides and NumPy-style broadcasting.

use crate::error::TensorError;
use crate::Result;

/// A tensor shape: the extent of each axis, outermost first.
///
/// `Shape` is a thin wrapper over `Vec<usize>` that centralises the shape
/// arithmetic (volume, row-major strides, broadcast resolution) used across
/// the crate. A rank-0 shape (`[]`) denotes a scalar with volume 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major (C-order) strides for this shape.
    ///
    /// The stride of axis `i` is the number of linear elements between
    /// consecutive indices along that axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Resolves the broadcast shape of `self` and `other` under NumPy
    /// rules: align from the trailing axis; extents must be equal or one of
    /// them 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when any aligned pair of
    /// extents is incompatible.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0usize; rank];
        for i in 0..rank {
            let a = *self.0.get(self.rank().wrapping_sub(i + 1)).unwrap_or(&1);
            let b = *other.0.get(other.rank().wrapping_sub(i + 1)).unwrap_or(&1);
            out[rank - 1 - i] = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return Err(TensorError::ShapeMismatch {
                    op: "broadcast",
                    lhs: self.0.clone(),
                    rhs: other.0.clone(),
                });
            };
        }
        Ok(Shape(out))
    }

    /// Converts a linear index into per-axis coordinates for this shape.
    pub fn unravel(&self, mut linear: usize) -> Vec<usize> {
        let mut coords = vec![0; self.rank()];
        for (i, s) in self.strides().iter().enumerate() {
            coords[i] = linear / s;
            linear %= s;
        }
        coords
    }

    /// Converts per-axis coordinates into a linear index, clamping each
    /// coordinate to `0` along axes of extent 1 (the broadcast read rule).
    pub fn ravel_broadcast(&self, coords: &[usize]) -> usize {
        debug_assert!(coords.len() >= self.rank());
        let offset = coords.len() - self.rank();
        let strides = self.strides();
        let mut linear = 0;
        for i in 0..self.rank() {
            let c = if self.0[i] == 1 { 0 } else { coords[offset + i] };
            linear += c * strides[i];
        }
        linear
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(Shape::new(&[]).volume(), 1);
    }

    #[test]
    fn volume_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).volume(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_with_ones() {
        let a = Shape::new(&[2, 1, 4]);
        let b = Shape::new(&[3, 1]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[2, 3, 4]));
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::new(&[2, 2]);
        let s = Shape::new(&[]);
        assert_eq!(a.broadcast(&s).unwrap(), a);
        assert_eq!(s.broadcast(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_incompatible_fails() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[4, 3]);
        assert!(a.broadcast(&b).is_err());
    }

    #[test]
    fn unravel_ravel_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        for i in 0..24 {
            let coords = s.unravel(i);
            assert_eq!(s.ravel_broadcast(&coords), i);
        }
    }

    #[test]
    fn ravel_broadcast_clamps_unit_axes() {
        let s = Shape::new(&[1, 3]);
        // Coordinate (5, 2) in a broadcast target of [6, 3] reads (0, 2).
        assert_eq!(s.ravel_broadcast(&[5, 2]), 2);
    }
}
