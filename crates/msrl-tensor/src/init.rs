//! Parameter initialisation schemes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::tensor::Tensor;

/// Creates a deterministic RNG from a seed. All randomness in the
/// reproduction flows through explicitly-seeded generators so that
/// experiments are repeatable run-to-run.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight
/// matrix: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| rng.gen_range(-a..=a)).collect();
    Tensor::from_vec(data, &[fan_in, fan_out]).expect("length matches shape")
}

/// Scaled normal initialisation: `N(0, scale²)` over the given shape.
pub fn normal(dims: &[usize], scale: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = dims.iter().product();
    let dist = Normal::new(0.0f32, scale.max(f32::MIN_POSITIVE)).expect("scale > 0");
    let data = (0..n).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, dims).expect("length matches shape")
}

/// Uniform initialisation over `[-bound, bound]`.
pub fn uniform(dims: &[usize], bound: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = dims.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-bound..=bound)).collect();
    Tensor::from_vec(data, dims).expect("length matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds_hold() {
        let mut r = rng(7);
        let w = xavier_uniform(64, 64, &mut r);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= a));
        assert_eq!(w.shape(), &[64, 64]);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let w1 = xavier_uniform(8, 8, &mut rng(42));
        let w2 = xavier_uniform(8, 8, &mut rng(42));
        assert_eq!(w1, w2);
        let w3 = xavier_uniform(8, 8, &mut rng(43));
        assert_ne!(w1, w3);
    }

    #[test]
    fn normal_has_roughly_right_scale() {
        let mut r = rng(1);
        let w = normal(&[10_000], 0.5, &mut r);
        let mean: f32 = w.data().iter().sum::<f32>() / w.len() as f32;
        let var: f32 =
            w.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }
}
