//! Tape-based reverse-mode automatic differentiation.
//!
//! The MSRL paper executes learner fragments as compiled computational
//! graphs inside a DL engine; the engine supplies gradients. This module is
//! that engine's autodiff: a classic Wengert-list (tape) design where every
//! forward operation on a [`Var`] appends a node recording how to propagate
//! the output gradient back to its parents.
//!
//! The tape is single-threaded by design — in MSRL each *device* runs its
//! own engine instance, and the distributed runtime synchronises gradients
//! *between* devices with collectives (`msrl-comm`), never by sharing a
//! tape.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::TensorError;
use crate::ops;
use crate::tensor::Tensor;
use crate::Result;

/// A backward rule: maps the gradient of a node's output to the gradient
/// contribution for one parent.
type GradFn = Box<dyn Fn(&Tensor) -> Tensor>;

struct Node {
    value: Tensor,
    /// `(parent id, rule)` pairs; leaves have none.
    parents: Vec<(usize, GradFn)>,
}

#[derive(Default)]
struct TapeInner {
    nodes: Vec<Node>,
}

/// A gradient tape.
///
/// Cloning a `Tape` yields another handle to the same tape (cheap
/// reference-count bump).
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

/// A differentiable variable: a handle to one node on a [`Tape`].
///
/// `Var`s are cheap to clone and carry their tape with them, so expression
/// code never needs to thread the tape explicitly.
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    id: usize,
}

/// The result of [`Tape::backward`]: gradients of the loss with respect to
/// every node that influenced it.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient for node `id`, if the node influenced the loss.
    pub fn get(&self, id: usize) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Gradient for a variable, defaulting to zeros of the value's shape
    /// when the variable did not influence the loss.
    pub fn get_or_zeros(&self, var: &Var) -> Tensor {
        match self.get(var.id) {
            Some(g) => g.clone(),
            None => Tensor::zeros(var.value().shape()),
        }
    }

    /// Moves the gradient for a variable out of the result, defaulting to
    /// zeros when the variable did not influence the loss. Each node's
    /// gradient can be taken once; use this when extracting final
    /// per-parameter gradients to skip [`Gradients::get_or_zeros`]'s copy.
    pub fn take_or_zeros(&mut self, var: &Var) -> Tensor {
        match self.grads.get_mut(var.id).and_then(Option::take) {
            Some(g) => g,
            None => Tensor::zeros(var.value().shape()),
        }
    }
}

/// Sums a broadcast gradient back down to `target` shape.
///
/// If the forward pass broadcast a `[2]` operand up to `[3, 2]`, the
/// gradient flowing back has shape `[3, 2]` and must be summed over the
/// broadcast axes to produce a `[2]` gradient.
fn reduce_grad(grad: &Tensor, target: &[usize]) -> Tensor {
    if grad.shape() == target {
        return grad.clone();
    }
    let mut g = grad.clone();
    // Collapse leading axes the target does not have.
    while g.rank() > target.len() {
        g = ops::sum_axis(&g, 0).expect("rank checked above");
    }
    // Sum over axes where the target extent is 1 but the gradient's is not.
    #[allow(clippy::needless_range_loop)] // indexes two slices in lockstep
    for axis in 0..g.rank() {
        if target[axis] == 1 && g.shape()[axis] != 1 {
            let summed = ops::sum_axis(&g, axis).expect("axis in range");
            // Re-insert the unit axis to keep ranks aligned.
            let mut dims = summed.shape().to_vec();
            dims.insert(axis, 1);
            g = summed.reshape(&dims).expect("volume unchanged");
        }
    }
    g
}

/// Maps the output gradient of a fused linear node back through its
/// activation, using the same element-wise closures as the standalone
/// activation nodes (tanh/sigmoid differentiate via the *output*, and
/// ReLU's output mask equals its input mask).
fn fused_act_grad(act: ops::Act, g: &Tensor, out: &Tensor) -> Tensor {
    match act {
        ops::Act::Relu => ops::zip_broadcast(g, out, |gv, ov| if ov > 0.0 { gv } else { 0.0 })
            .expect("same shape"),
        ops::Act::Tanh => {
            ops::zip_broadcast(g, out, |gv, ov| gv * (1.0 - ov * ov)).expect("same shape")
        }
        ops::Act::Sigmoid => {
            ops::zip_broadcast(g, out, |gv, ov| gv * ov * (1.0 - ov)).expect("same shape")
        }
        ops::Act::Linear => g.clone(),
    }
}

/// `g · bᵀ` for backward rules: the transpose-free kernel
/// ([`ops::matmul_bt`]) when the kernel tier is on, the materialised
/// transpose otherwise. Both produce bit-identical results; the tiered
/// route skips one allocation and strided copy per gradient.
fn grad_matmul_bt(g: &Tensor, b: &Tensor) -> Tensor {
    if crate::par::tier_enabled() {
        ops::matmul_bt(g, b).expect("fwd shapes")
    } else {
        ops::matmul(g, &ops::transpose(b).expect("matrix")).expect("fwd shapes")
    }
}

/// `aᵀ · g` for backward rules; the [`ops::matmul_at`] counterpart of
/// [`grad_matmul_bt`].
fn grad_matmul_at(a: &Tensor, g: &Tensor) -> Tensor {
    if crate::par::tier_enabled() {
        ops::matmul_at(a, g).expect("fwd shapes")
    } else {
        ops::matmul(&ops::transpose(a).expect("matrix"), g).expect("fwd shapes")
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a leaf variable (input or parameter).
    pub fn var(&self, value: Tensor) -> Var {
        self.record(value, Vec::new())
    }

    fn record(&self, value: Tensor, parents: Vec<(usize, GradFn)>) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node { value, parents });
        Var { tape: self.clone(), id }
    }

    /// Runs reverse-mode differentiation from the scalar `loss`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NonScalarLoss`] when `loss` is not a single
    /// element, and [`TensorError::UnknownVariable`] when `loss` belongs to
    /// a different tape.
    pub fn backward(&self, loss: &Var) -> Result<Gradients> {
        if !Rc::ptr_eq(&self.inner, &loss.tape.inner) {
            return Err(TensorError::UnknownVariable { id: loss.id });
        }
        let inner = self.inner.borrow();
        let loss_node =
            inner.nodes.get(loss.id).ok_or(TensorError::UnknownVariable { id: loss.id })?;
        if loss_node.value.len() != 1 {
            return Err(TensorError::NonScalarLoss { shape: loss_node.value.shape().to_vec() });
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; inner.nodes.len()];
        grads[loss.id] = Some(Tensor::full(loss_node.value.shape(), 1.0));
        // Nodes are appended in topological order, so a reverse scan visits
        // every node after all of its consumers.
        for id in (0..=loss.id).rev() {
            // Parents were recorded before their consumers, so `pid < id`
            // always holds and the node's own gradient can be borrowed
            // while parent slots are written — no clone of `grad_out`.
            let (parent_grads, rest) = grads.split_at_mut(id);
            let Some(grad_out) = rest[0].as_ref() else { continue };
            // Parent rules fire in recorded order, each with the same
            // `grad_out` — the fused linear node's rules share work
            // through this invariant.
            for (pid, rule) in &inner.nodes[id].parents {
                debug_assert!(*pid < id, "parent recorded after consumer");
                let contribution = rule(grad_out);
                match &mut parent_grads[*pid] {
                    Some(acc) => {
                        *acc = ops::add(acc, &contribution)
                            .expect("gradient shapes match parent value shapes");
                    }
                    slot @ None => *slot = Some(contribution),
                }
            }
        }
        Ok(Gradients { grads })
    }
}

impl Var {
    /// The node id on its tape.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The forward value.
    pub fn value(&self) -> Tensor {
        self.tape.inner.borrow().nodes[self.id].value.clone()
    }

    /// The shape of the forward value.
    pub fn shape(&self) -> Vec<usize> {
        self.tape.inner.borrow().nodes[self.id].value.shape().to_vec()
    }

    fn unary(&self, value: Tensor, rule: GradFn) -> Var {
        self.tape.record(value, vec![(self.id, rule)])
    }

    fn binary(&self, other: &Var, value: Tensor, lrule: GradFn, rrule: GradFn) -> Var {
        self.tape.record(value, vec![(self.id, lrule), (other.id, rrule)])
    }

    /// Element-wise addition with broadcasting.
    pub fn add(&self, other: &Var) -> Result<Var> {
        let (a, b) = (self.value(), other.value());
        let out = ops::add(&a, &b)?;
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        Ok(self.binary(
            other,
            out,
            Box::new(move |g| reduce_grad(g, &sa)),
            Box::new(move |g| reduce_grad(g, &sb)),
        ))
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(&self, other: &Var) -> Result<Var> {
        let (a, b) = (self.value(), other.value());
        let out = ops::sub(&a, &b)?;
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        Ok(self.binary(
            other,
            out,
            Box::new(move |g| reduce_grad(g, &sa)),
            Box::new(move |g| reduce_grad(&ops::neg(g), &sb)),
        ))
    }

    /// Element-wise multiplication with broadcasting.
    pub fn mul(&self, other: &Var) -> Result<Var> {
        let (a, b) = (self.value(), other.value());
        let out = ops::mul(&a, &b)?;
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        let (ac, bc) = (a.clone(), b.clone());
        Ok(self.binary(
            other,
            out,
            Box::new(move |g| reduce_grad(&ops::mul(g, &bc).expect("fwd shapes"), &sa)),
            Box::new(move |g| reduce_grad(&ops::mul(g, &ac).expect("fwd shapes"), &sb)),
        ))
    }

    /// Element-wise division with broadcasting.
    pub fn div(&self, other: &Var) -> Result<Var> {
        let (a, b) = (self.value(), other.value());
        let out = ops::div(&a, &b)?;
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        let (ac, bc) = (a.clone(), b.clone());
        let bc2 = bc.clone();
        Ok(self.binary(
            other,
            out,
            Box::new(move |g| reduce_grad(&ops::div(g, &bc2).expect("fwd shapes"), &sa)),
            Box::new(move |g| {
                // d(a/b)/db = -a / b^2
                let b2 = ops::square(&bc);
                let t = ops::div(&ops::mul(g, &ac).expect("fwd shapes"), &b2).expect("fwd shapes");
                reduce_grad(&ops::neg(&t), &sb)
            }),
        ))
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.unary(ops::neg(&self.value()), Box::new(ops::neg))
    }

    /// Adds a constant scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        self.unary(ops::add_scalar(&self.value(), s), Box::new(|g| g.clone()))
    }

    /// Multiplies by a constant scalar.
    pub fn mul_scalar(&self, s: f32) -> Var {
        self.unary(ops::mul_scalar(&self.value(), s), Box::new(move |g| ops::mul_scalar(g, s)))
    }

    /// Matrix multiplication of rank-2 values.
    pub fn matmul(&self, other: &Var) -> Result<Var> {
        let (a, b) = (self.value(), other.value());
        let out = ops::matmul(&a, &b)?;
        let (ac, bc) = (a.clone(), b.clone());
        Ok(self.binary(
            other,
            out,
            Box::new(move |g| {
                // dL/dA = G · Bᵀ
                grad_matmul_bt(g, &bc)
            }),
            Box::new(move |g| {
                // dL/dB = Aᵀ · G
                grad_matmul_at(&ac, g)
            }),
        ))
    }

    /// Fused linear layer `act(self · w + b)` recorded as one tape node.
    ///
    /// The forward pass runs the fused kernel ([`ops::linear_act`]) —
    /// one traversal of the output instead of three, with no
    /// intermediate tensors — and each backward rule composes exactly
    /// the primitive gradient ops the separate matmul/add/activation
    /// nodes would use, so values *and* gradients are bit-identical to
    /// the unfused composition (ReLU's output mask `out > 0` agrees
    /// with its input mask `pre > 0`, including NaN pre-activations,
    /// which `max(NaN, 0) = 0` also masks out).
    ///
    /// # Errors
    ///
    /// Returns the shape errors of [`ops::linear_act`].
    pub fn linear(&self, w: &Var, b: &Var, act: ops::Act) -> Result<Var> {
        let (x, wv, bv) = (self.value(), w.value(), b.value());
        let out = ops::linear_act(&x, &wv, &bv, act)?;
        let b_shape = bv.shape().to_vec();
        // One shared copy of the output for the three backward rules
        // (tanh/sigmoid/relu differentiate through it), and one shared
        // slot for the activation-mapped gradient `gp`. `backward`
        // visits a node at most once per run and invokes its parent
        // rules in recorded order with the same output gradient, so the
        // x-rule computes `gp` and stores it, the w-rule borrows it,
        // and the b-rule takes it — the separate activation node of the
        // unfused composition computes it exactly once too.
        let out_x = out.clone();
        let cache: Rc<RefCell<Option<Tensor>>> = Rc::new(RefCell::new(None));
        let cache_x = Rc::clone(&cache);
        let cache_w = Rc::clone(&cache);
        Ok(self.tape.record(
            out,
            vec![
                (self.id, {
                    Box::new(move |g| {
                        let gp = fused_act_grad(act, g, &out_x);
                        let gx = grad_matmul_bt(&gp, &wv);
                        *cache_x.borrow_mut() = Some(gp);
                        gx
                    })
                }),
                (w.id, {
                    Box::new(move |_g| {
                        let cached = cache_w.borrow();
                        let gp = cached.as_ref().expect("x-rule ran first and cached gp");
                        grad_matmul_at(&x, gp)
                    })
                }),
                (b.id, {
                    Box::new(move |_g| {
                        let gp = cache.borrow_mut().take().expect("w-rule left gp cached");
                        reduce_grad(&gp, &b_shape)
                    })
                }),
            ],
        ))
    }

    /// ReLU activation.
    pub fn relu(&self) -> Var {
        let a = self.value();
        let out = ops::relu(&a);
        Var::unary(
            self,
            out,
            Box::new(move |g| {
                ops::zip_broadcast(g, &a, |gv, av| if av > 0.0 { gv } else { 0.0 })
                    .expect("same shape")
            }),
        )
    }

    /// Hyperbolic-tangent activation.
    pub fn tanh(&self) -> Var {
        let out = ops::tanh(&self.value());
        let oc = out.clone();
        self.unary(
            out,
            Box::new(move |g| {
                // d tanh(x)/dx = 1 - tanh(x)^2
                ops::zip_broadcast(g, &oc, |gv, ov| gv * (1.0 - ov * ov)).expect("same shape")
            }),
        )
    }

    /// Logistic sigmoid activation.
    pub fn sigmoid(&self) -> Var {
        let out = ops::sigmoid(&self.value());
        let oc = out.clone();
        self.unary(
            out,
            Box::new(move |g| {
                ops::zip_broadcast(g, &oc, |gv, ov| gv * ov * (1.0 - ov)).expect("same shape")
            }),
        )
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var {
        let out = ops::exp(&self.value());
        let oc = out.clone();
        self.unary(out, Box::new(move |g| ops::mul(g, &oc).expect("same shape")))
    }

    /// Element-wise natural log (input clamped away from zero).
    pub fn ln(&self) -> Var {
        let a = self.value();
        let out = ops::ln(&a);
        self.unary(
            out,
            Box::new(move |g| {
                ops::zip_broadcast(g, &a, |gv, av| gv / av.max(f32::MIN_POSITIVE))
                    .expect("same shape")
            }),
        )
    }

    /// Element-wise square.
    pub fn square(&self) -> Var {
        let a = self.value();
        let out = ops::square(&a);
        self.unary(
            out,
            Box::new(move |g| {
                ops::zip_broadcast(g, &a, |gv, av| gv * 2.0 * av).expect("same shape")
            }),
        )
    }

    /// Element-wise clamp. Gradients pass through only inside `[lo, hi]`
    /// (the usual sub-gradient convention, as used for PPO's ratio clip).
    pub fn clamp(&self, lo: f32, hi: f32) -> Var {
        let a = self.value();
        let out = ops::clamp(&a, lo, hi);
        self.unary(
            out,
            Box::new(move |g| {
                ops::zip_broadcast(g, &a, |gv, av| if av >= lo && av <= hi { gv } else { 0.0 })
                    .expect("same shape")
            }),
        )
    }

    /// Element-wise minimum of two variables; the gradient routes to
    /// whichever operand is smaller (ties go to `self`).
    pub fn min(&self, other: &Var) -> Result<Var> {
        let (a, b) = (self.value(), other.value());
        let out = ops::minimum(&a, &b)?;
        let (sa, sb) = (a.shape().to_vec(), b.shape().to_vec());
        let (ac, bc) = (a.clone(), b.clone());
        let (ac2, bc2) = (a, b);
        Ok(self.binary(
            other,
            out,
            Box::new(move |g| {
                let masked = ops::zip_broadcast(
                    &ops::zip_broadcast(&ac, &bc, |x, y| if x <= y { 1.0 } else { 0.0 })
                        .expect("fwd shapes"),
                    g,
                    |m, gv| m * gv,
                )
                .expect("fwd shapes");
                reduce_grad(&masked, &sa)
            }),
            Box::new(move |g| {
                let masked = ops::zip_broadcast(
                    &ops::zip_broadcast(&ac2, &bc2, |x, y| if x > y { 1.0 } else { 0.0 })
                        .expect("fwd shapes"),
                    g,
                    |m, gv| m * gv,
                )
                .expect("fwd shapes");
                reduce_grad(&masked, &sb)
            }),
        ))
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Var {
        let shape = self.value().shape().to_vec();
        self.unary(
            ops::sum_all(&self.value()),
            Box::new(move |g| {
                let gv = g.item().expect("scalar grad");
                Tensor::full(&shape, gv)
            }),
        )
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Var {
        let shape = self.value().shape().to_vec();
        let n = self.value().len().max(1) as f32;
        self.unary(
            ops::mean_all(&self.value()),
            Box::new(move |g| {
                let gv = g.item().expect("scalar grad") / n;
                Tensor::full(&shape, gv)
            }),
        )
    }

    /// Row-wise log-softmax of a rank-2 value.
    pub fn log_softmax_rows(&self) -> Result<Var> {
        let a = self.value();
        let out = ops::log_softmax_rows(&a)?;
        let soft = ops::exp(&out);
        Ok(self.unary(
            out,
            Box::new(move |g| {
                // d log_softmax / dx: G - softmax * rowsum(G)
                let (m, n) = (soft.shape()[0], soft.shape()[1]);
                let mut res = vec![0.0f32; m * n];
                for i in 0..m {
                    let grow = &g.data()[i * n..(i + 1) * n];
                    let srow = &soft.data()[i * n..(i + 1) * n];
                    let gsum: f32 = grow.iter().sum();
                    for j in 0..n {
                        res[i * n + j] = grow[j] - srow[j] * gsum;
                    }
                }
                Tensor::from_vec(res, &[m, n]).expect("same shape")
            }),
        ))
    }

    /// Selects one element per row: `out[i] = self[i, idx[i]]`.
    pub fn select_per_row(&self, idx: &[usize]) -> Result<Var> {
        let a = self.value();
        let out = ops::select_per_row(&a, idx)?;
        let idx = idx.to_vec();
        let (m, n) = (a.shape()[0], a.shape()[1]);
        Ok(self.unary(
            out,
            Box::new(move |g| {
                let mut res = vec![0.0f32; m * n];
                for (i, &j) in idx.iter().enumerate() {
                    res[i * n + j] = g.data()[i];
                }
                Tensor::from_vec(res, &[m, n]).expect("shape fixed")
            }),
        ))
    }

    /// Reshape (gradient reshapes back).
    pub fn reshape(&self, dims: &[usize]) -> Result<Var> {
        let a = self.value();
        let out = a.reshape(dims)?;
        let orig = a.shape().to_vec();
        Ok(self.unary(out, Box::new(move |g| g.reshape(&orig).expect("volume unchanged"))))
    }

    /// Detaches the value from the tape: the result is a fresh leaf, so no
    /// gradient flows through it (MSRL uses this for advantage targets).
    pub fn detach(&self) -> Var {
        self.tape.var(self.value())
    }

    /// A handle to the tape this variable lives on.
    pub fn tape(&self) -> Tape {
        self.tape.clone()
    }

    /// Registers a constant tensor as a fresh leaf on this variable's tape.
    ///
    /// Convenient for constants participating in traced expressions
    /// (index masks, ones vectors, targets).
    pub fn constant(&self, t: Tensor) -> Var {
        self.tape.var(t)
    }

    /// Transpose of a rank-2 value (gradient transposes back).
    pub fn transpose(&self) -> Result<Var> {
        let out = ops::transpose(&self.value())?;
        Ok(self
            .unary(out, Box::new(|g| ops::transpose(g).expect("gradient of a matrix is a matrix"))))
    }

    /// Sum along `axis`, removing that axis; the gradient broadcasts back.
    pub fn sum_axis(&self, axis: usize) -> Result<Var> {
        let a = self.value();
        let out = ops::sum_axis(&a, axis)?;
        let in_shape = a.shape().to_vec();
        Ok(self.unary(
            out,
            Box::new(move |g| {
                // Re-insert the reduced axis as extent 1 and broadcast-add into
                // a zero tensor of the input shape.
                let mut unit = g.shape().to_vec();
                unit.insert(axis, 1);
                let g1 = g.reshape(&unit).expect("volume unchanged");
                ops::add(&Tensor::zeros(&in_shape), &g1).expect("broadcast to input shape")
            }),
        ))
    }

    /// Mean along `axis`, removing that axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Var> {
        let n = *self
            .value()
            .shape()
            .get(axis)
            .ok_or(TensorError::AxisOutOfRange { axis, rank: self.value().rank() })?
            as f32;
        Ok(self.sum_axis(axis)?.mul_scalar(1.0 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn grad_of_sum_is_ones() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0], &[3]));
        let loss = x.sum();
        let g = tape.backward(&loss).unwrap();
        assert_eq!(g.get(x.id()).unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn grad_of_mul() {
        let tape = Tape::new();
        let x = tape.var(t(&[2.0, 3.0], &[2]));
        let y = tape.var(t(&[5.0, 7.0], &[2]));
        let loss = x.mul(&y).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        assert_eq!(g.get(x.id()).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(g.get(y.id()).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        let tape = Tape::new();
        let x = tape.var(Tensor::scalar(3.0));
        // loss = x*x ⇒ dloss/dx = 2x = 6
        let loss = x.mul(&x).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        assert_eq!(g.get(x.id()).unwrap().item().unwrap(), 6.0);
    }

    #[test]
    fn grad_of_matmul() {
        let tape = Tape::new();
        let a = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.var(t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]));
        let loss = a.matmul(&b).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        // dL/dA = 1·Bᵀ (all-ones times identity) = all-ones
        assert_eq!(g.get(a.id()).unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
        // dL/dB = Aᵀ·1: column sums of A broadcast over columns
        assert_eq!(g.get(b.id()).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn grad_reduces_over_broadcast() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.var(t(&[10.0, 20.0], &[2]));
        let loss = x.add(&b).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        // b was broadcast across 2 rows ⇒ its gradient sums to 2 per entry.
        assert_eq!(g.get(b.id()).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0], &[2]));
        assert!(matches!(tape.backward(&x), Err(TensorError::NonScalarLoss { .. })));
    }

    #[test]
    fn backward_rejects_foreign_tape() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let x = t1.var(Tensor::scalar(1.0));
        assert!(t2.backward(&x).is_err());
    }

    #[test]
    fn detach_blocks_gradient() {
        let tape = Tape::new();
        let x = tape.var(Tensor::scalar(2.0));
        let d = x.mul(&x).unwrap().detach();
        let loss = d.mul(&x).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        // loss = detach(x²)·x ⇒ dloss/dx = x² = 4 (no path through detach)
        assert_eq!(g.get(x.id()).unwrap().item().unwrap(), 4.0);
    }

    #[test]
    fn relu_masks_gradient() {
        let tape = Tape::new();
        let x = tape.var(t(&[-1.0, 2.0], &[2]));
        let loss = x.relu().sum();
        let g = tape.backward(&loss).unwrap();
        assert_eq!(g.get(x.id()).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn min_routes_gradient_to_smaller() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 5.0], &[2]));
        let y = tape.var(t(&[2.0, 3.0], &[2]));
        let loss = x.min(&y).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        assert_eq!(g.get(x.id()).unwrap().data(), &[1.0, 0.0]);
        assert_eq!(g.get(y.id()).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn select_per_row_scatters_grad() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let loss = x.select_per_row(&[1, 0]).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        assert_eq!(g.get(x.id()).unwrap().data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn fused_linear_matches_unfused_bitwise() {
        let xs: Vec<f32> = (0..6).map(|i| (i as f32 * 0.7).sin()).collect();
        let ws: Vec<f32> = (0..4).map(|i| (i as f32 * 0.9).cos()).collect();
        let bs = [0.1f32, -0.2];
        for act in [ops::Act::Relu, ops::Act::Tanh, ops::Act::Sigmoid, ops::Act::Linear] {
            let tape_f = Tape::new();
            let x = tape_f.var(t(&xs, &[3, 2]));
            let w = tape_f.var(t(&ws, &[2, 2]));
            let b = tape_f.var(t(&bs, &[2]));
            let fused = x.linear(&w, &b, act).unwrap();
            let loss_f = fused.sum();
            let gf = tape_f.backward(&loss_f).unwrap();

            let tape_u = Tape::new();
            let xu = tape_u.var(t(&xs, &[3, 2]));
            let wu = tape_u.var(t(&ws, &[2, 2]));
            let bu = tape_u.var(t(&bs, &[2]));
            let pre = xu.matmul(&wu).unwrap().add(&bu).unwrap();
            let unfused = match act {
                ops::Act::Relu => pre.relu(),
                ops::Act::Tanh => pre.tanh(),
                ops::Act::Sigmoid => pre.sigmoid(),
                ops::Act::Linear => pre,
            };
            assert_eq!(fused.value().data(), unfused.value().data(), "{act:?} forward");
            let loss_u = unfused.sum();
            let gu = tape_u.backward(&loss_u).unwrap();
            for ((f, u), name) in [(&x, &xu), (&w, &wu), (&b, &bu)].iter().zip(["x", "w", "b"]) {
                assert_eq!(
                    gf.get(f.id()).unwrap().data(),
                    gu.get(u.id()).unwrap().data(),
                    "{act:?} grad {name} must be bit-identical"
                );
            }
        }
    }

    /// Central-difference check for a composite expression.
    #[test]
    fn numeric_gradient_check_composite() {
        let eval = |vals: &[f32]| -> f32 {
            let tape = Tape::new();
            let x = tape.var(t(vals, &[3]));
            let y = x.tanh().mul(&x.sigmoid()).unwrap().add_scalar(0.5).square().sum();
            y.value().item().unwrap()
        };
        let point = [0.3f32, -0.7, 1.2];
        let tape = Tape::new();
        let x = tape.var(t(&point, &[3]));
        let y = x.tanh().mul(&x.sigmoid()).unwrap().add_scalar(0.5).square().sum();
        let g = tape.backward(&y).unwrap();
        let analytic = g.get(x.id()).unwrap().data().to_vec();
        let eps = 1e-3;
        for i in 0..3 {
            let mut lo = point;
            let mut hi = point;
            lo[i] -= eps;
            hi[i] += eps;
            let numeric = (eval(&hi) - eval(&lo)) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 1e-2,
                "axis {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }
}
