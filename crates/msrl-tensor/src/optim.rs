//! Gradient-descent optimizers (SGD with momentum, Adam) and gradient
//! utilities.
//!
//! Optimizers run inside *learner* fragments. Under data-parallel policies
//! (DP-C in the paper's Tab. 2), gradients are AllReduce-averaged across
//! learner replicas *before* being passed to [`Optimizer::step`], so the
//! optimizer itself is oblivious to distribution.

use crate::ops;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// A first-order optimizer over a flat list of parameter tensors.
pub trait Optimizer {
    /// Applies one update. `params` and `grads` must be index-aligned and
    /// shape-aligned (the order produced by `Mlp::params_mut`).
    ///
    /// # Errors
    ///
    /// Returns an error when lengths or shapes are misaligned.
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (hyper-parameter retuning, e.g. when
    /// switching to the multi-learner policy DP-C, per §7.2).
    fn set_learning_rate(&mut self, lr: f32);
}

fn check_aligned(params: &[&mut Tensor], grads: &[Tensor]) -> Result<()> {
    if params.len() != grads.len() {
        return Err(TensorError::LengthMismatch { expected: params.len(), actual: grads.len() });
    }
    for (p, g) in params.iter().zip(grads) {
        if p.shape() != g.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "optimizer_step",
                lhs: p.shape().to_vec(),
                rhs: g.shape().to_vec(),
            });
        }
    }
    Ok(())
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) -> Result<()> {
        check_aligned(params, grads)?;
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                    *pv -= self.lr * gv;
                }
            }
            return Ok(());
        }
        if self.velocity.is_empty() {
            self.velocity = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        if self.velocity.len() != grads.len() {
            return Err(TensorError::LengthMismatch {
                expected: self.velocity.len(),
                actual: grads.len(),
            });
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            for ((pv, gv), vv) in p.data_mut().iter_mut().zip(g.data()).zip(v.data_mut()) {
                *vv = self.momentum * *vv + gv;
                *pv -= self.lr * *vv;
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Creates Adam with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) -> Result<()> {
        check_aligned(params, grads)?;
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
            self.v = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
        }
        if self.m.len() != grads.len() {
            return Err(TensorError::LengthMismatch {
                expected: self.m.len(),
                actual: grads.len(),
            });
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, g), m), v) in params.iter_mut().zip(grads).zip(&mut self.m).zip(&mut self.v) {
            for (((pv, gv), mv), vv) in
                p.data_mut().iter_mut().zip(g.data()).zip(m.data_mut()).zip(v.data_mut())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Rescales `grads` in place so their global L2 norm is at most
/// `max_norm`; returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let sq: f32 = grads.iter().flat_map(|g| g.data()).map(|v| v * v).sum();
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.data_mut() {
                *v *= scale;
            }
        }
    }
    norm
}

/// Element-wise average of aligned gradient lists — the host-side fallback
/// for gradient AllReduce when replicas are co-located (DP-C with fused
/// fragments).
///
/// # Errors
///
/// Returns an error when the lists are empty or misaligned.
pub fn average_grads(replica_grads: &[Vec<Tensor>]) -> Result<Vec<Tensor>> {
    let first = replica_grads.first().ok_or(TensorError::EmptyInput { op: "average_grads" })?;
    let n = replica_grads.len() as f32;
    let mut out = first.clone();
    for other in &replica_grads[1..] {
        if other.len() != out.len() {
            return Err(TensorError::LengthMismatch { expected: out.len(), actual: other.len() });
        }
        for (acc, g) in out.iter_mut().zip(other) {
            *acc = ops::add(acc, g)?;
        }
    }
    for g in &mut out {
        *g = ops::mul_scalar(g, 1.0 / n);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [&mut p], &[g]).unwrap();
        assert_eq!(p.data(), &[0.95, 1.05]);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut p = Tensor::scalar(0.0);
        let g = Tensor::scalar(1.0);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        opt.step(&mut [&mut p], std::slice::from_ref(&g)).unwrap();
        let after1 = p.item().unwrap();
        opt.step(&mut [&mut p], std::slice::from_ref(&g)).unwrap();
        let step2 = after1 - p.item().unwrap();
        // Second step is larger: v = 0.9·1 + 1 = 1.9 ⇒ step 0.19 vs 0.1.
        assert!((step2 - 0.19).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(x) = (x - 3)^2 from x = 0.
        let mut x = Tensor::scalar(0.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = Tensor::scalar(2.0 * (x.item().unwrap() - 3.0));
            opt.step(&mut [&mut x], &[g]).unwrap();
        }
        assert!((x.item().unwrap() - 3.0).abs() < 1e-2, "x = {}", x.item().unwrap());
    }

    #[test]
    fn step_checks_alignment() {
        let mut p = Tensor::zeros(&[2]);
        let g = Tensor::zeros(&[3]);
        let mut opt = Sgd::new(0.1);
        assert!(opt.step(&mut [&mut p], &[g]).is_err());
        assert!(opt.step(&mut [&mut p], &[]).is_err());
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let mut gs = vec![Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap()];
        let pre = clip_grad_norm(&mut gs, 1.0);
        assert_eq!(pre, 5.0);
        let post: f32 = gs[0].data().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-6);
        // Under the cap, gradients are untouched.
        let mut gs2 = vec![Tensor::from_vec(vec![0.3, 0.4], &[2]).unwrap()];
        clip_grad_norm(&mut gs2, 1.0);
        assert_eq!(gs2[0].data(), &[0.3, 0.4]);
    }

    #[test]
    fn average_grads_averages() {
        let a = vec![Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap()];
        let b = vec![Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap()];
        let avg = average_grads(&[a, b]).unwrap();
        assert_eq!(avg[0].data(), &[2.0, 3.0]);
        assert!(average_grads(&[]).is_err());
    }
}
