//! Tensor math: broadcasting element-wise ops, matmul, reductions and
//! shape-manipulating operators.
//!
//! These are the "DL-engine operators" of the reproduction: the MSRL
//! fragment interpreter in `msrl-core` lowers traced dataflow nodes onto
//! exactly these functions, the same way the original system lowers onto
//! MindSpore operators.

use crate::error::TensorError;
use crate::kernels;
use crate::par;
use crate::shape::{BroadcastPlan, Shape};
use crate::tensor::Tensor;
use crate::Result;

// ---------------------------------------------------------------------------
// Element-wise with broadcasting
// ---------------------------------------------------------------------------

/// Applies `f` element-wise over the broadcast of `a` and `b`.
///
/// Addressing goes through a precomputed [`BroadcastPlan`] — no
/// per-element coordinate vectors — and large outputs are partitioned
/// across worker threads under [`par::Backend::Threaded`].
pub fn zip_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
    let out_shape = a.shape_obj().broadcast(b.shape_obj())?;
    let vol = out_shape.volume();
    let ad = a.data();
    let bd = b.data();
    let mut data = crate::alloc::take_zeroed(vol);
    // Fast path: identical shapes need no plan at all.
    if a.shape() == b.shape() {
        let fill = |offset: usize, chunk: &mut [f32]| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = f(ad[offset + i], bd[offset + i]);
            }
        };
        if par::should_parallelize(vol, par::PAR_MIN_ELEMS) {
            par::fill_chunks(&mut data, fill);
        } else {
            fill(0, &mut data);
        }
        return Tensor::from_vec(data, out_shape.dims());
    }
    let plan = BroadcastPlan::new(a.shape_obj(), b.shape_obj(), &out_shape);
    let inner = plan.inner();
    let (ais, bis) = plan.inner_strides();
    let fill = |offset: usize, chunk: &mut [f32]| {
        let run0 = offset / inner;
        let runs = chunk.len() / inner;
        let mut w = 0;
        plan.for_each_base(run0..run0 + runs, |a_base, b_base| {
            for t in 0..inner {
                chunk[w] = f(ad[a_base + t * ais], bd[b_base + t * bis]);
                w += 1;
            }
        });
    };
    if par::should_parallelize(vol, par::PAR_MIN_ELEMS) && plan.outer_steps() > 1 {
        par::fill_chunks_aligned(&mut data, inner, fill);
    } else {
        fill(0, &mut data);
    }
    Tensor::from_vec(data, out_shape.dims())
}

/// Applies `f` element-wise in place, reusing `a`'s buffer — no pool
/// round-trip, no allocation. Bit-identical to [`map`]; the graph
/// compiler's liveness plan selects this variant when it proves the
/// input's storage is dead after the op.
pub fn map_inplace(mut a: Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let data = a.data_mut();
    let fill = |_offset: usize, chunk: &mut [f32]| {
        for slot in chunk.iter_mut() {
            *slot = f(*slot);
        }
    };
    if par::should_parallelize(data.len(), par::PAR_MIN_ELEMS) {
        par::fill_chunks(data, fill);
    } else {
        fill(0, data);
    }
    a
}

/// Applies `f(a[i], b[i])` element-wise into `a`'s buffer. Requires equal
/// shapes — the compiler only plans in-place execution for the
/// no-broadcast case, where it is bit-identical to [`zip_broadcast`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn zip_inplace(
    mut a: Tensor,
    b: &Tensor,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Result<Tensor> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "zip_inplace",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let bd = b.data();
    let data = a.data_mut();
    let fill = |offset: usize, chunk: &mut [f32]| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = f(*slot, bd[offset + i]);
        }
    };
    if par::should_parallelize(data.len(), par::PAR_MIN_ELEMS) {
        par::fill_chunks(data, fill);
    } else {
        fill(0, data);
    }
    Ok(a)
}

/// Applies `f` element-wise to a single tensor (chunk-parallel under the
/// threaded backend).
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let ad = a.data();
    let mut data = crate::alloc::take_zeroed(ad.len());
    let fill = |offset: usize, chunk: &mut [f32]| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = f(ad[offset + i]);
        }
    };
    if par::should_parallelize(ad.len(), par::PAR_MIN_ELEMS) {
        par::fill_chunks(&mut data, fill);
    } else {
        fill(0, &mut data);
    }
    Tensor::from_vec(data, a.shape()).expect("map preserves shape")
}

macro_rules! binary_op {
    ($(#[$doc:meta])* $name:ident, $f:expr) => {
        $(#[$doc])*
        pub fn $name(a: &Tensor, b: &Tensor) -> Result<Tensor> {
            zip_broadcast(a, b, $f)
        }
    };
}

binary_op!(
    /// Element-wise addition with broadcasting.
    add, |x, y| x + y
);
binary_op!(
    /// Element-wise subtraction with broadcasting.
    sub, |x, y| x - y
);
binary_op!(
    /// Element-wise multiplication with broadcasting.
    mul, |x, y| x * y
);
binary_op!(
    /// Element-wise division with broadcasting.
    div, |x, y| x / y
);
binary_op!(
    /// Element-wise maximum with broadcasting.
    maximum, |x, y| x.max(y)
);
binary_op!(
    /// Element-wise minimum with broadcasting.
    minimum, |x, y| x.min(y)
);

/// Adds a scalar to every element.
pub fn add_scalar(a: &Tensor, s: f32) -> Tensor {
    map(a, |x| x + s)
}

/// Multiplies every element by a scalar.
pub fn mul_scalar(a: &Tensor, s: f32) -> Tensor {
    map(a, |x| x * s)
}

/// Element-wise negation.
pub fn neg(a: &Tensor) -> Tensor {
    map(a, |x| -x)
}

/// Applies a [`crate::fastmath`] transcendental element-wise — the
/// tier-2 twin of [`map`], same chunk partitioning (the kernels are
/// element-wise and ISA-deterministic, so chunk boundaries cannot
/// perturb results).
fn map_fast(a: &Tensor, u: crate::fastmath::Unary) -> Tensor {
    let ad = a.data();
    let mut data = crate::alloc::take_zeroed(ad.len());
    let fill = |offset: usize, chunk: &mut [f32]| {
        chunk.copy_from_slice(&ad[offset..offset + chunk.len()]);
        crate::fastmath::apply_slice(u, chunk);
    };
    if par::should_parallelize(ad.len(), par::PAR_MIN_ELEMS) {
        par::fill_chunks(&mut data, fill);
    } else {
        fill(0, &mut data);
    }
    Tensor::from_vec(data, a.shape()).expect("map_fast preserves shape")
}

/// Element-wise exponential (vectorized polynomial under `MSRL_TIER=2`).
pub fn exp(a: &Tensor) -> Tensor {
    if par::fastmath_enabled() {
        return map_fast(a, crate::fastmath::Unary::Exp);
    }
    map(a, f32::exp)
}

/// Element-wise natural logarithm.
///
/// Inputs are clamped to `f32::MIN_POSITIVE` to keep gradients finite, the
/// standard DL-engine convention for `Log` operators.
pub fn ln(a: &Tensor) -> Tensor {
    map(a, |x| x.max(f32::MIN_POSITIVE).ln())
}

/// Element-wise square root (of the clamped-to-zero input).
pub fn sqrt(a: &Tensor) -> Tensor {
    map(a, |x| x.max(0.0).sqrt())
}

/// Element-wise ReLU.
pub fn relu(a: &Tensor) -> Tensor {
    map(a, |x| x.max(0.0))
}

/// Element-wise hyperbolic tangent (vectorized polynomial under
/// `MSRL_TIER=2`).
pub fn tanh(a: &Tensor) -> Tensor {
    if par::fastmath_enabled() {
        return map_fast(a, crate::fastmath::Unary::Tanh);
    }
    map(a, f32::tanh)
}

/// Element-wise logistic sigmoid (vectorized polynomial under
/// `MSRL_TIER=2`).
pub fn sigmoid(a: &Tensor) -> Tensor {
    if par::fastmath_enabled() {
        return map_fast(a, crate::fastmath::Unary::Sigmoid);
    }
    map(a, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Element-wise square.
pub fn square(a: &Tensor) -> Tensor {
    map(a, |x| x * x)
}

/// Clamps every element into `[lo, hi]`.
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Tensor {
    map(a, |x| x.clamp(lo, hi))
}

// ---------------------------------------------------------------------------
// Matrix multiplication
// ---------------------------------------------------------------------------

/// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices and
/// [`TensorError::ShapeMismatch`] when the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: b.rank() });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut out = crate::alloc::take_zeroed(m * n);
    let ad = a.data();
    let bd = b.data();
    // Row blocks are independent, so the threaded backend partitions the
    // output by rows; every element accumulates over `k` in ascending
    // order on both backends, keeping them bit-exact.
    let flops = m * k * n;
    if par::tier_enabled() && flops >= TIER_MIN_FLOPS {
        // Hot-size product: pack `b` on the fly and run the
        // register-tiled microkernels (bit-identical to `matmul_rows`;
        // see [`crate::kernels`]). Plans the interpreter has tiered up
        // skip even this packing via [`matmul_prepacked`].
        let bp = crate::kernels::pack_b(bd, k, n);
        if par::should_parallelize(flops, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
            par::fill_chunks_aligned(&mut out, n, |offset, chunk| {
                crate::kernels::matmul_packed_rows(ad, offset / n, chunk, k, n, &bp);
            });
        } else {
            crate::kernels::matmul_packed_rows(ad, 0, &mut out, k, n, &bp);
        }
    } else if par::tier_enabled() {
        // Small product: SIMD lanes across output columns, straight off
        // the row-major operand — no packing copy to amortise
        // (bit-identical per element; see [`crate::kernels`]).
        if par::should_parallelize(flops, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
            par::fill_chunks_aligned(&mut out, n, |offset, chunk| {
                crate::kernels::matmul_simd_rows(ad, offset / n, chunk, k, n, bd);
            });
        } else {
            crate::kernels::matmul_simd_rows(ad, 0, &mut out, k, n, bd);
        }
    } else if par::should_parallelize(flops, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
        par::fill_chunks_aligned(&mut out, n, |offset, chunk| {
            matmul_rows(ad, bd, offset / n, chunk, k, n);
        });
    } else {
        matmul_rows(ad, bd, 0, &mut out, k, n);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Multiply–add count at or above which [`matmul`] packs `b` on the fly
/// for the register-tiled microkernels; below it the packing copy costs
/// more than the tiles save, so the naive kernel keeps the small-shape
/// path (MLP-sized layers stay naive — their tier wins come from
/// [`matmul_at`] / [`matmul_bt`] and the interpreter's pre-packed
/// plans).
pub const TIER_MIN_FLOPS: usize = 64 * 64 * 64;

/// Matrix product against a pre-packed right operand:
/// `[m, k] × packed[k, n] → [m, n]`.
///
/// The interpreter's kernel tier packs a hot plan's weights once and
/// calls this on every subsequent evaluation, so steady state does zero
/// packing work. Bit-identical to [`matmul`] (see [`crate::kernels`]).
///
/// # Errors
///
/// Same contract as [`matmul`], with the packed operand's recorded
/// `[k, n]` standing in for `b.shape()`.
pub fn matmul_prepacked(a: &Tensor, bp: &crate::kernels::PackedB) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul", expected: 2, actual: a.rank() });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (bp.k(), bp.n());
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_vec(),
            rhs: vec![k2, n],
        });
    }
    let mut out = crate::alloc::take_zeroed(m * n);
    let ad = a.data();
    if par::should_parallelize(m * k * n, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
        par::fill_chunks_aligned(&mut out, n, |offset, chunk| {
            crate::kernels::matmul_packed_rows(ad, offset / n, chunk, k, n, bp);
        });
    } else {
        crate::kernels::matmul_packed_rows(ad, 0, &mut out, k, n, bp);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transposed-LHS product without materialising the transpose:
/// `aᵀ · b` for `a: [p, m]`, `b: [p, n]` → `[m, n]`.
///
/// Autograd's weight gradients are all `xᵀ · g` products; the naive
/// route copies `x` through [`transpose`] (an allocation plus a strided
/// walk) before every such matmul. Here each output element accumulates
/// `a[kk][i] * b[kk][j]` for `kk` ascending — exactly the sequence
/// `matmul(&transpose(a)?, b)` performs — so the result is
/// bit-identical while skipping the intermediate entirely.
///
/// # Errors
///
/// Returns the same rank/shape errors as [`matmul`] (shared first axis
/// `p` plays the inner-dimension role).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul_at", expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul_at", expected: 2, actual: b.rank() });
    }
    let (p, m) = (a.shape()[0], a.shape()[1]);
    let (p2, n) = (b.shape()[0], b.shape()[1]);
    if p != p2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut out = crate::alloc::take_zeroed(m * n);
    let ad = a.data();
    let bd = b.data();
    let fill = |offset: usize, chunk: &mut [f32]| {
        if n == 0 {
            return;
        }
        crate::kernels::matmul_at_rows(ad, offset / n, chunk, p, m, n, bd);
    };
    if par::should_parallelize(p * m * n, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
        par::fill_chunks_aligned(&mut out, n, fill);
    } else {
        fill(0, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transposed-RHS product without materialising the transpose:
/// `a · bᵀ` for `a: [m, p]`, `b: [n, p]` → `[m, n]`.
///
/// The counterpart of [`matmul_at`] for autograd's input gradients
/// (`g · wᵀ`). Each output element is the dot product of row `i` of `a`
/// and row `j` of `b`, accumulated over `kk` ascending — the sequence
/// `matmul(a, &transpose(b)?)` performs — so results are bit-identical,
/// and both operands stream contiguously.
///
/// # Errors
///
/// Returns the same rank/shape errors as [`matmul`] (shared second axis
/// `p` plays the inner-dimension role).
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul_bt", expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "matmul_bt", expected: 2, actual: b.rank() });
    }
    let (m, p) = (a.shape()[0], a.shape()[1]);
    let (n, p2) = (b.shape()[0], b.shape()[1]);
    if p != p2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bt",
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut out = crate::alloc::take_zeroed(m * n);
    let ad = a.data();
    let bd = b.data();
    let tier = par::tier_enabled();
    let fill = |offset: usize, chunk: &mut [f32]| {
        if n == 0 {
            return;
        }
        let row0 = offset / n;
        if tier {
            // Gather kernel: lanes across output columns (rows of b), no
            // transpose materialised, scalar accumulation order per element.
            crate::kernels::matmul_bt_rows(ad, row0, chunk, p, n, bd);
            return;
        }
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            let arow = &ad[(row0 + r) * p..(row0 + r + 1) * p];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * p..(j + 1) * p];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
    };
    if par::should_parallelize(m * p * n, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
        par::fill_chunks_aligned(&mut out, n, fill);
    } else {
        fill(0, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Accumulates `out_rows` (rows `row0..` of the product) serially.
///
/// i-k-j order keeps the inner loop contiguous over `b` and the output;
/// rows are processed in small blocks so each streamed row of `b` is
/// reused across the whole block while hot in cache. There is
/// deliberately no skip of zero elements of `a`: IEEE semantics require
/// `0 × NaN` and `0 × ∞` to contaminate the accumulator.
fn matmul_rows(ad: &[f32], bd: &[f32], row0: usize, out_rows: &mut [f32], k: usize, n: usize) {
    const MM_ROW_BLOCK: usize = 4;
    if n == 0 {
        return;
    }
    let rows = out_rows.len() / n;
    let mut r = 0;
    while r < rows {
        let block = (rows - r).min(MM_ROW_BLOCK);
        for kk in 0..k {
            let brow = &bd[kk * n..(kk + 1) * n];
            for rr in r..r + block {
                let av = ad[(row0 + rr) * k + kk];
                let orow = &mut out_rows[rr * n..(rr + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        r += block;
    }
}

/// Activation selector for the fused linear kernel.
///
/// Each variant applies the *same scalar expression* as the matching
/// element-wise op ([`relu`], [`tanh`], [`sigmoid`], identity), which is
/// what keeps [`linear_act`] bit-identical to the unfused
/// matmul → bias-add → activation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// `max(v, 0)` — same as [`relu`].
    Relu,
    /// `tanh(v)` — same as [`tanh`].
    Tanh,
    /// `1 / (1 + e^{-v})` — same as [`sigmoid`].
    Sigmoid,
    /// Identity (no activation).
    Linear,
}

impl Act {
    /// Applies the activation to a single element.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Act::Relu => v.max(0.0),
            Act::Tanh => v.tanh(),
            Act::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Act::Linear => v,
        }
    }
}

/// Bias + activation epilogue over a row-aligned output chunk, shared
/// by [`linear_act`] and [`linear_act_prepacked`]. Under the fast-math
/// tier (`fm`), Tanh/Sigmoid run the vectorized [`crate::fastmath`]
/// kernels over the whole chunk after a plain bias pass; every other
/// combination replays the exact per-element `act(v + b[j])` sequence
/// of the separate operators (bit-identical contract).
fn act_epilogue(chunk: &mut [f32], bd: &[f32], n: usize, act: Act, fm: bool) {
    if n == 0 {
        return;
    }
    let fast = match (fm, act) {
        (true, Act::Tanh) => Some(crate::fastmath::Unary::Tanh),
        (true, Act::Sigmoid) => Some(crate::fastmath::Unary::Sigmoid),
        _ => None,
    };
    if let Some(u) = fast {
        for row in chunk.chunks_mut(n) {
            for (o, &bv) in row.iter_mut().zip(bd) {
                *o += bv;
            }
        }
        crate::fastmath::apply_slice(u, chunk);
        return;
    }
    for row in chunk.chunks_mut(n) {
        for (o, &bv) in row.iter_mut().zip(bd) {
            *o = act.apply(*o + bv);
        }
    }
}

/// Fused linear layer: `act(x·w + b)` for `x: [m, k]`, `w: [k, n]`,
/// `b: [n]` in one pass over the output.
///
/// The unfused chain walks the `[m, n]` output three times (matmul
/// accumulate, broadcast bias add, activation map) and round-trips two
/// intermediate tensors through the allocator; here the bias+activation
/// epilogue runs on each output chunk while it is still cache-hot.
/// Accumulation reuses the exact matmul inner kernel and the epilogue
/// applies `act(v + b[j])` per element — the same floating-point
/// sequence as the separate operators, so results are bit-identical on
/// both backends (partitioning is by output rows, as in [`matmul`]).
///
/// # Errors
///
/// Returns the same rank/shape errors as [`matmul`], plus
/// [`TensorError::ShapeMismatch`] when `b` is not a length-`n` vector.
pub fn linear_act(x: &Tensor, w: &Tensor, b: &Tensor, act: Act) -> Result<Tensor> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "linear_act", expected: 2, actual: x.rank() });
    }
    if w.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "linear_act", expected: 2, actual: w.rank() });
    }
    let (m, k) = (x.shape()[0], x.shape()[1]);
    let (k2, n) = (w.shape()[0], w.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "linear_act",
            lhs: x.shape().to_vec(),
            rhs: w.shape().to_vec(),
        });
    }
    if b.rank() != 1 || b.shape()[0] != n {
        return Err(TensorError::ShapeMismatch {
            op: "linear_act",
            lhs: vec![n],
            rhs: b.shape().to_vec(),
        });
    }
    msrl_telemetry::static_counter!("tensor.fused_linear").add(1);
    let mut out = crate::alloc::take_zeroed(m * n);
    let xd = x.data();
    let wd = w.data();
    let bd = b.data();
    let tier = par::tier_enabled();
    let fm = par::fastmath_enabled();
    let fill = |offset: usize, chunk: &mut [f32]| {
        if tier {
            crate::kernels::matmul_simd_rows(xd, offset / n.max(1), chunk, k, n, wd);
        } else {
            matmul_rows(xd, wd, offset / n.max(1), chunk, k, n);
        }
        act_epilogue(chunk, bd, n, act, fm);
    };
    // Same parallel guard and row-aligned partitioning as matmul, so the
    // fused and unfused paths agree chunk-for-chunk on both backends.
    if par::should_parallelize(m * k * n, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
        par::fill_chunks_aligned(&mut out, n, fill);
    } else {
        fill(0, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

/// [`linear_act`] against a pre-packed weight operand, for plans the
/// interpreter has tiered up. Bit-identical to the unpacked kernel.
///
/// # Errors
///
/// Same contract as [`linear_act`], with the packed operand's recorded
/// `[k, n]` standing in for `w.shape()`.
pub fn linear_act_prepacked(
    x: &Tensor,
    wp: &crate::kernels::PackedB,
    b: &Tensor,
    act: Act,
) -> Result<Tensor> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "linear_act", expected: 2, actual: x.rank() });
    }
    let (m, k) = (x.shape()[0], x.shape()[1]);
    let (k2, n) = (wp.k(), wp.n());
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "linear_act",
            lhs: x.shape().to_vec(),
            rhs: vec![k2, n],
        });
    }
    if b.rank() != 1 || b.shape()[0] != n {
        return Err(TensorError::ShapeMismatch {
            op: "linear_act",
            lhs: vec![n],
            rhs: b.shape().to_vec(),
        });
    }
    msrl_telemetry::static_counter!("tensor.fused_linear").add(1);
    let mut out = crate::alloc::take_zeroed(m * n);
    let xd = x.data();
    let bd = b.data();
    let fm = par::fastmath_enabled();
    let fill = |offset: usize, chunk: &mut [f32]| {
        crate::kernels::matmul_packed_rows(xd, offset / n.max(1), chunk, k, n, wp);
        act_epilogue(chunk, bd, n, act, fm);
    };
    if par::should_parallelize(m * k * n, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
        par::fill_chunks_aligned(&mut out, n, fill);
    } else {
        fill(0, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Fused policy head: `softmax_rows(x·w + b)` in one pass over the
/// output.
///
/// The linear part reuses the exact [`linear_act`] accumulation and
/// bias epilogue (with identity activation); each finished row then
/// runs the exact [`softmax_rows`] row arithmetic in place via the
/// shared [`softmax_row_inplace`] helper, so the fusion is bit-identical
/// to the separate `matmul → add → softmax_rows` chain on both
/// backends.
///
/// # Errors
///
/// Same contract as [`linear_act`].
pub fn linear_softmax(x: &Tensor, w: &Tensor, b: &Tensor) -> Result<Tensor> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "linear_softmax",
            expected: 2,
            actual: x.rank(),
        });
    }
    if w.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "linear_softmax",
            expected: 2,
            actual: w.rank(),
        });
    }
    let (m, k) = (x.shape()[0], x.shape()[1]);
    let (k2, n) = (w.shape()[0], w.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "linear_softmax",
            lhs: x.shape().to_vec(),
            rhs: w.shape().to_vec(),
        });
    }
    if b.rank() != 1 || b.shape()[0] != n {
        return Err(TensorError::ShapeMismatch {
            op: "linear_softmax",
            lhs: vec![n],
            rhs: b.shape().to_vec(),
        });
    }
    msrl_telemetry::static_counter!("tensor.fused_linear_softmax").add(1);
    let mut out = crate::alloc::take_zeroed(m * n);
    let xd = x.data();
    let wd = w.data();
    let bd = b.data();
    let tier = par::tier_enabled();
    let fm = par::fastmath_enabled();
    let fill = |offset: usize, chunk: &mut [f32]| {
        if tier {
            crate::kernels::matmul_simd_rows(xd, offset / n.max(1), chunk, k, n, wd);
        } else {
            matmul_rows(xd, wd, offset / n.max(1), chunk, k, n);
        }
        if n > 0 {
            for row in chunk.chunks_mut(n) {
                for (o, &bv) in row.iter_mut().zip(bd) {
                    *o += bv;
                }
                if fm {
                    crate::fastmath::softmax_row_fast_inplace(row);
                } else {
                    softmax_row_inplace(row);
                }
            }
        }
    };
    if par::should_parallelize(m * k * n, par::PAR_MIN_FLOPS) && m > 1 && n > 0 {
        par::fill_chunks_aligned(&mut out, n, fill);
    } else {
        fill(0, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "transpose", expected: 2, actual: a.rank() });
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut out = crate::alloc::take_zeroed(m * n);
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a.data()[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sum of all elements, as a scalar tensor.
///
/// Under the threaded backend, large tensors sum per worker chunk and
/// the partials combine in chunk order — deterministic for a fixed
/// worker count, and equal to the scalar backend up to f32 rounding.
pub fn sum_all(a: &Tensor) -> Tensor {
    let d = a.data();
    if par::should_parallelize(d.len(), par::PAR_MIN_ELEMS) {
        let partials = par::map_ranges(d.len(), |r| d[r].iter().sum::<f32>());
        return Tensor::scalar(partials.iter().sum());
    }
    Tensor::scalar(d.iter().sum())
}

/// Mean of all elements, as a scalar tensor. Empty tensors yield 0.
pub fn mean_all(a: &Tensor) -> Tensor {
    if a.is_empty() {
        return Tensor::scalar(0.0);
    }
    Tensor::scalar(sum_all(a).data()[0] / a.len() as f32)
}

/// Maximum of all elements, as a scalar tensor.
///
/// # Errors
///
/// Returns [`TensorError::EmptyInput`] for empty tensors.
pub fn max_all(a: &Tensor) -> Result<Tensor> {
    if a.is_empty() {
        return Err(TensorError::EmptyInput { op: "max_all" });
    }
    Ok(Tensor::scalar(a.data().iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))))
}

/// Reduces along `axis`, removing that axis.
///
/// Output slots are independent, so the threaded backend partitions
/// them across workers (in groups that keep each outer slice whole);
/// every slot folds over the reduced axis in ascending order on both
/// backends, so results are bit-exact across backends. With the kernel
/// tier enabled the fold runs in the SIMD reduction microkernels
/// ([`kernels::reduce_rows`] / [`kernels::reduce_groups`]), whose lanes
/// span independent output slots and replay the same per-slot order —
/// `MSRL_TIER=0/1` stays bit-identical.
///
/// `scale`, when set, multiplies each output slot right after its own
/// fold completes — the single-pass `mean_axis` epilogue; per element it
/// is the same multiply a separate rescale traversal would perform.
fn reduce_axis(a: &Tensor, axis: usize, op: kernels::RedOp, scale: Option<f32>) -> Result<Tensor> {
    if axis >= a.rank() {
        return Err(TensorError::AxisOutOfRange { axis, rank: a.rank() });
    }
    let dims = a.shape();
    let outer: usize = dims[..axis].iter().product();
    let mid = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let ad = a.data();
    let tier = par::tier_enabled();
    let mut out = crate::alloc::take_filled(outer * inner, op.init());
    let fill = |offset: usize, chunk: &mut [f32]| {
        if tier && inner == 1 {
            kernels::reduce_rows(ad, offset, chunk, mid, op, scale);
            return;
        }
        if tier && inner > 1 {
            kernels::reduce_groups(ad, offset / inner, chunk, mid, inner, op, scale);
            return;
        }
        // Reference scalar path: one accumulator per slot, ascending m.
        let o0 = offset / inner.max(1);
        for (oi, group) in chunk.chunks_mut(inner.max(1)).enumerate() {
            let o = o0 + oi;
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                for (i, slot) in group.iter_mut().enumerate() {
                    let v = ad[base + i];
                    *slot = match op {
                        kernels::RedOp::Sum => *slot + v,
                        kernels::RedOp::Max => kernels::max_fold(*slot, v),
                    };
                }
            }
            if let Some(s) = scale {
                for slot in group.iter_mut() {
                    *slot *= s;
                }
            }
        }
    };
    if inner > 0 && outer > 1 && par::should_parallelize(a.len(), par::PAR_MIN_ELEMS) {
        par::fill_chunks_aligned(&mut out, inner, fill);
    } else {
        fill(0, &mut out);
    }
    let mut out_dims: Vec<usize> = dims[..axis].to_vec();
    out_dims.extend_from_slice(&dims[axis + 1..]);
    Tensor::from_vec(out, &out_dims)
}

/// Sum along `axis`, removing that axis.
pub fn sum_axis(a: &Tensor, axis: usize) -> Result<Tensor> {
    reduce_axis(a, axis, kernels::RedOp::Sum, None)
}

/// Mean along `axis`, removing that axis.
///
/// Single pass: each output slot is scaled by `1/n` immediately after
/// its own sum finishes, instead of materializing `sum_axis` and
/// rescaling in a second full traversal — bit-identical to the former
/// two-pass form because the per-element multiply is unchanged.
pub fn mean_axis(a: &Tensor, axis: usize) -> Result<Tensor> {
    let n =
        *a.shape().get(axis).ok_or(TensorError::AxisOutOfRange { axis, rank: a.rank() })? as f32;
    reduce_axis(a, axis, kernels::RedOp::Sum, Some(1.0 / n))
}

/// Maximum along `axis`, removing that axis.
///
/// Uses the pinned [`kernels::max_fold`] step (NaN operands ignored as
/// `f32::max` does; the ±0 tie resolved to the earlier element) so the
/// scalar reference and the SIMD kernels agree bitwise on every input.
pub fn max_axis(a: &Tensor, axis: usize) -> Result<Tensor> {
    reduce_axis(a, axis, kernels::RedOp::Max, None)
}

/// Index of the maximum along the last axis of a rank-2 tensor.
///
/// Returns a 1-D tensor of row-wise argmax indices (as `f32` values, the
/// convention used by the dataflow interpreter for index tensors).
///
/// Ties break to the **first** maximum: the fold only moves on a strict
/// `>`, so among equal maxima the lowest index wins. NaN never compares
/// greater, so a NaN past column 0 is never selected (a NaN *in* column
/// 0 seeds the fold and then nothing can displace it). The fold carries
/// `(index, value)` so each step compares against a register instead of
/// re-loading `row[best]` through a data-dependent index.
///
/// # Errors
///
/// Returns an error for non-matrix input or zero columns.
pub fn argmax_rows(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "argmax_rows", expected: 2, actual: a.rank() });
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    if n == 0 {
        return Err(TensorError::EmptyInput { op: "argmax_rows" });
    }
    let mut out = Vec::with_capacity(m);
    for i in 0..m {
        let row = &a.data()[i * n..(i + 1) * n];
        let (best, _) = row
            .iter()
            .enumerate()
            .skip(1)
            .fold((0usize, row[0]), |(bi, bv), (j, &v)| if v > bv { (j, v) } else { (bi, bv) });
        out.push(best as f32);
    }
    Tensor::from_vec(out, &[m])
}

// ---------------------------------------------------------------------------
// Softmax family
// ---------------------------------------------------------------------------

/// Numerically-stable softmax along the last axis of a rank-2 tensor.
///
/// One chunked traversal per row — max, exp-and-sum into the output,
/// then scale by the reciprocal — instead of the former
/// `exp(log_softmax)` pipeline's three full-tensor passes plus an
/// intermediate allocation (the 0.97× threaded regression in the
/// ROADMAP table). Rows are independent and split whole across workers,
/// so both backends are bit-exact.
///
/// # Errors
///
/// Returns an error for non-matrix input.
pub fn softmax_rows(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "softmax_rows",
            expected: 2,
            actual: a.rank(),
        });
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let ad = a.data();
    let mut out = crate::alloc::take_zeroed(m * n);
    if out.is_empty() {
        return Tensor::from_vec(out, &[m, n]);
    }
    let tier = par::tier_enabled();
    let fm = par::fastmath_enabled();
    let fill = |offset: usize, chunk: &mut [f32]| {
        if fm {
            // Opt-in tier 2: vectorized polynomial exp replaces the
            // scalar libm middle pass (tolerance-gated, not bitwise).
            crate::fastmath::softmax_rows_fast(ad, offset, chunk, n);
            return;
        }
        if tier {
            // Vectorized-across-rows kernel; replays this exact per-row
            // arithmetic, so MSRL_TIER=0/1 stays bit-identical.
            kernels::softmax_rows_tiered(ad, offset, chunk, n);
            return;
        }
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            orow.copy_from_slice(&ad[offset + r * n..offset + (r + 1) * n]);
            softmax_row_inplace(orow);
        }
    };
    if n > 0 && m > 1 && par::should_parallelize(m * n, par::PAR_MIN_ELEMS) {
        par::fill_chunks_aligned(&mut out, n, fill);
    } else {
        fill(0, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

/// The exact [`softmax_rows`] per-row arithmetic, applied in place: max
/// fold, exponentiate-and-sum in ascending order, then scale by the
/// reciprocal. Shared by [`softmax_rows`] and the fused
/// [`linear_softmax`] epilogue so the two stay bit-identical by
/// construction.
pub fn softmax_row_inplace(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |acc, &v| kernels::max_fold(acc, v));
    let mut sum = 0.0f32;
    for o in row.iter_mut() {
        let e = (*o - max).exp();
        sum += e;
        *o = e;
    }
    let inv = 1.0 / sum;
    for o in row.iter_mut() {
        *o *= inv;
    }
}

/// Numerically-stable log-softmax along the last axis of a rank-2 tensor.
///
/// # Errors
///
/// Returns an error for non-matrix input.
pub fn log_softmax_rows(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "log_softmax_rows",
            expected: 2,
            actual: a.rank(),
        });
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let ad = a.data();
    let mut out = crate::alloc::take_zeroed(m * n);
    if out.is_empty() {
        return Tensor::from_vec(out, &[m, n]);
    }
    // Rows are independent; the threaded backend splits them across
    // workers with identical per-row arithmetic (bit-exact).
    let fill = |offset: usize, chunk: &mut [f32]| {
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            let row = &ad[offset + r * n..offset + (r + 1) * n];
            let max = row.iter().fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
            let lse = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            for (o, &v) in orow.iter_mut().zip(row) {
                *o = v - lse;
            }
        }
    };
    if n > 0 && m > 1 && par::should_parallelize(m * n, par::PAR_MIN_ELEMS) {
        par::fill_chunks_aligned(&mut out, n, fill);
    } else {
        fill(0, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

// ---------------------------------------------------------------------------
// Shape manipulation
// ---------------------------------------------------------------------------

/// Concatenates tensors along `axis`.
///
/// # Errors
///
/// Returns an error if the list is empty, ranks differ, the axis is out of
/// range, or non-concat axes disagree.
pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor> {
    let first = parts.first().ok_or(TensorError::EmptyInput { op: "concat" })?;
    let rank = first.rank();
    if axis >= rank {
        return Err(TensorError::AxisOutOfRange { axis, rank });
    }
    let mut axis_total = 0;
    for p in parts {
        if p.rank() != rank {
            return Err(TensorError::RankMismatch {
                op: "concat",
                expected: rank,
                actual: p.rank(),
            });
        }
        for (d, (&a, &b)) in first.shape().iter().zip(p.shape()).enumerate() {
            if d != axis && a != b {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape().to_vec(),
                    rhs: p.shape().to_vec(),
                });
            }
        }
        axis_total += p.shape()[axis];
    }
    let mut out_dims = first.shape().to_vec();
    out_dims[axis] = axis_total;
    let out_shape = Shape::new(&out_dims);
    let outer: usize = out_dims[..axis].iter().product();
    let inner: usize = out_dims[axis + 1..].iter().product();
    let mut out = Vec::with_capacity(out_shape.volume());
    for o in 0..outer {
        for p in parts {
            let mid = p.shape()[axis];
            let start = o * mid * inner;
            out.extend_from_slice(&p.data()[start..start + mid * inner]);
        }
    }
    Tensor::from_vec(out, &out_dims)
}

/// Stacks equally-shaped tensors along a new leading axis.
///
/// This is the primitive behind MSRL's fragment *fusion* (§5.2 of the
/// paper): N replica tensors of shape `S` become one `[N, ..S]` tensor so a
/// single batched operator can process all replicas at once.
///
/// # Errors
///
/// Returns an error if the list is empty or shapes disagree.
pub fn stack(parts: &[&Tensor]) -> Result<Tensor> {
    let first = parts.first().ok_or(TensorError::EmptyInput { op: "stack" })?;
    let mut out = Vec::with_capacity(first.len() * parts.len());
    for p in parts {
        if p.shape() != first.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "stack",
                lhs: first.shape().to_vec(),
                rhs: p.shape().to_vec(),
            });
        }
        out.extend_from_slice(p.data());
    }
    let mut dims = vec![parts.len()];
    dims.extend_from_slice(first.shape());
    Tensor::from_vec(out, &dims)
}

/// Splits a tensor along its leading axis into `n` equal parts — the
/// inverse of [`stack`] and the "unfuse" step of fragment fusion.
///
/// # Errors
///
/// Returns an error for scalars or when the leading axis is not divisible
/// by `n`.
pub fn unstack(a: &Tensor, n: usize) -> Result<Vec<Tensor>> {
    if a.rank() == 0 || n == 0 {
        return Err(TensorError::EmptyInput { op: "unstack" });
    }
    let lead = a.shape()[0];
    if !lead.is_multiple_of(n) {
        return Err(TensorError::ShapeMismatch {
            op: "unstack",
            lhs: a.shape().to_vec(),
            rhs: vec![n],
        });
    }
    let chunk_lead = lead / n;
    let mut dims = a.shape().to_vec();
    dims[0] = chunk_lead;
    let chunk_len = a.len() / n;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(Tensor::from_vec(a.data()[i * chunk_len..(i + 1) * chunk_len].to_vec(), &dims)?);
    }
    Ok(out)
}

/// Gathers rows of a rank-2 tensor by index.
///
/// # Errors
///
/// Returns an error for non-matrix input or out-of-range indices.
pub fn gather_rows(a: &Tensor, indices: &[usize]) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { op: "gather_rows", expected: 2, actual: a.rank() });
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut out = Vec::with_capacity(indices.len() * n);
    for &i in indices {
        if i >= m {
            return Err(TensorError::IndexOutOfRange { index: i, len: m });
        }
        out.extend_from_slice(&a.data()[i * n..(i + 1) * n]);
    }
    Tensor::from_vec(out, &[indices.len(), n])
}

/// Selects one element per row of a rank-2 tensor: `out[i] = a[i, idx[i]]`.
///
/// Used to pick the log-probability of the taken action from a policy's
/// per-action output.
///
/// # Errors
///
/// Returns an error for rank/length mismatches or out-of-range indices.
pub fn select_per_row(a: &Tensor, idx: &[usize]) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "select_per_row",
            expected: 2,
            actual: a.rank(),
        });
    }
    let (m, n) = (a.shape()[0], a.shape()[1]);
    if idx.len() != m {
        return Err(TensorError::LengthMismatch { expected: m, actual: idx.len() });
    }
    let mut out = Vec::with_capacity(m);
    for (i, &j) in idx.iter().enumerate() {
        if j >= n {
            return Err(TensorError::IndexOutOfRange { index: j, len: n });
        }
        out.push(a.data()[i * n + j]);
    }
    Tensor::from_vec(out, &[m])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn add_broadcasts_row_vector() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0], &[2]);
        assert_eq!(add(&a, &b).unwrap().data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn add_broadcasts_column_vector() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0], &[2, 1]);
        assert_eq!(add(&a, &b).unwrap().data(), &[11.0, 12.0, 23.0, 24.0]);
    }

    #[test]
    fn add_rejects_incompatible() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[1.0, 2.0], &[2]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).unwrap().data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = t(&[2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[2, 4]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[3, 4]);
        assert_eq!(&c.data()[..4], &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&c.data()[8..], &[8.0, 10.0, 12.0, 14.0]);
    }

    /// IEEE semantics: a zero in the left operand must not short-circuit
    /// the accumulation, because `0 × NaN = NaN` and `0 × ∞ = NaN`.
    #[test]
    fn matmul_propagates_nan_and_inf_through_zeros() {
        let a = t(&[0.0, 0.0], &[1, 2]);
        let b = t(&[f32::NAN, f32::INFINITY], &[2, 1]);
        let c = matmul(&a, &b).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN + 0·∞ must be NaN, got {}", c.data()[0]);
    }

    #[test]
    fn matmul_checks_dims() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[1.0, 2.0, 3.0], &[3, 1]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::ones(&[2])).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = transpose(&a).unwrap();
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(transpose(&at).unwrap(), a);
    }

    #[test]
    fn reductions_match_hand_values() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(sum_all(&a).item().unwrap(), 21.0);
        assert_eq!(mean_all(&a).item().unwrap(), 3.5);
        assert_eq!(max_all(&a).unwrap().item().unwrap(), 6.0);
        assert_eq!(sum_axis(&a, 0).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sum_axis(&a, 1).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(mean_axis(&a, 1).unwrap().data(), &[2.0, 5.0]);
        assert_eq!(max_axis(&a, 0).unwrap().data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = softmax_rows(&a).unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-4, "row {i} sums to {row_sum}");
        }
        assert!(s.all_finite(), "softmax must be stable for large logits");
    }

    #[test]
    fn argmax_rows_finds_max() {
        let a = t(&[0.1, 0.9, 0.5, 0.2, 0.1, 0.05], &[2, 3]);
        assert_eq!(argmax_rows(&a).unwrap().data(), &[1.0, 0.0]);
    }

    #[test]
    fn argmax_rows_breaks_ties_to_the_first_maximum() {
        // Equal maxima: the strict-> fold keeps the lowest index.
        let a = t(&[1.0, 5.0, 5.0, 3.0, 3.0, 2.0, 7.0, 7.0, 7.0], &[3, 3]);
        assert_eq!(argmax_rows(&a).unwrap().data(), &[1.0, 0.0, 0.0]);
        // NaN past column 0 never displaces a leader; a column-0 NaN
        // seeds the fold and nothing compares greater than it.
        let b = t(&[2.0, f32::NAN, 1.0, f32::NAN, 4.0, 9.0], &[2, 3]);
        assert_eq!(argmax_rows(&b).unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0], &[1, 2]);
        let c0 = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.shape(), &[2, 2]);
        assert_eq!(c0.data(), &[1.0, 2.0, 3.0, 4.0]);
        let c1 = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.shape(), &[1, 4]);
        assert_eq!(c1.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0], &[2]);
        let s = stack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        let parts = unstack(&s, 2).unwrap();
        assert_eq!(parts[0].data(), a.data());
        assert_eq!(parts[1].data(), b.data());
    }

    #[test]
    fn gather_and_select() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = gather_rows(&a, &[2, 0]).unwrap();
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0]);
        assert!(gather_rows(&a, &[3]).is_err());
        let s = select_per_row(&a, &[1, 0, 1]).unwrap();
        assert_eq!(s.data(), &[2.0, 3.0, 6.0]);
    }

    #[test]
    fn linear_act_matches_unfused_bitwise() {
        let (m, k, n) = (5, 4, 3);
        let x = t(&(0..m * k).map(|i| (i as f32 * 0.37).sin()).collect::<Vec<_>>(), &[m, k]);
        let w = t(&(0..k * n).map(|i| (i as f32 * 0.61).cos()).collect::<Vec<_>>(), &[k, n]);
        let b = t(&(0..n).map(|i| i as f32 - 1.0).collect::<Vec<_>>(), &[n]);
        for act in [Act::Relu, Act::Tanh, Act::Sigmoid, Act::Linear] {
            let fused = linear_act(&x, &w, &b, act).unwrap();
            let pre = add(&matmul(&x, &w).unwrap(), &b).unwrap();
            let unfused = match act {
                Act::Relu => relu(&pre),
                Act::Tanh => tanh(&pre),
                Act::Sigmoid => sigmoid(&pre),
                Act::Linear => pre.clone(),
            };
            assert_eq!(fused.shape(), &[m, n]);
            assert_eq!(fused.data(), unfused.data(), "fused {act:?} must be bit-identical");
        }
    }

    #[test]
    fn linear_act_checks_shapes() {
        let x = t(&[1.0, 2.0], &[1, 2]);
        let w = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[1.0, 2.0], &[2]);
        assert!(linear_act(&x, &w, &b, Act::Linear).is_ok());
        assert!(linear_act(&x, &w, &t(&[1.0], &[1]), Act::Linear).is_err());
        assert!(linear_act(&x, &w, &t(&[1.0, 2.0], &[1, 2]), Act::Linear).is_err());
        assert!(linear_act(&x, &t(&[1.0], &[1, 1]), &b, Act::Linear).is_err());
    }

    #[test]
    fn softmax_rows_matches_log_softmax_exp_closely() {
        let a = t(&(0..12).map(|i| (i as f32 * 0.83).sin() * 3.0).collect::<Vec<_>>(), &[3, 4]);
        let fused = softmax_rows(&a).unwrap();
        let via_log = exp(&log_softmax_rows(&a).unwrap());
        for (f, l) in fused.data().iter().zip(via_log.data()) {
            assert!((f - l).abs() < 1e-6, "fused {f} vs log-path {l}");
        }
    }

    #[test]
    fn inplace_variants_match_out_of_place() {
        let a = t(&[1.0, -2.0, 3.0, -4.0], &[2, 2]);
        let b = t(&[0.5, 0.5, 2.0, 2.0], &[2, 2]);
        assert_eq!(map_inplace(a.clone(), |x| x * 2.0), map(&a, |x| x * 2.0));
        assert_eq!(zip_inplace(a.clone(), &b, |x, y| x * y).unwrap(), mul(&a, &b).unwrap());
        assert!(zip_inplace(a, &t(&[1.0], &[1]), |x, _| x).is_err());
    }

    #[test]
    fn ln_is_safe_at_zero() {
        let a = t(&[0.0, 1.0], &[2]);
        let l = ln(&a);
        assert!(l.all_finite());
        assert_eq!(l.data()[1], 0.0);
    }
}
