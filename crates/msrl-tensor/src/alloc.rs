//! A thread-local buffer pool for tensor output storage.
//!
//! Every tensor operator materialises its result into a fresh `Vec<f32>`;
//! in an interpreter loop that is one heap allocation per graph node per
//! step. The pool recycles those buffers: owners that know a tensor is
//! dead (the FDG interpreter's refcounted arena, hot training loops) hand
//! the storage back with [`Tensor::recycle`](crate::Tensor::recycle) or
//! [`give`], and subsequent operator outputs are served from the free
//! list by [`take_zeroed`] instead of the allocator.
//!
//! The pool is thread-local, so there is no synchronisation on the hot
//! path and worker threads spawned by [`crate::par`] (which never
//! allocate outputs — partitioning happens after the output buffer
//! exists) are unaffected. Buffers are binned by exact length; the pool
//! holds at most [`MAX_POOLED_ELEMS`] floats and at most
//! [`MAX_BUFFERS_PER_BUCKET`] buffers of any one length per thread,
//! silently dropping returns beyond either cap, so long runs can never
//! grow it without bound (the element cap alone would still admit
//! millions of tiny buffers whose `Vec` headers dominate).
//!
//! Hits, misses and the pooled-storage high-water mark also feed the
//! [`msrl_telemetry`] registry (`pool.hit`, `pool.miss`,
//! `pool.pooled_elems_hw`), so profiling reports see recycling behaviour
//! across every thread without poking at thread-locals.

use std::cell::RefCell;
use std::collections::HashMap;

use msrl_telemetry::{Counter, Gauge};

/// Upper bound on pooled storage per thread, in `f32` elements (16 Mi
/// elements = 64 MiB).
pub const MAX_POOLED_ELEMS: usize = 16 * 1024 * 1024;

/// Upper bound on retained buffers of any single length per thread.
pub const MAX_BUFFERS_PER_BUCKET: usize = 64;

/// Hit/miss counters for the calling thread's pool, for tests and
/// diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take_zeroed` calls served from the free list.
    pub hits: u64,
    /// `take_zeroed` calls that fell back to the allocator.
    pub misses: u64,
    /// Elements currently held in the free list.
    pub pooled_elems: usize,
    /// Most elements the free list has ever held on this thread.
    pub high_water_elems: usize,
}

struct Pool {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    stats: PoolStats,
    /// Shared-pipeline mirrors of the thread-local stats.
    hit_counter: Counter,
    miss_counter: Counter,
    high_water: Gauge,
}

impl Default for Pool {
    fn default() -> Self {
        Pool {
            buckets: HashMap::new(),
            stats: PoolStats::default(),
            hit_counter: Counter::handle("pool.hit"),
            miss_counter: Counter::handle("pool.miss"),
            high_water: Gauge::handle("pool.pooled_elems_hw"),
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Returns a zero-filled buffer of exactly `len` elements, reusing a
/// recycled buffer of the same length when one is pooled.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    take_filled(len, 0.0)
}

/// As [`take_zeroed`], but every element is `value`.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if let Some(mut buf) = pool.buckets.get_mut(&len).and_then(Vec::pop) {
            pool.stats.hits += 1;
            pool.stats.pooled_elems -= len;
            pool.hit_counter.add(1);
            buf.fill(value);
            buf
        } else {
            pool.stats.misses += 1;
            pool.miss_counter.add(1);
            vec![value; len]
        }
    })
}

/// Returns a buffer to the calling thread's pool. Buffers that would push
/// the pool past [`MAX_POOLED_ELEMS`], overfill their length bucket past
/// [`MAX_BUFFERS_PER_BUCKET`], or are zero-length are dropped instead.
pub fn give(buf: Vec<f32>) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.stats.pooled_elems + len > MAX_POOLED_ELEMS {
            return;
        }
        let bucket = pool.buckets.entry(len).or_default();
        if bucket.len() >= MAX_BUFFERS_PER_BUCKET {
            return;
        }
        bucket.push(buf);
        pool.stats.pooled_elems += len;
        if pool.stats.pooled_elems > pool.stats.high_water_elems {
            pool.stats.high_water_elems = pool.stats.pooled_elems;
            pool.high_water.maximum(pool.stats.high_water_elems as f64);
        }
    });
}

/// Current counters for the calling thread's pool.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Empties the calling thread's pool and resets its counters.
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = Pool::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_storage() {
        clear();
        let a = take_zeroed(128);
        assert_eq!(stats().misses, 1);
        give(a);
        assert_eq!(stats().pooled_elems, 128);
        let b = take_zeroed(128);
        assert_eq!(stats().hits, 1);
        assert!(b.iter().all(|&v| v == 0.0));
        clear();
    }

    #[test]
    fn recycled_buffers_come_back_zeroed() {
        clear();
        let mut a = take_zeroed(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        give(a);
        assert!(take_zeroed(8).iter().all(|&v| v == 0.0));
        clear();
    }

    #[test]
    fn mismatched_length_misses() {
        clear();
        give(vec![1.0; 16]);
        let _ = take_zeroed(32);
        assert_eq!(stats().misses, 1);
        clear();
    }

    #[test]
    fn pool_is_bounded() {
        clear();
        give(vec![0.0; MAX_POOLED_ELEMS]);
        give(vec![0.0; 64]); // over budget: dropped
        assert_eq!(stats().pooled_elems, MAX_POOLED_ELEMS);
        clear();
    }

    #[test]
    fn buckets_are_bounded() {
        clear();
        for _ in 0..MAX_BUFFERS_PER_BUCKET + 10 {
            give(vec![0.0; 4]);
        }
        assert_eq!(stats().pooled_elems, MAX_BUFFERS_PER_BUCKET * 4);
        clear();
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        clear();
        give(vec![0.0; 256]);
        give(vec![0.0; 256]);
        let _ = take_zeroed(256);
        let s = stats();
        assert_eq!(s.pooled_elems, 256);
        assert_eq!(s.high_water_elems, 512);
        clear();
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        clear();
        let before_hits = msrl_telemetry::counter_total("pool.hit");
        let before_misses = msrl_telemetry::counter_total("pool.miss");
        give(vec![0.0; 48]);
        let _ = take_zeroed(48); // hit
        let _ = take_zeroed(48); // miss
        assert!(msrl_telemetry::counter_total("pool.hit") > before_hits);
        assert!(msrl_telemetry::counter_total("pool.miss") > before_misses);
        clear();
    }
}
