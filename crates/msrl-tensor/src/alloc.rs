//! A thread-local buffer pool for tensor output storage.
//!
//! Every tensor operator materialises its result into a fresh `Vec<f32>`;
//! in an interpreter loop that is one heap allocation per graph node per
//! step. The pool recycles those buffers: owners that know a tensor is
//! dead (the FDG interpreter's refcounted arena, hot training loops) hand
//! the storage back with [`Tensor::recycle`](crate::Tensor::recycle) or
//! [`give`], and subsequent operator outputs are served from the free
//! list by [`take_zeroed`] instead of the allocator.
//!
//! The pool is thread-local, so there is no synchronisation on the hot
//! path and worker threads spawned by [`crate::par`] (which never
//! allocate outputs — partitioning happens after the output buffer
//! exists) are unaffected. Buffers are binned by exact length; the pool
//! holds at most [`MAX_POOLED_ELEMS`] floats and silently drops returns
//! beyond that, so it can never grow without bound.

use std::cell::RefCell;
use std::collections::HashMap;

/// Upper bound on pooled storage per thread, in `f32` elements (16 Mi
/// elements = 64 MiB).
pub const MAX_POOLED_ELEMS: usize = 16 * 1024 * 1024;

/// Hit/miss counters for the calling thread's pool, for tests and
/// diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take_zeroed` calls served from the free list.
    pub hits: u64,
    /// `take_zeroed` calls that fell back to the allocator.
    pub misses: u64,
    /// Elements currently held in the free list.
    pub pooled_elems: usize,
}

#[derive(Default)]
struct Pool {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    stats: PoolStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Returns a zero-filled buffer of exactly `len` elements, reusing a
/// recycled buffer of the same length when one is pooled.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    take_filled(len, 0.0)
}

/// As [`take_zeroed`], but every element is `value`.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if let Some(mut buf) = pool.buckets.get_mut(&len).and_then(Vec::pop) {
            pool.stats.hits += 1;
            pool.stats.pooled_elems -= len;
            buf.fill(value);
            buf
        } else {
            pool.stats.misses += 1;
            vec![value; len]
        }
    })
}

/// Returns a buffer to the calling thread's pool. Buffers that would push
/// the pool past [`MAX_POOLED_ELEMS`] (and zero-length buffers) are
/// dropped instead.
pub fn give(buf: Vec<f32>) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.stats.pooled_elems + len <= MAX_POOLED_ELEMS {
            pool.stats.pooled_elems += len;
            pool.buckets.entry(len).or_default().push(buf);
        }
    });
}

/// Current counters for the calling thread's pool.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Empties the calling thread's pool and resets its counters.
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = Pool::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_storage() {
        clear();
        let a = take_zeroed(128);
        assert_eq!(stats().misses, 1);
        give(a);
        assert_eq!(stats().pooled_elems, 128);
        let b = take_zeroed(128);
        assert_eq!(stats().hits, 1);
        assert!(b.iter().all(|&v| v == 0.0));
        clear();
    }

    #[test]
    fn recycled_buffers_come_back_zeroed() {
        clear();
        let mut a = take_zeroed(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        give(a);
        assert!(take_zeroed(8).iter().all(|&v| v == 0.0));
        clear();
    }

    #[test]
    fn mismatched_length_misses() {
        clear();
        give(vec![1.0; 16]);
        let _ = take_zeroed(32);
        assert_eq!(stats().misses, 1);
        clear();
    }

    #[test]
    fn pool_is_bounded() {
        clear();
        give(vec![0.0; MAX_POOLED_ELEMS]);
        give(vec![0.0; 64]); // over budget: dropped
        assert_eq!(stats().pooled_elems, MAX_POOLED_ELEMS);
        clear();
    }
}
