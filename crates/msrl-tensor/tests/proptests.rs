//! Property-based tests for the tensor substrate.
//!
//! These check algebraic invariants that must hold for *any* input, which
//! unit tests with hand-picked values cannot cover: gradient correctness
//! against central differences, broadcast algebra, and the stack/unstack
//! (fusion) round-trip that MSRL's fragment-fusion pass relies on.

use msrl_tensor::autograd::Tape;
use msrl_tensor::{kernels, ops, par, Backend, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

/// Evaluates `f` once under each backend and returns
/// `(scalar_result, threaded_result)`. Forces 4 workers and a parallel
/// threshold of 1 so even tiny property-test inputs take the
/// multi-chunk threaded code paths.
fn on_both_backends<T>(f: impl Fn() -> T) -> (T, T) {
    par::with_threads(4, || {
        par::with_par_min(1, || {
            let scalar = par::with_backend(Backend::Scalar, &f);
            let threaded = par::with_backend(Backend::Threaded, &f);
            (scalar, threaded)
        })
    })
}

proptest! {
    #[test]
    fn add_commutes(a in small_vec(12), b in small_vec(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]).unwrap();
        let tb = Tensor::from_vec(b, &[3, 4]).unwrap();
        prop_assert_eq!(ops::add(&ta, &tb).unwrap(), ops::add(&tb, &ta).unwrap());
    }

    #[test]
    fn mul_scalar_distributes_over_add(a in small_vec(6), b in small_vec(6), s in -2.0f32..2.0) {
        let ta = Tensor::from_vec(a, &[6]).unwrap();
        let tb = Tensor::from_vec(b, &[6]).unwrap();
        let lhs = ops::mul_scalar(&ops::add(&ta, &tb).unwrap(), s);
        let rhs = ops::add(&ops::mul_scalar(&ta, s), &ops::mul_scalar(&tb, s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_add_matches_manual_tile(row in small_vec(4), m in small_vec(12)) {
        let trow = Tensor::from_vec(row.clone(), &[4]).unwrap();
        let tm = Tensor::from_vec(m.clone(), &[3, 4]).unwrap();
        let out = ops::add(&tm, &trow).unwrap();
        for i in 0..3 {
            for j in 0..4 {
                let expect = m[i * 4 + j] + row[j];
                prop_assert!((out.at(&[i, j]).unwrap() - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn stack_unstack_roundtrip(a in small_vec(8), b in small_vec(8), c in small_vec(8)) {
        let ts: Vec<Tensor> = [a, b, c]
            .into_iter()
            .map(|v| Tensor::from_vec(v, &[2, 4]).unwrap())
            .collect();
        let refs: Vec<&Tensor> = ts.iter().collect();
        let stacked = ops::stack(&refs).unwrap();
        prop_assert_eq!(stacked.shape(), &[3, 2, 4]);
        let parts = ops::unstack(&stacked, 3).unwrap();
        for (orig, got) in ts.iter().zip(&parts) {
            // unstack keeps a leading axis of extent lead/n = 1
            let flat = got.reshape(&[2, 4]).unwrap();
            prop_assert_eq!(orig, &flat);
        }
    }

    #[test]
    fn matmul_is_linear_in_lhs(
        a in small_vec(6), b in small_vec(6), w in small_vec(6), s in -2.0f32..2.0
    ) {
        let ta = Tensor::from_vec(a, &[2, 3]).unwrap();
        let tb = Tensor::from_vec(b, &[2, 3]).unwrap();
        let tw = Tensor::from_vec(w, &[3, 2]).unwrap();
        // (a + s·b)·W == a·W + s·(b·W)
        let lhs = ops::matmul(&ops::add(&ta, &ops::mul_scalar(&tb, s)).unwrap(), &tw).unwrap();
        let rhs = ops::add(
            &ops::matmul(&ta, &tw).unwrap(),
            &ops::mul_scalar(&ops::matmul(&tb, &tw).unwrap(), s),
        )
        .unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(vals in small_vec(12)) {
        let t = Tensor::from_vec(vals, &[3, 4]).unwrap();
        let s = ops::softmax_rows(&t).unwrap();
        for i in 0..3 {
            let row = &s.data()[i * 4..(i + 1) * 4];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Reverse-mode gradients of a composite expression agree with central
    /// differences at random points.
    #[test]
    fn autograd_matches_numeric_gradient(point in small_vec(4)) {
        let eval = |vals: &[f32]| -> f32 {
            let tape = Tape::new();
            let x = tape.var(Tensor::from_vec(vals.to_vec(), &[2, 2]).unwrap());
            let w = tape.var(Tensor::from_vec(vec![0.3, -0.7, 0.9, 0.1], &[2, 2]).unwrap());
            x.matmul(&w)
                .unwrap()
                .tanh()
                .square()
                .mean()
                .value()
                .item()
                .unwrap()
        };
        let tape = Tape::new();
        let x = tape.var(Tensor::from_vec(point.clone(), &[2, 2]).unwrap());
        let w = tape.var(Tensor::from_vec(vec![0.3, -0.7, 0.9, 0.1], &[2, 2]).unwrap());
        let loss = x.matmul(&w).unwrap().tanh().square().mean();
        let grads = tape.backward(&loss).unwrap();
        let analytic = grads.get(x.id()).unwrap().data().to_vec();
        let eps = 1e-2;
        for i in 0..4 {
            let mut lo = point.clone();
            let mut hi = point.clone();
            lo[i] -= eps;
            hi[i] += eps;
            let numeric = (eval(&hi) - eval(&lo)) / (2.0 * eps);
            prop_assert!(
                (numeric - analytic[i]).abs() < 2e-2,
                "axis {}: numeric {} vs analytic {}", i, numeric, analytic[i]
            );
        }
    }

    /// Gradient of a broadcast add sums over the broadcast axes — checked
    /// against the mathematical identity d(Σ(x+b))/db_j = #rows.
    #[test]
    fn broadcast_gradient_sums(rows in 1usize..6, cols in 1usize..5) {
        let tape = Tape::new();
        let x = tape.var(Tensor::zeros(&[rows, cols]));
        let b = tape.var(Tensor::zeros(&[cols]));
        let loss = x.add(&b).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        let gb = g.get(b.id()).unwrap();
        prop_assert_eq!(gb.shape(), &[cols]);
        for &v in gb.data() {
            prop_assert_eq!(v, rows as f32);
        }
    }

    #[test]
    fn concat_then_volume(n1 in 1usize..4, n2 in 1usize..4) {
        let a = Tensor::ones(&[n1, 3]);
        let b = Tensor::full(&[n2, 3], 2.0);
        let c = ops::concat(&[&a, &b], 0).unwrap();
        prop_assert_eq!(c.shape(), &[n1 + n2, 3]);
        prop_assert_eq!(c.data()[..n1 * 3].iter().sum::<f32>(), (n1 * 3) as f32);
        prop_assert_eq!(c.data()[n1 * 3..].iter().sum::<f32>(), (n2 * 6) as f32);
    }

    /// Threaded matmul partitions rows across workers but keeps the scalar
    /// backend's per-row accumulation order, so the two backends must agree
    /// bit-for-bit (far inside the 1e-5 budget) — including degenerate
    /// m = 1 / k = 1 / n = 1 shapes.
    #[test]
    fn backend_matmul_agrees(
        m in 1usize..9, k in 1usize..9, n in 1usize..9,
        av in small_vec(64), bv in small_vec(64)
    ) {
        let a = Tensor::from_vec(av[..m * k].to_vec(), &[m, k]).unwrap();
        let b = Tensor::from_vec(bv[..k * n].to_vec(), &[k, n]).unwrap();
        let (scalar, threaded) = on_both_backends(|| ops::matmul(&a, &b).unwrap());
        prop_assert_eq!(scalar, threaded);
    }

    /// The packed register-tiled microkernels must agree with the naive
    /// kernel bit-for-bit on any shape and on both backends — including
    /// degenerate `k = 0` / `m = 1` products and NaN/∞ poison values,
    /// which the no-zero-skip accumulation order must propagate
    /// identically. (Compared via bit patterns: `NaN != NaN` under
    /// `PartialEq`.)
    #[test]
    fn packed_matmul_matches_naive_bitwise(
        m in 1usize..20, k in 0usize..12, n in 1usize..40,
        av in small_vec(240), bv in small_vec(480), poison in 0usize..4
    ) {
        let mut a = av[..m * k].to_vec();
        let mut b = bv[..k * n].to_vec();
        if k > 0 {
            match poison {
                1 => a[0] = f32::NAN,
                2 => b[k * n - 1] = f32::INFINITY,
                3 => {
                    a[(m - 1) * k] = f32::NEG_INFINITY;
                    b[0] = f32::NAN;
                }
                _ => {}
            }
        }
        let ta = Tensor::from_vec(a, &[m, k]).unwrap();
        let tb = Tensor::from_vec(b, &[k, n]).unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        let naive = par::with_tier(false, || ops::matmul(&ta, &tb).unwrap());
        // `matmul_prepacked` always takes the microkernels, regardless
        // of the TIER_MIN_FLOPS on-the-fly cutoff.
        let packed = ops::matmul_prepacked(&ta, &kernels::pack_b(tb.data(), k, n)).unwrap();
        prop_assert_eq!(bits(&naive), bits(&packed));
        let (s, t) = on_both_backends(|| {
            ops::matmul_prepacked(&ta, &kernels::pack_b(tb.data(), k, n)).unwrap()
        });
        prop_assert_eq!(bits(&s), bits(&t));
        prop_assert_eq!(bits(&s), bits(&naive));
    }

    /// Below the packing cutoff the tier dispatches the unpacked SIMD
    /// row kernel; its output must match the naive loop bit-for-bit on
    /// both backends, non-finite poison values included.
    #[test]
    fn tiered_small_matmul_matches_naive_bitwise(
        m in 1usize..6, k in 0usize..9, n in 1usize..48,
        av in small_vec(54), bv in small_vec(432), poison in 0usize..4
    ) {
        let mut a = av[..m * k].to_vec();
        let mut b = bv[..k * n].to_vec();
        if k > 0 {
            match poison {
                1 => a[m * k / 2] = f32::NAN,
                2 => b[k * n / 2] = f32::INFINITY,
                3 => {
                    a[0] = f32::NEG_INFINITY;
                    b[k * n - 1] = f32::NAN;
                }
                _ => {}
            }
        }
        let ta = Tensor::from_vec(a, &[m, k]).unwrap();
        let tb = Tensor::from_vec(b, &[k, n]).unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        let naive = par::with_tier(false, || ops::matmul(&ta, &tb).unwrap());
        let (s, t) = on_both_backends(|| par::with_tier(true, || ops::matmul(&ta, &tb).unwrap()));
        prop_assert_eq!(bits(&s), bits(&t));
        prop_assert_eq!(bits(&s), bits(&naive));
    }

    /// The transpose-free gradient products must be bit-identical to
    /// the materialised-transpose compositions on both backends.
    #[test]
    fn transpose_free_products_match_bitwise(
        m in 1usize..8, p in 1usize..8, n in 1usize..8,
        av in small_vec(64), bv in small_vec(64)
    ) {
        let a = Tensor::from_vec(av[..p * m].to_vec(), &[p, m]).unwrap();
        let b = Tensor::from_vec(bv[..p * n].to_vec(), &[p, n]).unwrap();
        let via_t = ops::matmul(&ops::transpose(&a).unwrap(), &b).unwrap();
        let (s, t) = on_both_backends(|| ops::matmul_at(&a, &b).unwrap());
        prop_assert_eq!(&s, &t);
        prop_assert_eq!(&s, &via_t);

        let a2 = Tensor::from_vec(av[..m * p].to_vec(), &[m, p]).unwrap();
        let b2 = Tensor::from_vec(bv[..n * p].to_vec(), &[n, p]).unwrap();
        let via_t2 = ops::matmul(&a2, &ops::transpose(&b2).unwrap()).unwrap();
        let (s2, t2) = on_both_backends(|| ops::matmul_bt(&a2, &b2).unwrap());
        prop_assert_eq!(&s2, &t2);
        prop_assert_eq!(&s2, &via_t2);
        // The gather kernel (tier on) and the scalar dots (tier off)
        // must agree exactly.
        let bt_scalar = par::with_tier(false, || ops::matmul_bt(&a2, &b2).unwrap());
        prop_assert_eq!(&s2, &bt_scalar);
    }

    /// The fused policy head must match the separate
    /// matmul → bias-add → softmax chain bit-for-bit on both backends.
    #[test]
    fn linear_softmax_matches_unfused_bitwise(
        m in 1usize..7, k in 1usize..7, n in 1usize..7,
        xv in small_vec(36), wv in small_vec(36), bv in small_vec(6)
    ) {
        let x = Tensor::from_vec(xv[..m * k].to_vec(), &[m, k]).unwrap();
        let w = Tensor::from_vec(wv[..k * n].to_vec(), &[k, n]).unwrap();
        let b = Tensor::from_vec(bv[..n].to_vec(), &[n]).unwrap();
        let unfused = ops::softmax_rows(
            &ops::add(&ops::matmul(&x, &w).unwrap(), &b).unwrap()
        ).unwrap();
        let (s, t) = on_both_backends(|| ops::linear_softmax(&x, &w, &b).unwrap());
        prop_assert_eq!(&s, &t);
        prop_assert_eq!(&s, &unfused);
    }

    /// Broadcast arithmetic under the strided `BroadcastPlan` must match the
    /// scalar backend element-for-element across shape pairs that exercise
    /// unit axes, rank padding, and all-degenerate operands.
    #[test]
    fn backend_broadcast_agrees(case in 0usize..8, av in small_vec(128), bv in small_vec(128)) {
        let (sa, sb): (&[usize], &[usize]) = match case {
            0 => (&[4, 5], &[4, 5]),
            1 => (&[4, 5], &[5]),
            2 => (&[4, 5], &[1]),
            3 => (&[3, 1, 5], &[1, 4, 1]),
            4 => (&[1, 1], &[6, 1]),
            5 => (&[2, 1, 3, 1], &[1, 4, 1, 5]),
            6 => (&[7], &[1]),
            _ => (&[2, 3, 4], &[3, 1]),
        };
        let vol = |s: &[usize]| s.iter().product::<usize>();
        let a = Tensor::from_vec(av[..vol(sa)].to_vec(), sa).unwrap();
        let b = Tensor::from_vec(bv[..vol(sb)].to_vec(), sb).unwrap();
        let (add_s, add_t) = on_both_backends(|| ops::add(&a, &b).unwrap());
        prop_assert_eq!(add_s, add_t);
        let (mul_s, mul_t) = on_both_backends(|| ops::mul(&a, &b).unwrap());
        prop_assert_eq!(mul_s, mul_t);
    }

    /// Axis reductions partition over output groups (bit-exact across
    /// backends); whole-tensor sums split into per-chunk partials and must
    /// agree to rounding.
    #[test]
    fn backend_reductions_agree(
        d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5,
        axis in 0usize..3, vals in small_vec(64)
    ) {
        let t = Tensor::from_vec(vals[..d0 * d1 * d2].to_vec(), &[d0, d1, d2]).unwrap();
        let (sum_s, sum_t) = on_both_backends(|| ops::sum_axis(&t, axis).unwrap());
        prop_assert_eq!(sum_s, sum_t);
        let (max_s, max_t) = on_both_backends(|| ops::max_axis(&t, axis).unwrap());
        prop_assert_eq!(max_s, max_t);
        let (mean_s, mean_t) = on_both_backends(|| ops::mean_axis(&t, axis).unwrap());
        prop_assert_eq!(mean_s, mean_t);
        let (all_s, all_t) = on_both_backends(|| ops::sum_all(&t).item().unwrap());
        prop_assert!(
            (all_s - all_t).abs() <= 1e-5 * (1.0 + all_s.abs()),
            "sum_all diverged: {} vs {}", all_s, all_t
        );
    }

    /// The gathered reduction row kernels (tier on) must match the naive
    /// scalar folds bit-for-bit on any shape, any axis, and both
    /// backends — degenerate axis lengths (0, 1), single-row inputs,
    /// and NaN/∞ poison included. `max` pins `f32::max` NaN semantics
    /// (NaN operands ignored), so an all-NaN reduction over a non-empty
    /// axis yields the -∞ seed on both tiers.
    #[test]
    fn tiered_reductions_match_naive_bitwise(
        d0 in 1usize..6, d1 in 0usize..6, d2 in 1usize..6,
        axis in 0usize..3, vals in small_vec(180), poison in 0usize..5
    ) {
        let vol = d0 * d1 * d2;
        let mut v = vals[..vol].to_vec();
        if vol > 0 {
            match poison {
                1 => v[0] = f32::NAN,
                2 => v[vol / 2] = f32::INFINITY,
                3 => v[vol - 1] = f32::NEG_INFINITY,
                4 => v.fill(f32::NAN),
                _ => {}
            }
        }
        let t = Tensor::from_vec(v, &[d0, d1, d2]).unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        for op in 0..3usize {
            let run = |tier: bool| par::with_tier(tier, || match op {
                0 => ops::sum_axis(&t, axis).unwrap(),
                1 => ops::max_axis(&t, axis).unwrap(),
                _ => ops::mean_axis(&t, axis).unwrap(),
            });
            let naive = run(false);
            let (s, th) = on_both_backends(|| run(true));
            prop_assert_eq!(bits(&s), bits(&th));
            prop_assert_eq!(bits(&s), bits(&naive));
        }
    }

    /// The across-rows softmax path (tier on) must match the scalar
    /// per-row helper bit-for-bit on both backends — single-row and
    /// single-column matrices and ±∞ operands included (the exp+sum
    /// pass is the same scalar code on both tiers; only the max fold
    /// and the scale pass vectorize).
    #[test]
    fn tiered_softmax_rows_match_naive_bitwise(
        m in 1usize..10, n in 1usize..10, vals in small_vec(81), poison in 0usize..3
    ) {
        let mut v = vals[..m * n].to_vec();
        match poison {
            1 => v[0] = f32::NEG_INFINITY,
            2 => v[m * n - 1] = f32::INFINITY,
            _ => {}
        }
        let t = Tensor::from_vec(v, &[m, n]).unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        let naive = par::with_tier(false, || ops::softmax_rows(&t).unwrap());
        let (s, th) = on_both_backends(|| par::with_tier(true, || ops::softmax_rows(&t).unwrap()));
        prop_assert_eq!(bits(&s), bits(&th));
        prop_assert_eq!(bits(&s), bits(&naive));
    }

    /// Row-softmax and element-wise maps partition on whole rows/chunks and
    /// must agree bit-for-bit with the scalar backend.
    #[test]
    fn backend_softmax_and_map_agree(m in 1usize..7, n in 1usize..7, vals in small_vec(36)) {
        let t = Tensor::from_vec(vals[..m * n].to_vec(), &[m, n]).unwrap();
        let (ls_s, ls_t) = on_both_backends(|| ops::log_softmax_rows(&t).unwrap());
        prop_assert_eq!(ls_s, ls_t);
        let (sm_s, sm_t) = on_both_backends(|| ops::softmax_rows(&t).unwrap());
        prop_assert_eq!(sm_s, sm_t);
        let (map_s, map_t) = on_both_backends(|| ops::map(&t, f32::tanh));
        prop_assert_eq!(map_s, map_t);
    }
}

proptest! {
    /// Opt-in fast-math tier (`MSRL_TIER=2`): `exp`/`tanh`/`sigmoid`
    /// must stay within the documented error bounds of libm across the
    /// training-relevant input range (±20), and must be deterministic
    /// across backends (chunk partitioning cannot perturb element-wise
    /// kernels). Deliberately *not* a bit-identity test against tier
    /// 0/1 — that is the contract fast-math trades away.
    #[test]
    fn fastmath_unaries_within_documented_bounds(
        vals in proptest::collection::vec(-20.0f32..20.0, 33)
    ) {
        let t = Tensor::from_vec(vals.clone(), &[3, 11]).unwrap();
        let (e_s, e_t) = on_both_backends(|| par::with_tier_level(2, || ops::exp(&t)));
        prop_assert_eq!(&e_s, &e_t);
        for (&f, &x) in e_s.data().iter().zip(&vals) {
            let exact = x.exp();
            let rel = ((f - exact) / exact).abs();
            prop_assert!(rel < 3e-7, "exp({x}) fast={f} libm={exact} rel={rel}");
        }
        let (th_s, th_t) = on_both_backends(|| par::with_tier_level(2, || ops::tanh(&t)));
        prop_assert_eq!(&th_s, &th_t);
        for (&f, &x) in th_s.data().iter().zip(&vals) {
            let err = (f - x.tanh()).abs();
            prop_assert!(err < 1e-6, "tanh({x}) err={err}");
        }
        let (sg_s, sg_t) = on_both_backends(|| par::with_tier_level(2, || ops::sigmoid(&t)));
        prop_assert_eq!(&sg_s, &sg_t);
        for (&f, &x) in sg_s.data().iter().zip(&vals) {
            let err = (f - 1.0 / (1.0 + (-x).exp())).abs();
            prop_assert!(err < 1e-6, "sigmoid({x}) err={err}");
        }
    }

    /// Tier-2 softmax rows are still distributions, stay within 1e-5 of
    /// the exact tier-0 rows, and the fused policy head remains
    /// bit-identical to its unfused chain *within* tier 2 (fusion never
    /// changes results, at any tier).
    #[test]
    fn fastmath_softmax_close_to_exact_and_fusion_invariant(
        m in 1usize..7, k in 1usize..7, n in 1usize..7,
        xv in small_vec(36), wv in small_vec(36), bv in small_vec(6)
    ) {
        let x = Tensor::from_vec(xv[..m * k].to_vec(), &[m, k]).unwrap();
        let w = Tensor::from_vec(wv[..k * n].to_vec(), &[k, n]).unwrap();
        let b = Tensor::from_vec(bv[..n].to_vec(), &[n]).unwrap();
        let exact = par::with_tier(false, || ops::softmax_rows(&x).unwrap());
        let (fast_s, fast_t) =
            on_both_backends(|| par::with_tier_level(2, || ops::softmax_rows(&x).unwrap()));
        prop_assert_eq!(&fast_s, &fast_t);
        for row in fast_s.data().chunks(k) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row sum {sum}");
        }
        for (f, e) in fast_s.data().iter().zip(exact.data()) {
            prop_assert!((f - e).abs() < 1e-5, "fast={f} exact={e}");
        }
        let (fused, unfused) = par::with_tier_level(2, || {
            let fused = ops::linear_softmax(&x, &w, &b).unwrap();
            let unfused =
                ops::softmax_rows(&ops::add(&ops::matmul(&x, &w).unwrap(), &b).unwrap()).unwrap();
            (fused, unfused)
        });
        prop_assert_eq!(fused, unfused);
    }

    /// Tier-2 fused `linear_act` with Tanh/Sigmoid must match the
    /// unfused matmul → bias → fast activation chain bit-for-bit (the
    /// epilogue applies the same fast kernels the map path uses).
    #[test]
    fn fastmath_linear_act_matches_unfused_bitwise(
        m in 1usize..7, k in 1usize..7, n in 1usize..7, which in 0usize..2,
        xv in small_vec(36), wv in small_vec(36), bv in small_vec(6)
    ) {
        let x = Tensor::from_vec(xv[..m * k].to_vec(), &[m, k]).unwrap();
        let w = Tensor::from_vec(wv[..k * n].to_vec(), &[k, n]).unwrap();
        let b = Tensor::from_vec(bv[..n].to_vec(), &[n]).unwrap();
        let act = if which == 0 { ops::Act::Tanh } else { ops::Act::Sigmoid };
        let ((fused_s, unfused), (fused_t, _)) = on_both_backends(|| {
            par::with_tier_level(2, || {
                let fused = ops::linear_act(&x, &w, &b, act).unwrap();
                let lin = ops::add(&ops::matmul(&x, &w).unwrap(), &b).unwrap();
                let unfused =
                    if which == 0 { ops::tanh(&lin) } else { ops::sigmoid(&lin) };
                (fused, unfused)
            })
        });
        prop_assert_eq!(&fused_s, &fused_t);
        prop_assert_eq!(&fused_s, &unfused);
    }
}
