//! Property-based tests for the tensor substrate.
//!
//! These check algebraic invariants that must hold for *any* input, which
//! unit tests with hand-picked values cannot cover: gradient correctness
//! against central differences, broadcast algebra, and the stack/unstack
//! (fusion) round-trip that MSRL's fragment-fusion pass relies on.

use msrl_tensor::autograd::Tape;
use msrl_tensor::{ops, par, Backend, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

/// Evaluates `f` once under each backend and returns
/// `(scalar_result, threaded_result)`. Forces 4 workers and a parallel
/// threshold of 1 so even tiny property-test inputs take the
/// multi-chunk threaded code paths.
fn on_both_backends<T>(f: impl Fn() -> T) -> (T, T) {
    std::env::set_var("MSRL_THREADS", "4");
    std::env::set_var("MSRL_PAR_MIN", "1");
    let scalar = par::with_backend(Backend::Scalar, &f);
    let threaded = par::with_backend(Backend::Threaded, &f);
    std::env::remove_var("MSRL_PAR_MIN");
    (scalar, threaded)
}

proptest! {
    #[test]
    fn add_commutes(a in small_vec(12), b in small_vec(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]).unwrap();
        let tb = Tensor::from_vec(b, &[3, 4]).unwrap();
        prop_assert_eq!(ops::add(&ta, &tb).unwrap(), ops::add(&tb, &ta).unwrap());
    }

    #[test]
    fn mul_scalar_distributes_over_add(a in small_vec(6), b in small_vec(6), s in -2.0f32..2.0) {
        let ta = Tensor::from_vec(a, &[6]).unwrap();
        let tb = Tensor::from_vec(b, &[6]).unwrap();
        let lhs = ops::mul_scalar(&ops::add(&ta, &tb).unwrap(), s);
        let rhs = ops::add(&ops::mul_scalar(&ta, s), &ops::mul_scalar(&tb, s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_add_matches_manual_tile(row in small_vec(4), m in small_vec(12)) {
        let trow = Tensor::from_vec(row.clone(), &[4]).unwrap();
        let tm = Tensor::from_vec(m.clone(), &[3, 4]).unwrap();
        let out = ops::add(&tm, &trow).unwrap();
        for i in 0..3 {
            for j in 0..4 {
                let expect = m[i * 4 + j] + row[j];
                prop_assert!((out.at(&[i, j]).unwrap() - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn stack_unstack_roundtrip(a in small_vec(8), b in small_vec(8), c in small_vec(8)) {
        let ts: Vec<Tensor> = [a, b, c]
            .into_iter()
            .map(|v| Tensor::from_vec(v, &[2, 4]).unwrap())
            .collect();
        let refs: Vec<&Tensor> = ts.iter().collect();
        let stacked = ops::stack(&refs).unwrap();
        prop_assert_eq!(stacked.shape(), &[3, 2, 4]);
        let parts = ops::unstack(&stacked, 3).unwrap();
        for (orig, got) in ts.iter().zip(&parts) {
            // unstack keeps a leading axis of extent lead/n = 1
            let flat = got.reshape(&[2, 4]).unwrap();
            prop_assert_eq!(orig, &flat);
        }
    }

    #[test]
    fn matmul_is_linear_in_lhs(
        a in small_vec(6), b in small_vec(6), w in small_vec(6), s in -2.0f32..2.0
    ) {
        let ta = Tensor::from_vec(a, &[2, 3]).unwrap();
        let tb = Tensor::from_vec(b, &[2, 3]).unwrap();
        let tw = Tensor::from_vec(w, &[3, 2]).unwrap();
        // (a + s·b)·W == a·W + s·(b·W)
        let lhs = ops::matmul(&ops::add(&ta, &ops::mul_scalar(&tb, s)).unwrap(), &tw).unwrap();
        let rhs = ops::add(
            &ops::matmul(&ta, &tw).unwrap(),
            &ops::mul_scalar(&ops::matmul(&tb, &tw).unwrap(), s),
        )
        .unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(vals in small_vec(12)) {
        let t = Tensor::from_vec(vals, &[3, 4]).unwrap();
        let s = ops::softmax_rows(&t).unwrap();
        for i in 0..3 {
            let row = &s.data()[i * 4..(i + 1) * 4];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Reverse-mode gradients of a composite expression agree with central
    /// differences at random points.
    #[test]
    fn autograd_matches_numeric_gradient(point in small_vec(4)) {
        let eval = |vals: &[f32]| -> f32 {
            let tape = Tape::new();
            let x = tape.var(Tensor::from_vec(vals.to_vec(), &[2, 2]).unwrap());
            let w = tape.var(Tensor::from_vec(vec![0.3, -0.7, 0.9, 0.1], &[2, 2]).unwrap());
            x.matmul(&w)
                .unwrap()
                .tanh()
                .square()
                .mean()
                .value()
                .item()
                .unwrap()
        };
        let tape = Tape::new();
        let x = tape.var(Tensor::from_vec(point.clone(), &[2, 2]).unwrap());
        let w = tape.var(Tensor::from_vec(vec![0.3, -0.7, 0.9, 0.1], &[2, 2]).unwrap());
        let loss = x.matmul(&w).unwrap().tanh().square().mean();
        let grads = tape.backward(&loss).unwrap();
        let analytic = grads.get(x.id()).unwrap().data().to_vec();
        let eps = 1e-2;
        for i in 0..4 {
            let mut lo = point.clone();
            let mut hi = point.clone();
            lo[i] -= eps;
            hi[i] += eps;
            let numeric = (eval(&hi) - eval(&lo)) / (2.0 * eps);
            prop_assert!(
                (numeric - analytic[i]).abs() < 2e-2,
                "axis {}: numeric {} vs analytic {}", i, numeric, analytic[i]
            );
        }
    }

    /// Gradient of a broadcast add sums over the broadcast axes — checked
    /// against the mathematical identity d(Σ(x+b))/db_j = #rows.
    #[test]
    fn broadcast_gradient_sums(rows in 1usize..6, cols in 1usize..5) {
        let tape = Tape::new();
        let x = tape.var(Tensor::zeros(&[rows, cols]));
        let b = tape.var(Tensor::zeros(&[cols]));
        let loss = x.add(&b).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        let gb = g.get(b.id()).unwrap();
        prop_assert_eq!(gb.shape(), &[cols]);
        for &v in gb.data() {
            prop_assert_eq!(v, rows as f32);
        }
    }

    #[test]
    fn concat_then_volume(n1 in 1usize..4, n2 in 1usize..4) {
        let a = Tensor::ones(&[n1, 3]);
        let b = Tensor::full(&[n2, 3], 2.0);
        let c = ops::concat(&[&a, &b], 0).unwrap();
        prop_assert_eq!(c.shape(), &[n1 + n2, 3]);
        prop_assert_eq!(c.data()[..n1 * 3].iter().sum::<f32>(), (n1 * 3) as f32);
        prop_assert_eq!(c.data()[n1 * 3..].iter().sum::<f32>(), (n2 * 6) as f32);
    }

    /// Threaded matmul partitions rows across workers but keeps the scalar
    /// backend's per-row accumulation order, so the two backends must agree
    /// bit-for-bit (far inside the 1e-5 budget) — including degenerate
    /// m = 1 / k = 1 / n = 1 shapes.
    #[test]
    fn backend_matmul_agrees(
        m in 1usize..9, k in 1usize..9, n in 1usize..9,
        av in small_vec(64), bv in small_vec(64)
    ) {
        let a = Tensor::from_vec(av[..m * k].to_vec(), &[m, k]).unwrap();
        let b = Tensor::from_vec(bv[..k * n].to_vec(), &[k, n]).unwrap();
        let (scalar, threaded) = on_both_backends(|| ops::matmul(&a, &b).unwrap());
        prop_assert_eq!(scalar, threaded);
    }

    /// Broadcast arithmetic under the strided `BroadcastPlan` must match the
    /// scalar backend element-for-element across shape pairs that exercise
    /// unit axes, rank padding, and all-degenerate operands.
    #[test]
    fn backend_broadcast_agrees(case in 0usize..8, av in small_vec(128), bv in small_vec(128)) {
        let (sa, sb): (&[usize], &[usize]) = match case {
            0 => (&[4, 5], &[4, 5]),
            1 => (&[4, 5], &[5]),
            2 => (&[4, 5], &[1]),
            3 => (&[3, 1, 5], &[1, 4, 1]),
            4 => (&[1, 1], &[6, 1]),
            5 => (&[2, 1, 3, 1], &[1, 4, 1, 5]),
            6 => (&[7], &[1]),
            _ => (&[2, 3, 4], &[3, 1]),
        };
        let vol = |s: &[usize]| s.iter().product::<usize>();
        let a = Tensor::from_vec(av[..vol(sa)].to_vec(), sa).unwrap();
        let b = Tensor::from_vec(bv[..vol(sb)].to_vec(), sb).unwrap();
        let (add_s, add_t) = on_both_backends(|| ops::add(&a, &b).unwrap());
        prop_assert_eq!(add_s, add_t);
        let (mul_s, mul_t) = on_both_backends(|| ops::mul(&a, &b).unwrap());
        prop_assert_eq!(mul_s, mul_t);
    }

    /// Axis reductions partition over output groups (bit-exact across
    /// backends); whole-tensor sums split into per-chunk partials and must
    /// agree to rounding.
    #[test]
    fn backend_reductions_agree(
        d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5,
        axis in 0usize..3, vals in small_vec(64)
    ) {
        let t = Tensor::from_vec(vals[..d0 * d1 * d2].to_vec(), &[d0, d1, d2]).unwrap();
        let (sum_s, sum_t) = on_both_backends(|| ops::sum_axis(&t, axis).unwrap());
        prop_assert_eq!(sum_s, sum_t);
        let (max_s, max_t) = on_both_backends(|| ops::max_axis(&t, axis).unwrap());
        prop_assert_eq!(max_s, max_t);
        let (mean_s, mean_t) = on_both_backends(|| ops::mean_axis(&t, axis).unwrap());
        prop_assert_eq!(mean_s, mean_t);
        let (all_s, all_t) = on_both_backends(|| ops::sum_all(&t).item().unwrap());
        prop_assert!(
            (all_s - all_t).abs() <= 1e-5 * (1.0 + all_s.abs()),
            "sum_all diverged: {} vs {}", all_s, all_t
        );
    }

    /// Row-softmax and element-wise maps partition on whole rows/chunks and
    /// must agree bit-for-bit with the scalar backend.
    #[test]
    fn backend_softmax_and_map_agree(m in 1usize..7, n in 1usize..7, vals in small_vec(36)) {
        let t = Tensor::from_vec(vals[..m * n].to_vec(), &[m, n]).unwrap();
        let (ls_s, ls_t) = on_both_backends(|| ops::log_softmax_rows(&t).unwrap());
        prop_assert_eq!(ls_s, ls_t);
        let (sm_s, sm_t) = on_both_backends(|| ops::softmax_rows(&t).unwrap());
        prop_assert_eq!(sm_s, sm_t);
        let (map_s, map_t) = on_both_backends(|| ops::map(&t, f32::tanh));
        prop_assert_eq!(map_s, map_t);
    }
}
