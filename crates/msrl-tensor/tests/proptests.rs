//! Property-based tests for the tensor substrate.
//!
//! These check algebraic invariants that must hold for *any* input, which
//! unit tests with hand-picked values cannot cover: gradient correctness
//! against central differences, broadcast algebra, and the stack/unstack
//! (fusion) round-trip that MSRL's fragment-fusion pass relies on.

use msrl_tensor::autograd::Tape;
use msrl_tensor::{ops, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

proptest! {
    #[test]
    fn add_commutes(a in small_vec(12), b in small_vec(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]).unwrap();
        let tb = Tensor::from_vec(b, &[3, 4]).unwrap();
        prop_assert_eq!(ops::add(&ta, &tb).unwrap(), ops::add(&tb, &ta).unwrap());
    }

    #[test]
    fn mul_scalar_distributes_over_add(a in small_vec(6), b in small_vec(6), s in -2.0f32..2.0) {
        let ta = Tensor::from_vec(a, &[6]).unwrap();
        let tb = Tensor::from_vec(b, &[6]).unwrap();
        let lhs = ops::mul_scalar(&ops::add(&ta, &tb).unwrap(), s);
        let rhs = ops::add(&ops::mul_scalar(&ta, s), &ops::mul_scalar(&tb, s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_add_matches_manual_tile(row in small_vec(4), m in small_vec(12)) {
        let trow = Tensor::from_vec(row.clone(), &[4]).unwrap();
        let tm = Tensor::from_vec(m.clone(), &[3, 4]).unwrap();
        let out = ops::add(&tm, &trow).unwrap();
        for i in 0..3 {
            for j in 0..4 {
                let expect = m[i * 4 + j] + row[j];
                prop_assert!((out.at(&[i, j]).unwrap() - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn stack_unstack_roundtrip(a in small_vec(8), b in small_vec(8), c in small_vec(8)) {
        let ts: Vec<Tensor> = [a, b, c]
            .into_iter()
            .map(|v| Tensor::from_vec(v, &[2, 4]).unwrap())
            .collect();
        let refs: Vec<&Tensor> = ts.iter().collect();
        let stacked = ops::stack(&refs).unwrap();
        prop_assert_eq!(stacked.shape(), &[3, 2, 4]);
        let parts = ops::unstack(&stacked, 3).unwrap();
        for (orig, got) in ts.iter().zip(&parts) {
            // unstack keeps a leading axis of extent lead/n = 1
            let flat = got.reshape(&[2, 4]).unwrap();
            prop_assert_eq!(orig, &flat);
        }
    }

    #[test]
    fn matmul_is_linear_in_lhs(
        a in small_vec(6), b in small_vec(6), w in small_vec(6), s in -2.0f32..2.0
    ) {
        let ta = Tensor::from_vec(a, &[2, 3]).unwrap();
        let tb = Tensor::from_vec(b, &[2, 3]).unwrap();
        let tw = Tensor::from_vec(w, &[3, 2]).unwrap();
        // (a + s·b)·W == a·W + s·(b·W)
        let lhs = ops::matmul(&ops::add(&ta, &ops::mul_scalar(&tb, s)).unwrap(), &tw).unwrap();
        let rhs = ops::add(
            &ops::matmul(&ta, &tw).unwrap(),
            &ops::mul_scalar(&ops::matmul(&tb, &tw).unwrap(), s),
        )
        .unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(vals in small_vec(12)) {
        let t = Tensor::from_vec(vals, &[3, 4]).unwrap();
        let s = ops::softmax_rows(&t).unwrap();
        for i in 0..3 {
            let row = &s.data()[i * 4..(i + 1) * 4];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Reverse-mode gradients of a composite expression agree with central
    /// differences at random points.
    #[test]
    fn autograd_matches_numeric_gradient(point in small_vec(4)) {
        let eval = |vals: &[f32]| -> f32 {
            let tape = Tape::new();
            let x = tape.var(Tensor::from_vec(vals.to_vec(), &[2, 2]).unwrap());
            let w = tape.var(Tensor::from_vec(vec![0.3, -0.7, 0.9, 0.1], &[2, 2]).unwrap());
            x.matmul(&w)
                .unwrap()
                .tanh()
                .square()
                .mean()
                .value()
                .item()
                .unwrap()
        };
        let tape = Tape::new();
        let x = tape.var(Tensor::from_vec(point.clone(), &[2, 2]).unwrap());
        let w = tape.var(Tensor::from_vec(vec![0.3, -0.7, 0.9, 0.1], &[2, 2]).unwrap());
        let loss = x.matmul(&w).unwrap().tanh().square().mean();
        let grads = tape.backward(&loss).unwrap();
        let analytic = grads.get(x.id()).unwrap().data().to_vec();
        let eps = 1e-2;
        for i in 0..4 {
            let mut lo = point.clone();
            let mut hi = point.clone();
            lo[i] -= eps;
            hi[i] += eps;
            let numeric = (eval(&hi) - eval(&lo)) / (2.0 * eps);
            prop_assert!(
                (numeric - analytic[i]).abs() < 2e-2,
                "axis {}: numeric {} vs analytic {}", i, numeric, analytic[i]
            );
        }
    }

    /// Gradient of a broadcast add sums over the broadcast axes — checked
    /// against the mathematical identity d(Σ(x+b))/db_j = #rows.
    #[test]
    fn broadcast_gradient_sums(rows in 1usize..6, cols in 1usize..5) {
        let tape = Tape::new();
        let x = tape.var(Tensor::zeros(&[rows, cols]));
        let b = tape.var(Tensor::zeros(&[cols]));
        let loss = x.add(&b).unwrap().sum();
        let g = tape.backward(&loss).unwrap();
        let gb = g.get(b.id()).unwrap();
        prop_assert_eq!(gb.shape(), &[cols]);
        for &v in gb.data() {
            prop_assert_eq!(v, rows as f32);
        }
    }

    #[test]
    fn concat_then_volume(n1 in 1usize..4, n2 in 1usize..4) {
        let a = Tensor::ones(&[n1, 3]);
        let b = Tensor::full(&[n2, 3], 2.0);
        let c = ops::concat(&[&a, &b], 0).unwrap();
        prop_assert_eq!(c.shape(), &[n1 + n2, 3]);
        prop_assert_eq!(c.data()[..n1 * 3].iter().sum::<f32>(), (n1 * 3) as f32);
        prop_assert_eq!(c.data()[n1 * 3..].iter().sum::<f32>(), (n2 * 6) as f32);
    }
}
