//! Criterion micro-benchmarks of the FDG mechanisms — the ablations for
//! the design choices DESIGN.md calls out:
//!
//! * **fusion** — fused batched execution of N fragment replicas vs. N
//!   separate executions (§5.2, the Fig. 9a/10a mechanism);
//! * **partitioning** — the cost of running Algorithm 2 itself;
//! * **interpretation** — operator-graph evaluation throughput (the
//!   "DL engine" hot path);
//! * **backend** — scalar vs. threaded tensor backend on fused MLP
//!   inference at several batch sizes (the perf claim behind
//!   `Backend::Threaded`);
//! * **collectives** — real channel-based AllReduce/AllGather latency at
//!   several group sizes;
//! * **co-location** — shared-memory versus remote interface cost models
//!   (§4.2's co-location trade-off);
//! * **granularity** — one coarse fragment versus per-op fragments in
//!   the analytic cost model (§4.2's granularity trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrl_comm::model::{LinkModel, NetworkModel};
use msrl_comm::{DeviceId, Fabric};
use msrl_core::fusion::fuse_graph;
use msrl_core::interp::Interpreter;
use msrl_core::partition::build_fdg;
use msrl_core::trace::{trace_mlp, TraceCtx};
use msrl_core::{cost, DataflowGraph};
use msrl_tensor::{par, Backend, Tensor};

fn inference_graph(batch: usize) -> DataflowGraph {
    let ctx = TraceCtx::new();
    let x = ctx.input("x", &[batch, 17]);
    trace_mlp(&ctx, "pi", &x, &[17, 64, 64, 6]);
    ctx.finish()
}

fn bind_params(interp: &mut Interpreter<'_>) {
    interp.bind_param("pi.w0", Tensor::full(&[17, 64], 0.01));
    interp.bind_param("pi.b0", Tensor::zeros(&[64]));
    interp.bind_param("pi.w1", Tensor::full(&[64, 64], 0.01));
    interp.bind_param("pi.b1", Tensor::zeros(&[64]));
    interp.bind_param("pi.w2", Tensor::full(&[64, 6], 0.01));
    interp.bind_param("pi.b2", Tensor::zeros(&[6]));
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion");
    let replicas = 16;
    let g = inference_graph(8);
    let fused = fuse_graph(&g, replicas).expect("row-parallel graph");
    group.bench_function("separate_16_replicas", |b| {
        b.iter(|| {
            for r in 0..replicas {
                let mut interp = Interpreter::new();
                bind_params(&mut interp);
                interp.bind_input("x", Tensor::full(&[8, 17], r as f32 * 0.1));
                std::hint::black_box(interp.eval(&g).expect("evaluates"));
            }
        })
    });
    group.bench_function("fused_16_replicas", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new();
            bind_params(&mut interp);
            interp.bind_input("x", Tensor::full(&[8 * replicas, 17], 0.1));
            std::hint::black_box(interp.eval(&fused).expect("evaluates"));
        })
    });
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2");
    for layers in [3usize, 7, 15] {
        let widths: Vec<usize> =
            std::iter::once(17).chain(std::iter::repeat_n(64, layers)).chain([6]).collect();
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[32, 17]);
        let out = trace_mlp(&ctx, "pi", &x, &widths);
        ctx.annotate(msrl_core::FragmentKind::Action, msrl_core::Collective::AllGather, &[&out]);
        let g = ctx.finish();
        group.bench_with_input(BenchmarkId::new("build_fdg", layers), &g, |b, g| {
            b.iter(|| std::hint::black_box(build_fdg(g.clone()).expect("partitions")))
        });
    }
    group.finish();
}

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    for batch in [8usize, 64, 512] {
        let g = inference_graph(batch);
        group.bench_with_input(BenchmarkId::new("mlp_forward", batch), &g, |b, g| {
            let mut interp = Interpreter::new();
            bind_params(&mut interp);
            interp.bind_input("x", Tensor::full(&[batch, 17], 0.1));
            b.iter(|| std::hint::black_box(interp.eval(g).expect("evaluates")))
        });
    }
    group.finish();
}

fn bench_backend(c: &mut Criterion) {
    // Scalar vs. threaded execution backend on the same MLP inference
    // graph. At batch 8 the ops sit below the parallel cut-offs and both
    // backends take the serial kernels; the gap opens with batch size.
    let mut group = c.benchmark_group("backend");
    for batch in [8usize, 64, 512] {
        let g = inference_graph(batch);
        for be in [Backend::Scalar, Backend::Threaded] {
            let name = if be == Backend::Scalar { "scalar_mlp" } else { "threaded_mlp" };
            group.bench_with_input(BenchmarkId::new(name, batch), &g, |b, g| {
                let mut interp = Interpreter::new();
                bind_params(&mut interp);
                interp.bind_input("x", Tensor::full(&[batch, 17], 0.1));
                par::with_backend(be, || {
                    b.iter(|| std::hint::black_box(interp.eval(g).expect("evaluates")))
                });
            });
        }
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("all_reduce_mean", ranks), &ranks, |b, &n| {
            b.iter(|| {
                let eps = Fabric::new(n);
                let handles: Vec<_> = eps
                    .into_iter()
                    .map(|mut ep| {
                        std::thread::spawn(move || {
                            ep.all_reduce_mean(vec![1.0; 4096]).expect("reduces")
                        })
                    })
                    .collect();
                for h in handles {
                    std::hint::black_box(h.join().expect("joins"));
                }
            })
        });
    }
    group.finish();
}

fn bench_colocation(c: &mut Criterion) {
    // Analytic: the §4.2 co-location trade-off. Not a hot loop — measure
    // the model evaluation itself and print the modelled times once.
    let net = NetworkModel::local();
    let shared = LinkModel::shared_memory();
    let bytes = 4 * 1000 * 20 * 26u64; // one actor's episode trajectory
    println!(
        "co-location model: shared-memory {:.1} µs vs NVLink {:.1} µs vs IB {:.1} µs",
        shared.transfer_time(bytes) * 1e6,
        net.intra_node.transfer_time(bytes) * 1e6,
        net.inter_node.transfer_time(bytes) * 1e6,
    );
    c.bench_function("colocation_model_eval", |b| {
        b.iter(|| {
            std::hint::black_box(
                net.p2p_time(DeviceId::gpu(0, 0), DeviceId::gpu(0, 1), bytes)
                    + net.p2p_time(DeviceId::gpu(0, 0), DeviceId::gpu(1, 0), bytes),
            )
        })
    });
}

fn bench_granularity(c: &mut Criterion) {
    // §4.2: coarse fragments amortise launches; fine fragments expose
    // parallelism. Compare modelled kernel-launch totals.
    let g = inference_graph(64);
    let flops = cost::graph_flops(&g);
    println!(
        "granularity model: graph flops {flops}, nodes {} (coarse: 1 launch bundle; fine: {} launches)",
        g.len(),
        g.len()
    );
    c.bench_function("granularity_cost_model", |b| {
        b.iter(|| std::hint::black_box(cost::graph_flops(&g)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_fusion,
        bench_partition,
        bench_interp,
        bench_backend,
        bench_collectives,
        bench_colocation,
        bench_granularity
);
criterion_main!(benches);
