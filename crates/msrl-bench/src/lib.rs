//! Shared reporting helpers for the figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation, printing the same rows/series the paper reports
//! plus the paper's claim for side-by-side comparison (recorded in
//! `EXPERIMENTS.md`).

#![warn(missing_docs)]

/// Prints a figure banner with the paper's claim.
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("==============================================================");
}

/// Prints one series as aligned columns.
pub fn series(x_label: &str, y_labels: &[&str], rows: &[(f64, Vec<f64>)]) {
    print!("{x_label:>12}");
    for y in y_labels {
        print!("{y:>16}");
    }
    println!();
    for (x, ys) in rows {
        print!("{x:>12.3}");
        for y in ys {
            print!("{y:>16.4}");
        }
        println!();
    }
}

/// Formats seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(120.0), "2.0 min");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.01), "10.0 ms");
    }
}
