//! Fig. 10a — GPU-only PPO (DP-D) vs. WarpDrive on one GPU, MPE
//! `simple_tag`, 20 000–100 000 agents.
//!
//! Two parts: the cost-model comparison at paper scale (MSRL 1.2×–2.5×
//! faster, the gap largest at small agent counts where kernel-launch
//! overhead dominates), and a real small-scale run of both loops with
//! their kernel-launch counters.

use msrl_baselines::warpdrive::{
    msrl_equivalent_launches, run_warpdrive, MSRL_FUSED_LAUNCHES_PER_STEP,
};
use msrl_bench::{banner, series};
use msrl_env::batched::BatchedTag;
use msrl_sim::scenarios::{dp_d_episode, local, warpdrive_episode, GpuLoopWorkload};

fn main() {
    banner(
        "Fig 10a",
        "GPU-only PPO vs WarpDrive (simple_tag, 1 GPU)",
        "MSRL 1.2×–2.5× faster from 20k to 100k agents (gap shrinks with scale)",
    );
    let c = local();
    let mut rows = Vec::new();
    for agents in [20_000usize, 40_000, 60_000, 80_000, 100_000] {
        let w = GpuLoopWorkload::simple_tag(agents);
        let msrl = dp_d_episode(&w, &c, 1);
        let wd = warpdrive_episode(&w, &c);
        rows.push((agents as f64, vec![msrl * 1e3, wd * 1e3, wd / msrl]));
    }
    series("agents", &["MSRL [ms]", "WarpDrive [ms]", "speedup"], &rows);
    println!(
        "\nspeedup 20k agents: {:.2}×; 100k agents: {:.2}× (paper: 2.5× → 1.2×)",
        rows[0].1[2],
        rows.last().unwrap().1[2]
    );

    println!("\n--- real small-scale run (8 worlds × 4 agents, 3 episodes) ---");
    let mut env = BatchedTag::new(8, 3, 1, 0);
    let report = run_warpdrive(&mut env, 3, &[16], 1).expect("warpdrive run");
    let steps = report.stats.host_syncs as usize;
    println!(
        "WarpDrive: {} kernel launches, {} host syncs over {} steps",
        report.stats.launches, report.stats.host_syncs, steps
    );
    println!(
        "MSRL fused equivalent: {} launches ({} per step after graph compilation)",
        msrl_equivalent_launches(3, steps / 3),
        MSRL_FUSED_LAUNCHES_PER_STEP
    );
}
