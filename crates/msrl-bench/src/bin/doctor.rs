//! `doctor` — post-mortem health audit over run-event JSONL streams.
//!
//! Replays each completed metrics stream through the same streaming
//! detectors the live watchdog runs (`msrl_telemetry::health`) and
//! prints one ranked verdict report per file: CRITICAL findings first,
//! then warnings, then the all-clear. Recorded v3 findings are merged
//! with what the replay itself detects, so streams from runs that had
//! the watchdog disabled (or v1/v2 streams from older builds) still get
//! a full diagnosis.
//!
//! ```text
//! cargo run -p msrl-bench --bin doctor -- run-metrics/*.jsonl
//! ```
//!
//! CI contract: exit code 1 when any stream carries a CRITICAL verdict
//! (non-finite training signal, staleness-bound breach, fast-math audit
//! drift past `MSRL_AUDIT_BOUND`), 2 when a file cannot be read or
//! parsed, 0 otherwise. Warnings never fail the build — a healthy run
//! with noisy reward curves must stay green.

use std::process::ExitCode;

use msrl_telemetry::{replay_stream, Severity};

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("doctor: no streams given");
        eprintln!("usage: doctor <run-events.jsonl>...");
        return ExitCode::from(2);
    }

    let mut worst = Severity::Ok;
    let mut broken = false;
    for path in &files {
        println!("== {path} ==");
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                println!("doctor: cannot read {path}: {e}");
                broken = true;
                continue;
            }
        };
        match replay_stream(&content) {
            Ok(verdict) => {
                print!("{}", verdict.render());
                worst = worst.max(verdict.status);
            }
            Err(e) => {
                println!("doctor: cannot replay {path}: {e}");
                broken = true;
            }
        }
        println!();
    }

    if broken {
        ExitCode::from(2)
    } else if worst >= Severity::Critical {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
