//! Fig. 7d — PPO training time vs. injected network latency
//! (0.2–6 ms), DP-A vs. DP-C, 400 environments, 50 actors.
//!
//! Paper shape: DP-C (many small gradient tensors) degrades rapidly with
//! latency; DP-A (few large transfers) stays flat; DP-C is preferable
//! below ≈2 ms.

use msrl_bench::{banner, series};
use msrl_sim::scenarios::{cloud, ppo_training_time, PpoWorkload};

fn main() {
    banner(
        "Fig 7d",
        "training time vs network latency (PPO, 400 envs, 50 actors)",
        "DP-C rises rapidly with latency, DP-A stable; crossover ≈ 2 ms",
    );
    let w = PpoWorkload::halfcheetah(400);
    let mut rows = Vec::new();
    let mut crossover = None;
    // The cloud fabric's base latency is 0.2 ms; the sweep adds tc-style
    // extra latency on top, as in the paper.
    for added_ms in [0.0f64, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 5.8] {
        let mut c = cloud();
        c.net = c.net.with_added_latency(added_ms * 1e-3);
        let a = ppo_training_time("DP-A", &w, &c, 50);
        let cc = ppo_training_time("DP-C", &w, &c, 50);
        if crossover.is_none() && a < cc {
            crossover = Some(0.2 + added_ms);
        }
        rows.push((0.2 + added_ms, vec![a, cc]));
    }
    series("latency [ms]", &["DP-A [s]", "DP-C [s]"], &rows);
    match crossover {
        Some(ms) => println!("\nDP-A preferable above ≈{ms:.1} ms (paper: ~2 ms)"),
        None => println!("\nno crossover in range"),
    }
    let c_growth = rows.last().unwrap().1[1] / rows[0].1[1];
    let a_growth = rows.last().unwrap().1[0] / rows[0].1[0];
    println!("latency sensitivity 0.2→6 ms: DP-C {c_growth:.2}×, DP-A {a_growth:.2}×");
}
