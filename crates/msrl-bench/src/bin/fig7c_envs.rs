//! Fig. 7c — PPO training time vs. environment count (100–600) at a
//! fixed 50 actors, DP-A vs. DP-C, cloud cluster.
//!
//! Paper shape: DP-A's time grows with environments (trajectory traffic
//! and bigger batches at the single learner); DP-C stays roughly stable
//! (it only communicates gradients); the curves cross around 320
//! environments.

use msrl_bench::{banner, series};
use msrl_sim::scenarios::{cloud, ppo_training_time, PpoWorkload};

fn main() {
    banner(
        "Fig 7c",
        "training time vs #envs (PPO, 50 actors, cloud)",
        "DP-A increases with envs, DP-C stable; crossover ≈ 320 envs",
    );
    let c = cloud();
    let mut rows = Vec::new();
    let mut crossover = None;
    for envs in [100usize, 200, 300, 320, 400, 500, 600] {
        let w = PpoWorkload::halfcheetah(envs);
        let a = ppo_training_time("DP-A", &w, &c, 50);
        let cc = ppo_training_time("DP-C", &w, &c, 50);
        if crossover.is_none() && cc < a {
            crossover = Some(envs);
        }
        rows.push((envs as f64, vec![a, cc]));
    }
    series("envs", &["DP-A [s]", "DP-C [s]"], &rows);
    match crossover {
        Some(e) => println!("\nDP-C overtakes DP-A from {e} envs (paper: ~320)"),
        None => println!("\nno crossover in range"),
    }
}
