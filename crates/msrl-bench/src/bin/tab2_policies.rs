//! Tab. 2 — the six default distribution policies, demonstrated live.
//!
//! For each policy: deploy PPO's FDG under it (coordinator → Algorithm 2
//! → placement), print the resulting fragment table, and — for the five
//! policies with real drivers — run a short real training session to
//! show the algorithm implementation is untouched across policies.

use msrl_bench::banner;
use msrl_core::config::{AlgorithmConfig, DeploymentConfig, PolicyName};
use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_b, run_dp_c, run_dp_f, DistPpoConfig};
use msrl_runtime::Coordinator;

fn main() {
    banner(
        "Tab 2",
        "default distribution policies",
        "six policies subsume Acme/SEED-RL/Sebulba/WarpDrive/parameter-server strategies",
    );
    let algo = AlgorithmConfig::ppo(4, 8);
    for policy in [
        PolicyName::SingleLearnerCoarse,
        PolicyName::SingleLearnerFine,
        PolicyName::MultipleLearners,
        PolicyName::GpuOnly,
        PolicyName::Environments,
        PolicyName::Central,
    ] {
        let deploy = DeploymentConfig::workers(4, 2, policy);
        let d = Coordinator::deploy_ppo(&algo, &deploy, 17, 6, 64).expect("deploys");
        println!("\n{}", d.describe());
    }

    println!("--- real training under four policies (same algorithm code) ---");
    let dist = DistPpoConfig {
        actors: 2,
        envs_per_actor: 2,
        steps_per_iter: 64,
        iterations: 25,
        hidden: vec![32],
        seed: 11,
        ..DistPpoConfig::default()
    };
    let make = |a: usize, i: usize| CartPole::new((a * 3 + i) as u64);
    for (name, report) in [
        ("DP-A", run_dp_a(make, &dist).expect("dp-a")),
        ("DP-B", run_dp_b(make, &dist).expect("dp-b")),
        ("DP-C", run_dp_c(make, &dist).expect("dp-c")),
        ("DP-F", run_dp_f(make, &dist).expect("dp-f")),
    ] {
        println!(
            "{name}: reward {:.1} → {:.1} over {} iterations",
            report.early_reward(3),
            report.recent_reward(3),
            report.iteration_rewards.len()
        );
    }
}
