//! `advise` — ranks the distribution policies DP-A..DP-F for a profiled
//! workload.
//!
//! Reads the `results/profile_*.json` artifacts committed by
//! `profile_report`, characterises the workload from the profile with a
//! dedicated learner fragment (its `phase.learn` excludes communication,
//! so compute and network costs separate cleanly), and prints the
//! [`msrl_runtime::advisor`] cost-model ranking next to the measured
//! per-iteration periods of every artifact.
//!
//! ```text
//! cargo run -p msrl-bench --bin advise [results_dir]
//!     [--actors N] [--latency-ms X] [--epochs E]
//! cargo run -p msrl-bench --bin advise -- --live metrics.jsonl
//!     [--latency-ms X] [--epochs E]
//! ```
//!
//! Defaults: `results_dir = results`, actors and steps from the profile,
//! latency 10 ms (the profiled workload's simulated wire latency),
//! epochs 1. Exits non-zero when no parsable profile artifact exists.
//!
//! `--live` switches the input from post-hoc profile artifacts to the
//! always-on attribution stream: the [`msrl_runtime::advisor::LiveAdvisor`]
//! folds each `msrl.run_event.v2` line into the cost model and prints a
//! re-partition recommendation whenever the bottleneck shift survives
//! the hysteresis window. Recommendation only — nothing is re-planned.

use std::process::ExitCode;
use std::time::Duration;

use msrl_runtime::advisor::{
    parse_profile, rank_policies, render_table, CostModelInputs, LiveAdvisor, LiveAdvisorConfig,
};

fn main() -> ExitCode {
    let mut dir = "results".to_string();
    let mut actors: Option<usize> = None;
    let mut latency = Duration::from_millis(10);
    let mut epochs = 1usize;
    let mut live: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--live" => match take(&mut i) {
                Some(v) => live = Some(v),
                None => return usage("--live needs a metrics.jsonl path"),
            },
            "--actors" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => actors = Some(v),
                None => return usage("--actors needs an integer"),
            },
            "--latency-ms" => match take(&mut i).and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => latency = Duration::from_secs_f64(v / 1e3),
                _ => return usage("--latency-ms needs a non-negative number"),
            },
            "--epochs" => match take(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => epochs = v,
                None => return usage("--epochs needs an integer"),
            },
            flag if flag.starts_with("--") => return usage(&format!("unknown flag {flag}")),
            path => dir = path.to_string(),
        }
        i += 1;
    }

    if let Some(stream) = live {
        return advise_live(&stream, latency, epochs);
    }

    let mut profiles = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("advise: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("profile_") && n.ends_with(".json") && n != "profile_report.json")
        .collect();
    names.sort();
    for name in names {
        let path = format!("{dir}/{name}");
        match std::fs::read_to_string(&path) {
            Ok(json) => match parse_profile(&json, &name) {
                Ok(p) => profiles.push(p),
                Err(e) => eprintln!("advise: skipping {e}"),
            },
            Err(e) => eprintln!("advise: skipping {path}: {e}"),
        }
    }
    if profiles.is_empty() {
        eprintln!("advise: no parsable profile_*.json under {dir} (run profile_report first)");
        return ExitCode::FAILURE;
    }

    // Characterise the workload from the cleanest profile available.
    let workload =
        profiles.iter().find(|p| p.has_dedicated_learner).unwrap_or(&profiles[0]).clone();
    let actors = actors.unwrap_or(workload.actors);
    let inputs = CostModelInputs::from_profile(&workload, actors, latency, epochs);
    let rows = rank_policies(&inputs);

    println!(
        "workload: {} (rollout p50 {:.3} ms, learn p50 {:.3} ms, {} steps/iter)",
        workload.source,
        inputs.rollout_ns / 1e6,
        inputs.learn_ns / 1e6,
        inputs.steps_per_iter,
    );
    println!(
        "planning for: {actors} actors, {:.1} ms link latency, {epochs} sync round(s)/iter\n",
        latency.as_secs_f64() * 1e3,
    );
    print!("{}", render_table(&rows, &profiles));
    ExitCode::SUCCESS
}

/// Live mode: folds a v2 attribution stream into the cost model and
/// prints every recommendation the hysteresis lets through.
fn advise_live(path: &str, latency: Duration, epochs: usize) -> ExitCode {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("advise: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = LiveAdvisorConfig { latency, epochs, ..LiveAdvisorConfig::default() };
    let mut adv = LiveAdvisor::new(cfg);
    for line in content.lines().filter(|l| !l.trim().is_empty()) {
        match adv.observe_line(line) {
            Ok(Some(rec)) => match rec.previous {
                None => println!(
                    "event {:>4}: start on {} (modelled {:.3} ms/iter, bottleneck {})",
                    rec.events,
                    rec.policy,
                    rec.period_ns / 1e6,
                    rec.bottleneck,
                ),
                Some(prev) => println!(
                    "event {:>4}: bottleneck shifted to {} — re-partition {} -> {} \
                     (modelled {:.3} ms/iter)",
                    rec.events,
                    rec.bottleneck,
                    prev,
                    rec.policy,
                    rec.period_ns / 1e6,
                ),
            },
            Ok(None) => {}
            Err(e) => eprintln!("advise: skipping line: {e}"),
        }
    }
    if adv.events() == 0 {
        eprintln!("advise: no msrl.run_event.v2 events in {path}");
        return ExitCode::FAILURE;
    }
    let inputs = adv.inputs();
    println!(
        "\nfolded {} attribution event(s): rollout {:.3} ms, learn {:.3} ms, {} actor(s)",
        adv.events(),
        inputs.rollout_ns / 1e6,
        inputs.learn_ns / 1e6,
        inputs.actors,
    );
    match adv.current() {
        Some(policy) => println!("recommendation: {policy}"),
        None => println!("recommendation: (none — no candidate ranked)"),
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("advise: {err}");
    eprintln!(
        "usage: advise [results_dir] [--actors N] [--latency-ms X] [--epochs E] \
         | advise --live metrics.jsonl [--latency-ms X] [--epochs E]"
    );
    ExitCode::FAILURE
}
