//! Fig. 7b — time per episode vs. number of actors for PPO and A3C
//! under DP-A (cloud cluster).
//!
//! Paper shape: PPO's episode time falls as actors divide the
//! environment work; A3C's stays constant because each actor owns
//! exactly one environment regardless of the actor count.

use msrl_bench::{banner, series};
use msrl_sim::scenarios::{a3c_episode, cloud, dp_a_episode, PpoWorkload};

fn main() {
    banner(
        "Fig 7b",
        "episode time vs #actors (PPO vs A3C under DP-A, cloud)",
        "PPO decreases with actors; A3C flat (A3C needs ≥2 actors)",
    );
    let w = PpoWorkload::halfcheetah(200);
    let c = cloud();
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 12, 16, 20, 24] {
        rows.push((p as f64, vec![dp_a_episode(&w, &c, p, true), a3c_episode(&w, &c, p)]));
    }
    series("actors", &["PPO [s]", "A3C [s]"], &rows);
    let ppo_ratio = rows[0].1[0] / rows.last().unwrap().1[0];
    let a3c_ratio = rows[0].1[1] / rows.last().unwrap().1[1];
    println!("\nPPO 2→24 actors speedup: {ppo_ratio:.1}× (paper: decreasing)");
    println!("A3C 2→24 actors speedup: {a3c_ratio:.2}× (paper: ~1, constant)");
}
