//! Fig. 9b — A3C time per episode vs. the Ray-like baseline.
//!
//! Paper shape: both systems are flat in the GPU count (each actor owns
//! one environment); MSRL is ≈2.2× faster because its NCCL-style
//! asynchronous sends avoid Ray's CPU staging copies.

use msrl_bench::{banner, series};
use msrl_sim::scenarios::{a3c_episode, local, raylike_a3c_episode, PpoWorkload};

fn main() {
    banner(
        "Fig 9b",
        "A3C episode time: MSRL vs Ray-like (local cluster)",
        "both flat in GPUs; MSRL ≈2.2× faster (no CPU copies on async path)",
    );
    let w = PpoWorkload::halfcheetah(320);
    let c = local();
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16, 24] {
        let msrl = a3c_episode(&w, &c, p);
        let ray = raylike_a3c_episode(&w, &c, p);
        rows.push((p as f64, vec![msrl, ray, ray / msrl]));
    }
    series("GPUs", &["MSRL [s]", "Ray-like [s]", "speedup"], &rows);
    let flat = (rows[0].1[0] - rows.last().unwrap().1[0]).abs() < 1e-9;
    println!("\nMSRL A3C flat across GPU counts: {flat} (paper: true)");
    println!("speedup: {:.2}× (paper: 2.2×)", rows[0].1[2]);
}
