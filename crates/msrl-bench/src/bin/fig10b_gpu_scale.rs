//! Fig. 10b — DP-D scaling to multiple GPUs (80 000 agents per GPU,
//! 160 000–960 000 agents), which WarpDrive does not support.
//!
//! Paper shape: training time per episode rises slightly from 138 ms
//! (160k agents) to ~150 ms (960k), then stays stable — bounded by the
//! NVLink/InfiniBand bandwidth of the replica synchronisation.

use msrl_bench::{banner, series};
use msrl_sim::scenarios::{dp_d_episode, local, GpuLoopWorkload};

fn main() {
    banner(
        "Fig 10b",
        "GPU-only PPO multi-GPU scaling (80k agents per GPU)",
        "episode time 138 ms → ~150 ms from 160k to 960k agents, then stable",
    );
    let c = local();
    let mut rows = Vec::new();
    for gpus in [2usize, 4, 6, 8, 10, 12] {
        let agents = 80_000 * gpus;
        let w = GpuLoopWorkload::simple_tag(agents);
        rows.push((agents as f64, vec![dp_d_episode(&w, &c, gpus) * 1e3]));
    }
    series("agents", &["episode time [ms]"], &rows);
    let first = rows[0].1[0];
    let last = rows.last().unwrap().1[0];
    println!(
        "\n160k → 960k agents: {first:.0} ms → {last:.0} ms ({:+.0}%, paper: 138→150 ms then stable)",
        100.0 * (last - first) / first
    );
}
