//! Fig. 11a — MAPPO training time per episode vs. agent count, MSRL
//! (DP-E, one GPU per agent) vs. the sequential single-GPU baseline,
//! MPE `simple_spread` with O(n³) global observations, cloud cluster.
//!
//! Paper shape: both curves rise sharply (cubic observation growth);
//! MSRL is 58× faster at 32 agents; the baseline exhausts GPU memory at
//! 64 agents while MSRL trains an episode in 23.8 minutes.

use msrl_baselines::sequential::{run_sequential_mappo, SequentialOutcome};
use msrl_bench::{banner, fmt_secs, series};
use msrl_sim::scenarios::{cloud, dp_e_episode, sequential_mappo_episode, MappoWorkload};

fn main() {
    banner(
        "Fig 11a",
        "MAPPO episode time vs #agents (simple_spread, global obs)",
        "58× over sequential at 32 agents; baseline OOM at 64; MSRL 23.8 min @64",
    );
    let c = cloud();
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64] {
        let w = MappoWorkload::spread(n);
        let msrl = dp_e_episode(&w, &c);
        let seq = sequential_mappo_episode(&w, &c);
        rows.push((n as f64, vec![msrl, seq.unwrap_or(f64::NAN)]));
    }
    series("agents", &["MSRL DP-E [s]", "sequential [s]"], &rows);
    let w32 = MappoWorkload::spread(32);
    let speedup =
        sequential_mappo_episode(&w32, &c).expect("32 agents fit") / dp_e_episode(&w32, &c);
    println!("\nspeedup at 32 agents: {speedup:.0}× (paper: 58×)");
    let w64 = MappoWorkload::spread(64);
    println!(
        "64 agents: sequential {:?} (paper: OOM), MSRL {} (paper: 23.8 min)",
        sequential_mappo_episode(&w64, &c).map(fmt_secs),
        fmt_secs(dp_e_episode(&w64, &c))
    );

    println!("\n--- real baseline memory accounting (this machine) ---");
    match run_sequential_mappo(64, 1, 0).expect("memory check") {
        SequentialOutcome::OutOfMemory { required } => {
            println!(
                "sequential 64 agents: OOM (needs {:.0} GiB > 16 GiB)",
                required as f64 / (1u64 << 30) as f64
            )
        }
        SequentialOutcome::Completed { .. } => println!("unexpected: 64 agents fit"),
    }
}
