//! Fig. 11b — MAPPO training throughput (MB of observation data trained
//! per second) vs. agent count under DP-E.
//!
//! Paper shape: throughput rises steeply with agents — 64 agents train
//! over 7600× more data per second than 2 agents, because data volume
//! grows as O(n³) while per-episode time is dominated by fixed costs at
//! small n.

use msrl_bench::{banner, series};
use msrl_sim::scenarios::{cloud, mappo_throughput, MappoWorkload};

fn main() {
    banner(
        "Fig 11b",
        "MAPPO training throughput vs #agents (simple_spread)",
        "throughput at 64 agents > 7600× that at 2 agents",
    );
    let c = cloud();
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64] {
        let w = MappoWorkload::spread(n);
        rows.push((n as f64, vec![mappo_throughput(&w, &c) / 1e6]));
    }
    series("agents", &["throughput [MB/s]"], &rows);
    let ratio = rows.last().unwrap().1[0] / rows[0].1[0];
    println!("\nthroughput ratio 64 vs 2 agents: {ratio:.0}× (paper: >7600×)");
}
