//! Fig. 7a — PPO training time (to reward 3000) vs. number of actors,
//! DP-A vs. DP-C, 200 environments, cloud cluster.
//!
//! Paper shape: DP-A scales better with more actors; DP-C wins at low
//! actor counts, reaches its best point mid-range, then deteriorates.

use msrl_bench::{banner, series};
use msrl_sim::scenarios::{cloud, ppo_training_time, PpoWorkload};

fn main() {
    banner(
        "Fig 7a",
        "training time vs #actors (PPO, 200 envs, cloud)",
        "DP-C best ~40 actors, beats DP-A at low counts; DP-A scales better beyond",
    );
    let w = PpoWorkload::halfcheetah(200);
    let c = cloud();
    let mut rows = Vec::new();
    let mut best_c = (0usize, f64::INFINITY);
    let mut crossover = None;
    for p in [2usize, 4, 8, 12, 16, 20, 24, 30, 40, 50, 60, 70] {
        let a = ppo_training_time("DP-A", &w, &c, p);
        let cc = ppo_training_time("DP-C", &w, &c, p);
        if cc < best_c.1 {
            best_c = (p, cc);
        }
        if crossover.is_none() && a < cc {
            crossover = Some(p);
        }
        rows.push((p as f64, vec![a, cc]));
    }
    series("actors", &["DP-A [s]", "DP-C [s]"], &rows);
    println!("\nDP-C optimum at {} actors (paper: ~40)", best_c.0);
    match crossover {
        Some(p) => println!("DP-A overtakes DP-C from {p} actors (paper: ~30)"),
        None => println!("no crossover in range"),
    }
}
