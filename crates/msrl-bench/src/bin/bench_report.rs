//! `bench_report` — measures the threaded tensor backend against the
//! scalar reference and writes `BENCH_backend.json` at the workspace
//! root (or the path given as the first argument).
//!
//! Each entry records one operation at one shape: median ns/iter under
//! both backends and the resulting speedup. On a single-core host the
//! threaded backend degenerates to the serial kernels (the speedup
//! column then hovers around 1.0) — the numbers are honest for whatever
//! machine runs the report.
//!
//! The report also records the cost of the telemetry layer: the
//! per-probe price of a disabled span and an always-on counter (both of
//! which now feed the flight recorder's ring), a histogram record, a
//! `RunEvent` JSONL emit, and the end-to-end fused-MLP evaluation with
//! tracing off vs. on. Because the instrumentation is always compiled
//! in, "disabled overhead" is measured directly at the probe:
//! `disabled_probe_share_pct` is the per-probe disabled cost times the
//! probes one evaluation executes (plus the per-eval histogram record
//! and attribution stamp), as a share of that evaluation — the number
//! the <5% acceptance bound applies to. The bound is enforced here: the
//! binary exits non-zero when the share reaches 5%. The attribution
//! engine's iteration-level cost (`attr_finish_iter_ns`, the p50 of the
//! always-on `attr.finish_iteration` histogram over the macro runs) is
//! held to the same 5% bound as a share of a DP-A iteration period.
//!
//! The `kernel_reductions` section prices the reduction microkernels
//! (sum_axis and softmax_rows, naive fold vs gathered row kernels, with
//! GFLOP/s at both tiers) and the batched rollout forward (one
//! `PackedMlp::infer` over all actors' observation rows vs the
//! per-actor `Mlp::infer` loop), all as interleaved minima. Hard
//! floors: sum_axis ≥2x, batched rollout ≥1.5x, softmax_tier1 ≥1.3x
//! (the bit-exact tier's exp+sum pass has no bit-exact vector form and
//! stays scalar, so only the max fold and the scale pass vectorize).
//!
//! The `fastmath` section prices the opt-in `MSRL_TIER=2` kernels,
//! which drop bit-exactness for vectorized polynomial exp/tanh (DESIGN
//! §3.14): softmax_rows tier 2 vs tier 0 (floor ≥2.5x — the exp pass
//! finally vectorizes), the tanh-MLP batched rollout forward tier 2 vs
//! tier 1 on the e2e policy shape (floor ≥1.3x), and the act server's
//! one-forward-per-round over all actors' rows vs the per-actor packed
//! loop at 128 actors (floor ≥1.5x). Every kernel section also records
//! `dispatch` — the microkernel family `kernels::select()` actually
//! chose on this host (avx512/avx2/portable) — so trend comparisons
//! across machines are interpretable.
//!
//! When the output file already exists from a previous run, the binary
//! first compares against it (`bench_trend`): per-entry deltas are
//! printed, and host-independent gated ratios — fusion speedup, plan
//! cache speedup, disabled-probe share — fail the run on a >25%
//! regression. Host-dependent ns columns are reported but never gate.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use msrl_algos::ppo::{PackedPpo, PpoConfig, PpoPolicy};
use msrl_core::interp::Interpreter;
use msrl_core::partition::build_fdg;
use msrl_core::trace::{trace_mlp, TraceCtx};
use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_c, DistPpoConfig};
use msrl_tensor::autograd::Tape;
use msrl_tensor::nn::{Activation, Mlp};
use msrl_tensor::{init, ops, par, Backend, Tensor};

/// Median ns/iter of `f` over `samples` timed samples, auto-scaling the
/// per-sample iteration count to ~2 ms (mirrors the criterion shim).
fn time_ns<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once_ns = t0.elapsed().as_nanos().max(1);
    let iters = (2_000_000 / once_ns).clamp(1, 10_000) as u64;
    let mut med = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        med.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    med.sort_by(|a, b| a.total_cmp(b));
    med[med.len() / 2]
}

/// One measured row of the report.
struct Row {
    op: &'static str,
    shape: String,
    scalar_ns: f64,
    threaded_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.threaded_ns.max(1.0)
    }
}

/// The microkernel family `kernels::select()` chose on this host,
/// recorded in each kernel section of the report so trend numbers stay
/// interpretable across machines.
fn dispatch_label() -> &'static str {
    match msrl_tensor::kernels::select() {
        msrl_tensor::kernels::MatKernel::Avx512 => "avx512",
        msrl_tensor::kernels::MatKernel::Avx2 => "avx2",
        msrl_tensor::kernels::MatKernel::Portable => "portable",
    }
}

fn measure(op: &'static str, shape: String, mut f: impl FnMut() -> Tensor) -> Row {
    let scalar_ns = par::with_backend(Backend::Scalar, || time_ns(9, &mut f));
    let threaded_ns = par::with_backend(Backend::Threaded, || time_ns(9, &mut f));
    Row { op, shape, scalar_ns, threaded_ns }
}

fn mlp_rows(replicas: usize, batch: usize) -> Row {
    let ctx = TraceCtx::new();
    let x = ctx.input("x", &[replicas * batch, 17]);
    trace_mlp(&ctx, "pi", &x, &[17, 64, 64, 6]);
    let g = ctx.finish();
    let mut interp = Interpreter::new();
    interp.bind_param("pi.w0", Tensor::full(&[17, 64], 0.01));
    interp.bind_param("pi.b0", Tensor::zeros(&[64]));
    interp.bind_param("pi.w1", Tensor::full(&[64, 64], 0.01));
    interp.bind_param("pi.b1", Tensor::zeros(&[64]));
    interp.bind_param("pi.w2", Tensor::full(&[64, 6], 0.01));
    interp.bind_param("pi.b2", Tensor::zeros(&[6]));
    interp.bind_input("x", Tensor::full(&[replicas * batch, 17], 0.1));
    measure("fused_mlp_16_replicas", format!("[{}x{}, 17]->[.., 6]", replicas, batch), move || {
        let out = interp.eval(&g).expect("evaluates");
        out.into_iter().next().expect("graph has nodes")
    })
}

/// Measured cost of the telemetry layer on this host.
struct TelemetryCost {
    /// One span open/close with tracing off (the disabled path).
    span_disabled_ns: f64,
    /// One span open/close with tracing recording.
    span_enabled_ns: f64,
    /// One always-on counter increment.
    counter_add_ns: f64,
    /// One always-on histogram record (log₂ bucketing + fetch_add).
    hist_record_ns: f64,
    /// One `RunEvent` formatted and appended to the JSONL stream.
    run_event_emit_ns: f64,
    /// One attribution step stamp with the engine on (the default) and
    /// gated off via `MSRL_ATTR=0`.
    attr_step_ns: f64,
    attr_step_disabled_ns: f64,
    /// Fused-MLP evaluation, tracing off / on.
    mlp_off_ns: f64,
    mlp_on_ns: f64,
    /// Instrumentation probes one evaluation executes.
    probes_per_eval: u64,
    /// Upper-bound share of the disabled probes in one evaluation.
    disabled_probe_share_pct: f64,
    /// End-to-end overhead of recording vs. not recording.
    traced_on_overhead_pct: f64,
}

fn telemetry_cost() -> TelemetryCost {
    use msrl_telemetry as tel;
    tel::set_enabled(false);
    let span_disabled_ns = time_ns(9, || {
        let _s = tel::span!("bench.probe");
    });
    let counter_add_ns = time_ns(9, || tel::static_counter!("bench.counter").add(1));
    let mut v = 0u64;
    let hist_record_ns = time_ns(9, || {
        v = v.wrapping_add(1097);
        tel::static_histogram!("bench.hist").record(v & 0xFFFF)
    });
    // RunEvent emit cost, measured against a real (temp) JSONL file so
    // the formatting *and* the append are both priced.
    let metrics_path =
        std::env::temp_dir().join(format!("msrl-bench-metrics-{}.jsonl", std::process::id()));
    tel::set_metrics_file(metrics_path.to_str());
    let mut iter = 0u64;
    let run_event_emit_ns = time_ns(9, || {
        iter += 1;
        tel::emit_run_event(&tel::RunEvent {
            policy: "bench",
            iteration: iter,
            reward: 1.5,
            loss: Some(0.25),
            entropy: Some(1.1),
            iters_per_sec: 80.0,
            comm_bytes: 4096,
            staleness: 1,
            plan_cache_hit_rate: Some(0.9),
            attr: None,
            actsrv: None,
            health: None,
        })
    });
    tel::set_metrics_file(None);
    let _ = std::fs::remove_file(&metrics_path);

    // Attribution stamps: one step guard open/close with the engine on
    // (the always-on default — this joins the probe share below) and
    // gated off. The drained window afterwards keeps the bench stamps
    // out of the macro runs' first attribution window.
    tel::set_fragment("bench", 0);
    tel::set_attr_enabled(true);
    let attr_step_ns = time_ns(9, || {
        let _g = tel::step(tel::StepClass::Eval);
    });
    tel::set_attr_enabled(false);
    let attr_step_disabled_ns = time_ns(9, || {
        let _g = tel::step(tel::StepClass::Eval);
    });
    tel::set_attr_enabled(true);
    tel::reset_window();
    let _ = tel::finish_iteration();

    tel::set_enabled(true);
    let span_enabled_ns = time_ns(9, || {
        let _s = tel::span!("bench.probe");
    });
    tel::clear_events();
    tel::set_enabled(false);

    // The same fused-MLP workload as `mlp_rows`, timed with tracing off
    // and on under the default (threaded) backend.
    let ctx = TraceCtx::new();
    let x = ctx.input("x", &[16 * 8, 17]);
    trace_mlp(&ctx, "pi", &x, &[17, 64, 64, 6]);
    let g = ctx.finish();
    let mut interp = Interpreter::new();
    interp.bind_param("pi.w0", Tensor::full(&[17, 64], 0.01));
    interp.bind_param("pi.b0", Tensor::zeros(&[64]));
    interp.bind_param("pi.w1", Tensor::full(&[64, 64], 0.01));
    interp.bind_param("pi.b1", Tensor::zeros(&[64]));
    interp.bind_param("pi.w2", Tensor::full(&[64, 6], 0.01));
    interp.bind_param("pi.b2", Tensor::zeros(&[6]));
    interp.bind_input("x", Tensor::full(&[16 * 8, 17], 0.1));

    let before = tel::counter_total("interp.ops");
    interp.eval(&g).expect("evaluates");
    let probes_per_eval = tel::counter_total("interp.ops") - before;

    let mlp_off_ns = time_ns(9, || interp.eval(&g).expect("evaluates"));
    tel::set_enabled(true);
    let mlp_on_ns = time_ns(9, || interp.eval(&g).expect("evaluates"));
    tel::clear_events();
    tel::set_enabled(false);

    TelemetryCost {
        span_disabled_ns,
        span_enabled_ns,
        counter_add_ns,
        hist_record_ns,
        run_event_emit_ns,
        attr_step_ns,
        attr_step_disabled_ns,
        mlp_off_ns,
        mlp_on_ns,
        probes_per_eval,
        // One fragment.eval histogram record and one attribution Eval
        // stamp per evaluation join the per-probe span/counter costs
        // (all include the flight recorder's ring push, which is on by
        // default).
        disabled_probe_share_pct: (probes_per_eval as f64 * (span_disabled_ns + counter_add_ns)
            + hist_record_ns
            + attr_step_ns)
            / mlp_off_ns.max(1.0)
            * 100.0,
        traced_on_overhead_pct: (mlp_on_ns - mlp_off_ns) / mlp_off_ns.max(1.0) * 100.0,
    }
}

/// Measured per-iteration cost of the run-health watchdog on this host
/// (DESIGN §3.15): the three pieces every learner-side iteration pays
/// when `MSRL_HEALTH` is on.
struct HealthCost {
    /// One streaming-detector pass over a fully populated sample.
    observe_ns: f64,
    /// The fused non-finite scan over a policy-sized (8k) f32 vector.
    nonfinite_scan_ns: f64,
    /// The parameter flatten the drivers clone for that scan.
    params_clone_ns: f64,
}

impl HealthCost {
    fn per_iter_ns(&self) -> f64 {
        self.observe_ns + self.nonfinite_scan_ns + self.params_clone_ns
    }
}

fn health_cost() -> HealthCost {
    use msrl_telemetry::{HealthMonitor, HealthSample};
    let mut monitor = HealthMonitor::default();
    let mut iter = 0u64;
    let observe_ns = time_ns(9, || {
        iter += 1;
        monitor.observe(&HealthSample {
            iteration: iter,
            reward: 10.0 + (iter % 7) as f64,
            loss: Some(0.3),
            entropy: Some(1.1),
            iters_per_sec: 50.0,
            staleness_bound: 1,
            staleness_observed: None,
            grad_norm: Some(2.0),
            weight_norm: Some(40.0),
            update_ratio: Some(1e-3),
            nonfinite_params: Some(0),
            audit_rel_err: None,
        })
    });
    // A policy-sized parameter vector: the e2e nets flatten to a few
    // thousand weights; 8k rounds up.
    let params: Vec<f32> = (0..8192).map(|i| (i as f32 * 0.0137).sin()).collect();
    let nonfinite_scan_ns = time_ns(9, || msrl_tensor::kernels::count_nonfinite(&params));
    let params_clone_ns = time_ns(9, || params.clone());
    HealthCost { observe_ns, nonfinite_scan_ns, params_clone_ns }
}

/// One gated, host-independent ratio compared release over release by
/// the trend check.
struct Gated {
    name: &'static str,
    /// Whether larger values are better (speedups) or worse (shares).
    higher_is_better: bool,
    /// Absolute noise floor: values this small never gate (a 0.1% →
    /// 0.2% share move is measurement noise, not a regression).
    floor: f64,
    value: f64,
}

/// `bench_trend`: compares this run against the previous committed
/// report. Prints per-entry deltas for everything recognisable and
/// returns a description of every gated ratio that regressed >25%.
fn bench_trend(prev: &str, gated: &[Gated], rows: &[Row]) -> Vec<String> {
    fn num(v: &serde_json::Value) -> Option<f64> {
        match v {
            serde_json::Value::I64(n) => Some(*n as f64),
            serde_json::Value::U64(n) => Some(*n as f64),
            serde_json::Value::F64(n) => Some(*n),
            _ => None,
        }
    }
    let Ok(old) = serde_json::value_from_str(prev) else {
        println!("bench_trend: previous report unparsable; starting a fresh trajectory");
        return Vec::new();
    };
    println!("bench_trend: deltas vs previous report (host-dependent ns columns never gate)");
    if let Ok(serde_json::Value::Seq(entries)) = old.field("entries") {
        for entry in entries {
            let (Ok(serde_json::Value::Str(op)), Ok(serde_json::Value::Str(shape)), Ok(prev_ns)) =
                (entry.field("op"), entry.field("shape"), entry.field("threaded_ns_per_iter"))
            else {
                continue;
            };
            let Some(prev_ns) = num(prev_ns) else { continue };
            if let Some(row) = rows.iter().find(|r| r.op == op.as_str() && r.shape == *shape) {
                let delta = (row.threaded_ns - prev_ns) / prev_ns.max(1.0) * 100.0;
                println!(
                    "  {:<24} {:<28} threaded {:>10.0} ns -> {:>10.0} ns ({:+.1}%)",
                    row.op, row.shape, prev_ns, row.threaded_ns, delta
                );
            }
        }
    }
    let lookup = |section: &str, key: &str| -> Option<f64> {
        old.field(section).ok()?.field(key).ok().and_then(num)
    };
    let mut regressions = Vec::new();
    for g in gated {
        let (section, key) = g.name.split_once('.').expect("gated names are section.key");
        let Some(prev_v) = lookup(section, key) else {
            println!("  {:<40} (new gated entry; no previous value)", g.name);
            continue;
        };
        let delta = (g.value - prev_v) / prev_v.abs().max(1e-9) * 100.0;
        println!("  {:<40} {:>8.3} -> {:>8.3} ({:+.1}%)", g.name, prev_v, g.value, delta);
        let regressed = if g.higher_is_better {
            g.value < prev_v * 0.75
        } else {
            g.value > prev_v * 1.25 && g.value > g.floor
        };
        if regressed {
            regressions
                .push(format!("{}: {:.3} regressed >25% from {:.3}", g.name, g.value, prev_v));
        }
    }
    regressions
}

/// Measured effect of the graph compiler on this host.
struct GraphCompile {
    /// RL-scale MLP forward+backward, fused linear kernel off / on,
    /// pinned to the scalar backend so the gain is pure fusion (one
    /// memory pass instead of matmul→broadcast-add→activation), not
    /// threading.
    fwd_bwd_unfused_ns: f64,
    fwd_bwd_fused_ns: f64,
    /// Steady-state fragment evaluation: re-planning on every call (a
    /// fresh graph stamp per evaluation forces compile + consumer
    /// counting + levelling, the seed-path behavior) vs. replaying the
    /// cached plan.
    plan_per_call_ns: f64,
    plan_cached_ns: f64,
}

impl GraphCompile {
    fn fusion_speedup(&self) -> f64 {
        self.fwd_bwd_unfused_ns / self.fwd_bwd_fused_ns.max(1.0)
    }
    fn plan_cache_speedup(&self) -> f64 {
        self.plan_per_call_ns / self.plan_cached_ns.max(1.0)
    }
}

fn graph_compile_cost() -> GraphCompile {
    // The learn-phase workload of every driver: a PPO-sized MLP's
    // forward and backward over one minibatch. Fusion routes each layer
    // through `linear_act` (and its fused gradient) instead of three
    // separate kernels; at this scale the extra memory passes dominate,
    // which is exactly the regime RL training lives in.
    let mut rng = init::rng(42);
    let mlp = Mlp::seven_layer(17, 6, 32, &mut rng);
    let x = Tensor::full(&[2, 17], 0.1);
    let mut fwd_bwd = || {
        let tape = Tape::new();
        let net = mlp.bind(&tape);
        let xv = tape.var(x.clone());
        let loss = net.forward(&xv).expect("shapes conform").square().sum();
        let mut grads = tape.backward(&loss).expect("loss is scalar");
        net.take_grads(&mut grads)
    };
    let fwd_bwd_unfused_ns =
        par::with_backend(Backend::Scalar, || par::with_fusion(false, || time_ns(9, &mut fwd_bwd)));
    let fwd_bwd_fused_ns =
        par::with_backend(Backend::Scalar, || par::with_fusion(true, || time_ns(9, &mut fwd_bwd)));

    // Plan caching, measured on interpreted fragment evaluation (the
    // FDG execution path). Cloning the graph resets its identity stamp,
    // so every call compiles from scratch — the per-call planning the
    // seed interpreter did on each evaluation.
    let ctx = TraceCtx::new();
    let xin = ctx.input("x", &[8, 17]);
    let widths = [17usize, 64, 64, 64, 64, 64, 6];
    let out = trace_mlp(&ctx, "pi", &xin, &widths);
    let fdg = build_fdg(ctx.finish()).expect("unannotated graph builds");
    let frag = &fdg.fragments[0];
    let mut interp = Interpreter::new();
    for (l, w) in widths.windows(2).enumerate() {
        interp.bind_param(&format!("pi.w{l}"), Tensor::full(&[w[0], w[1]], 0.01));
        interp.bind_param(&format!("pi.b{l}"), Tensor::zeros(&[w[1]]));
    }
    interp.bind_input("x", Tensor::full(&[8, 17], 0.1));
    let plan_cached_ns = time_ns(9, || {
        interp
            .eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[out.id()])
            .expect("evaluates")
    });
    let plan_per_call_ns = time_ns(9, || {
        let fresh = fdg.graph.clone();
        interp.eval_fragment_outputs(&fresh, frag, HashMap::new(), &[out.id()]).expect("evaluates")
    });

    GraphCompile { fwd_bwd_unfused_ns, fwd_bwd_fused_ns, plan_per_call_ns, plan_cached_ns }
}

/// Measured effect of the kernel tier on this host.
struct KernelTier {
    /// 512×512×512 matmul, naive loops (`MSRL_TIER=0` path) vs the
    /// packed register-tiled microkernels, both on the scalar backend
    /// so the gain is pure kernel quality.
    matmul512_naive_ns: f64,
    matmul512_tiered_ns: f64,
    /// The same MLP forward+backward as `graph_compile`, everything off
    /// (seed path) vs everything on (fusion + tier): the end-to-end
    /// learn-phase win of the compiled kernel stack.
    mlp_fwd_bwd_base_ns: f64,
    mlp_fwd_bwd_tiered_ns: f64,
    /// 256×256×256 matmul on the scalar backend vs the threaded backend
    /// clamped to one worker: `threads=1` must dispatch straight to the
    /// serial kernels, so this ratio must not dip below ~1.
    threads1_scalar_ns: f64,
    threads1_threaded_ns: f64,
}

impl KernelTier {
    fn matmul512_speedup(&self) -> f64 {
        self.matmul512_naive_ns / self.matmul512_tiered_ns.max(1.0)
    }
    fn mlp_fwd_bwd_speedup(&self) -> f64 {
        self.mlp_fwd_bwd_base_ns / self.mlp_fwd_bwd_tiered_ns.max(1.0)
    }
    fn threads1_speedup(&self) -> f64 {
        self.threads1_scalar_ns / self.threads1_threaded_ns.max(1.0)
    }
    /// GFLOP/s of one 512³ matmul at the given ns/iter.
    fn gflops512(ns: f64) -> f64 {
        2.0 * 512.0 * 512.0 * 512.0 / ns.max(1.0)
    }
}

fn kernel_tier_cost() -> KernelTier {
    let a = Tensor::full(&[512, 512], 0.5);
    let b = Tensor::full(&[512, 512], 0.25);
    let mut mm = || ops::matmul(&a, &b).expect("shapes conform");
    let matmul512_naive_ns =
        par::with_backend(Backend::Scalar, || par::with_tier(false, || time_ns(9, &mut mm)));
    let matmul512_tiered_ns =
        par::with_backend(Backend::Scalar, || par::with_tier(true, || time_ns(9, &mut mm)));

    // End-to-end learn phase: the `graph_compile` MLP forward+backward
    // with the whole kernel stack off vs on. The tier's contribution
    // here is the transpose-free packed backward (`matmul_at`/`_bt`).
    let mut rng = init::rng(42);
    let mlp = Mlp::seven_layer(17, 6, 32, &mut rng);
    let x = Tensor::full(&[2, 17], 0.1);
    let mut fwd_bwd = || {
        let tape = Tape::new();
        let net = mlp.bind(&tape);
        let xv = tape.var(x.clone());
        let loss = net.forward(&xv).expect("shapes conform").square().sum();
        let mut grads = tape.backward(&loss).expect("loss is scalar");
        net.take_grads(&mut grads)
    };
    // Interleaved minima, as for threads=1 below: both configurations
    // sample under the same load profile.
    let (mlp_fwd_bwd_base_ns, mlp_fwd_bwd_tiered_ns) = par::with_backend(Backend::Scalar, || {
        let mut base = f64::INFINITY;
        let mut tiered = f64::INFINITY;
        for _ in 0..5 {
            base = base.min(par::with_fusion(false, || {
                par::with_tier(false, || time_ns(3, &mut fwd_bwd))
            }));
            tiered = tiered
                .min(par::with_fusion(true, || par::with_tier(true, || time_ns(3, &mut fwd_bwd))));
        }
        (base, tiered)
    });

    // threads=1 sanity: the threaded backend with one worker must cost
    // the same as the scalar backend (no pool, no chunking overhead —
    // `should_parallelize` short-circuits and both run the serial
    // kernel). The samples interleave backends and keep each side's
    // minimum so a load spike on this box can't skew the ratio.
    let a = Tensor::full(&[256, 256], 0.5);
    let b = Tensor::full(&[256, 256], 0.25);
    let mut mm = || ops::matmul(&a, &b).expect("shapes conform");
    let (threads1_scalar_ns, threads1_threaded_ns) = par::with_threads(1, || {
        let mut scalar = f64::INFINITY;
        let mut threaded = f64::INFINITY;
        for _ in 0..5 {
            scalar = scalar.min(par::with_backend(Backend::Scalar, || time_ns(3, &mut mm)));
            threaded = threaded.min(par::with_backend(Backend::Threaded, || time_ns(3, &mut mm)));
        }
        (scalar, threaded)
    });

    KernelTier {
        matmul512_naive_ns,
        matmul512_tiered_ns,
        mlp_fwd_bwd_base_ns,
        mlp_fwd_bwd_tiered_ns,
        threads1_scalar_ns,
        threads1_threaded_ns,
    }
}

/// Measured effect of the reduction microkernels and the batched
/// rollout forward on this host.
struct KernelReductions {
    /// `sum_axis` over the last axis of [512, 1024]: naive scalar fold
    /// (`MSRL_TIER=0`) vs the gathered row kernels that run lanes
    /// across independent output rows.
    sum_axis_naive_ns: f64,
    sum_axis_tiered_ns: f64,
    /// `softmax_rows` on [512, 64]. The tiered path vectorizes the max
    /// fold and the scale pass across rows; the exp+sum stays scalar
    /// per row (no bit-exact vector exp), so the gain is bounded by the
    /// exp share of the pass.
    softmax_naive_ns: f64,
    softmax_tiered_ns: f64,
    /// One rollout step's forwards for 128 actors × 1 observation row
    /// (the batch a real `PpoActor::act` sees per step at the e2e
    /// configs' `envs_per_actor: 1`, on a `hidden: 32` ReLU net so the
    /// ratio prices dispatch, not libm tanh — which is scalar and
    /// identical on both sides): the per-actor loop — 128 small
    /// `Mlp::infer` calls, each paying its own per-layer dispatch and
    /// output allocation — vs one batched `PackedMlp::infer` over the
    /// shared pre-packed weights, the `PpoActor` pack-cache path.
    rollout_per_actor_ns: f64,
    rollout_batched_ns: f64,
}

impl KernelReductions {
    fn sum_axis_speedup(&self) -> f64 {
        self.sum_axis_naive_ns / self.sum_axis_tiered_ns.max(1.0)
    }
    fn softmax_speedup(&self) -> f64 {
        self.softmax_naive_ns / self.softmax_tiered_ns.max(1.0)
    }
    fn rollout_batch_speedup(&self) -> f64 {
        self.rollout_per_actor_ns / self.rollout_batched_ns.max(1.0)
    }
    /// GFLOP/s at `flops` floating-point ops per iteration.
    fn gflops(flops: f64, ns: f64) -> f64 {
        flops / ns.max(1.0)
    }
}

fn kernel_reductions_cost() -> KernelReductions {
    // Row reductions on the scalar backend, tier off vs on, interleaved
    // minima so a load spike on this box can't skew either side.
    let a = Tensor::from_vec(
        (0..512 * 1024).map(|i| (i as f32 * 0.00137).sin()).collect(),
        &[512, 1024],
    )
    .expect("shape matches");
    let mut sum = || ops::sum_axis(&a, 1).expect("axis in range");
    let s =
        Tensor::from_vec((0..512 * 64).map(|i| (i as f32 * 0.0213).cos()).collect(), &[512, 64])
            .expect("shape matches");
    let mut soft = || ops::softmax_rows(&s).expect("rank 2");
    let (sum_axis_naive_ns, sum_axis_tiered_ns, softmax_naive_ns, softmax_tiered_ns) =
        par::with_backend(Backend::Scalar, || {
            let mut v = [f64::INFINITY; 4];
            for _ in 0..5 {
                v[0] = v[0].min(par::with_tier(false, || time_ns(3, &mut sum)));
                v[1] = v[1].min(par::with_tier(true, || time_ns(3, &mut sum)));
                v[2] = v[2].min(par::with_tier(false, || time_ns(3, &mut soft)));
                v[3] = v[3].min(par::with_tier(true, || time_ns(3, &mut soft)));
            }
            (v[0], v[1], v[2], v[3])
        });

    // Batched rollout forward: 128 actors' observation rows (one per
    // actor, the batch a real rollout step sees) as one matrix over
    // shared pre-packed weights vs the per-actor loop those rollouts
    // paid before this optimization.
    let mut rng = init::rng(42);
    let mlp = Mlp::new(&[17, 32, 32, 6], Activation::Relu, Activation::Linear, &mut rng);
    let packed = mlp.pack();
    let big =
        Tensor::from_vec((0..128 * 17).map(|i| (i as f32 * 0.011).sin()).collect(), &[128, 17])
            .expect("shape matches");
    let small: Vec<Tensor> = (0..128)
        .map(|k| {
            Tensor::from_vec(big.data()[k * 17..(k + 1) * 17].to_vec(), &[1, 17])
                .expect("shape matches")
        })
        .collect();
    let (rollout_per_actor_ns, rollout_batched_ns) = par::with_backend(Backend::Scalar, || {
        par::with_fusion(true, || {
            par::with_tier(true, || {
                let mut per = f64::INFINITY;
                let mut bat = f64::INFINITY;
                for _ in 0..5 {
                    per = per.min(time_ns(3, || {
                        let mut outs = Vec::with_capacity(small.len());
                        for x in &small {
                            outs.push(mlp.infer(x).expect("shapes conform"));
                        }
                        outs
                    }));
                    bat = bat.min(time_ns(3, || packed.infer(&big).expect("shapes conform")));
                }
                (per, bat)
            })
        })
    });

    KernelReductions {
        sum_axis_naive_ns,
        sum_axis_tiered_ns,
        softmax_naive_ns,
        softmax_tiered_ns,
        rollout_per_actor_ns,
        rollout_batched_ns,
    }
}

/// Measured effect of the opt-in fast-math tier (`MSRL_TIER=2`) and the
/// cross-actor act server on this host.
struct Fastmath {
    /// `softmax_rows` on [512, 64]: tier 0 (naive scalar, libm exp) vs
    /// tier 2 (vectorized max fold + polynomial exp + scale).
    softmax_tier0_ns: f64,
    softmax_tier2_ns: f64,
    /// The batched rollout forward on the e2e policy shape — a tanh
    /// [17, 32, 32, 6] MLP over 128 actors' rows through the pack
    /// cache — tier 1 (libm tanh epilogue) vs tier 2 (vectorized
    /// polynomial tanh). This is the forward the PR 8 batched path
    /// runs; tier 2 must beat it ≥1.3x because tanh dominates it.
    rollout_tanh_tier1_ns: f64,
    rollout_tanh_tier2_ns: f64,
    /// One rollout step's policy forwards for 128 actors × 1 row: the
    /// per-actor packed loop (each actor forwards its own rows, the PR 8
    /// pack-cache path) vs the act server's single forward over the
    /// concatenated block — the exact kernels `ActServer::submit`'s
    /// round leader runs, priced without thread-rendezvous noise.
    actsrv_per_actor_ns: f64,
    actsrv_batched_ns: f64,
}

impl Fastmath {
    fn softmax_tier2_speedup(&self) -> f64 {
        self.softmax_tier0_ns / self.softmax_tier2_ns.max(1.0)
    }
    fn rollout_tanh_tier2_speedup(&self) -> f64 {
        self.rollout_tanh_tier1_ns / self.rollout_tanh_tier2_ns.max(1.0)
    }
    fn actsrv_batch_speedup(&self) -> f64 {
        self.actsrv_per_actor_ns / self.actsrv_batched_ns.max(1.0)
    }
}

fn fastmath_cost() -> Fastmath {
    // softmax_rows tier 0 vs tier 2, scalar backend, interleaved minima.
    let s =
        Tensor::from_vec((0..512 * 64).map(|i| (i as f32 * 0.0213).cos()).collect(), &[512, 64])
            .expect("shape matches");
    let mut soft = || ops::softmax_rows(&s).expect("rank 2");
    let (softmax_tier0_ns, softmax_tier2_ns) = par::with_backend(Backend::Scalar, || {
        let mut t0 = f64::INFINITY;
        let mut t2 = f64::INFINITY;
        for _ in 0..5 {
            t0 = t0.min(par::with_tier_level(0, || time_ns(3, &mut soft)));
            t2 = t2.min(par::with_tier_level(2, || time_ns(3, &mut soft)));
        }
        (t0, t2)
    });

    // The e2e-shaped tanh rollout forward through the pack cache, tier 1
    // vs tier 2: same packed panels, the only difference is the
    // activation epilogue (libm tanh per element vs the vectorized
    // polynomial).
    let mut rng = init::rng(42);
    let mlp = Mlp::new(&[17, 32, 32, 6], Activation::Tanh, Activation::Linear, &mut rng);
    let packed = mlp.pack();
    let big =
        Tensor::from_vec((0..128 * 17).map(|i| (i as f32 * 0.011).sin()).collect(), &[128, 17])
            .expect("shape matches");
    let (rollout_tanh_tier1_ns, rollout_tanh_tier2_ns) = par::with_backend(Backend::Scalar, || {
        par::with_fusion(true, || {
            let mut t1 = f64::INFINITY;
            let mut t2 = f64::INFINITY;
            for _ in 0..5 {
                t1 = t1.min(par::with_tier_level(1, || {
                    time_ns(3, || packed.infer(&big).expect("shapes conform"))
                }));
                t2 = t2.min(par::with_tier_level(2, || {
                    time_ns(3, || packed.infer(&big).expect("shapes conform"))
                }));
            }
            (t1, t2)
        })
    });

    // The act server's round forward vs the per-actor loop, on the real
    // PPO policy forward (actor head + critic) at 128 actors × 1 row.
    let policy = PpoPolicy::discrete(17, 6, &[32, 32], 42);
    let ppacked = PackedPpo::pack(&policy);
    let rows: Vec<Tensor> = (0..128)
        .map(|k| {
            Tensor::from_vec(big.data()[k * 17..(k + 1) * 17].to_vec(), &[1, 17])
                .expect("shape matches")
        })
        .collect();
    let (actsrv_per_actor_ns, actsrv_batched_ns) = par::with_backend(Backend::Scalar, || {
        par::with_fusion(true, || {
            par::with_tier(true, || {
                let mut per = f64::INFINITY;
                let mut bat = f64::INFINITY;
                for _ in 0..5 {
                    per = per.min(time_ns(3, || {
                        let mut outs = Vec::with_capacity(rows.len());
                        for x in &rows {
                            outs.push(policy.forward_with(x, Some(&ppacked)).expect("forwards"));
                        }
                        outs
                    }));
                    bat = bat.min(time_ns(3, || {
                        policy.forward_with(&big, Some(&ppacked)).expect("forwards")
                    }));
                }
                (per, bat)
            })
        })
    });

    Fastmath {
        softmax_tier0_ns,
        softmax_tier2_ns,
        rollout_tanh_tier1_ns,
        rollout_tanh_tier2_ns,
        actsrv_per_actor_ns,
        actsrv_batched_ns,
    }
}

/// Iterations/sec of one distribution policy with overlap off vs on.
struct OverlapRow {
    policy: &'static str,
    off_iters_per_sec: f64,
    on_iters_per_sec: f64,
}

impl OverlapRow {
    fn speedup(&self) -> f64 {
        self.on_iters_per_sec / self.off_iters_per_sec.max(1e-9)
    }
}

/// End-to-end PPO CartPole throughput under DP-A and DP-C, overlap off
/// vs on — the macro counterpart of `profile_report`'s span analysis,
/// tracked release over release like the backend numbers. The workload
/// matches `profile_report`: a simulated 10 ms wire latency and a
/// rollout/learn balance that is communication-bound, so the overlap
/// machinery has real transfer time to hide. Telemetry stays disabled:
/// these are wall-clock numbers.
fn comm_overlap_rows() -> Vec<OverlapRow> {
    let base = DistPpoConfig {
        actors: 2,
        envs_per_actor: 1,
        steps_per_iter: 128,
        iterations: 8,
        hidden: vec![32],
        seed: 7,
        staleness: 1,
        link_latency: Duration::from_millis(10),
        ppo: PpoConfig { epochs: 1, ..PpoConfig::default() },
        ..DistPpoConfig::default()
    };
    let iters_per_sec = |run: &dyn Fn(&DistPpoConfig), overlap: bool| {
        let dist = DistPpoConfig { overlap, ..base.clone() };
        let t0 = Instant::now();
        run(&dist);
        base.iterations as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let dp_a = |dist: &DistPpoConfig| {
        run_dp_a(|a, i| CartPole::new((a * 13 + i) as u64), dist).expect("dp_a runs");
    };
    let dp_c = |dist: &DistPpoConfig| {
        run_dp_c(|a, i| CartPole::new((a * 13 + i) as u64), dist).expect("dp_c runs");
    };
    vec![
        OverlapRow {
            policy: "dp_a",
            off_iters_per_sec: iters_per_sec(&dp_a, false),
            on_iters_per_sec: iters_per_sec(&dp_a, true),
        },
        OverlapRow {
            policy: "dp_c",
            off_iters_per_sec: iters_per_sec(&dp_c, false),
            on_iters_per_sec: iters_per_sec(&dp_c, true),
        },
    ]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_backend.json".to_string());
    let threads = par::thread_count();
    let mut rows = Vec::new();

    for n in [128usize, 256, 512] {
        let a = Tensor::full(&[n, n], 0.5);
        let b = Tensor::full(&[n, n], 0.25);
        rows.push(measure("matmul", format!("[{n}, {n}] x [{n}, {n}]"), || {
            ops::matmul(&a, &b).expect("shapes conform")
        }));
    }
    {
        let a = Tensor::full(&[256, 1024], 1.0);
        let b = Tensor::full(&[1024], 2.0);
        rows.push(measure("broadcast_add", "[256, 1024] + [1024]".to_string(), || {
            ops::add(&a, &b).expect("broadcastable")
        }));
        rows.push(measure("map_tanh", "[256, 1024]".to_string(), || ops::tanh(&a)));
        rows.push(measure("sum_axis", "[256, 1024] axis 1".to_string(), || {
            ops::sum_axis(&a, 1).expect("axis in range")
        }));
        rows.push(measure("softmax_rows", "[256, 1024]".to_string(), || {
            ops::softmax_rows(&a).expect("rank 2")
        }));
    }
    rows.push(mlp_rows(16, 8));
    let tel = telemetry_cost();
    let gc = graph_compile_cost();
    let kt = kernel_tier_cost();
    let kr = kernel_reductions_cost();
    let fm = fastmath_cost();
    let overlap = comm_overlap_rows();

    // Per-iteration attribution cost, measured on the macro runs above:
    // the always-on `attr.finish_iteration` histogram timed every
    // critical-path computation the DP-A/DP-C runs performed. Its p50 as
    // a share of the DP-A iteration period is the iteration-level
    // counterpart of `disabled_probe_share_pct` and is held to the same
    // <5% acceptance bound.
    let attr_report = msrl_telemetry::TelemetryReport::from_events(&[]).with_registry();
    let attr_finish = attr_report.histogram("attr.finish_iteration");
    let attr_finish_iter_ns = attr_finish.as_ref().map_or(0.0, |h| h.p50_ns as f64);
    let attr_finish_count = attr_finish.as_ref().map_or(0, |h| h.count);
    let dp_a_period_ns = overlap
        .iter()
        .find(|r| r.policy == "dp_a")
        .map_or(f64::INFINITY, |r| 1e9 / r.off_iters_per_sec.max(1e-9));
    let attr_share_pct = attr_finish_iter_ns / dp_a_period_ns * 100.0;

    // Health-watchdog probe cost per iteration (detector pass +
    // non-finite scan + parameter clone), held to the same <5% share of
    // a DP-A iteration as the attribution pass.
    let hc = health_cost();
    let health_share_pct = hc.per_iter_ns() / dp_a_period_ns * 100.0;

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"telemetry\": {{\"span_disabled_ns\": {:.2}, \"span_enabled_ns\": {:.2}, \
         \"counter_add_ns\": {:.2}, \"hist_record_ns\": {:.2}, \
         \"run_event_emit_ns\": {:.0}, \"attr_step_ns\": {:.2}, \
         \"attr_step_disabled_ns\": {:.2}, \"attr_finish_iter_ns\": {:.0}, \
         \"attr_finish_iter_count\": {}, \"attr_share_pct\": {:.3}, \
         \"mlp_eval_traced_off_ns\": {:.0}, \
         \"mlp_eval_traced_on_ns\": {:.0}, \"probes_per_eval\": {}, \
         \"disabled_probe_share_pct\": {:.3}, \"traced_on_overhead_pct\": {:.2}}},\n",
        tel.span_disabled_ns,
        tel.span_enabled_ns,
        tel.counter_add_ns,
        tel.hist_record_ns,
        tel.run_event_emit_ns,
        tel.attr_step_ns,
        tel.attr_step_disabled_ns,
        attr_finish_iter_ns,
        attr_finish_count,
        attr_share_pct,
        tel.mlp_off_ns,
        tel.mlp_on_ns,
        tel.probes_per_eval,
        tel.disabled_probe_share_pct,
        tel.traced_on_overhead_pct,
    ));
    json.push_str(&format!(
        "  \"graph_compile\": {{\"mlp_fwd_bwd_unfused_ns\": {:.0}, \
         \"mlp_fwd_bwd_fused_ns\": {:.0}, \"fusion_speedup\": {:.2}, \
         \"plan_per_call_ns\": {:.0}, \"plan_cached_ns\": {:.0}, \
         \"plan_cache_speedup\": {:.2}}},\n",
        gc.fwd_bwd_unfused_ns,
        gc.fwd_bwd_fused_ns,
        gc.fusion_speedup(),
        gc.plan_per_call_ns,
        gc.plan_cached_ns,
        gc.plan_cache_speedup(),
    ));
    json.push_str(&format!(
        "  \"kernel_tier\": {{\"dispatch\": \"{}\", \"matmul512_naive_ns\": {:.0}, \
         \"matmul512_tiered_ns\": {:.0}, \"matmul512_naive_gflops\": {:.2}, \
         \"matmul512_tiered_gflops\": {:.2}, \"matmul512_speedup\": {:.2}, \
         \"mlp_fwd_bwd_base_ns\": {:.0}, \"mlp_fwd_bwd_tiered_ns\": {:.0}, \
         \"mlp_fwd_bwd_speedup\": {:.2}, \"threads1_scalar_ns\": {:.0}, \
         \"threads1_threaded_ns\": {:.0}, \"threads1_speedup\": {:.2}}},\n",
        dispatch_label(),
        kt.matmul512_naive_ns,
        kt.matmul512_tiered_ns,
        KernelTier::gflops512(kt.matmul512_naive_ns),
        KernelTier::gflops512(kt.matmul512_tiered_ns),
        kt.matmul512_speedup(),
        kt.mlp_fwd_bwd_base_ns,
        kt.mlp_fwd_bwd_tiered_ns,
        kt.mlp_fwd_bwd_speedup(),
        kt.threads1_scalar_ns,
        kt.threads1_threaded_ns,
        kt.threads1_speedup(),
    ));
    // Reduction FLOP counts: one add per reduced element for sum_axis;
    // softmax priced at 4 ops/element (max cmp, sub+exp, sum, scale) —
    // approximate, but stable release over release.
    let sum_flops = 512.0 * 1023.0;
    let softmax_flops = 4.0 * 512.0 * 64.0;
    json.push_str(&format!(
        "  \"kernel_reductions\": {{\"dispatch\": \"{}\", \"sum_axis_naive_ns\": {:.0}, \
         \"sum_axis_tiered_ns\": {:.0}, \"sum_axis_naive_gflops\": {:.2}, \
         \"sum_axis_tiered_gflops\": {:.2}, \"sum_axis_speedup\": {:.2}, \
         \"softmax_tier1_naive_ns\": {:.0}, \"softmax_tier1_tiered_ns\": {:.0}, \
         \"softmax_tier1_naive_gflops\": {:.2}, \"softmax_tier1_tiered_gflops\": {:.2}, \
         \"softmax_tier1_speedup\": {:.2}, \"rollout_per_actor_ns\": {:.0}, \
         \"rollout_batched_ns\": {:.0}, \"rollout_batch_speedup\": {:.2}}},\n",
        dispatch_label(),
        kr.sum_axis_naive_ns,
        kr.sum_axis_tiered_ns,
        KernelReductions::gflops(sum_flops, kr.sum_axis_naive_ns),
        KernelReductions::gflops(sum_flops, kr.sum_axis_tiered_ns),
        kr.sum_axis_speedup(),
        kr.softmax_naive_ns,
        kr.softmax_tiered_ns,
        KernelReductions::gflops(softmax_flops, kr.softmax_naive_ns),
        KernelReductions::gflops(softmax_flops, kr.softmax_tiered_ns),
        kr.softmax_speedup(),
        kr.rollout_per_actor_ns,
        kr.rollout_batched_ns,
        kr.rollout_batch_speedup(),
    ));
    json.push_str(&format!(
        "  \"fastmath\": {{\"dispatch\": \"{}\", \"softmax_tier0_ns\": {:.0}, \
         \"softmax_tier2_ns\": {:.0}, \"softmax_tier2_speedup\": {:.2}, \
         \"rollout_tanh_tier1_ns\": {:.0}, \"rollout_tanh_tier2_ns\": {:.0}, \
         \"rollout_tanh_tier2_speedup\": {:.2}, \"actsrv_per_actor_ns\": {:.0}, \
         \"actsrv_batched_ns\": {:.0}, \"actsrv_batch_speedup\": {:.2}}},\n",
        dispatch_label(),
        fm.softmax_tier0_ns,
        fm.softmax_tier2_ns,
        fm.softmax_tier2_speedup(),
        fm.rollout_tanh_tier1_ns,
        fm.rollout_tanh_tier2_ns,
        fm.rollout_tanh_tier2_speedup(),
        fm.actsrv_per_actor_ns,
        fm.actsrv_batched_ns,
        fm.actsrv_batch_speedup(),
    ));
    json.push_str(&format!(
        "  \"health\": {{\"observe_ns\": {:.0}, \"nonfinite_scan_ns\": {:.0}, \
         \"params_clone_ns\": {:.0}, \"per_iter_ns\": {:.0}, \"share_pct\": {:.3}}},\n",
        hc.observe_ns,
        hc.nonfinite_scan_ns,
        hc.params_clone_ns,
        hc.per_iter_ns(),
        health_share_pct,
    ));
    json.push_str("  \"comm_overlap\": [\n");
    for (i, r) in overlap.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"off_iters_per_sec\": {:.2}, \"on_iters_per_sec\": {:.2}, \"speedup\": {:.2}}}{}\n",
            r.policy,
            r.off_iters_per_sec,
            r.on_iters_per_sec,
            r.speedup(),
            if i + 1 == overlap.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"shape\": \"{}\", \"scalar_ns_per_iter\": {:.0}, \"threaded_ns_per_iter\": {:.0}, \"speedup\": {:.2}}}{}\n",
            r.op,
            r.shape,
            r.scalar_ns,
            r.threaded_ns,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let gated = [
        Gated {
            name: "graph_compile.fusion_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: gc.fusion_speedup(),
        },
        Gated {
            name: "graph_compile.plan_cache_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: gc.plan_cache_speedup(),
        },
        Gated {
            name: "telemetry.disabled_probe_share_pct",
            higher_is_better: false,
            floor: 1.0,
            value: tel.disabled_probe_share_pct,
        },
        Gated {
            name: "telemetry.attr_share_pct",
            higher_is_better: false,
            floor: 1.0,
            value: attr_share_pct,
        },
        Gated {
            name: "health.share_pct",
            higher_is_better: false,
            floor: 1.0,
            value: health_share_pct,
        },
        Gated {
            name: "kernel_tier.matmul512_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: kt.matmul512_speedup(),
        },
        Gated {
            name: "kernel_tier.mlp_fwd_bwd_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: kt.mlp_fwd_bwd_speedup(),
        },
        Gated {
            name: "kernel_tier.threads1_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: kt.threads1_speedup(),
        },
        Gated {
            name: "kernel_reductions.sum_axis_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: kr.sum_axis_speedup(),
        },
        Gated {
            name: "kernel_reductions.softmax_tier1_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: kr.softmax_speedup(),
        },
        Gated {
            name: "kernel_reductions.rollout_batch_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: kr.rollout_batch_speedup(),
        },
        Gated {
            name: "fastmath.softmax_tier2_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: fm.softmax_tier2_speedup(),
        },
        Gated {
            name: "fastmath.rollout_tanh_tier2_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: fm.rollout_tanh_tier2_speedup(),
        },
        Gated {
            name: "fastmath.actsrv_batch_speedup",
            higher_is_better: true,
            floor: 0.0,
            value: fm.actsrv_batch_speedup(),
        },
    ];
    let regressions = match std::fs::read_to_string(&out_path) {
        Ok(prev) => bench_trend(&prev, &gated, &rows),
        Err(_) => {
            println!("bench_trend: no previous {out_path}; starting the trajectory");
            Vec::new()
        }
    };
    std::fs::write(&out_path, &json).expect("report path writable");

    println!("threads: {threads}");
    println!(
        "{:<24} {:>28} {:>14} {:>14} {:>9}",
        "op", "shape", "scalar ns", "threaded ns", "speedup"
    );
    for r in &rows {
        println!(
            "{:<24} {:>28} {:>14.0} {:>14.0} {:>8.2}x",
            r.op,
            r.shape,
            r.scalar_ns,
            r.threaded_ns,
            r.speedup()
        );
    }
    println!(
        "telemetry: span off {:.2} ns / on {:.2} ns, counter {:.2} ns, \
         hist record {:.2} ns, run-event emit {:.0} ns; \
         mlp eval off {:.0} ns / on {:.0} ns ({} probes, disabled share {:.3}%, \
         tracing overhead {:.2}%)",
        tel.span_disabled_ns,
        tel.span_enabled_ns,
        tel.counter_add_ns,
        tel.hist_record_ns,
        tel.run_event_emit_ns,
        tel.mlp_off_ns,
        tel.mlp_on_ns,
        tel.probes_per_eval,
        tel.disabled_probe_share_pct,
        tel.traced_on_overhead_pct,
    );
    println!(
        "attribution: step on {:.2} ns / off {:.2} ns; finish_iteration p50 {:.0} ns \
         over {} iteration(s) = {:.3}% of a DP-A iteration",
        tel.attr_step_ns,
        tel.attr_step_disabled_ns,
        attr_finish_iter_ns,
        attr_finish_count,
        attr_share_pct,
    );
    println!(
        "graph_compile: mlp fwd+bwd unfused {:.0} ns / fused {:.0} ns ({:.2}x, scalar backend); \
         plan per-call {:.0} ns / cached {:.0} ns ({:.2}x)",
        gc.fwd_bwd_unfused_ns,
        gc.fwd_bwd_fused_ns,
        gc.fusion_speedup(),
        gc.plan_per_call_ns,
        gc.plan_cached_ns,
        gc.plan_cache_speedup(),
    );
    println!(
        "kernel_tier: matmul512 naive {:.0} ns ({:.2} GFLOP/s) / tiered {:.0} ns \
         ({:.2} GFLOP/s, {:.2}x); mlp fwd+bwd base {:.0} ns / tiered {:.0} ns ({:.2}x); \
         threads=1 scalar {:.0} ns / threaded {:.0} ns ({:.2}x)",
        kt.matmul512_naive_ns,
        KernelTier::gflops512(kt.matmul512_naive_ns),
        kt.matmul512_tiered_ns,
        KernelTier::gflops512(kt.matmul512_tiered_ns),
        kt.matmul512_speedup(),
        kt.mlp_fwd_bwd_base_ns,
        kt.mlp_fwd_bwd_tiered_ns,
        kt.mlp_fwd_bwd_speedup(),
        kt.threads1_scalar_ns,
        kt.threads1_threaded_ns,
        kt.threads1_speedup(),
    );
    println!(
        "kernel_reductions [{}]: sum_axis[512,1024] naive {:.0} ns / tiered {:.0} ns ({:.2}x); \
         softmax_rows[512,64] tier1 naive {:.0} ns / tiered {:.0} ns ({:.2}x, exp stays scalar); \
         rollout fwd per-actor {:.0} ns / batched {:.0} ns ({:.2}x)",
        dispatch_label(),
        kr.sum_axis_naive_ns,
        kr.sum_axis_tiered_ns,
        kr.sum_axis_speedup(),
        kr.softmax_naive_ns,
        kr.softmax_tiered_ns,
        kr.softmax_speedup(),
        kr.rollout_per_actor_ns,
        kr.rollout_batched_ns,
        kr.rollout_batch_speedup(),
    );
    println!(
        "fastmath [{}]: softmax_rows[512,64] tier0 {:.0} ns / tier2 {:.0} ns ({:.2}x); \
         tanh rollout fwd tier1 {:.0} ns / tier2 {:.0} ns ({:.2}x); \
         actsrv fwd per-actor {:.0} ns / batched {:.0} ns ({:.2}x)",
        dispatch_label(),
        fm.softmax_tier0_ns,
        fm.softmax_tier2_ns,
        fm.softmax_tier2_speedup(),
        fm.rollout_tanh_tier1_ns,
        fm.rollout_tanh_tier2_ns,
        fm.rollout_tanh_tier2_speedup(),
        fm.actsrv_per_actor_ns,
        fm.actsrv_batched_ns,
        fm.actsrv_batch_speedup(),
    );
    println!(
        "health: observe {:.0} ns + nonfinite scan {:.0} ns + params clone {:.0} ns \
         = {:.0} ns/iteration = {:.3}% of a DP-A iteration",
        hc.observe_ns,
        hc.nonfinite_scan_ns,
        hc.params_clone_ns,
        hc.per_iter_ns(),
        health_share_pct,
    );
    for r in &overlap {
        println!(
            "comm_overlap {:<6} off {:>6.2} it/s, on {:>6.2} it/s ({:.2}x)",
            r.policy,
            r.off_iters_per_sec,
            r.on_iters_per_sec,
            r.speedup()
        );
    }
    println!("wrote {out_path}");

    // The acceptance bound on always-on instrumentation, histogram
    // record included: disabled probes must stay under 5% of one
    // fused-MLP evaluation.
    if tel.disabled_probe_share_pct >= 5.0 {
        eprintln!(
            "bench_report: disabled-probe share {:.3}% breaches the 5% bound",
            tel.disabled_probe_share_pct
        );
        std::process::exit(1);
    }
    // The same bound applies to the iteration-level attribution cost:
    // the critical-path computation at every iteration end must stay
    // under 5% of a DP-A iteration period.
    if attr_share_pct >= 5.0 {
        eprintln!("bench_report: attribution share {attr_share_pct:.3}% breaches the 5% bound");
        std::process::exit(1);
    }
    // And to the health watchdog's per-iteration probes (acceptance
    // criterion of the run-health subsystem).
    if health_share_pct >= 5.0 {
        eprintln!("bench_report: health-probe share {health_share_pct:.3}% breaches the 5% bound");
        std::process::exit(1);
    }
    // Kernel-tier acceptance bounds: the packed microkernels must beat
    // the naive loops ≥2.5x on the 512³ matmul, the full kernel stack
    // must hold ≥1.8x on the learn-phase MLP, and one threaded worker
    // must not cost more than the scalar backend (≥0.99x).
    // Reduction-kernel acceptance bounds: the gathered row kernels must
    // beat the scalar folds ≥2x on sum_axis, the batched rollout
    // forward must beat the per-actor loop ≥1.5x, and softmax_rows must
    // hold its measured gain — the exp+sum pass has no bit-exact vector
    // form and stays scalar, so the bound reflects the vectorizable
    // (max fold + scale) share only.
    let floors = [
        ("kernel_tier.matmul512_speedup", kt.matmul512_speedup(), 2.5),
        ("kernel_tier.mlp_fwd_bwd_speedup", kt.mlp_fwd_bwd_speedup(), 1.8),
        ("kernel_tier.threads1_speedup", kt.threads1_speedup(), 0.99),
        ("kernel_reductions.sum_axis_speedup", kr.sum_axis_speedup(), 2.0),
        ("kernel_reductions.softmax_tier1_speedup", kr.softmax_speedup(), 1.3),
        ("kernel_reductions.rollout_batch_speedup", kr.rollout_batch_speedup(), 1.5),
        ("fastmath.softmax_tier2_speedup", fm.softmax_tier2_speedup(), 2.5),
        ("fastmath.rollout_tanh_tier2_speedup", fm.rollout_tanh_tier2_speedup(), 1.3),
        ("fastmath.actsrv_batch_speedup", fm.actsrv_batch_speedup(), 1.5),
    ];
    let mut breached = false;
    for (name, value, floor) in floors {
        if value < floor {
            eprintln!("bench_report: {name} {value:.2} breaches the {floor} floor");
            breached = true;
        }
    }
    if breached {
        std::process::exit(1);
    }
    if !regressions.is_empty() {
        for r in &regressions {
            eprintln!("bench_trend: {r}");
        }
        std::process::exit(1);
    }
}
