//! `top` — live per-fragment utilisation view over the metrics stream.
//!
//! Tails the run-event JSONL file the telemetry sink appends to (the
//! `MSRL_METRICS_FILE` stream) and renders the latest
//! `msrl.run_event.v2` attribution breakdown as a per-fragment table:
//! busy share, the rollout/learn/comm/eval split, idle and straggler
//! slack, plus critical-path membership, straggler flags and — when the
//! stream carries schema-v3 health blocks — a health column (the run
//! watchdog's status on the fragment that trains). The footer shows the
//! iteration's bottleneck, how much of the wall time the critical path
//! covers, and the health gauges with any active findings.
//!
//! ```text
//! cargo run -p msrl-bench --bin top -- [metrics.jsonl] [--once] [--interval-ms N]
//! ```
//!
//! The path defaults to `$MSRL_METRICS_FILE`. `--once` renders a single
//! snapshot and exits (CI mode); without it the view refreshes every
//! `--interval-ms` (default 1000) until interrupted. v1 lines in the
//! stream are skipped, so mixed-schema files tail cleanly.

use std::process::ExitCode;

use serde::{Deserialize, Value};
use serde_json::value_from_str;

fn num(v: &Value, name: &str) -> u64 {
    v.field(name).ok().and_then(|f| u64::from_value(f).ok()).unwrap_or(0)
}

fn flag(v: &Value, name: &str) -> bool {
    matches!(v.field(name), Ok(Value::Bool(true)))
}

fn text<'a>(v: &'a Value, name: &str) -> &'a str {
    match v.field(name) {
        Ok(Value::Str(s)) => s,
        _ => "?",
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Formats a possibly-null numeric health gauge compactly.
fn gauge(v: &Value, name: &str) -> String {
    match v.field(name).ok().and_then(|f| f64::from_value(f).ok()) {
        Some(x) => format!("{x:.3e}"),
        None => "-".to_string(),
    }
}

/// The health column for one fragment row: the run watchdog's status on
/// the fragment that trains (where the sentinel gauges originate),
/// blank elsewhere.
fn health_cell(health: Option<&Value>, role: &str) -> &'static str {
    let trains = matches!(role, "learner" | "param_server") || role.starts_with("fused");
    match health {
        Some(h) if trains => match text(h, "status") {
            "ok" => "ok",
            "warn" => "WARN",
            "critical" => "CRIT",
            _ => "?",
        },
        _ => "-",
    }
}

/// Renders one v2/v3 run event as the utilisation table, or `None` when
/// the line carries no attribution payload.
fn render(line: &str, source: &str, seen: usize) -> Option<String> {
    let root = value_from_str(line).ok()?;
    let attr = root.field("attr").ok()?;
    let health = root.field("health").ok();
    let policy = text(&root, "policy");
    let iteration = num(&root, "iteration");
    let wall = num(attr, "wall_ns");
    let critical = num(attr, "critical_path_ns");
    let Ok(Value::Seq(frags)) = attr.field("fragments") else { return None };

    let mut out = String::new();
    out.push_str(&format!(
        "msrl top — {source} ({seen} v2 event(s), policy {policy}, iteration {iteration})\n\n"
    ));
    out.push_str(&format!(
        "{:<16} {:>6} {:>9} {:>7} {:>6} {:>6} {:>7} {:>6}  {}\n",
        "fragment", "busy%", "rollout%", "learn%", "comm%", "idle%", "slack%", "health", "flags"
    ));
    for f in frags {
        let wall_f = num(f, "wall_ns");
        let mut flags = Vec::new();
        if flag(f, "critical") {
            flags.push("crit");
        }
        if flag(f, "straggler") {
            flags.push("strag");
        }
        let role = text(f, "role");
        out.push_str(&format!(
            "{:<16} {:>6.1} {:>9.1} {:>7.1} {:>6.1} {:>6.1} {:>7.1} {:>6}  {}\n",
            format!("{}/{}", role, num(f, "id")),
            pct(num(f, "busy_ns"), wall_f),
            pct(num(f, "rollout_ns"), wall_f),
            pct(num(f, "learn_ns"), wall_f),
            pct(num(f, "comm_ns"), wall_f),
            pct(num(f, "idle_ns"), wall_f),
            pct(num(f, "slack_ns"), wall_f),
            health_cell(health, role),
            flags.join(","),
        ));
    }
    out.push_str(&format!(
        "\nbottleneck: {}   critical path: {:.3} ms / wall {:.3} ms ({:.1}%)\n",
        text(attr, "bottleneck"),
        critical as f64 / 1e6,
        wall as f64 / 1e6,
        pct(critical, wall),
    ));
    if let Some(h) = health {
        out.push_str(&format!(
            "health: {}   grad {}  weight {}  upd {}  nonfinite {}  audit {}\n",
            text(h, "status").to_uppercase(),
            gauge(h, "grad_norm"),
            gauge(h, "weight_norm"),
            gauge(h, "update_ratio"),
            gauge(h, "nonfinite_params"),
            gauge(h, "audit_rel_err"),
        ));
        if let Ok(Value::Seq(findings)) = h.field("findings") {
            for f in findings {
                out.push_str(&format!(
                    "  finding: {} [{}] @ iter {}: {}\n",
                    text(f, "detector"),
                    text(f, "severity"),
                    num(f, "iteration"),
                    text(f, "detail"),
                ));
            }
        }
    }
    Some(out)
}

/// Reads the stream and renders its latest v2 event, counting how many
/// v2 events the file holds so progress is visible while tailing.
fn snapshot(path: &str) -> std::io::Result<Option<String>> {
    let content = std::fs::read_to_string(path)?;
    let v2: Vec<&str> = content.lines().filter(|l| l.contains("\"attr\"")).collect();
    Ok(v2.last().and_then(|line| render(line, path, v2.len())))
}

fn main() -> ExitCode {
    let mut path = std::env::var("MSRL_METRICS_FILE").ok();
    let mut once = false;
    let mut interval_ms = 1000u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => interval_ms = v,
                    None => return usage("--interval-ms needs an integer"),
                }
            }
            flag if flag.starts_with("--") => return usage(&format!("unknown flag {flag}")),
            p => path = Some(p.to_string()),
        }
        i += 1;
    }
    let Some(path) = path else {
        return usage("no metrics file: pass a path or set MSRL_METRICS_FILE");
    };

    loop {
        match snapshot(&path) {
            Ok(Some(table)) => {
                if !once {
                    // Clear and home so the refresh reads as a live view.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{table}");
            }
            Ok(None) => {
                if once {
                    eprintln!("top: no msrl.run_event.v2 events in {path}");
                    return ExitCode::FAILURE;
                }
                println!("top: waiting for v2 events in {path} ...");
            }
            Err(e) => {
                if once {
                    eprintln!("top: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("top: waiting for {path}: {e}");
            }
        }
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("top: {err}");
    eprintln!("usage: top [metrics.jsonl] [--once] [--interval-ms N]");
    ExitCode::FAILURE
}
