//! FDG cost explorer: trace PPO, partition it with Algorithm 2, and
//! price one iteration of the *actual* FDG on the paper's two clusters
//! under different fragment→device assignments.
//!
//! This is the §4.2 trade-off (fragment granularity × co-location) made
//! interactive: the same graph costs differently depending on where its
//! fragments land, and invalid placements (the CPU-bound environment
//! fragment on a GPU) are rejected before anything runs.

use std::collections::HashMap;

use msrl_bench::banner;
use msrl_comm::DeviceId;
use msrl_core::config::AlgorithmConfig;
use msrl_core::partition::build_fdg;
use msrl_core::{DeviceReq, Fdg, FragmentId};
use msrl_runtime::trace_algos::trace_ppo;
use msrl_sim::fdg_sim::{iteration_time, validate_assignment, KernelCosts};
use msrl_sim::scenarios::{cloud, local, Cluster};

/// Assigns CPU-only fragments to CPUs and the rest to GPUs, co-located
/// on one node or spread across nodes.
fn assignment(fdg: &Fdg, spread: bool) -> HashMap<FragmentId, DeviceId> {
    let mut cpu = 0;
    let mut gpu = 0;
    fdg.fragments
        .iter()
        .map(|f| {
            let node = |i: usize| if spread { i } else { 0 };
            let d = match f.device_req {
                DeviceReq::CpuOnly => {
                    cpu += 1;
                    DeviceId::cpu(node(cpu - 1), 0)
                }
                _ => {
                    gpu += 1;
                    DeviceId::gpu(node(gpu - 1), if spread { 0 } else { gpu - 1 })
                }
            };
            (f.id, d)
        })
        .collect()
}

fn price(fdg: &Fdg, c: &Cluster, name: &str) {
    let k = KernelCosts { env_step_s: 8e-4 * 32.0, learn_s: 0.05 };
    for (label, spread) in
        [("co-located (one node)", false), ("spread (one fragment per node)", true)]
    {
        let a = assignment(fdg, spread);
        match iteration_time(fdg, &a, c, k) {
            Ok(t) => println!("{name:>6} cluster, {label:<32} {:.3} ms/iteration", t * 1e3),
            Err(e) => println!("{name:>6} cluster, {label:<32} rejected: {e}"),
        }
    }
}

fn main() {
    banner(
        "FDG explorer",
        "pricing the real PPO FDG under placements (§4.2 trade-offs)",
        "co-location avoids network hops; CPU-only fragments cannot go to GPUs",
    );
    let algo = AlgorithmConfig::ppo(1, 32);
    let fdg = build_fdg(trace_ppo(&algo, 17, 6, 64)).expect("PPO traces and partitions");
    println!(
        "FDG: {} nodes, {} fragments ({} annotations)",
        fdg.graph.len(),
        fdg.fragments.len(),
        fdg.graph.annotations.len()
    );
    for f in &fdg.fragments {
        println!(
            "  fragment {:?} [{:?}]: {} interior nodes, {} entries, {} exits ({} B out)",
            f.id,
            f.kind,
            f.interior.len(),
            f.entries.len(),
            f.exits.len(),
            f.exit_bytes(&fdg.graph)
        );
    }
    println!();
    price(&fdg, &cloud(), "cloud");
    price(&fdg, &local(), "local");

    // Demonstrate the validator rejecting an illegal placement.
    let mut bad = assignment(&fdg, false);
    for (fid, d) in bad.iter_mut() {
        let frag = fdg.fragments.iter().find(|f| f.id == *fid).expect("fragment exists");
        if frag.device_req == DeviceReq::CpuOnly {
            *d = DeviceId::gpu(0, 0);
        }
    }
    println!();
    match validate_assignment(&fdg, &bad) {
        Err(e) => println!("illegal placement rejected as expected: {e}"),
        Ok(()) => println!("unexpected: illegal placement accepted"),
    }
}
