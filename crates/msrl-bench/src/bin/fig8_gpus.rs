//! Fig. 8 — impact of GPU count on PPO training (320 HalfCheetah envs).
//!
//! Four panels: training time to reward 4000 and per-episode time, on
//! the cloud (a/b) and local (c/d) clusters, for DP-A, DP-B, DP-C and
//! the training-time-excluded variants DP-A′/DP-B′.
//!
//! Paper shapes: on the cloud cluster DP-A achieves ≈5.3× speedup at 64
//! GPUs, DP-C is best at 16 but loses to DP-A at 64, DP-B bottoms out
//! mid-range; excluding training time, DP-A′ keeps scaling 32→64
//! (+25%). On the local cluster (NVLink/IB) DP-A beats DP-C at every
//! GPU count.

use msrl_bench::{banner, series};
use msrl_sim::scenarios::{cloud, local, ppo_episode, ppo_training_time, Cluster, PpoWorkload};

fn panel(cluster: &Cluster, name: &str, gpu_counts: &[usize]) {
    let w = PpoWorkload::halfcheetah(320);
    println!("\n--- {name} cluster: training time to reward ---");
    let rows: Vec<(f64, Vec<f64>)> = gpu_counts
        .iter()
        .map(|&p| {
            (
                p as f64,
                vec![
                    ppo_training_time("DP-A", &w, cluster, p),
                    ppo_training_time("DP-B", &w, cluster, p),
                    ppo_training_time("DP-C", &w, cluster, p),
                ],
            )
        })
        .collect();
    series("GPUs", &["DP-A [s]", "DP-B [s]", "DP-C [s]"], &rows);

    println!("\n--- {name} cluster: time per episode ---");
    let rows: Vec<(f64, Vec<f64>)> = gpu_counts
        .iter()
        .map(|&p| {
            (
                p as f64,
                vec![
                    ppo_episode("DP-A", &w, cluster, p),
                    ppo_episode("DP-A'", &w, cluster, p),
                    ppo_episode("DP-B", &w, cluster, p),
                    ppo_episode("DP-B'", &w, cluster, p),
                    ppo_episode("DP-C", &w, cluster, p),
                ],
            )
        })
        .collect();
    series("GPUs", &["DP-A", "DP-A'", "DP-B", "DP-B'", "DP-C"], &rows);
}

fn main() {
    banner(
        "Fig 8",
        "impact of GPU count (PPO, 320 envs)",
        "cloud: DP-A 5.3× @64, DP-C best @16; local: DP-A always beats DP-C",
    );
    let w = PpoWorkload::halfcheetah(320);

    let cc = cloud();
    panel(&cc, "cloud (8a/8b)", &[1, 2, 4, 8, 16, 32, 64]);
    let speedup = ppo_training_time("DP-A", &w, &cc, 1) / ppo_training_time("DP-A", &w, &cc, 64);
    println!("\ncloud DP-A speedup 1→64 GPUs: {speedup:.1}× (paper: 5.3×)");
    let c16 = ppo_training_time("DP-C", &w, &cc, 16) < ppo_training_time("DP-A", &w, &cc, 16);
    let a64 = ppo_training_time("DP-A", &w, &cc, 64) < ppo_training_time("DP-C", &w, &cc, 64);
    println!("cloud: DP-C wins @16: {c16} (paper: true); DP-A wins @64: {a64} (paper: true)");
    let ap32 = ppo_episode("DP-A'", &w, &cc, 32);
    let ap64 = ppo_episode("DP-A'", &w, &cc, 64);
    println!(
        "cloud DP-A' 32→64 GPUs episode-time gain: {:.0}% (paper: ~25%)",
        100.0 * (ap32 - ap64) / ap32
    );

    let lc = local();
    panel(&lc, "local (8c/8d)", &[1, 2, 4, 8, 16, 32]);
    let a_always = [2usize, 4, 8, 16, 32]
        .iter()
        .all(|&p| ppo_training_time("DP-A", &w, &lc, p) < ppo_training_time("DP-C", &w, &lc, p));
    println!("\nlocal: DP-A beats DP-C at every GPU count: {a_always} (paper: true)");
}
