//! Tab. 1 — the design space of distributed RL systems.
//!
//! Qualitative, reproduced as the paper's table plus, for the MSRL row,
//! live evidence from this reproduction: the execution abstraction is a
//! heterogeneous FDG (printed from a real trace), distribution is
//! dataflow partitioning (Algorithm 2 runs here), and the algorithm
//! abstraction is the agent/actor/learner/env component API.

use msrl_bench::banner;
use msrl_core::config::AlgorithmConfig;
use msrl_core::partition::build_fdg;
use msrl_core::DeviceReq;
use msrl_runtime::trace_algos::trace_ppo;

fn main() {
    banner(
        "Tab 1",
        "design space of distributed RL systems",
        "function-based / actor-based / dataflow-based vs MSRL's fragmented dataflow graph",
    );
    println!(
        "{:<12} {:<12} {:<28} {:<26} {:<22} algorithm",
        "type", "system", "execution", "distribution", "acceleration"
    );
    let rows = [
        (
            "function",
            "SEED RL",
            "Python functions",
            "environment only",
            "DNNs",
            "actor/learner/env",
        ),
        ("function", "Acme", "Python components", "delegated to backend", "DNNs", "agent"),
        (
            "actor",
            "Ray/RLlib",
            "tasks + stateful actors",
            "greedy scheduler, RPC",
            "DNNs",
            "Ray API / agent",
        ),
        (
            "dataflow",
            "Podracer",
            "JIT-compiled by JAX",
            "two hard-coded schemes",
            "funcs/DNNs/envs",
            "JAX API",
        ),
        (
            "dataflow",
            "RLlib Flow",
            "predefined operators",
            "sharded Ray tasks",
            "DNNs",
            "operator API",
        ),
        ("dataflow", "WarpDrive", "GPU thread blocks", "none (single GPU)", "CUDA kernels", "CUDA"),
        (
            "FDG",
            "MSRL",
            "heterogeneous fragments",
            "dataflow partitioning",
            "funcs/ops/DNNs/envs",
            "agent/actor/learner/env",
        ),
    ];
    for (t, s, e, d, a, alg) in rows {
        println!("{t:<12} {s:<12} {e:<28} {d:<26} {a:<22} {alg}");
    }

    // Live evidence for the MSRL row from this reproduction.
    println!("\n--- the MSRL row, demonstrated ---");
    let fdg = build_fdg(trace_ppo(&AlgorithmConfig::ppo(1, 32), 17, 6, 64)).expect("partitions");
    let hetero: Vec<String> = fdg
        .fragments
        .iter()
        .map(|f| {
            format!(
                "{}:{}",
                f.kind.label(),
                match f.device_req {
                    DeviceReq::CpuOnly => "CPU",
                    DeviceReq::GpuOnly => "GPU",
                    DeviceReq::Any => "any",
                }
            )
        })
        .collect();
    println!("execution    = heterogeneous fragments: {}", hetero.join(", "));
    println!(
        "distribution = Algorithm 2 partitioned {} nodes into {} fragments at {} annotations",
        fdg.graph.len(),
        fdg.fragments.len(),
        fdg.graph.annotations.len()
    );
    println!("acceleration = operator fragments interpret/fuse; env fragments run native");
    println!("algorithm    = Agent/Actor/Learner traits + MSRL interaction API (msrl_core::api)");
}
