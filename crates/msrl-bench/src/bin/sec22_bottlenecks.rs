//! §2.2 — the bottleneck measurements motivating flexible distribution.
//!
//! The paper: "for PPO, environment execution takes up to 98% of
//! execution time; for MuZero [a large MARL algorithm], environment
//! execution is no longer the bottleneck, and 97% of time is spent on
//! policy inference and training."

use msrl_bench::banner;
use msrl_sim::scenarios::bottleneck_profile;

fn main() {
    banner(
        "§2.2",
        "where RL training time goes",
        "PPO: env ≈98%; MuZero-class: inference+training ≈97%",
    );
    let (ppo_env, ppo_nn) = bottleneck_profile(8e-4, 18_000, 320);
    println!(
        "PPO / MuJoCo-class env, 7-layer policy:   env {:.1}%  inference+training {:.1}%",
        100.0 * ppo_env,
        100.0 * ppo_nn
    );
    let (mz_env, mz_nn) = bottleneck_profile(1e-6, 20_000_000, 320);
    println!(
        "MuZero-class (cheap env, 20M-param net):  env {:.1}%  inference+training {:.1}%",
        100.0 * mz_env,
        100.0 * mz_nn
    );
    println!("\npaper: 98% / 97% — no single distribution strategy fits both workloads");
}
