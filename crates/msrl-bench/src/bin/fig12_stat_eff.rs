//! Fig. 12 — statistical efficiency: reward vs. episodes for different
//! environment counts under DP-A.
//!
//! Unlike the timing figures, this one runs **real end-to-end training**
//! through the DP-A driver (threaded actor fragments, a real learner,
//! real collectives): more environments per episode produce more
//! trajectories per update and reach higher reward in fewer episodes.

use msrl_bench::{banner, series};
use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, DistPpoConfig};

fn main() {
    banner(
        "Fig 12",
        "reward vs episodes for environment counts (real DP-A training)",
        "more environments ⇒ higher reward at the same episode count",
    );
    let iterations = 60;
    let env_counts = [2usize, 8, 32];
    let seeds = [42u64, 43, 44];
    let mut curves: Vec<Vec<f32>> = Vec::new();
    for &envs in &env_counts {
        // Seed-averaged curves: statistical efficiency is a property of
        // the expectation, not one run.
        let mut mean_curve = vec![0.0f32; iterations];
        for &seed in &seeds {
            let dist = DistPpoConfig {
                actors: 2,
                envs_per_actor: envs / 2,
                steps_per_iter: 64,
                iterations,
                hidden: vec![32],
                seed,
                ..DistPpoConfig::default()
            };
            let report =
                run_dp_a(move |a, i| CartPole::new(seed * 977 + (1000 + a * 50 + i) as u64), &dist)
                    .expect("DP-A training run");
            for (acc, r) in mean_curve.iter_mut().zip(&report.iteration_rewards) {
                *acc += r / seeds.len() as f32;
            }
        }
        curves.push(mean_curve);
    }
    let labels: Vec<String> = env_counts.iter().map(|e| format!("{e} envs")).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let rows: Vec<(f64, Vec<f64>)> = (0..iterations)
        .step_by(4)
        .map(|i| ((i + 1) as f64, curves.iter().map(|c| c[i] as f64).collect()))
        .collect();
    series("iteration", &label_refs, &rows);

    // Final-stretch comparison: does more data help?
    let finals: Vec<f64> = curves
        .iter()
        .map(|c| c.iter().rev().take(10).map(|&r| r as f64).sum::<f64>() / 10.0)
        .collect();
    println!("\nmean reward over last 10 iterations:");
    for (e, f) in env_counts.iter().zip(&finals) {
        println!("  {e:>3} envs: {f:.1}");
    }
    let improves = finals.last().unwrap() > finals.first().unwrap();
    println!("more envs reach higher reward: {improves} (paper: true)");
}
