//! `profile_report` — runs PPO CartPole under two distribution policies
//! (DP-A and DP-C), each with communication/computation overlap off and
//! on, with telemetry enabled, and emits per run:
//!
//! * `results/trace_<run>.json` — Chrome trace-event JSON (open in
//!   Perfetto or `chrome://tracing`), validated before it is written;
//! * `results/profile_<run>.json` — the aggregated
//!   [`msrl_telemetry::TelemetryReport`] (per-span p50/p99, counter and
//!   gauge snapshots).
//!
//! plus a combined `results/profile_report.json`, side-by-side
//! per-fragment / per-phase / per-comm-op tables, and an overlap
//! analysis on stdout. The workload injects a simulated 10 ms wire
//! latency (the in-process analogue of the paper's `tc` experiment,
//! Fig. 7d) so there is real communication time for the overlap
//! machinery to hide.
//!
//! The binary *asserts* the overlap contract and exits non-zero — so CI
//! gates on it — when any of these fail:
//!
//! * DP-A actor time blocked in `comm.recv` during `phase.weight_sync`
//!   must drop ≥ 50% with overlap on (double-buffered weight sync);
//! * DP-C with overlap on must show no standalone `comm.all_gather`
//!   span (episode returns ride the fused gradient all-reduce);
//! * overlap on must not increase either policy's total `comm.*` span
//!   time (`comm.overlap` excluded: it brackets compute, not waiting);
//! * a fifth run repeats DP-A with the graph compiler's fusion off:
//!   `phase.learn` p99 with fusion on must not regress against it.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::path::Path;
use std::time::Duration;

use msrl_algos::ppo::PpoConfig;
use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_c, DistPpoConfig};
use msrl_telemetry::{Event, Phase, TelemetryReport};

/// One profiled run: its name, aggregated report, and raw events (kept
/// for span-containment analysis the aggregate cannot answer).
struct PolicyProfile {
    name: &'static str,
    report: TelemetryReport,
    events: Vec<Event>,
}

/// A named, boxed training run to profile.
type Run = (&'static str, Box<dyn FnOnce() -> msrl_core::Result<()>>);

/// Runs `f` with tracing enabled against a clean slate and returns the
/// aggregated report, after validating and writing the Chrome trace.
fn profile(
    name: &'static str,
    out_dir: &Path,
    f: impl FnOnce() -> msrl_core::Result<()>,
) -> Result<PolicyProfile, String> {
    msrl_telemetry::clear_events();
    msrl_telemetry::reset_counters();
    msrl_telemetry::reset_gauges();
    msrl_telemetry::reset_histograms();
    msrl_telemetry::set_enabled(true);
    f().map_err(|e| format!("{name}: run failed: {e}"))?;
    let events = msrl_telemetry::drain();
    let trace = msrl_telemetry::chrome_trace(&events);
    let check = msrl_telemetry::validate_chrome_trace(&trace)
        .map_err(|e| format!("{name}: trace validation failed: {e}"))?;
    if check.fragment_spans == 0 {
        return Err(format!("{name}: trace has no fragment spans"));
    }
    let trace_path = out_dir.join(format!("trace_{name}.json"));
    std::fs::write(&trace_path, &trace).map_err(|e| format!("{name}: write trace: {e}"))?;
    let report = TelemetryReport::from_events(&events).with_registry();
    let profile_path = out_dir.join(format!("profile_{name}.json"));
    std::fs::write(&profile_path, report.to_json())
        .map_err(|e| format!("{name}: write profile: {e}"))?;
    println!(
        "{name}: {} events, {} span pairs, {} fragment lanes -> {}",
        check.events,
        check.span_pairs,
        check.fragment_spans,
        trace_path.display()
    );
    Ok(PolicyProfile { name, report, events })
}

/// Total time (ns) spent in `inner` spans that *begin inside* an `outer`
/// span on the same thread — e.g. `comm.recv` blocked time during
/// `phase.weight_sync`. The aggregate report cannot answer this (it
/// loses nesting), so it is computed from the raw events: per thread,
/// events are chronological, so a depth counter for `outer` tells
/// whether each `inner` begin is contained.
fn span_within(events: &[Event], outer: &str, inner: &str) -> u64 {
    let mut by_tid: HashMap<u64, Vec<&Event>> = HashMap::new();
    for e in events {
        by_tid.entry(e.tid).or_default().push(e);
    }
    let mut total = 0u64;
    for evs in by_tid.values() {
        let mut outer_depth = 0i64;
        let mut inner_stack: Vec<(u64, bool)> = Vec::new();
        for e in evs {
            if e.name == outer {
                outer_depth += match e.phase {
                    Phase::Begin => 1,
                    Phase::End => -1,
                };
            } else if e.name == inner {
                match e.phase {
                    Phase::Begin => inner_stack.push((e.ts_ns, outer_depth > 0)),
                    Phase::End => {
                        if let Some((t0, inside)) = inner_stack.pop() {
                            if inside {
                                total += e.ts_ns.saturating_sub(t0);
                            }
                        }
                    }
                }
            }
        }
    }
    total
}

/// Total `comm.*` span time, excluding `comm.overlap` (which brackets
/// compute that runs while a transfer is in flight, not waiting).
fn total_comm_ns(p: &PolicyProfile) -> u64 {
    p.report
        .spans
        .iter()
        .filter(|s| s.name.starts_with("comm.") && s.name != "comm.overlap")
        .map(|s| s.total_ns)
        .sum()
}

/// Prints a side-by-side table of span totals/percentiles for every span
/// name in the given prefix group, across all profiled policies.
fn side_by_side(profiles: &[&PolicyProfile], heading: &str, prefixes: &[&str]) {
    let names: BTreeSet<&str> = profiles
        .iter()
        .flat_map(|p| p.report.spans.iter().map(|s| s.name.as_str()))
        .filter(|n| prefixes.iter().any(|p| n.starts_with(p)))
        .collect();
    if names.is_empty() {
        return;
    }
    println!("\n{heading}");
    print!("{:<26}", "span");
    for p in profiles {
        print!(" {:>16} {:>10} {:>10}", format!("{}_total_ms", p.name), "p50_us", "p99_us");
    }
    println!();
    for name in names {
        print!("{name:<26}");
        for p in profiles {
            match p.report.span(name) {
                Some(s) => print!(
                    " {:>16.2} {:>10.1} {:>10.1}",
                    s.total_ns as f64 / 1e6,
                    s.p50_ns as f64 / 1e3,
                    s.p99_ns as f64 / 1e3
                ),
                None => print!(" {:>16} {:>10} {:>10}", "-", "-", "-"),
            }
        }
        println!();
    }
}

/// Prints comm counter totals side by side.
fn comm_counters(profiles: &[&PolicyProfile]) {
    println!("\ncommunication volume");
    for key in [
        "comm.bytes_sent",
        "comm.bytes_recv",
        "comm.msgs_sent",
        "comm.stale_iters",
        "interp.ops",
        "env.steps",
    ] {
        print!("{key:<26}");
        for p in profiles {
            print!(" {:>16}", p.report.counter(key).unwrap_or(0));
        }
        println!();
    }
}

/// Checks the overlap contract across the four profiles; returns the
/// failures (empty = all good) and prints the analysis.
fn overlap_analysis(
    dp_a_sync: &PolicyProfile,
    dp_a_overlap: &PolicyProfile,
    dp_c_sync: &PolicyProfile,
    dp_c_overlap: &PolicyProfile,
) -> Vec<String> {
    let mut failures = Vec::new();
    println!("\noverlap analysis (overlap off vs on)");

    // DP-A: actor time blocked in comm.recv during phase.weight_sync.
    let blocked_off = span_within(&dp_a_sync.events, "phase.weight_sync", "comm.recv");
    let blocked_on = span_within(&dp_a_overlap.events, "phase.weight_sync", "comm.recv");
    let drop_pct = 100.0 * (1.0 - blocked_on as f64 / blocked_off.max(1) as f64);
    println!(
        "dp_a comm.recv in phase.weight_sync: {:.1} ms -> {:.1} ms ({drop_pct:+.0}% vs off)",
        blocked_off as f64 / 1e6,
        blocked_on as f64 / 1e6,
    );
    println!(
        "dp_a stale rollout iterations: {} (comm.overlap span: {} ms)",
        dp_a_overlap.report.counter("comm.stale_iters").unwrap_or(0),
        dp_a_overlap.report.span("comm.overlap").map_or(0.0, |s| s.total_ns as f64 / 1e6),
    );
    if drop_pct < 50.0 {
        failures.push(format!(
            "dp_a: comm.recv blocked time in phase.weight_sync must drop >= 50% with overlap \
             on, got {drop_pct:.1}% ({blocked_off} ns -> {blocked_on} ns)"
        ));
    }

    // DP-C: the fused collective must replace the standalone all_gather.
    match dp_c_overlap.report.span("comm.all_gather") {
        Some(s) => failures.push(format!(
            "dp_c: overlap on must not execute a standalone comm.all_gather span \
             (found {} of them)",
            s.count
        )),
        None => println!(
            "dp_c collective barriers: all_reduce+all_gather -> fused ({} ms in \
             comm.all_reduce_fused)",
            dp_c_overlap
                .report
                .span("comm.all_reduce_fused")
                .map_or(0.0, |s| s.total_ns as f64 / 1e6),
        ),
    }

    // Overlap on must not increase total communication span time. 10%
    // headroom absorbs scheduler noise in these short runs.
    for (off, on) in [(dp_a_sync, dp_a_overlap), (dp_c_sync, dp_c_overlap)] {
        let (t_off, t_on) = (total_comm_ns(off), total_comm_ns(on));
        println!(
            "{} total comm span time: {:.1} ms -> {:.1} ms",
            on.name,
            t_off as f64 / 1e6,
            t_on as f64 / 1e6
        );
        if t_on as f64 > t_off as f64 * 1.10 {
            failures.push(format!(
                "{}: overlap on increased total comm span time ({t_off} ns -> {t_on} ns)",
                on.name
            ));
        }
    }
    failures
}

/// Checks that routing learn-phase linear algebra through the fused
/// `MatMul+bias+activation` kernel never slows training down: `phase.learn`
/// p99 with fusion on must stay within noise of the unfused run. 15%
/// headroom absorbs scheduler jitter — p99 over an 8-iteration run is the
/// worst single sample.
fn fusion_analysis(fused: &PolicyProfile, unfused: &PolicyProfile) -> Vec<String> {
    let p99 = |p: &PolicyProfile| p.report.span("phase.learn").map_or(0, |s| s.p99_ns);
    let (on, off) = (p99(fused), p99(unfused));
    println!(
        "\nfusion analysis (dp_a, overlap on): phase.learn p99 unfused {:.1} us -> fused {:.1} us",
        off as f64 / 1e3,
        on as f64 / 1e3
    );
    if on == 0 || off == 0 {
        return vec!["fusion: phase.learn span missing from a profiled run".to_string()];
    }
    if on as f64 > off as f64 * 1.15 {
        return vec![format!(
            "fusion: phase.learn p99 regressed with fusion on ({off} ns -> {on} ns)"
        )];
    }
    Vec::new()
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".to_string());
    let out_dir = Path::new(&out_dir);
    std::fs::create_dir_all(out_dir).expect("results directory is creatable");

    // The profiled workload: 8-iteration PPO CartPole with a simulated
    // 10 ms wire latency. One env and one epoch keep the rollout/learn
    // balance communication-bound — the regime distribution policies
    // overlap for.
    let base = DistPpoConfig {
        actors: 2,
        envs_per_actor: 1,
        steps_per_iter: 128,
        iterations: 8,
        hidden: vec![32],
        seed: 7,
        staleness: 1,
        link_latency: Duration::from_millis(10),
        ppo: PpoConfig { epochs: 1, ..PpoConfig::default() },
        fusion: true,
        ..DistPpoConfig::default()
    };
    let with_overlap = |on: bool| DistPpoConfig { overlap: on, ..base.clone() };

    let mut profiles = Vec::new();
    let runs: Vec<Run> = vec![
        ("dp_a_sync", {
            let dist = with_overlap(false);
            Box::new(move || run_dp_a(|a, i| CartPole::new((a * 13 + i) as u64), &dist).map(|_| ()))
        }),
        ("dp_a_overlap", {
            let dist = with_overlap(true);
            Box::new(move || run_dp_a(|a, i| CartPole::new((a * 13 + i) as u64), &dist).map(|_| ()))
        }),
        ("dp_c_sync", {
            let dist = with_overlap(false);
            Box::new(move || run_dp_c(|a, i| CartPole::new((a * 13 + i) as u64), &dist).map(|_| ()))
        }),
        ("dp_c_overlap", {
            let dist = with_overlap(true);
            Box::new(move || run_dp_c(|a, i| CartPole::new((a * 13 + i) as u64), &dist).map(|_| ()))
        }),
        ("dp_a_unfused", {
            let dist = DistPpoConfig { fusion: false, ..with_overlap(true) };
            Box::new(move || run_dp_a(|a, i| CartPole::new((a * 13 + i) as u64), &dist).map(|_| ()))
        }),
    ];
    for (name, f) in runs {
        match profile(name, out_dir, f) {
            Ok(p) => profiles.push(p),
            Err(e) => {
                eprintln!("profile_report: {e}");
                std::process::exit(1);
            }
        }
    }

    let views: Vec<&PolicyProfile> = profiles.iter().collect();
    side_by_side(&views, "fragment breakdown", &["fragment."]);
    side_by_side(&views, "phase breakdown", &["phase."]);
    side_by_side(&views, "comm ops", &["comm."]);
    comm_counters(&views);

    let mut failures = overlap_analysis(&profiles[0], &profiles[1], &profiles[2], &profiles[3]);
    failures.extend(fusion_analysis(&profiles[1], &profiles[4]));

    // Combined artefact: one JSON object keyed by run name.
    let mut combined = String::from("{\n");
    for (i, p) in profiles.iter().enumerate() {
        let body: String =
            p.report.to_json().lines().map(|l| format!("  {l}\n")).collect::<String>();
        combined.push_str(&format!("  \"{}\": {}", p.name, body.trim_start()));
        combined.pop(); // trailing newline from the indented body
        combined.push_str(if i + 1 == profiles.len() { "\n" } else { ",\n" });
    }
    combined.push_str("}\n");
    let combined_path = out_dir.join("profile_report.json");
    std::fs::write(&combined_path, combined).expect("combined report is writable");
    println!("\nwrote {}", combined_path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("profile_report: FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("overlap + fusion contract: all checks passed");
}
