//! `profile_report` — runs PPO CartPole under two distribution policies
//! (DP-A and DP-C) with telemetry enabled and emits, per policy:
//!
//! * `results/trace_<policy>.json` — Chrome trace-event JSON (open in
//!   Perfetto or `chrome://tracing`), validated before it is written;
//! * `results/profile_<policy>.json` — the aggregated
//!   [`msrl_telemetry::TelemetryReport`] (per-span p50/p99, counter and
//!   gauge snapshots).
//!
//! plus a combined `results/profile_report.json` and a side-by-side
//! per-fragment / per-phase / per-comm-op table on stdout. Exits with a
//! non-zero status when any emitted trace fails schema validation, so CI
//! can gate on it.
//!
//! The workloads are intentionally small (seconds, not minutes): the
//! point is the telemetry pipeline and the *relative* phase breakdown of
//! the two policies, not wall-clock throughput numbers.

use std::collections::BTreeSet;
use std::path::Path;

use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_c, DistPpoConfig};
use msrl_telemetry::TelemetryReport;

/// One profiled policy: its name and aggregated report.
struct PolicyProfile {
    name: &'static str,
    report: TelemetryReport,
}

/// A named, boxed training run to profile.
type Run = (&'static str, Box<dyn FnOnce() -> msrl_core::Result<()>>);

/// Runs `f` with tracing enabled against a clean slate and returns the
/// aggregated report, after validating and writing the Chrome trace.
fn profile(
    name: &'static str,
    out_dir: &Path,
    f: impl FnOnce() -> msrl_core::Result<()>,
) -> Result<PolicyProfile, String> {
    msrl_telemetry::clear_events();
    msrl_telemetry::reset_counters();
    msrl_telemetry::reset_gauges();
    msrl_telemetry::set_enabled(true);
    f().map_err(|e| format!("{name}: run failed: {e}"))?;
    let events = msrl_telemetry::drain();
    let trace = msrl_telemetry::chrome_trace(&events);
    let check = msrl_telemetry::validate_chrome_trace(&trace)
        .map_err(|e| format!("{name}: trace validation failed: {e}"))?;
    if check.fragment_spans == 0 {
        return Err(format!("{name}: trace has no fragment spans"));
    }
    let trace_path = out_dir.join(format!("trace_{name}.json"));
    std::fs::write(&trace_path, &trace).map_err(|e| format!("{name}: write trace: {e}"))?;
    let report = TelemetryReport::from_events(&events).with_registry();
    let profile_path = out_dir.join(format!("profile_{name}.json"));
    std::fs::write(&profile_path, report.to_json())
        .map_err(|e| format!("{name}: write profile: {e}"))?;
    println!(
        "{name}: {} events, {} span pairs, {} fragment lanes -> {}",
        check.events,
        check.span_pairs,
        check.fragment_spans,
        trace_path.display()
    );
    Ok(PolicyProfile { name, report })
}

/// Prints a side-by-side table of span totals/percentiles for every span
/// name in the given prefix group, across all profiled policies.
fn side_by_side(profiles: &[PolicyProfile], heading: &str, prefixes: &[&str]) {
    let names: BTreeSet<&str> = profiles
        .iter()
        .flat_map(|p| p.report.spans.iter().map(|s| s.name.as_str()))
        .filter(|n| prefixes.iter().any(|p| n.starts_with(p)))
        .collect();
    if names.is_empty() {
        return;
    }
    println!("\n{heading}");
    print!("{:<26}", "span");
    for p in profiles {
        print!(" {:>12} {:>10} {:>10}", format!("{}_total_ms", p.name), "p50_us", "p99_us");
    }
    println!();
    for name in names {
        print!("{name:<26}");
        for p in profiles {
            match p.report.span(name) {
                Some(s) => print!(
                    " {:>12.2} {:>10.1} {:>10.1}",
                    s.total_ns as f64 / 1e6,
                    s.p50_ns as f64 / 1e3,
                    s.p99_ns as f64 / 1e3
                ),
                None => print!(" {:>12} {:>10} {:>10}", "-", "-", "-"),
            }
        }
        println!();
    }
}

/// Prints comm counter totals side by side.
fn comm_counters(profiles: &[PolicyProfile]) {
    println!("\ncommunication volume");
    for key in ["comm.bytes_sent", "comm.bytes_recv", "comm.msgs_sent", "interp.ops", "env.steps"] {
        print!("{key:<26}");
        for p in profiles {
            print!(" {:>16}", p.report.counter(key).unwrap_or(0));
        }
        println!();
    }
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".to_string());
    let out_dir = Path::new(&out_dir);
    std::fs::create_dir_all(out_dir).expect("results directory is creatable");

    let dist = DistPpoConfig {
        actors: 2,
        envs_per_actor: 2,
        steps_per_iter: 64,
        iterations: 8,
        hidden: vec![32],
        seed: 7,
        ..DistPpoConfig::default()
    };

    let mut profiles = Vec::new();
    let runs: Vec<Run> = vec![
        ("dp_a", {
            let dist = dist.clone();
            Box::new(move || run_dp_a(|a, i| CartPole::new((a * 13 + i) as u64), &dist).map(|_| ()))
        }),
        ("dp_c", {
            let dist = dist.clone();
            Box::new(move || run_dp_c(|a, i| CartPole::new((a * 13 + i) as u64), &dist).map(|_| ()))
        }),
    ];
    for (name, f) in runs {
        match profile(name, out_dir, f) {
            Ok(p) => profiles.push(p),
            Err(e) => {
                eprintln!("profile_report: {e}");
                std::process::exit(1);
            }
        }
    }

    side_by_side(&profiles, "fragment breakdown", &["fragment."]);
    side_by_side(&profiles, "phase breakdown", &["phase."]);
    side_by_side(&profiles, "comm ops", &["comm."]);
    comm_counters(&profiles);

    // Combined artefact: one JSON object keyed by policy name.
    let mut combined = String::from("{\n");
    for (i, p) in profiles.iter().enumerate() {
        let body: String =
            p.report.to_json().lines().map(|l| format!("  {l}\n")).collect::<String>();
        combined.push_str(&format!("  \"{}\": {}", p.name, body.trim_start()));
        combined.pop(); // trailing newline from the indented body
        combined.push_str(if i + 1 == profiles.len() { "\n" } else { ",\n" });
    }
    combined.push_str("}\n");
    let combined_path = out_dir.join("profile_report.json");
    std::fs::write(&combined_path, combined).expect("combined report is writable");
    println!("\nwrote {}", combined_path.display());
}
