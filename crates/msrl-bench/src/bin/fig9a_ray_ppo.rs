//! Fig. 9a — PPO time per episode vs. the Ray-like baseline
//! (320 environments split across actors, local cluster, 1–24 GPUs).
//!
//! Two parts: (i) the cost-model comparison on the paper's cluster
//! shapes (absolute seconds, paper: 2.5× at 1 GPU, 3× at 24 — 3.85 s vs
//! 11.38 s), and (ii) a *real* small-scale run of both systems on this
//! machine, comparing the structural counters (sequential env steps and
//! unbatched inference calls vs. MSRL's fused calls) and wall-clock.

use std::time::Instant;

use msrl_baselines::raylike::run_raylike_ppo;
use msrl_bench::{banner, series};
use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, DistPpoConfig};
use msrl_sim::scenarios::{local, msrl_ppo_episode, raylike_ppo_episode, PpoWorkload};

fn main() {
    banner(
        "Fig 9a",
        "PPO episode time: MSRL vs Ray-like (320 envs, local cluster)",
        "MSRL 2.5× faster at 1 GPU, 3× at 24 (3.85 s vs 11.38 s)",
    );
    let w = PpoWorkload::halfcheetah(320);
    let c = local();
    let mut rows = Vec::new();
    for p in [1usize, 2, 4, 8, 16, 24] {
        let ray = raylike_ppo_episode(&w, &c, p);
        let msrl = msrl_ppo_episode(&w, &c, p);
        rows.push((p as f64, vec![msrl, ray, ray / msrl]));
    }
    series("GPUs", &["MSRL [s]", "Ray-like [s]", "speedup"], &rows);

    println!("\n--- real small-scale run (CartPole, 2 actors × 4 envs, 10 iters) ---");
    let t0 = Instant::now();
    let ray = run_raylike_ppo(|a, i| CartPole::new((a * 5 + i) as u64), 2, 4, 64, 10, &[32], 0)
        .expect("raylike run");
    let ray_wall = t0.elapsed().as_secs_f64();
    let dist = DistPpoConfig {
        actors: 2,
        envs_per_actor: 4,
        steps_per_iter: 64,
        iterations: 10,
        hidden: vec![32],
        seed: 0,
        ..DistPpoConfig::default()
    };
    let t0 = Instant::now();
    let _msrl = run_dp_a(|a, i| CartPole::new((a * 5 + i) as u64), &dist).expect("msrl run");
    let msrl_wall = t0.elapsed().as_secs_f64();
    println!(
        "Ray-like: wall {ray_wall:.2}s, env_steps {}, unbatched inference calls {}",
        ray.env_steps, ray.infer_calls
    );
    println!(
        "MSRL DP-A: wall {msrl_wall:.2}s, fused inference calls {} ({}× fewer launches)",
        64 * 10,
        ray.infer_calls / (64 * 10)
    );
}
