//! Property-based tests for Algorithm 2 (FDG generation) and fragment
//! fusion over randomly generated traced graphs.
//!
//! The invariants tested here are the correctness conditions §4.3 states
//! informally: every interior node lands in exactly one fragment; common
//! nodes are duplicated across all adjacent fragments; each common node
//! has exactly one producing (exit) side; and fusion preserves execution
//! semantics on random inputs.

use std::collections::HashMap;

use msrl_core::annotate::{Collective, FragmentKind};
use msrl_core::fusion::{fuse_graph, fusible};
use msrl_core::interp::Interpreter;
use msrl_core::partition::build_fdg;
use msrl_core::trace::{trace_mlp, TraceCtx};
use msrl_tensor::{ops, Tensor};
use proptest::prelude::*;

/// Builds a random chain graph of unary ops with annotations at random
/// cut points; returns the traced graph.
fn random_chain(ops_choice: &[u8], cuts: &[bool]) -> msrl_core::DataflowGraph {
    let ctx = TraceCtx::new();
    let saved = ctx.enter_component("chain");
    let mut v = ctx.input("x", &[4, 4]);
    for (i, (&op, &cut)) in ops_choice.iter().zip(cuts).enumerate() {
        v = match op % 5 {
            0 => v.relu(),
            1 => v.tanh(),
            2 => v.sigmoid(),
            3 => v.square(),
            _ => v.neg(),
        };
        if cut {
            ctx.annotate(FragmentKind::Custom(format!("cut{i}")), Collective::AllGather, &[&v]);
        }
    }
    ctx.exit_component(saved);
    ctx.finish()
}

proptest! {
    /// Partition invariants hold for arbitrary chains and cut placements.
    #[test]
    fn partition_invariants_hold(
        ops_choice in proptest::collection::vec(0u8..5, 1..12),
        cut_bits in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let n = ops_choice.len().min(cut_bits.len());
        let graph = random_chain(&ops_choice[..n], &cut_bits[..n]);
        let fdg = build_fdg(graph).unwrap();
        prop_assert!(fdg.check_invariants().is_ok());
    }

    /// The fragment count equals the number of maximal runs of
    /// non-common nodes in the chain (adjacent cuts do not create empty
    /// fragments — the subgraph between consecutive common nodes can be
    /// empty, per §4.3).
    #[test]
    fn chain_cuts_create_fragments(cut_positions in proptest::collection::btree_set(1usize..9, 0..4)) {
        // A 10-op chain (node ids 0..=10; cutting position p marks node
        // p+1 as common).
        let ops_choice = vec![0u8; 10];
        let mut cuts = vec![false; 10];
        for &p in &cut_positions {
            cuts[p] = true;
        }
        let graph = random_chain(&ops_choice, &cuts);
        // Expected regions: maximal runs of non-common node ids in 0..=10.
        let is_common = |id: usize| id >= 1 && cut_positions.contains(&(id - 1));
        let mut expected = 0;
        let mut in_run = false;
        for id in 0..=10 {
            match (is_common(id), in_run) {
                (false, false) => {
                    expected += 1;
                    in_run = true;
                }
                (true, _) => in_run = false,
                _ => {}
            }
        }
        let fdg = build_fdg(graph).unwrap();
        prop_assert_eq!(fdg.fragments.len(), expected);
    }

    /// Every common node has exactly one exit side (its producer) across
    /// the whole FDG.
    #[test]
    fn each_common_node_has_one_producer(
        cut_positions in proptest::collection::btree_set(1usize..9, 1..4)
    ) {
        let ops_choice = vec![1u8; 10];
        let mut cuts = vec![false; 10];
        for &p in &cut_positions {
            cuts[p] = true;
        }
        let graph = random_chain(&ops_choice, &cuts);
        let fdg = build_fdg(graph).unwrap();
        for c in fdg.graph.common_nodes() {
            let exits: usize = fdg
                .fragments
                .iter()
                .map(|f| f.exits.iter().filter(|i| i.node == c).count())
                .sum();
            prop_assert_eq!(exits, 1, "common node {} has {} exits", c, exits);
        }
    }

    /// Interpreting all fragments with entry-value handoff reproduces the
    /// unpartitioned execution (the FDG abstraction does not change
    /// results, only placement).
    #[test]
    fn fragmented_execution_matches_monolithic(
        ops_choice in proptest::collection::vec(0u8..5, 2..8),
        cut in 1usize..6,
        xs in proptest::collection::vec(-2.0f32..2.0, 16),
    ) {
        let n = ops_choice.len();
        let cut = cut.min(n - 1);
        let mut cuts = vec![false; n];
        cuts[cut] = true;
        let graph = random_chain(&ops_choice, &cuts);
        let x = Tensor::from_vec(xs, &[4, 4]).unwrap();

        // Monolithic execution.
        let mut interp = Interpreter::new();
        interp.bind_input("x", x.clone());
        let mono = interp.eval(&graph).unwrap();
        let last = mono.last().unwrap().clone();

        // Fragmented execution: evaluate fragments in id order, feeding
        // exit values into entries.
        let fdg = build_fdg(graph).unwrap();
        let mut boundary_values: HashMap<usize, Tensor> = HashMap::new();
        let mut final_value = None;
        for f in &fdg.fragments {
            let mut interp = Interpreter::new();
            interp.bind_input("x", x.clone());
            let preset: HashMap<usize, Tensor> = f
                .entries
                .iter()
                .filter_map(|i| boundary_values.get(&i.node).map(|t| (i.node, t.clone())))
                .collect();
            let values = interp.eval_fragment(&fdg.graph, f, preset).unwrap();
            for e in &f.exits {
                boundary_values.insert(e.node, values[&e.node].clone());
            }
            let max_node = f.all_nodes().last().copied().unwrap();
            if max_node == fdg.graph.len() - 1 {
                final_value = Some(values[&max_node].clone());
            }
        }
        let final_value = final_value.expect("some fragment holds the last node");
        for (a, b) in final_value.data().iter().zip(last.data()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Fused execution equals per-replica execution for random MLP
    /// shapes and inputs.
    #[test]
    fn fusion_preserves_semantics(
        hidden in 1usize..6,
        replicas in 1usize..5,
        seed_vals in proptest::collection::vec(-1.0f32..1.0, 6),
    ) {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[2, 3]);
        let out = trace_mlp(&ctx, "m", &x, &[3, hidden, 2]);
        let g = ctx.finish();
        prop_assert!(fusible(&g));
        let fused = fuse_graph(&g, replicas).unwrap();

        let w0: Vec<f32> = (0..3 * hidden).map(|i| seed_vals[i % 6] * 0.3).collect();
        let w1: Vec<f32> = (0..hidden * 2).map(|i| seed_vals[(i + 2) % 6] * 0.2).collect();
        let params = vec![
            ("m.w0", Tensor::from_vec(w0, &[3, hidden]).unwrap()),
            ("m.b0", Tensor::full(&[hidden], 0.1)),
            ("m.w1", Tensor::from_vec(w1, &[hidden, 2]).unwrap()),
            ("m.b1", Tensor::zeros(&[2])),
        ];
        let inputs: Vec<Tensor> = (0..replicas)
            .map(|r| Tensor::full(&[2, 3], seed_vals[r % 6]))
            .collect();

        let mut separate = Vec::new();
        for x in &inputs {
            let mut interp = Interpreter::new();
            for (k, v) in &params {
                interp.bind_param(k, v.clone());
            }
            interp.bind_input("x", x.clone());
            separate.push(interp.eval(&g).unwrap()[out.id()].clone());
        }
        let refs: Vec<&Tensor> = separate.iter().collect();
        let stacked = ops::concat(&refs, 0).unwrap();

        let in_refs: Vec<&Tensor> = inputs.iter().collect();
        let mut interp = Interpreter::new();
        for (k, v) in &params {
            interp.bind_param(k, v.clone());
        }
        interp.bind_input("x", ops::concat(&in_refs, 0).unwrap());
        let fused_out = interp.eval(&fused).unwrap()[out.id()].clone();

        prop_assert_eq!(fused_out.shape(), stacked.shape());
        for (a, b) in fused_out.data().iter().zip(stacked.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
