//! Property-based tests for the graph compiler (§5's execution layer):
//! the fused, liveness-planned execution of a compiled plan must be
//! **bit-identical** to the unfused reference schedule on arbitrary
//! graphs, under both tensor backends, and repeat evaluations must be
//! served from the plan cache without changing results.
//!
//! Bitwise comparison (`f32::to_bits`) is deliberate: the fusion passes
//! promise the *same* floating-point operation sequence per element, so
//! even NaN payloads and signed zeros must agree.

use std::collections::HashMap;
use std::sync::Mutex;

use msrl_core::interp::Interpreter;
use msrl_core::partition::build_fdg;
use msrl_core::trace::{TraceCtx, TracedVar};
use msrl_core::{DataflowGraph, NodeId};
use msrl_tensor::{par, Backend, Tensor};
use proptest::prelude::*;

/// The process-global fusion/backend gates are flipped inside these
/// tests; serialise the test bodies so concurrent cases cannot observe
/// each other's overrides.
static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Builds a random DAG over `[4, 4]` tensors. Every op draws operands
/// (by modulo-index into the pool of previously produced values), so
/// duplicate subexpressions (CSE fodder), shared intermediates, fusable
/// `MatMul+Add(bias)+act` stretches, elementwise chains, and dead
/// branches (anything not reachable from the last value) all arise
/// naturally. Returns the graph and the id of the designated output.
fn random_dag(codes: &[u8], operands: &[usize]) -> (DataflowGraph, NodeId) {
    let ctx = TraceCtx::new();
    let saved = ctx.enter_component("net");
    let x = ctx.input("x", &[4, 4]);
    let w = ctx.param("w", &[4, 4]);
    let b = ctx.param("b", &[4]);
    let mut pool: Vec<TracedVar> = vec![x];
    for (i, &code) in codes.iter().enumerate() {
        let pick = |slot: usize| operands[(2 * i + slot) % operands.len()] % pool.len();
        let v = {
            let a = &pool[pick(0)];
            let c = &pool[pick(1)];
            match code % 13 {
                0 => a.relu(),
                1 => a.tanh(),
                2 => a.sigmoid(),
                3 => a.square(),
                4 => a.neg(),
                5 => a.clamp(-1.5, 1.5),
                6 => a.ln(),
                7 => a.exp(),
                8 => a.add(c),
                9 => a.sub(c),
                10 => a.mul(c),
                11 => a.matmul(&w),
                _ => a.matmul(&w).add(&b).tanh(),
            }
        };
        pool.push(v);
    }
    let out = pool.last().expect("pool starts non-empty").id();
    ctx.exit_component(saved);
    (ctx.finish(), out)
}

fn bind_all(interp: &mut Interpreter<'_>, xs: &[f32], ws: &[f32], bs: &[f32]) {
    interp.bind_input("x", Tensor::from_vec(xs.to_vec(), &[4, 4]).unwrap());
    interp.bind_param("w", Tensor::from_vec(ws.to_vec(), &[4, 4]).unwrap());
    interp.bind_param("b", Tensor::from_vec(bs.to_vec(), &[4]).unwrap());
}

/// Evaluates the single-fragment FDG in outputs mode (the path the
/// fusion passes transform) and returns the output's raw bits.
fn run_outputs(
    graph: &DataflowGraph,
    out: NodeId,
    xs: &[f32],
    ws: &[f32],
    bs: &[f32],
    fusion: bool,
) -> Vec<u32> {
    par::with_fusion(fusion, || {
        let fdg = build_fdg(graph.clone()).unwrap();
        assert_eq!(fdg.fragments.len(), 1, "unannotated graph is one fragment");
        let mut interp = Interpreter::new();
        bind_all(&mut interp, xs, ws, bs);
        let vals =
            interp.eval_fragment_outputs(&fdg.graph, &fdg.fragments[0], HashMap::new(), &[out]);
        vals.unwrap()[&out].data().iter().map(|v| v.to_bits()).collect()
    })
}

proptest! {
    /// Fused execution (CSE + linear fusion + elementwise chains + DCE +
    /// in-place buffers) is bit-identical to the unfused reference
    /// schedule on random graphs, under both backends.
    #[test]
    fn fused_matches_unfused_bitwise(
        codes in proptest::collection::vec(0u8..13, 1..16),
        operands in proptest::collection::vec(0usize..64, 32),
        xs in proptest::collection::vec(-2.0f32..2.0, 16),
        ws in proptest::collection::vec(-1.0f32..1.0, 16),
        bs in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        let _g = lock();
        let (graph, out) = random_dag(&codes, &operands);
        for backend in [Backend::Scalar, Backend::Threaded] {
            par::with_backend(backend, || -> Result<(), TestCaseError> {
                let fused = run_outputs(&graph, out, &xs, &ws, &bs, true);
                let plain = run_outputs(&graph, out, &xs, &ws, &bs, false);
                prop_assert_eq!(&fused, &plain, "backend {:?}", backend);
                Ok(())
            })?;
        }
    }

    /// Keep-all evaluation (`eval`) is untouched by the fusion flag:
    /// every node's value is bitwise identical either way.
    #[test]
    fn keep_all_eval_ignores_fusion_flag(
        codes in proptest::collection::vec(0u8..13, 1..12),
        operands in proptest::collection::vec(0usize..64, 32),
        xs in proptest::collection::vec(-2.0f32..2.0, 16),
        ws in proptest::collection::vec(-1.0f32..1.0, 16),
        bs in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        let _g = lock();
        let (graph, _) = random_dag(&codes, &operands);
        let run = |fusion: bool| {
            par::with_fusion(fusion, || {
                let mut interp = Interpreter::new();
                bind_all(&mut interp, &xs, &ws, &bs);
                interp.eval(&graph).unwrap()
            })
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(on.len(), off.len());
        for (a, b) in on.iter().zip(&off) {
            prop_assert_eq!(a.shape(), b.shape());
            for (va, vb) in a.data().iter().zip(b.data()) {
                prop_assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    /// A persistent interpreter compiles once per request shape: repeat
    /// evaluations are plan-cache hits and return identical bits.
    #[test]
    fn plan_cache_serves_repeat_evaluations(
        codes in proptest::collection::vec(0u8..13, 1..10),
        operands in proptest::collection::vec(0usize..64, 32),
        xs in proptest::collection::vec(-2.0f32..2.0, 16),
        ws in proptest::collection::vec(-1.0f32..1.0, 16),
        bs in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        let _g = lock();
        let (graph, out) = random_dag(&codes, &operands);
        let fdg = build_fdg(graph).unwrap();
        let mut interp = Interpreter::new();
        bind_all(&mut interp, &xs, &ws, &bs);
        let eval = |interp: &mut Interpreter<'_>| {
            let vals = interp
                .eval_fragment_outputs(&fdg.graph, &fdg.fragments[0], HashMap::new(), &[out])
                .unwrap();
            vals[&out].data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        };
        let first = eval(&mut interp);
        let hits0 = msrl_telemetry::counter_total("interp.plan_cache.hit");
        let misses0 = msrl_telemetry::counter_total("interp.plan_cache.miss");
        for _ in 0..5 {
            prop_assert_eq!(&eval(&mut interp), &first);
        }
        let hits = msrl_telemetry::counter_total("interp.plan_cache.hit") - hits0;
        let misses = msrl_telemetry::counter_total("interp.plan_cache.miss") - misses0;
        prop_assert_eq!(hits, 5, "every repeat evaluation is a cache hit");
        prop_assert_eq!(misses, 0, "steady state does no per-call planning");
    }
}
