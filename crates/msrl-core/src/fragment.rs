//! Fragments: the nodes of a fragmented dataflow graph.
//!
//! A fragment (§4.1) is a self-contained piece of the algorithm's dataflow
//! graph with an *entry* and an *exit* interface. Interfaces carry the
//! data named by the partition annotations; when fragment instances are
//! replicated across devices, the interface's collective synchronises
//! them.

use serde::{Deserialize, Serialize};

use crate::annotate::{Collective, FragmentKind};
use crate::graph::{DataflowGraph, DeviceReq, NodeId};

/// Identifier of a fragment within an FDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FragmentId(pub usize);

/// One boundary crossing of a fragment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interface {
    /// The common node whose value crosses the boundary (id in the
    /// *original* graph).
    pub node: NodeId,
    /// The collective synchronising replicas at this boundary.
    pub collective: Collective,
}

/// A fragment: a subgraph of the algorithm plus its interfaces.
///
/// Nodes are referenced by their ids in the original [`DataflowGraph`];
/// common nodes at the boundary are *duplicated*, i.e. they appear in
/// every adjacent fragment (§4.3: "the algorithm also duplicates the
/// common nodes in the original dataflow graph and fragment graph").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fragment {
    /// This fragment's id.
    pub id: FragmentId,
    /// The fragment type (from the annotation that bounds it, or the
    /// dominant component for default partitioning).
    pub kind: FragmentKind,
    /// Interior nodes: computed exclusively by this fragment.
    pub interior: Vec<NodeId>,
    /// Boundary (common) nodes duplicated into this fragment.
    pub boundary: Vec<NodeId>,
    /// Data received from other fragments before execution.
    pub entries: Vec<Interface>,
    /// Data sent to other fragments (or synchronised across replicas)
    /// after execution.
    pub exits: Vec<Interface>,
    /// Merged hardware requirement of the interior nodes.
    pub device_req: DeviceReq,
}

impl Fragment {
    /// All nodes (interior + boundary), sorted and deduplicated.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> =
            self.interior.iter().chain(self.boundary.iter()).copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether this fragment computes the given node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.interior.contains(&id) || self.boundary.contains(&id)
    }

    /// Bytes entering this fragment per execution (entry payloads).
    pub fn entry_bytes(&self, graph: &DataflowGraph) -> u64 {
        graph.bytes_of(&self.entries.iter().map(|i| i.node).collect::<Vec<_>>())
    }

    /// Bytes leaving this fragment per execution (exit payloads).
    pub fn exit_bytes(&self, graph: &DataflowGraph) -> u64 {
        graph.bytes_of(&self.exits.iter().map(|i| i.node).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpKind;

    #[test]
    fn all_nodes_dedups_boundary() {
        let f = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Action,
            interior: vec![2, 1],
            boundary: vec![3, 1],
            entries: vec![],
            exits: vec![],
            device_req: DeviceReq::Any,
        };
        assert_eq!(f.all_nodes(), vec![1, 2, 3]);
        assert!(f.contains(3));
        assert!(!f.contains(5));
    }

    #[test]
    fn interface_bytes_use_node_shapes() {
        let mut g = DataflowGraph::new();
        let a = g.push(OpKind::Input { name: "a".into() }, vec![], vec![10], "x");
        let f = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Step,
            interior: vec![],
            boundary: vec![a],
            entries: vec![Interface { node: a, collective: Collective::AllGather }],
            exits: vec![],
            device_req: DeviceReq::Any,
        };
        assert_eq!(f.entry_bytes(&g), 40);
        assert_eq!(f.exit_bytes(&g), 0);
    }
}
