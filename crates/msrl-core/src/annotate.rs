//! Partition annotations — the reproduction of the paper's
//! `#@MSRL.fragment(type=…, ops=[…], data=[…])` comments (Alg. 1, §3).
//!
//! An annotation marks a *possible boundary* in the algorithm where
//! computation may be split across devices. It names (i) the kind of
//! fragment that begins at the boundary, (ii) the collective used to
//! synchronise replicated fragments at the boundary, and (iii) the data
//! nodes that must be transferred when computation is split there — the
//! *common nodes* of §4.3.

use serde::{Deserialize, Serialize};

use crate::graph::NodeId;

/// The fragment types named by the paper's MAPPO example (Alg. 1) plus a
/// user-defined escape hatch.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FragmentKind {
    /// Action generation (policy inference).
    Action,
    /// Environment stepping.
    Step,
    /// Environment reset.
    Reset,
    /// Replay-buffer exchange.
    Buffer,
    /// Learner / policy training.
    Learner,
    /// User-defined fragment type.
    Custom(String),
}

impl FragmentKind {
    /// A short display label.
    pub fn label(&self) -> &str {
        match self {
            FragmentKind::Action => "Action",
            FragmentKind::Step => "Step",
            FragmentKind::Reset => "Reset",
            FragmentKind::Buffer => "Buffer",
            FragmentKind::Learner => "Learner",
            FragmentKind::Custom(s) => s,
        }
    }
}

/// The synchronisation operation replicated fragments use at a boundary.
///
/// Each maps to a communication operator of the DL engine (§5.1: "the
/// AllGather annotation maps to a comms.AllGather operator"); here they
/// map onto `msrl_comm::Endpoint` methods and the `msrl_comm::model` cost
/// formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// Every replica contributes and receives all contributions.
    AllGather,
    /// Element-wise mean across replicas (gradient aggregation).
    AllReduce,
    /// One root distributes to all replicas (weight broadcast).
    Broadcast,
    /// Point-to-point transfer between two specific fragments.
    SendRecv,
}

/// One partition annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionAnnotation {
    /// Fragment type beginning at this boundary.
    pub kind: FragmentKind,
    /// Synchronisation collective at this boundary.
    pub collective: Collective,
    /// The data nodes transferred at the boundary (common nodes).
    pub data: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(FragmentKind::Action.label(), "Action");
        assert_eq!(FragmentKind::Custom("PolicyPool".into()).label(), "PolicyPool");
    }

    #[test]
    fn annotations_serialize() {
        let a = PartitionAnnotation {
            kind: FragmentKind::Buffer,
            collective: Collective::AllGather,
            data: vec![3, 4],
        };
        let s = serde_json::to_string(&a).unwrap();
        let back: PartitionAnnotation = serde_json::from_str(&s).unwrap();
        assert_eq!(a, back);
    }
}
