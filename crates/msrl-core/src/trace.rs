//! Tracing: recording an algorithm's training-loop body as a dataflow
//! graph.
//!
//! The original MSRL statically analyses the Python source of the
//! algorithm to obtain its dataflow graph (§4.3). A Rust reproduction has
//! no Python frontend, so the same artifact is obtained by *tracing*:
//! algorithm code runs once against [`TracedVar`] handles, and every
//! operation appends a node to the [`DataflowGraph`] under construction.
//! Partition annotations become [`TraceCtx::annotate`] calls placed where
//! the paper's `#@MSRL.fragment(...)` comments sit.
//!
//! Component scoping ([`TraceCtx::enter_component`]) labels nodes with the
//! algorithmic component (actor/learner/…) that produced them, which
//! drives the *default* partitioning along component boundaries when no
//! annotations are provided (§4.3, last paragraph).

use std::cell::RefCell;
use std::rc::Rc;

use crate::annotate::{Collective, FragmentKind, PartitionAnnotation};
use crate::graph::{DataflowGraph, NodeId, OpKind};

#[derive(Default)]
struct TraceInner {
    graph: DataflowGraph,
    component: String,
}

/// A tracing context. Cheap to clone (shared handle).
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Rc<RefCell<TraceInner>>,
}

/// A handle to one traced value: the symbolic analogue of a Python
/// variable in the paper's algorithm code.
#[derive(Clone)]
pub struct TracedVar {
    ctx: TraceCtx,
    id: NodeId,
    shape: Vec<usize>,
}

impl TraceCtx {
    /// Creates an empty tracing context.
    pub fn new() -> Self {
        TraceCtx::default()
    }

    /// Finishes tracing, returning the recorded graph.
    pub fn finish(self) -> DataflowGraph {
        self.inner.take().graph
    }

    /// Sets the component label for subsequently traced nodes and returns
    /// the previous label (restore it to leave the scope).
    pub fn enter_component(&self, name: &str) -> String {
        let mut inner = self.inner.borrow_mut();
        std::mem::replace(&mut inner.component, name.to_string())
    }

    /// Restores a component label saved by [`TraceCtx::enter_component`].
    pub fn exit_component(&self, saved: String) {
        self.inner.borrow_mut().component = saved;
    }

    fn push(&self, kind: OpKind, inputs: Vec<NodeId>, shape: Vec<usize>) -> TracedVar {
        let mut inner = self.inner.borrow_mut();
        let component = inner.component.clone();
        let id = inner.graph.push(kind, inputs, shape.clone(), &component);
        TracedVar { ctx: self.clone(), id, shape }
    }

    /// Declares an external input of the given shape.
    pub fn input(&self, name: &str, shape: &[usize]) -> TracedVar {
        self.push(OpKind::Input { name: name.to_string() }, vec![], shape.to_vec())
    }

    /// Declares a trainable parameter of the given shape.
    pub fn param(&self, name: &str, shape: &[usize]) -> TracedVar {
        self.push(OpKind::Param { name: name.to_string() }, vec![], shape.to_vec())
    }

    /// Declares a constant of the given shape.
    pub fn constant(&self, shape: &[usize]) -> TracedVar {
        self.push(OpKind::Const, vec![], shape.to_vec())
    }

    /// Places a partition annotation over the given values — the
    /// reproduction of `#@MSRL.fragment(type=…, ops=[…], data=[…])`.
    pub fn annotate(&self, kind: FragmentKind, collective: Collective, data: &[&TracedVar]) {
        let ann =
            PartitionAnnotation { kind, collective, data: data.iter().map(|v| v.id).collect() };
        self.inner.borrow_mut().graph.annotations.push(ann);
    }

    // -- RL macro ops ------------------------------------------------------

    /// Traces an environment reset producing `[n_envs, obs_dim]`.
    pub fn env_reset(&self, n_envs: usize, obs_dim: usize) -> TracedVar {
        self.push(OpKind::EnvReset, vec![], vec![n_envs, obs_dim])
    }

    /// Traces an environment step: actions in, `(obs, rewards)` out.
    pub fn env_step(
        &self,
        actions: &TracedVar,
        n_envs: usize,
        obs_dim: usize,
    ) -> (TracedVar, TracedVar) {
        let obs = self.push(OpKind::EnvStep, vec![actions.id], vec![n_envs, obs_dim]);
        // Rewards are a second output; model as a dependent node that the
        // interpreter serves from the same kernel invocation.
        let rewards = self.push(OpKind::EnvStep, vec![actions.id, obs.id], vec![n_envs]);
        (obs, rewards)
    }

    /// Traces action sampling from policy output.
    pub fn sample_action(
        &self,
        policy_out: &TracedVar,
        n_envs: usize,
        act_width: usize,
    ) -> TracedVar {
        self.push(OpKind::SampleAction, vec![policy_out.id], vec![n_envs, act_width])
    }

    /// Traces a replay-buffer insert (`MSRL.replay_buffer_insert`).
    pub fn replay_insert(&self, values: &[&TracedVar]) -> TracedVar {
        let inputs = values.iter().map(|v| v.id).collect();
        self.push(OpKind::ReplayInsert, inputs, vec![])
    }

    /// Traces a replay-buffer sample (`MSRL.replay_buffer_sample`)
    /// yielding `[batch, width]`.
    pub fn replay_sample(&self, after: &TracedVar, batch: usize, width: usize) -> TracedVar {
        self.push(OpKind::ReplaySample, vec![after.id], vec![batch, width])
    }

    /// Traces the learner update (`MSRL.agent_learn`) yielding the loss.
    pub fn learn(&self, sample: &TracedVar) -> TracedVar {
        self.push(OpKind::Learn, vec![sample.id], vec![])
    }

    /// Traces reading the trainable parameters (for weight sync), with
    /// `count` scalar parameters.
    pub fn read_params(&self, after: &TracedVar, count: usize) -> TracedVar {
        self.push(OpKind::ReadParams, vec![after.id], vec![count])
    }

    /// Traces overwriting the parameters from a synced tensor.
    pub fn write_params(&self, params: &TracedVar) -> TracedVar {
        self.push(OpKind::WriteParams, vec![params.id], vec![])
    }
}

impl TracedVar {
    /// This value's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This value's static shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    fn unary(&self, kind: OpKind, shape: Vec<usize>) -> TracedVar {
        self.ctx.push(kind, vec![self.id], shape)
    }

    fn binary(&self, other: &TracedVar, kind: OpKind, shape: Vec<usize>) -> TracedVar {
        self.ctx.push(kind, vec![self.id, other.id], shape)
    }

    /// Matrix multiply: `[m, k] × [k, n] → [m, n]`.
    pub fn matmul(&self, other: &TracedVar) -> TracedVar {
        let m = self.shape.first().copied().unwrap_or(1);
        let n = other.shape.get(1).copied().unwrap_or(1);
        self.binary(other, OpKind::MatMul, vec![m, n])
    }

    /// Element-wise add (shape of the broadcast result approximated by the
    /// wider operand, which tracing keeps exact for our op patterns).
    pub fn add(&self, other: &TracedVar) -> TracedVar {
        let shape = if self.shape.len() >= other.shape.len() {
            self.shape.clone()
        } else {
            other.shape.clone()
        };
        self.binary(other, OpKind::Add, shape)
    }

    /// Element-wise subtract.
    pub fn sub(&self, other: &TracedVar) -> TracedVar {
        self.binary(other, OpKind::Sub, self.shape.clone())
    }

    /// Element-wise multiply.
    pub fn mul(&self, other: &TracedVar) -> TracedVar {
        self.binary(other, OpKind::Mul, self.shape.clone())
    }

    /// Element-wise divide.
    pub fn div(&self, other: &TracedVar) -> TracedVar {
        self.binary(other, OpKind::Div, self.shape.clone())
    }

    /// ReLU.
    pub fn relu(&self) -> TracedVar {
        self.unary(OpKind::Relu, self.shape.clone())
    }

    /// Tanh.
    pub fn tanh(&self) -> TracedVar {
        self.unary(OpKind::Tanh, self.shape.clone())
    }

    /// Sigmoid.
    pub fn sigmoid(&self) -> TracedVar {
        self.unary(OpKind::Sigmoid, self.shape.clone())
    }

    /// Exponential.
    pub fn exp(&self) -> TracedVar {
        self.unary(OpKind::Exp, self.shape.clone())
    }

    /// Natural log.
    pub fn ln(&self) -> TracedVar {
        self.unary(OpKind::Ln, self.shape.clone())
    }

    /// Square.
    pub fn square(&self) -> TracedVar {
        self.unary(OpKind::Square, self.shape.clone())
    }

    /// Negation.
    pub fn neg(&self) -> TracedVar {
        self.unary(OpKind::Neg, self.shape.clone())
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> TracedVar {
        self.unary(OpKind::Clamp { lo, hi }, self.shape.clone())
    }

    /// Row-wise softmax.
    pub fn softmax(&self) -> TracedVar {
        self.unary(OpKind::Softmax, self.shape.clone())
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&self) -> TracedVar {
        self.unary(OpKind::LogSoftmax, self.shape.clone())
    }

    /// Sum of all elements (scalar).
    pub fn sum_all(&self) -> TracedVar {
        self.unary(OpKind::SumAll, vec![])
    }

    /// Mean of all elements (scalar).
    pub fn mean_all(&self) -> TracedVar {
        self.unary(OpKind::MeanAll, vec![])
    }

    /// Sum along an axis.
    pub fn sum_axis(&self, axis: usize) -> TracedVar {
        let mut shape = self.shape.clone();
        if axis < shape.len() {
            shape.remove(axis);
        }
        self.unary(OpKind::SumAxis { axis }, shape)
    }

    /// Concatenate with others along `axis`.
    pub fn concat(&self, others: &[&TracedVar], axis: usize) -> TracedVar {
        let mut shape = self.shape.clone();
        if axis < shape.len() {
            shape[axis] +=
                others.iter().map(|o| o.shape.get(axis).copied().unwrap_or(0)).sum::<usize>();
        }
        let mut inputs = vec![self.id];
        inputs.extend(others.iter().map(|o| o.id));
        self.ctx.push(OpKind::Concat { axis }, inputs, shape)
    }

    /// Reshape to fixed dims.
    pub fn reshape(&self, dims: &[usize]) -> TracedVar {
        self.unary(OpKind::Reshape { dims: dims.to_vec() }, dims.to_vec())
    }

    /// A pure data copy of this value — the node form annotations should
    /// mark, so the producing op stays interior to its fragment.
    pub fn boundary(&self) -> TracedVar {
        self.unary(OpKind::Identity, self.shape.clone())
    }
}

/// Traces an MLP forward pass (the policy network of the paper's
/// evaluation) over `layers` pairs of `[in, out]` widths; returns the
/// output variable. Parameters are declared as `"{prefix}.w{i}"` /
/// `"{prefix}.b{i}"`.
pub fn trace_mlp(ctx: &TraceCtx, prefix: &str, x: &TracedVar, widths: &[usize]) -> TracedVar {
    let mut h = x.clone();
    for (i, w) in widths.windows(2).enumerate() {
        let wt = ctx.param(&format!("{prefix}.w{i}"), &[w[0], w[1]]);
        let b = ctx.param(&format!("{prefix}.b{i}"), &[w[1]]);
        h = h.matmul(&wt).add(&b);
        if i + 2 < widths.len() {
            h = h.tanh();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_records_nodes_in_topological_order() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[8, 4]);
        let w = ctx.param("w", &[4, 2]);
        let y = x.matmul(&w).tanh();
        let g = ctx.finish();
        assert_eq!(g.len(), 4);
        assert!(g.validate().is_ok());
        assert_eq!(y.shape(), &[8, 2]);
    }

    #[test]
    fn component_scoping_labels_nodes() {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("actor");
        let x = ctx.input("x", &[4]);
        ctx.exit_component(saved);
        let saved = ctx.enter_component("learner");
        let _y = x.square();
        ctx.exit_component(saved);
        let g = ctx.finish();
        assert_eq!(g.nodes[0].component, "actor");
        assert_eq!(g.nodes[1].component, "learner");
    }

    #[test]
    fn annotations_capture_ids() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4]);
        let y = x.relu();
        ctx.annotate(FragmentKind::Action, Collective::AllGather, &[&y]);
        let g = ctx.finish();
        assert_eq!(g.annotations.len(), 1);
        assert_eq!(g.annotations[0].data, vec![y.id()]);
        assert_eq!(g.common_nodes(), vec![1]);
    }

    #[test]
    fn env_step_produces_obs_and_rewards() {
        let ctx = TraceCtx::new();
        let a = ctx.input("actions", &[32, 6]);
        let (obs, rew) = ctx.env_step(&a, 32, 17);
        assert_eq!(obs.shape(), &[32, 17]);
        assert_eq!(rew.shape(), &[32]);
        let g = ctx.finish();
        assert!(g.validate().is_ok());
        assert!(g.nodes[obs.id()].kind.is_macro());
    }

    #[test]
    fn trace_mlp_declares_params_per_layer() {
        let ctx = TraceCtx::new();
        let x = ctx.input("obs", &[32, 17]);
        let out = trace_mlp(&ctx, "pi", &x, &[17, 64, 64, 6]);
        assert_eq!(out.shape(), &[32, 6]);
        let g = ctx.finish();
        let params = g.nodes.iter().filter(|n| matches!(n.kind, OpKind::Param { .. })).count();
        assert_eq!(params, 6, "3 layers × (w, b)");
        // Hidden activations but no output activation.
        let tanhs = g.nodes.iter().filter(|n| n.kind == OpKind::Tanh).count();
        assert_eq!(tanhs, 2);
    }

    #[test]
    fn shapes_propagate_through_reductions() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[8, 3]);
        assert_eq!(x.sum_axis(1).shape(), &[8]);
        assert_eq!(x.sum_all().shape(), &[] as &[usize]);
        assert_eq!(x.reshape(&[24]).shape(), &[24]);
        let y = ctx.input("y", &[8, 5]);
        assert_eq!(x.concat(&[&y], 1).shape(), &[8, 8]);
    }
}
