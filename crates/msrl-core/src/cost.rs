//! Per-node cost estimation: flops and payload bytes.
//!
//! The discrete-event cluster simulator replays FDG executions on modelled
//! devices; this module supplies the work estimates it charges. Flop
//! counts follow the standard conventions (a `[m,k]×[k,n]` matmul is
//! `2mkn` flops; transcendental element-wise ops are weighted several
//! flops per element).

use crate::graph::{DataflowGraph, NodeId, OpKind, OpNode};

fn volume(shape: &[usize]) -> u64 {
    shape.iter().product::<usize>().max(1) as u64
}

/// Estimated floating-point operations to evaluate one node.
pub fn node_flops(graph: &DataflowGraph, node: &OpNode) -> u64 {
    let out = volume(&node.shape);
    match &node.kind {
        OpKind::Input { .. } | OpKind::Param { .. } | OpKind::Const | OpKind::Identity => 0,
        OpKind::MatMul => {
            // [m,k]×[k,n]: 2·m·k·n
            let k = node
                .inputs
                .first()
                .and_then(|&i| graph.nodes.get(i))
                .and_then(|n| n.shape.last().copied())
                .unwrap_or(1) as u64;
            2 * out * k
        }
        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Neg => out,
        OpKind::Relu | OpKind::Clamp { .. } => out,
        OpKind::Tanh | OpKind::Sigmoid | OpKind::Exp | OpKind::Ln => 8 * out,
        OpKind::Square => out,
        OpKind::Softmax | OpKind::LogSoftmax => 10 * out,
        OpKind::SumAll | OpKind::MeanAll | OpKind::SumAxis { .. } => {
            // Cost is reading the input.
            node.inputs
                .first()
                .and_then(|&i| graph.nodes.get(i))
                .map(|n| volume(&n.shape))
                .unwrap_or(out)
        }
        OpKind::Concat { .. } | OpKind::Reshape { .. } => out,
        // Macro ops are charged by the runtime from environment/learner
        // cost hints, not from the graph.
        _ => 0,
    }
}

/// Total estimated flops for a set of nodes.
pub fn subgraph_flops(graph: &DataflowGraph, nodes: &[NodeId]) -> u64 {
    nodes.iter().filter_map(|&i| graph.nodes.get(i)).map(|n| node_flops(graph, n)).sum()
}

/// Total estimated flops for the whole graph.
pub fn graph_flops(graph: &DataflowGraph) -> u64 {
    graph.nodes.iter().map(|n| node_flops(graph, n)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{trace_mlp, TraceCtx};

    #[test]
    fn matmul_flops_are_2mkn() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[8, 16]);
        let w = ctx.param("w", &[16, 4]);
        let y = x.matmul(&w);
        let g = ctx.finish();
        assert_eq!(node_flops(&g, &g.nodes[y.id()]), 2 * 8 * 16 * 4);
    }

    #[test]
    fn sources_are_free() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[128]);
        let w = ctx.param("w", &[128]);
        let g = ctx.finish();
        assert_eq!(node_flops(&g, &g.nodes[x.id()]), 0);
        assert_eq!(node_flops(&g, &g.nodes[w.id()]), 0);
    }

    #[test]
    fn bigger_networks_cost_more() {
        let small = {
            let ctx = TraceCtx::new();
            let x = ctx.input("x", &[32, 8]);
            trace_mlp(&ctx, "n", &x, &[8, 32, 4]);
            graph_flops(&ctx.finish())
        };
        let large = {
            let ctx = TraceCtx::new();
            let x = ctx.input("x", &[32, 8]);
            trace_mlp(&ctx, "n", &x, &[8, 256, 256, 4]);
            graph_flops(&ctx.finish())
        };
        assert!(large > 10 * small, "large {large} vs small {small}");
    }

    #[test]
    fn fused_graph_costs_scale_with_batch() {
        use crate::fusion::fuse_graph;
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4, 8]);
        trace_mlp(&ctx, "n", &x, &[8, 16, 2]);
        let g = ctx.finish();
        let fused = fuse_graph(&g, 10).unwrap();
        let base = graph_flops(&g);
        let fused_cost = graph_flops(&fused);
        assert_eq!(fused_cost, base * 10);
    }

    #[test]
    fn reductions_charge_input_volume() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[64, 64]);
        let s = x.sum_all();
        let g = ctx.finish();
        assert_eq!(node_flops(&g, &g.nodes[s.id()]), 64 * 64);
    }
}
