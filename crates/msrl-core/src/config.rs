//! Algorithm and deployment configurations (§3, Alg. 1 lines 35–47).
//!
//! MSRL deploys an algorithm from two documents: the *algorithm
//! configuration* instantiates the logical components and their
//! hyper-parameters; the *deployment configuration* names the cluster
//! resources and the distribution policy. Keeping them separate is what
//! lets users switch distribution policies "without requiring changes to
//! the algorithm implementation".

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The six default distribution policies of Tab. 2, plus custom ones.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyName {
    /// DP-A — single learner, coarse (per-episode) synchronisation.
    SingleLearnerCoarse,
    /// DP-B — single learner, fine (per-step) synchronisation.
    SingleLearnerFine,
    /// DP-C — multiple data-parallel learners.
    MultipleLearners,
    /// DP-D — the whole training loop fused on GPUs.
    GpuOnly,
    /// DP-E — dedicated environment workers.
    Environments,
    /// DP-F — a central parameter-server / policy-pool fragment.
    Central,
    /// A user-defined policy by name.
    Custom(String),
}

impl PolicyName {
    /// The paper's short code (DP-A … DP-F).
    pub fn code(&self) -> &str {
        match self {
            PolicyName::SingleLearnerCoarse => "DP-A",
            PolicyName::SingleLearnerFine => "DP-B",
            PolicyName::MultipleLearners => "DP-C",
            PolicyName::GpuOnly => "DP-D",
            PolicyName::Environments => "DP-E",
            PolicyName::Central => "DP-F",
            PolicyName::Custom(s) => s,
        }
    }
}

/// The algorithm configuration: logical components and hyper-parameters
/// (Alg. 1 lines 35–43).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmConfig {
    /// Algorithm name (e.g. `"PPO"`, `"MAPPO"`, `"A3C"`).
    pub algorithm: String,
    /// Number of agents (1 for single-agent RL).
    pub agents: usize,
    /// Number of actor instances per agent.
    pub actors: usize,
    /// Number of learner instances per agent.
    pub learners: usize,
    /// Environments each actor interacts with.
    pub envs_per_actor: usize,
    /// Steps per episode (trajectory length).
    pub duration: usize,
    /// Named hyper-parameters (gamma, clip, learning rate, …). A
    /// `BTreeMap` keeps serialisation deterministic.
    pub hyper: BTreeMap<String, f64>,
}

impl AlgorithmConfig {
    /// A PPO configuration matching the paper's evaluation defaults
    /// (seven-layer DNN, 1000-step episodes).
    pub fn ppo(actors: usize, envs_per_actor: usize) -> Self {
        let mut hyper = BTreeMap::new();
        hyper.insert("gamma".into(), 0.99);
        hyper.insert("gae_lambda".into(), 0.95);
        hyper.insert("clip".into(), 0.2);
        hyper.insert("lr".into(), 3e-4);
        hyper.insert("epochs".into(), 4.0);
        AlgorithmConfig {
            algorithm: "PPO".into(),
            agents: 1,
            actors,
            learners: 1,
            envs_per_actor,
            duration: 1000,
            hyper,
        }
    }

    /// A hyper-parameter with a default.
    pub fn hyper_or(&self, key: &str, default: f64) -> f64 {
        self.hyper.get(key).copied().unwrap_or(default)
    }

    /// Total environments across all actors.
    pub fn total_envs(&self) -> usize {
        self.agents * self.actors * self.envs_per_actor
    }
}

/// The deployment configuration: resources and the distribution policy
/// (Alg. 1 lines 44–47).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Worker addresses (host names in the original; labels here).
    pub workers: Vec<String>,
    /// GPUs available per worker.
    pub gpus_per_worker: usize,
    /// CPU cores available per worker.
    pub cpus_per_worker: usize,
    /// The distribution policy to apply.
    pub distribution_policy: PolicyName,
}

impl DeploymentConfig {
    /// A deployment over `n` synthetic workers.
    pub fn workers(n: usize, gpus_per_worker: usize, policy: PolicyName) -> Self {
        DeploymentConfig {
            workers: (0..n).map(|i| format!("worker-{i}")).collect(),
            gpus_per_worker,
            cpus_per_worker: 24,
            distribution_policy: policy,
        }
    }

    /// Total GPUs in the deployment.
    pub fn total_gpus(&self) -> usize {
        self.workers.len() * self.gpus_per_worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_codes_match_tab2() {
        assert_eq!(PolicyName::SingleLearnerCoarse.code(), "DP-A");
        assert_eq!(PolicyName::GpuOnly.code(), "DP-D");
        assert_eq!(PolicyName::Custom("mine".into()).code(), "mine");
    }

    #[test]
    fn ppo_defaults() {
        let c = AlgorithmConfig::ppo(50, 4);
        assert_eq!(c.total_envs(), 200);
        assert_eq!(c.hyper_or("gamma", 0.0), 0.99);
        assert_eq!(c.hyper_or("missing", 7.0), 7.0);
        assert_eq!(c.duration, 1000);
    }

    #[test]
    fn configs_roundtrip_through_json() {
        let a = AlgorithmConfig::ppo(4, 32);
        let s = serde_json::to_string_pretty(&a).unwrap();
        let back: AlgorithmConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(a, back);

        let d = DeploymentConfig::workers(16, 4, PolicyName::MultipleLearners);
        let s = serde_json::to_string(&d).unwrap();
        let back: DeploymentConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.total_gpus(), 64);
    }
}
